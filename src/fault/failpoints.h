// Deterministic fault injection: named failpoints compiled into the seams
// of the PPC/xcall/repl paths.
//
// The runtime's recovery story (§4.5.2 kill/reclaim, §4.5.6 Frank's
// resource exhaustion) only means something if the failure branches are
// actually executed. A failpoint is a named site —
//
//   if (HPPC_FAULT_POINT("rt.xcall.ring_full")) { ...take the full path... }
//
// — that evaluates to a compile-time `false` (zero instructions, branches
// folded away) unless the build defines HPPC_FAULT_INJECTION=1
// (cmake -DHPPC_FAULT_INJECTION=ON). In a fault build every site costs one
// relaxed atomic load while disarmed; an armed site consults its trigger:
//
//   off            never fires (armed but inert; keeps the site countable)
//   always         fires on every evaluation
//   oneshot        fires exactly once, then disarms itself
//   count=N        fires on the first N evaluations, then disarms
//   prob=P         fires with probability P per evaluation (deterministic
//                  per-point splitmix64 stream, so a seeded run replays)
//   skip=M         modifier: ignore the first M evaluations before the
//                  trigger starts counting/firing
//   delay=CYCLES   modifier: when the point fires, additionally spin for
//                  CYCLES cpu_relax() rounds before returning true — the
//                  injected-latency primitive (sites named "*.delay" use
//                  only this effect and ignore the return value)
//
// Points are armed at runtime, by tests (fault::arm("name", "prob=0.1")),
// or from the environment: HPPC_FAULTS="a=oneshot;b=prob=0.2,delay=1000"
// is parsed once, when the registry first materializes. Arming a name that
// no site has reached yet is fine — the site adopts the config on first
// evaluation. What a fired point *means* (ring full, pool exhausted,
// dropped completion, aborted handler) is decided by the site; the
// framework only answers "does this seam fail now?".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/cpu_relax.h"

namespace hppc::fault {

/// One named site's trigger state. All fields are atomics so arming from a
/// controller thread races benignly with evaluation from traffic threads
/// (TSan-clean); the registry hands out stable references for the lifetime
/// of the process.
class FailPoint {
 public:
  // "oneshot" is kCount with a budget of 1, so it needs no mode of its own.
  enum class Mode : std::uint8_t { kOff = 0, kAlways, kCount, kProb };

  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  /// The per-site evaluation. Disarmed: one relaxed load. Armed: consult
  /// the trigger, optionally spin the configured delay, and report whether
  /// the site should take its failure branch.
  bool check() {
    if (armed_.load(std::memory_order_relaxed) == 0) return false;
    return check_armed();
  }

  /// Configure from a spec string ("always", "oneshot", "count=3",
  /// "prob=0.25", each optionally "+,skip=M,delay=N"). Returns false and
  /// leaves the point disarmed on a malformed spec.
  bool arm(std::string_view spec);

  void disarm() { armed_.store(0, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  /// Lifetime tallies (never reset by disarm; reset() is for tests).
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  void reset_counts() {
    evaluations_.store(0, std::memory_order_relaxed);
    injected_.store(0, std::memory_order_relaxed);
  }

 private:
  bool check_armed();  // out of line: the armed path is not the fast path

  std::string name_;
  std::atomic<std::uint32_t> armed_{0};
  std::atomic<Mode> mode_{Mode::kOff};
  // kCount: remaining fires. kProb: fire threshold in 2^-32 fixed point.
  std::atomic<std::uint64_t> budget_{0};
  std::atomic<std::uint64_t> skip_{0};
  std::atomic<std::uint64_t> delay_spins_{0};
  std::atomic<std::uint64_t> rng_{0x9e3779b97f4a7c15ULL};  // splitmix64 walk
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> injected_{0};
};

/// Process-wide name → FailPoint table. Lookup is a mutex + linear scan —
/// sites cache the reference in a function-local static, so the slow
/// lookup happens once per site, not per evaluation.
class Registry {
 public:
  /// Find-or-create. The returned reference is stable forever.
  FailPoint& point(std::string_view name);

  /// Arm `name` with `spec` (creating the point if no site reached it
  /// yet). Returns false on a malformed spec.
  bool arm(std::string_view name, std::string_view spec);

  void disarm(std::string_view name);
  void disarm_all();

  /// Total injections across every point (the registry-side twin of the
  /// per-slot faults_injected counter).
  std::uint64_t total_injected() const;

  /// Injected count for one point (0 if it does not exist).
  std::uint64_t injected(std::string_view name) const;

  /// Every known point name, for catalogs and diagnostics.
  std::vector<std::string> names() const;

  /// Parse a HPPC_FAULTS-style spec list: "name=spec;name=spec,...".
  /// Returns the number of points armed, or -1 on a parse error (points
  /// before the error stay armed).
  int arm_from_spec_list(std::string_view list);

 private:
  friend Registry& registry();
  Registry();  // reads $HPPC_FAULTS once

  mutable std::mutex mu_;
  // Deque-like stability without <deque>: chunks of owned points.
  std::vector<std::unique_ptr<FailPoint>> points_;
};

/// The process-wide registry (materialized on first use; arms $HPPC_FAULTS).
Registry& registry();

// Convenience wrappers used by tests and tools.
inline bool arm(std::string_view name, std::string_view spec) {
  return registry().arm(name, spec);
}
inline void disarm(std::string_view name) { registry().disarm(name); }
inline void disarm_all() { registry().disarm_all(); }
inline std::uint64_t injected(std::string_view name) {
  return registry().injected(name);
}

}  // namespace hppc::fault

// The site macro. With fault injection compiled out it is the literal
// `false`: the guarded failure branch is dead code and the optimizer
// removes it — the zero-overhead gate in CI holds by construction. With
// HPPC_FAULT_INJECTION=ON each site resolves its FailPoint once (static
// local) and pays one relaxed load per evaluation while disarmed.
#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION
#define HPPC_FAULT_POINT(name_literal)                             \
  ([]() -> bool {                                                  \
    static ::hppc::fault::FailPoint& hppc_fp_site =                \
        ::hppc::fault::registry().point(name_literal);             \
    return hppc_fp_site.check();                                   \
  }())
#else
#define HPPC_FAULT_POINT(name_literal) (false)
#endif
