#include "fault/failpoints.h"

#include <cstdlib>

namespace hppc::fault {

namespace {

/// splitmix64 step — one atomic fetch_add walks the stream, so concurrent
/// evaluations of one probabilistic point draw independent values without
/// a lock (the sequence is deterministic under a deterministic schedule,
/// which is what the seeded chaos soak relies on).
std::uint64_t rng_draw(std::atomic<std::uint64_t>& state) {
  std::uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_prob(std::string_view s, double* out) {
  // Minimal "0.25"-style parser: digits [ '.' digits ].
  if (s.empty()) return false;
  double v = 0;
  std::size_t i = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    v = v * 10 + (s[i] - '0');
  }
  if (i < s.size()) {
    if (s[i] != '.') return false;
    double scale = 0.1;
    for (++i; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      v += (s[i] - '0') * scale;
      scale *= 0.1;
    }
  }
  if (v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

bool FailPoint::arm(std::string_view spec) {
  Mode mode = Mode::kOff;
  std::uint64_t budget = 0;
  std::uint64_t skip = 0;
  std::uint64_t delay = 0;
  bool have_trigger = false;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    const std::string_view key = item.substr(0, eq);
    const std::string_view val =
        eq == std::string_view::npos ? std::string_view{} : item.substr(eq + 1);

    if (key == "off") {
      mode = Mode::kOff;
      have_trigger = true;
    } else if (key == "always") {
      mode = Mode::kAlways;
      have_trigger = true;
    } else if (key == "oneshot") {
      mode = Mode::kCount;
      budget = 1;
      have_trigger = true;
    } else if (key == "count") {
      if (!parse_u64(val, &budget)) return false;
      mode = Mode::kCount;
      have_trigger = true;
    } else if (key == "prob" || key == "p") {
      double p = 0;
      if (!parse_prob(val, &p)) return false;
      mode = Mode::kProb;
      budget = static_cast<std::uint64_t>(p * 4294967296.0);  // 2^-32 fixed pt
      have_trigger = true;
    } else if (key == "skip") {
      if (!parse_u64(val, &skip)) return false;
    } else if (key == "delay") {
      if (!parse_u64(val, &delay)) return false;
      // A bare delay spec is a valid trigger: fire (spin) on every pass.
      if (!have_trigger) {
        mode = Mode::kAlways;
        have_trigger = true;
      }
    } else {
      return false;
    }
  }
  if (!have_trigger) return false;

  // Publish config before the armed flag so an evaluator that sees
  // armed != 0 reads a complete trigger (release/relaxed pairing is enough:
  // every field is independently atomic and a torn *combination* at the
  // arming instant is indistinguishable from arming a moment later).
  mode_.store(mode, std::memory_order_relaxed);
  budget_.store(budget, std::memory_order_relaxed);
  skip_.store(skip, std::memory_order_relaxed);
  delay_spins_.store(delay, std::memory_order_relaxed);
  armed_.store(mode == Mode::kOff ? 0 : 1, std::memory_order_release);
  return true;
}

bool FailPoint::check_armed() {
  evaluations_.fetch_add(1, std::memory_order_relaxed);

  // skip=M: let the first M armed evaluations pass untouched.
  std::uint64_t sk = skip_.load(std::memory_order_relaxed);
  while (sk > 0) {
    if (skip_.compare_exchange_weak(sk, sk - 1, std::memory_order_relaxed)) {
      return false;
    }
  }

  bool fire = false;
  switch (mode_.load(std::memory_order_relaxed)) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kCount: {
      std::uint64_t left = budget_.load(std::memory_order_relaxed);
      while (left > 0 && !fire) {
        if (budget_.compare_exchange_weak(left, left - 1,
                                          std::memory_order_relaxed)) {
          fire = true;
          if (left == 1) disarm();  // budget spent
        }
      }
      break;
    }
    case Mode::kProb:
      fire = (rng_draw(rng_) >> 32) <
             budget_.load(std::memory_order_relaxed);
      break;
  }
  if (!fire) return false;

  injected_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t spins = delay_spins_.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
  return true;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry() {
  if (const char* env = std::getenv("HPPC_FAULTS")) {
    arm_from_spec_list(env);
  }
}

FailPoint& Registry::point(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : points_) {
    if (p->name() == name) return *p;
  }
  points_.push_back(std::make_unique<FailPoint>(std::string(name)));
  return *points_.back();
}

bool Registry::arm(std::string_view name, std::string_view spec) {
  return point(name).arm(spec);
}

void Registry::disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : points_) {
    if (p->name() == name) {
      p->disarm();
      return;
    }
  }
}

void Registry::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : points_) p->disarm();
}

std::uint64_t Registry::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& p : points_) n += p->injected();
  return n;
}

std::uint64_t Registry::injected(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : points_) {
    if (p->name() == name) return p->injected();
  }
  return 0;
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p->name());
  return out;
}

int Registry::arm_from_spec_list(std::string_view list) {
  int armed = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t semi = list.find(';', pos);
    const std::string_view item = list.substr(
        pos, semi == std::string_view::npos ? list.size() - pos : semi - pos);
    pos = semi == std::string_view::npos ? list.size() + 1 : semi + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return -1;
    if (!arm(item.substr(0, eq), item.substr(eq + 1))) return -1;
    ++armed;
  }
  return armed;
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace hppc::fault
