// Per-slot bounded ring-buffer event tracer, ftrace-style: fixed-size
// 32-byte records (timestamp, trace/span/parent ids, slot, event id, arg)
// written with plain stores into a ring owned by one slot/CPU. The ring
// never grows, never locks, and overwrites its oldest record when full, so
// tracing cannot change the allocation or sharing behaviour of the path
// being traced — a saturated tracer degrades by losing old records, never
// by blocking the call path.
//
// Request-scoped tracing rides the same rings: a TraceCtx (64-bit trace id
// + current span id + hop count) travels with a call across slots — stashed
// in the xcall cell's trace-build padding, carried by deferred async calls,
// restored around nested handler execution — and kSpanBegin/kSpanEnd
// records parent-link each hop, so one exported chrome-trace shows a call
// crossing caller slot -> ring -> server slot -> nested hops.
//
// Compile-time toggle: hooks are emitted only when the build defines
// HPPC_TRACE=1 (cmake -DHPPC_TRACE=ON). With the toggle off the
// HPPC_TRACE_EVENT macro expands to nothing — zero instructions on the
// fast path, which is what the overhead bench asserts.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"  // obs_name_eq, for the exhaustiveness checks

namespace hppc::obs {

/// The request context carried end-to-end through a traced call chain.
/// `trace_id == 0` means "not traced" everywhere — untraced calls pay no
/// span bookkeeping even in trace builds. The struct exists in every build
/// (so call paths can thread it unconditionally); only trace builds ever
/// emit records or ship it across the xcall rings.
struct TraceCtx {
  std::uint64_t trace_id = 0;  // 0 = untraced
  std::uint32_t span_id = 0;   // the current (parent-to-be) span
  std::uint32_t hop = 0;       // slot/ring crossings so far

  bool traced() const { return trace_id != 0; }
};

/// What a span covers — carried in a kSpanBegin record's `arg`.
enum class SpanKind : std::uint32_t {
  kRoot = 0,       // client-side root (Runtime::trace_begin)
  kLocalCall,      // same-slot synchronous call (incl. nested RtCtx::call)
  kRemoteCall,     // cross-slot call_remote, ring path (post -> completion)
  kRemoteDirect,   // cross-slot call direct-executed under a gate steal
  kBatch,          // one call_remote_batch chunk (post -> all collected)
  kServerExec,     // server-side execution of one ring cell
  kAsyncExec,      // deferred async call executed at poll()
  kCount
};

constexpr const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRoot: return "root";
    case SpanKind::kLocalCall: return "local_call";
    case SpanKind::kRemoteCall: return "remote_call";
    case SpanKind::kRemoteDirect: return "remote_direct";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kServerExec: return "server_exec";
    case SpanKind::kAsyncExec: return "async_exec";
    case SpanKind::kCount: break;
  }
  return "unknown";
}

/// Fixed event ids. Append only — they appear in exported traces.
enum class TraceEvent : std::uint16_t {
  kCallEnter = 0,     // arg = entry point id
  kCallExit,          // arg = status code
  kAsyncEnqueue,      // arg = entry point id
  kPoll,              // arg = actions performed
  kWorkerCreate,      // arg = entry point id (pool grow)
  kWorkerInit,        // arg = entry point id (§4.5.3 one-time init)
  kFrankWorkerRefill, // arg = entry point id
  kFrankCdRefill,     // arg = CD pool group
  kBind,              // arg = new entry point id
  kSoftKill,          // arg = entry point id
  kHardKill,          // arg = entry point id
  kReclaim,           // arg = entry point id (cross-slot reclamation)
  kUpcall,            // arg = entry point id
  kInterrupt,         // arg = entry point id
  kRemoteCall,        // arg = target cpu
  kGatewayForward,    // arg = legacy server pid
  kXcallPost,         // arg = target slot (caller-side ring publish)
  kXcallBatch,        // arg = cells drained in the batch (target-side)
  kReplPublish,       // arg = replicated object id (writer-side propagate)
  kReplPull,          // arg = replicated object id (owner refreshed replica)
  kFaultInject,       // arg = site-local tag (fault injection fired)
  kDeadlineExceeded,  // arg = target slot (caller abandoned the wait)
  kCallShed,          // arg = target slot (admission control rejected)
  kXcallBatchPost,    // arg = cells published by one vectored submission
  kWaiterPark,        // arg = target slot (caller parked on its wait word)
  kWaiterKick,        // arg = entry point (completion woke a parked waiter)
  kSpanBegin,         // arg = SpanKind; trace/span/parent ids carried
  kSpanEnd,           // arg = status code; trace/span ids carried
  kReplHit,           // arg = replicated object id (read served by replica)
  kCallCancelled,     // arg = target slot/ep (cancel token fired on the call)
  kCount
};

constexpr const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kCallEnter: return "call_enter";
    case TraceEvent::kCallExit: return "call_exit";
    case TraceEvent::kAsyncEnqueue: return "async_enqueue";
    case TraceEvent::kPoll: return "poll";
    case TraceEvent::kWorkerCreate: return "worker_create";
    case TraceEvent::kWorkerInit: return "worker_init";
    case TraceEvent::kFrankWorkerRefill: return "frank_worker_refill";
    case TraceEvent::kFrankCdRefill: return "frank_cd_refill";
    case TraceEvent::kBind: return "bind";
    case TraceEvent::kSoftKill: return "soft_kill";
    case TraceEvent::kHardKill: return "hard_kill";
    case TraceEvent::kReclaim: return "reclaim";
    case TraceEvent::kUpcall: return "upcall";
    case TraceEvent::kInterrupt: return "interrupt";
    case TraceEvent::kRemoteCall: return "remote_call";
    case TraceEvent::kGatewayForward: return "gateway_forward";
    case TraceEvent::kXcallPost: return "xcall_post";
    case TraceEvent::kXcallBatch: return "xcall_batch";
    case TraceEvent::kReplPublish: return "repl_publish";
    case TraceEvent::kReplPull: return "repl_pull";
    case TraceEvent::kFaultInject: return "fault_inject";
    case TraceEvent::kDeadlineExceeded: return "deadline_exceeded";
    case TraceEvent::kCallShed: return "call_shed";
    case TraceEvent::kXcallBatchPost: return "xcall_batch_post";
    case TraceEvent::kWaiterPark: return "waiter_park";
    case TraceEvent::kWaiterKick: return "waiter_kick";
    case TraceEvent::kSpanBegin: return "span_begin";
    case TraceEvent::kSpanEnd: return "span_end";
    case TraceEvent::kReplHit: return "repl_hit";
    case TraceEvent::kCallCancelled: return "call_cancelled";
    case TraceEvent::kCount: break;
  }
  return "unknown";
}

namespace detail {
template <std::size_t... I>
constexpr bool all_trace_events_named(std::index_sequence<I...>) {
  return (!obs_name_eq(trace_event_name(static_cast<TraceEvent>(I)),
                       "unknown") &&
          ...);
}
template <std::size_t... I>
constexpr bool all_span_kinds_named(std::index_sequence<I...>) {
  return (!obs_name_eq(span_kind_name(static_cast<SpanKind>(I)), "unknown") &&
          ...);
}
}  // namespace detail
static_assert(detail::all_trace_events_named(std::make_index_sequence<
                  static_cast<std::size_t>(TraceEvent::kCount)>{}),
              "every TraceEvent value needs a trace_event_name() case");
static_assert(detail::all_span_kinds_named(std::make_index_sequence<
                  static_cast<std::size_t>(SpanKind::kCount)>{}),
              "every SpanKind value needs a span_kind_name() case");

/// One record: 32 bytes, fixed layout. `ts` is simulated cycles for the
/// sim layer and steady-clock nanoseconds for the host runtime. The three
/// id fields are zero for plain (non-span) events; kSpanBegin/kSpanEnd and
/// ctx-carrying instants fill them so exporters can parent-link hops.
struct TraceRecord {
  std::uint64_t ts = 0;
  std::uint64_t trace_id = 0;  // 0 = not request-scoped
  std::uint32_t span = 0;      // this record's span id (0 = none)
  std::uint32_t parent = 0;    // parent span id (0 = root / none)
  std::uint32_t arg = 0;
  std::uint16_t slot = 0;
  std::uint16_t event = 0;
};
static_assert(sizeof(TraceRecord) == 32);

/// Single-writer bounded ring. Capacity is a compile-time power of two so
/// the index wrap is a mask, not a division.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 4096;
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  void record(std::uint64_t ts, std::uint16_t slot, TraceEvent event,
              std::uint32_t arg) {
    record_span(ts, slot, event, arg, 0, 0, 0);
  }

  /// Record with request-context ids attached (span events and ctx-carrying
  /// instants). Same cost class as record(): plain stores into the owned
  /// ring, wrap overwrites the oldest record.
  void record_span(std::uint64_t ts, std::uint16_t slot, TraceEvent event,
                   std::uint32_t arg, std::uint64_t trace_id,
                   std::uint32_t span, std::uint32_t parent) {
    TraceRecord& r = buf_[head_ & (kCapacity - 1)];
    r.ts = ts;
    r.trace_id = trace_id;
    r.span = span;
    r.parent = parent;
    r.arg = arg;
    r.slot = slot;
    r.event = static_cast<std::uint16_t>(event);
    ++head_;
  }

  /// Total records ever written (>= kCapacity means the ring has wrapped
  /// and the oldest records were overwritten).
  std::uint64_t total_recorded() const { return head_; }

  std::size_t size() const {
    return head_ < kCapacity ? static_cast<std::size_t>(head_) : kCapacity;
  }

  void reset() { head_ = 0; }

  /// Oldest-first copy of the retained records (owner or quiesced only —
  /// the ring is single-writer and unsynchronized by design).
  std::vector<TraceRecord> snapshot() const;

 private:
  std::array<TraceRecord, kCapacity> buf_{};
  std::uint64_t head_ = 0;
};

/// A labelled ring for export ("cpu0", "slot3", ...).
struct NamedRing {
  std::string label;
  const TraceRing* ring = nullptr;
};

/// Export as chrome://tracing / Perfetto JSON ("traceEvents" array of
/// instant events; tid = slot, ts in microseconds assuming `ts_per_us`
/// raw units per microsecond — pass 1000 for nanosecond host timestamps,
/// or the simulated clock rate in MHz for cycle timestamps).
std::string trace_to_chrome_json(const std::vector<NamedRing>& rings,
                                 double ts_per_us = 1000.0);

/// Export as plain JSON records (diff-friendly; raw timestamps).
std::string trace_to_json(const std::vector<NamedRing>& rings);

/// Steady-clock nanoseconds, for host-runtime trace timestamps (the sim
/// layer passes cpu.now() cycles instead).
std::uint64_t host_trace_now();

}  // namespace hppc::obs

// The hook macro. `ring` is evaluated only when tracing is compiled in, so
// the expression may be arbitrarily costly to reach (e.g. a map lookup) —
// with the toggle off nothing is evaluated at all.
#if defined(HPPC_TRACE) && HPPC_TRACE
#define HPPC_TRACE_EVENT(ring, ts, slot, event, arg) \
  (ring).record((ts), static_cast<std::uint16_t>(slot), (event), \
                static_cast<std::uint32_t>(arg))
#else
#define HPPC_TRACE_EVENT(ring, ts, slot, event, arg) ((void)0)
#endif
