// Per-slot bounded ring-buffer event tracer, ftrace-style: fixed-size
// 16-byte records (timestamp, slot, event id, arg) written with plain
// stores into a ring owned by one slot/CPU. The ring never grows, never
// locks, and overwrites its oldest record when full, so tracing cannot
// change the allocation or sharing behaviour of the path being traced.
//
// Compile-time toggle: hooks are emitted only when the build defines
// HPPC_TRACE=1 (cmake -DHPPC_TRACE=ON). With the toggle off the
// HPPC_TRACE_EVENT macro expands to nothing — zero instructions on the
// fast path, which is what the overhead bench asserts.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hppc::obs {

/// Fixed event ids. Append only — they appear in exported traces.
enum class TraceEvent : std::uint16_t {
  kCallEnter = 0,     // arg = entry point id
  kCallExit,          // arg = status code
  kAsyncEnqueue,      // arg = entry point id
  kPoll,              // arg = actions performed
  kWorkerCreate,      // arg = entry point id (pool grow)
  kWorkerInit,        // arg = entry point id (§4.5.3 one-time init)
  kFrankWorkerRefill, // arg = entry point id
  kFrankCdRefill,     // arg = CD pool group
  kBind,              // arg = new entry point id
  kSoftKill,          // arg = entry point id
  kHardKill,          // arg = entry point id
  kReclaim,           // arg = entry point id (cross-slot reclamation)
  kUpcall,            // arg = entry point id
  kInterrupt,         // arg = entry point id
  kRemoteCall,        // arg = target cpu
  kGatewayForward,    // arg = legacy server pid
  kXcallPost,         // arg = target slot (caller-side ring publish)
  kXcallBatch,        // arg = cells drained in the batch (target-side)
  kReplPublish,       // arg = replicated object id (writer-side propagate)
  kReplPull,          // arg = replicated object id (owner refreshed replica)
  kFaultInject,       // arg = site-local tag (fault injection fired)
  kDeadlineExceeded,  // arg = target slot (caller abandoned the wait)
  kCallShed,          // arg = target slot (admission control rejected)
  kXcallBatchPost,    // arg = cells published by one vectored submission
  kWaiterPark,        // arg = target slot (caller parked on its wait word)
  kWaiterKick,        // arg = entry point (completion woke a parked waiter)
  kCount
};

constexpr const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kCallEnter: return "call_enter";
    case TraceEvent::kCallExit: return "call_exit";
    case TraceEvent::kAsyncEnqueue: return "async_enqueue";
    case TraceEvent::kPoll: return "poll";
    case TraceEvent::kWorkerCreate: return "worker_create";
    case TraceEvent::kWorkerInit: return "worker_init";
    case TraceEvent::kFrankWorkerRefill: return "frank_worker_refill";
    case TraceEvent::kFrankCdRefill: return "frank_cd_refill";
    case TraceEvent::kBind: return "bind";
    case TraceEvent::kSoftKill: return "soft_kill";
    case TraceEvent::kHardKill: return "hard_kill";
    case TraceEvent::kReclaim: return "reclaim";
    case TraceEvent::kUpcall: return "upcall";
    case TraceEvent::kInterrupt: return "interrupt";
    case TraceEvent::kRemoteCall: return "remote_call";
    case TraceEvent::kGatewayForward: return "gateway_forward";
    case TraceEvent::kXcallPost: return "xcall_post";
    case TraceEvent::kXcallBatch: return "xcall_batch";
    case TraceEvent::kReplPublish: return "repl_publish";
    case TraceEvent::kReplPull: return "repl_pull";
    case TraceEvent::kFaultInject: return "fault_inject";
    case TraceEvent::kDeadlineExceeded: return "deadline_exceeded";
    case TraceEvent::kCallShed: return "call_shed";
    case TraceEvent::kXcallBatchPost: return "xcall_batch_post";
    case TraceEvent::kWaiterPark: return "waiter_park";
    case TraceEvent::kWaiterKick: return "waiter_kick";
    case TraceEvent::kCount: break;
  }
  return "unknown";
}

/// One record: 16 bytes, fixed layout. `ts` is simulated cycles for the
/// sim layer and steady-clock nanoseconds for the host runtime.
struct TraceRecord {
  std::uint64_t ts = 0;
  std::uint32_t arg = 0;
  std::uint16_t slot = 0;
  std::uint16_t event = 0;
};

/// Single-writer bounded ring. Capacity is a compile-time power of two so
/// the index wrap is a mask, not a division.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 4096;
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  void record(std::uint64_t ts, std::uint16_t slot, TraceEvent event,
              std::uint32_t arg) {
    TraceRecord& r = buf_[head_ & (kCapacity - 1)];
    r.ts = ts;
    r.arg = arg;
    r.slot = slot;
    r.event = static_cast<std::uint16_t>(event);
    ++head_;
  }

  /// Total records ever written (>= kCapacity means the ring has wrapped
  /// and the oldest records were overwritten).
  std::uint64_t total_recorded() const { return head_; }

  std::size_t size() const {
    return head_ < kCapacity ? static_cast<std::size_t>(head_) : kCapacity;
  }

  void reset() { head_ = 0; }

  /// Oldest-first copy of the retained records (owner or quiesced only —
  /// the ring is single-writer and unsynchronized by design).
  std::vector<TraceRecord> snapshot() const;

 private:
  std::array<TraceRecord, kCapacity> buf_{};
  std::uint64_t head_ = 0;
};

/// A labelled ring for export ("cpu0", "slot3", ...).
struct NamedRing {
  std::string label;
  const TraceRing* ring = nullptr;
};

/// Export as chrome://tracing / Perfetto JSON ("traceEvents" array of
/// instant events; tid = slot, ts in microseconds assuming `ts_per_us`
/// raw units per microsecond — pass 1000 for nanosecond host timestamps,
/// or the simulated clock rate in MHz for cycle timestamps).
std::string trace_to_chrome_json(const std::vector<NamedRing>& rings,
                                 double ts_per_us = 1000.0);

/// Export as plain JSON records (diff-friendly; raw timestamps).
std::string trace_to_json(const std::vector<NamedRing>& rings);

/// Steady-clock nanoseconds, for host-runtime trace timestamps (the sim
/// layer passes cpu.now() cycles instead).
std::uint64_t host_trace_now();

}  // namespace hppc::obs

// The hook macro. `ring` is evaluated only when tracing is compiled in, so
// the expression may be arbitrarily costly to reach (e.g. a map lookup) —
// with the toggle off nothing is evaluated at all.
#if defined(HPPC_TRACE) && HPPC_TRACE
#define HPPC_TRACE_EVENT(ring, ts, slot, event, arg) \
  (ring).record((ts), static_cast<std::uint16_t>(slot), (event), \
                static_cast<std::uint32_t>(arg))
#else
#define HPPC_TRACE_EVENT(ring, ts, slot, event, arg) ((void)0)
#endif
