// Metrics registry: a non-owning roster of per-slot counter blocks (plus at
// most one shared slow-path block) that can be merged into one snapshot and
// rendered as JSON. The registry never touches a block on a hot path — it
// only reads at snapshot time, which is the whole point of the per-slot
// design: aggregation cost is paid by the observer, not the observed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"

namespace hppc::obs {

class Registry {
 public:
  /// Register a slot block under a display label ("cpu3", "slot0", ...).
  /// The block must outlive the registry; the registry never writes it.
  void add_slot(std::string label, const SlotCounters* block) {
    slots_.emplace_back(std::move(label), block);
  }

  /// At most one shared block (slow-path operations with no owning slot).
  void set_shared(const SharedCounters* shared) { shared_ = shared; }

  std::size_t num_slots() const { return slots_.size(); }
  const std::string& slot_label(std::size_t i) const {
    return slots_[i].first;
  }

  CounterSnapshot slot_snapshot(std::size_t i) const {
    return slots_[i].second->snapshot();
  }

  /// Merge every registered block (RunningStats::merge-style: read each
  /// per-slot block once, fold into the aggregate).
  CounterSnapshot aggregate() const {
    CounterSnapshot total;
    for (const auto& [label, block] : slots_) total.merge(block->snapshot());
    if (shared_ != nullptr) total.merge(shared_->snapshot());
    return total;
  }

  /// JSON: {"slots": {"<label>": {counter: value, ...}, ...},
  ///        "shared": {...}, "total": {...}}.
  /// `skip_zero` drops zero-valued counters for compact diffs; the headline
  /// invariants (locks_taken, shared_lines_touched) are always emitted so a
  /// zero reads as an assertion, not an omission.
  std::string to_json(bool skip_zero = true) const;

 private:
  std::vector<std::pair<std::string, const SlotCounters*>> slots_;
  const SharedCounters* shared_ = nullptr;
};

/// Render one snapshot as a JSON object string (used by Registry and by
/// the bench sink to embed counters into BENCH_*.json).
std::string snapshot_to_json(const CounterSnapshot& snap,
                             bool skip_zero = true);

}  // namespace hppc::obs
