#include "obs/bench_metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/registry.h"

namespace hppc::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  // Integers print without a fraction; everything else gets enough digits
  // to round-trip typical latency/throughput values.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

void BenchReport::meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void BenchReport::meta(const std::string& key, double value) {
  meta_.emplace_back(key, json_number(value));
}

void BenchReport::scalar(const std::string& key, double value) {
  scalars_.emplace_back(key, value);
}

void BenchReport::series(const std::string& key, const Percentiles& p) {
  series_.emplace_back(key, &p);
}

BenchReport::Row& BenchReport::row(const std::string& table) {
  for (auto& [name, rows] : tables_) {
    if (name == table) {
      rows.emplace_back();
      return rows.back();
    }
  }
  tables_.emplace_back(table, std::vector<Row>(1));
  return tables_.back().second.back();
}

void BenchReport::counters(const std::string& label,
                           const CounterSnapshot& snap) {
  counters_.emplace_back(label, snap);
}

std::string BenchReport::to_json() const {
  std::string out = "{\"bench\":\"" + json_escape(name_) +
                    "\",\"schema_version\":1";

  if (!meta_.empty()) {
    out += ",\"meta\":{";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i != 0) out += ',';
      out += '"' + json_escape(meta_[i].first) + "\":" + meta_[i].second;
    }
    out += '}';
  }

  if (!scalars_.empty()) {
    out += ",\"scalars\":{";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      if (i != 0) out += ',';
      out += '"' + json_escape(scalars_[i].first) +
             "\":" + json_number(scalars_[i].second);
    }
    out += '}';
  }

  if (!series_.empty()) {
    out += ",\"series\":{";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      if (i != 0) out += ',';
      const Percentiles& p = *series_[i].second;
      out += '"' + json_escape(series_[i].first) + "\":{";
      out += "\"count\":" + std::to_string(p.count());
      if (p.count() > 0) {
        out += ",\"mean\":" + json_number(p.mean());
        out += ",\"min\":" + json_number(p.min());
        out += ",\"max\":" + json_number(p.max());
        out += ",\"p50\":" + json_number(p.median());
        out += ",\"p95\":" + json_number(p.p95());
        out += ",\"p99\":" + json_number(p.p99());
        out += ",\"p999\":" + json_number(p.p999());
      }
      out += '}';
    }
    out += '}';
  }

  if (!tables_.empty()) {
    out += ",\"tables\":{";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      if (t != 0) out += ',';
      out += '"' + json_escape(tables_[t].first) + "\":[";
      const auto& rows = tables_[t].second;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != 0) out += ',';
        out += '{';
        for (std::size_t c = 0; c < rows[r].cells.size(); ++c) {
          if (c != 0) out += ',';
          out += '"' + json_escape(rows[r].cells[c].first) +
                 "\":" + json_number(rows[r].cells[c].second);
        }
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }

  if (!counters_.empty()) {
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (i != 0) out += ',';
      out += '"' + json_escape(counters_[i].first) +
             "\":" + snapshot_to_json(counters_[i].second);
    }
    out += '}';
  }

  out += '}';
  return out;
}

std::string BenchReport::path() const {
  std::string dir;
  if (const char* env = std::getenv("HPPC_BENCH_DIR")) dir = env;
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + "BENCH_" + name_ + ".json";
}

bool BenchReport::write() const {
  const std::string p = path();
  std::FILE* f = std::fopen(p.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot open %s\n", p.c_str());
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size()
                  && std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::fprintf(stderr, "wrote %s\n", p.c_str());
  return ok;
}

}  // namespace hppc::obs
