// Machine-readable bench output: every bench builds one BenchReport and
// writes it to BENCH_<name>.json next to the human-readable text, so the
// perf trajectory is diffable across PRs (`python3 -m json.tool` clean).
//
// The JSON vocabulary is deliberately small and stable:
//   {"bench": ..., "schema_version": 1,
//    "meta":    {string or number per key},
//    "scalars": {number per key},
//    "series":  {name: {count, mean, min, max, p50, p95, p99, p999}},
//    "tables":  {name: [row objects...]},
//    "counters": {label: {counter: value, ...}}}
// Keys keep insertion order so diffs stay minimal.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/counters.h"

namespace hppc::obs {

/// Escape a string for embedding in JSON (quotes added by the caller).
std::string json_escape(const std::string& s);

/// Format a double the way the report does (shortest round-trippable-ish,
/// no NaN/Inf — those become 0 with a "_nonfinite" marker suffix removed).
std::string json_number(double v);

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- metadata (strings or numbers) --
  void meta(const std::string& key, const std::string& value);
  void meta(const std::string& key, double value);

  // -- single numbers --
  void scalar(const std::string& key, double value);

  // -- distributions: snapshot of a Percentiles recorder --
  void series(const std::string& key, const Percentiles& p);

  // -- tabular data (e.g. one row per CPU count) --
  struct Row {
    std::vector<std::pair<std::string, double>> cells;
    Row& cell(const std::string& key, double v) {
      cells.emplace_back(key, v);
      return *this;
    }
  };
  Row& row(const std::string& table);

  // -- counter snapshots --
  void counters(const std::string& label, const CounterSnapshot& snap);

  std::string to_json() const;

  /// "BENCH_<name>.json" in $HPPC_BENCH_DIR (or the working directory).
  std::string path() const;

  /// Write the JSON; returns false (and prints to stderr) on I/O failure.
  bool write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;  // pre-rendered
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, const Percentiles*>> series_;
  std::vector<std::pair<std::string, std::vector<Row>>> tables_;
  std::vector<std::pair<std::string, CounterSnapshot>> counters_;
};

}  // namespace hppc::obs
