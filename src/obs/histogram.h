// Always-on per-slot latency histograms, built to the same discipline as
// the counters (§2 applied to metrics): every hot-path sample is one
// single-writer store into a fixed-id, cache-line-aligned block owned by
// exactly one slot/CPU. Buckets are log2 (bucket i holds values whose
// bit_width is i, i.e. [2^(i-1), 2^i)), so recording is one std::bit_width
// plus one store — no division, no search, no floating point. Blocks are
// merged only at snapshot time, exactly like CounterSnapshot.
//
// The bucket stores are relaxed atomics with a load+store pair rather than
// a fetch_add: there is still exactly ONE writer per block (the slot's
// current ownership holder), so no RMW is needed, no cache line is
// contended, and x86 codegen is the same plain add — but a concurrent
// observer (Runtime::telemetry scraping a live system) reads each word
// race-free, which keeps the whole telemetry path TSan-clean.
//
// Units are whatever clock the recording layer uses: host_cycles() ticks
// for rt::Runtime, simulated cycles for the sim facility. Snapshots carry
// raw bucket counts; the telemetry layer converts to nanoseconds with its
// calibrated cycles-per-ns when it derives quantiles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/cacheline.h"
#include "obs/counters.h"  // obs_name_eq, for the exhaustiveness check

namespace hppc::obs {

/// Fixed histogram ids — one per instrumented latency/size distribution.
/// Append only, same contract as obs::Counter: ids appear in BENCH JSON
/// and telemetry exports.
enum class Hist : std::uint32_t {
  // -- call round-trip time, per call class --
  kRttSync = 0,   // same-slot synchronous call (rt: host cycles; sim: cycles)
  kRttRemote,     // cross-slot sync call_remote, no deadline
  kRttBatched,    // call_remote_batch, whole-chunk RTT per submitted chunk
  kRttDeadlined,  // deadline-carrying cross-slot call (completed or expired)
  kRttAsync,      // async queueing delay: enqueue -> execution start

  // -- queue dynamics --
  kRingWait,      // ring publish -> completion observed by the caller
  kDrainBatch,    // cells retired per non-empty ring drain batch (a count)
  kWakeup,        // park -> kick wakeup latency of a parked sync waiter
  kServerExec,    // server-side handler execution time (sim file server)
  kRttBulk,       // end-to-end RTT of bulk-class remote calls (any path)

  kCount
};

inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);

constexpr const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kRttSync: return "rtt_sync";
    case Hist::kRttRemote: return "rtt_remote";
    case Hist::kRttBatched: return "rtt_batched";
    case Hist::kRttDeadlined: return "rtt_deadlined";
    case Hist::kRttAsync: return "rtt_async";
    case Hist::kRingWait: return "ring_wait";
    case Hist::kDrainBatch: return "drain_batch";
    case Hist::kWakeup: return "wakeup";
    case Hist::kServerExec: return "server_exec";
    case Hist::kRttBulk: return "rtt_bulk";
    case Hist::kCount: break;
  }
  return "unknown";
}

namespace detail {
template <std::size_t... I>
constexpr bool all_hists_named(std::index_sequence<I...>) {
  return (!obs_name_eq(hist_name(static_cast<Hist>(I)), "unknown") && ...);
}
}  // namespace detail
static_assert(detail::all_hists_named(std::make_index_sequence<kNumHists>{}),
              "every Hist value needs a hist_name() case");

/// Buckets per histogram. Bucket 0 holds the value 0; bucket i (i >= 1)
/// holds [2^(i-1), 2^i). 64-bit values with bit_width > 63 clamp into the
/// last bucket — at cycle granularity that is decades, not data.
inline constexpr std::size_t kHistBuckets = 64;

constexpr std::size_t hist_bucket_of(std::uint64_t v) {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// Lower/upper bound of a bucket's value range (upper is exclusive; the
/// last bucket is open-ended and reports its lower bound doubled).
constexpr std::uint64_t hist_bucket_lo(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
constexpr std::uint64_t hist_bucket_hi(std::size_t b) {
  if (b == 0) return 1;
  if (b >= kHistBuckets - 1) return hist_bucket_lo(b) * 2;
  return std::uint64_t{1} << b;
}

/// Merged, point-in-time view of one or more histogram blocks. Plain value
/// type: snapshots subtract to per-phase deltas, exactly like
/// CounterSnapshot.
struct HistSnapshot {
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumHists> b{};

  std::uint64_t count(Hist h) const {
    std::uint64_t n = 0;
    for (std::uint64_t c : b[static_cast<std::size_t>(h)]) n += c;
    return n;
  }

  void merge(const HistSnapshot& o) {
    for (std::size_t h = 0; h < kNumHists; ++h) {
      for (std::size_t i = 0; i < kHistBuckets; ++i) b[h][i] += o.b[h][i];
    }
  }

  /// Bucket-wise `this - since`, saturating at zero (same rationale as
  /// CounterSnapshot::delta).
  HistSnapshot delta(const HistSnapshot& since) const {
    HistSnapshot d;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      for (std::size_t i = 0; i < kHistBuckets; ++i) {
        d.b[h][i] =
            b[h][i] > since.b[h][i] ? b[h][i] - since.b[h][i] : 0;
      }
    }
    return d;
  }

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// owning bucket. Exact to within the bucket's factor-of-two width —
  /// the usual log-bucket tradeoff. Returns 0 for an empty histogram.
  double quantile(Hist h, double q) const {
    const auto& hb = b[static_cast<std::size_t>(h)];
    std::uint64_t total = 0;
    for (std::uint64_t c : hb) total += c;
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (hb[i] == 0) continue;
      const double next = seen + static_cast<double>(hb[i]);
      if (next >= target) {
        const double frac =
            hb[i] == 0 ? 0.0
                       : (target - seen) / static_cast<double>(hb[i]);
        const double lo = static_cast<double>(hist_bucket_lo(i));
        const double hi = static_cast<double>(hist_bucket_hi(i));
        return lo + frac * (hi - lo);
      }
      seen = next;
    }
    return static_cast<double>(hist_bucket_hi(kHistBuckets - 1));
  }

  /// Approximate mean from bucket midpoints.
  double mean(Hist h) const {
    const auto& hb = b[static_cast<std::size_t>(h)];
    double total = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (hb[i] == 0) continue;
      const double mid = 0.5 * (static_cast<double>(hist_bucket_lo(i)) +
                                static_cast<double>(hist_bucket_hi(i)));
      sum += mid * static_cast<double>(hb[i]);
      total += static_cast<double>(hb[i]);
    }
    return total == 0.0 ? 0.0 : sum / total;
  }

  bool operator==(const HistSnapshot&) const = default;
};

/// The per-slot histogram block. Single writer (the slot's current
/// ownership holder); single-writer relaxed stores, no RMW, no fences.
/// Aligned so adjacent slots' blocks never share a cache line.
struct alignas(kHostCacheLine) SlotHistograms {
  std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHists>
      b{};

  void record(Hist h, std::uint64_t v) {
    std::atomic<std::uint64_t>& c =
        b[static_cast<std::size_t>(h)][hist_bucket_of(v)];
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  std::uint64_t count(Hist h) const {
    std::uint64_t n = 0;
    for (const auto& c : b[static_cast<std::size_t>(h)]) {
      n += c.load(std::memory_order_relaxed);
    }
    return n;
  }

  void reset() {
    for (auto& h : b) {
      for (auto& c : h) c.store(0, std::memory_order_relaxed);
    }
  }

  HistSnapshot snapshot() const {
    HistSnapshot s;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      for (std::size_t i = 0; i < kHistBuckets; ++i) {
        s.b[h][i] = b[h][i].load(std::memory_order_relaxed);
      }
    }
    return s;
  }
};

}  // namespace hppc::obs
