#include "obs/telemetry.h"

#include <cstdio>

namespace hppc::obs {

namespace {

double safe_div(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// Histogram ticks -> nanoseconds (ticks are host cycles or sim cycles;
/// cycles_per_ns <= 0 means "already raw / uncalibrated", export as-is).
double ticks_to_ns(double ticks, double cycles_per_ns) {
  return cycles_per_ns > 0.0 ? ticks / cycles_per_ns : ticks;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

void append_field(std::string& out, const char* key, double v, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  append_double(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v,
                  bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

SlotSeries derive_slot_series(const SlotWindow& w) {
  SlotSeries s;
  s.slot = w.slot;
  s.calls = w.counters.get(Counter::kCallsSync) +
            w.counters.get(Counter::kCallsAsync) +
            w.counters.get(Counter::kCallsRemote);
  s.drained_cells = w.counters.get(Counter::kXcallCellsDrained);
  s.drain_batches = w.counters.get(Counter::kXcallBatches);
  s.drain_rate_per_sec =
      safe_div(static_cast<double>(s.drained_cells), w.window_s);
  s.mean_drain_batch = safe_div(static_cast<double>(s.drained_cells),
                                static_cast<double>(s.drain_batches));
  s.occupancy_ewma = w.occupancy_ewma;
  s.est_queue_delay_ns =
      safe_div(w.occupancy_ewma, s.drain_rate_per_sec) * 1e9;
  s.rtt_remote_p50_ns =
      ticks_to_ns(w.hists.quantile(Hist::kRttRemote, 0.50), w.cycles_per_ns);
  s.rtt_remote_p99_ns =
      ticks_to_ns(w.hists.quantile(Hist::kRttRemote, 0.99), w.cycles_per_ns);
  s.wakeup_p99_ns =
      ticks_to_ns(w.hists.quantile(Hist::kWakeup, 0.99), w.cycles_per_ns);
  s.trace_drops = w.counters.get(Counter::kTraceDrops);
  return s;
}

Telemetry derive_telemetry(const std::vector<SlotWindow>& windows) {
  Telemetry t;
  for (const SlotWindow& w : windows) {
    if (w.window_s > t.window_s) t.window_s = w.window_s;
    SlotSeries s = derive_slot_series(w);
    t.total_drained_cells += s.drained_cells;
    t.total_occupancy_ewma += s.occupancy_ewma;
    t.slots.push_back(s);
    t.shm_segments_mapped += w.counters.get(Counter::kShmSegmentsMapped);
    t.bulk_copy_bytes += w.counters.get(Counter::kBulkCopyBytes);
    t.heartbeats_missed += w.counters.get(Counter::kHeartbeatsMissed);
    t.peer_deaths += w.counters.get(Counter::kPeerDeaths);
  }
  t.total_drain_rate_per_sec =
      safe_div(static_cast<double>(t.total_drained_cells), t.window_s);
  t.est_queue_delay_ns =
      safe_div(t.total_occupancy_ewma, t.total_drain_rate_per_sec) * 1e9;
  t.bulk_copy_mbps =
      safe_div(static_cast<double>(t.bulk_copy_bytes), t.window_s) / 1e6;
  return t;
}

std::string telemetry_to_json(const Telemetry& t) {
  std::string out = "{\"window_s\":";
  append_double(out, t.window_s);
  out += ",\"totals\":{";
  {
    bool first = true;
    append_field(out, "drained_cells", t.total_drained_cells, first);
    append_field(out, "drain_rate_per_sec", t.total_drain_rate_per_sec,
                 first);
    append_field(out, "occupancy_ewma", t.total_occupancy_ewma, first);
    append_field(out, "est_queue_delay_ns", t.est_queue_delay_ns, first);
    append_field(out, "shm_segments_mapped", t.shm_segments_mapped, first);
    append_field(out, "bulk_copy_bytes", t.bulk_copy_bytes, first);
    append_field(out, "bulk_copy_mbps", t.bulk_copy_mbps, first);
    append_field(out, "heartbeats_missed", t.heartbeats_missed, first);
    append_field(out, "peer_deaths", t.peer_deaths, first);
  }
  out += "},\"slots\":[";
  bool first_slot = true;
  for (const SlotSeries& s : t.slots) {
    if (!first_slot) out += ',';
    first_slot = false;
    out += '{';
    bool first = true;
    append_field(out, "slot", static_cast<std::uint64_t>(s.slot), first);
    append_field(out, "calls", s.calls, first);
    append_field(out, "drained_cells", s.drained_cells, first);
    append_field(out, "drain_batches", s.drain_batches, first);
    append_field(out, "drain_rate_per_sec", s.drain_rate_per_sec, first);
    append_field(out, "mean_drain_batch", s.mean_drain_batch, first);
    append_field(out, "occupancy_ewma", s.occupancy_ewma, first);
    append_field(out, "est_queue_delay_ns", s.est_queue_delay_ns, first);
    append_field(out, "rtt_remote_p50_ns", s.rtt_remote_p50_ns, first);
    append_field(out, "rtt_remote_p99_ns", s.rtt_remote_p99_ns, first);
    append_field(out, "wakeup_p99_ns", s.wakeup_p99_ns, first);
    append_field(out, "trace_drops", s.trace_drops, first);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace hppc::obs
