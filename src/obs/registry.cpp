#include "obs/registry.h"

namespace hppc::obs {

namespace {

bool always_emitted(Counter c) {
  return c == Counter::kLocksTaken || c == Counter::kSharedLinesTouched;
}

void append_snapshot(std::string& out, const CounterSnapshot& snap,
                     bool skip_zero) {
  out += '{';
  bool first = true;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    if (skip_zero && snap.v[i] == 0 && !always_emitted(c)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += counter_name(c);
    out += "\":";
    out += std::to_string(snap.v[i]);
  }
  out += '}';
}

}  // namespace

std::string snapshot_to_json(const CounterSnapshot& snap, bool skip_zero) {
  std::string out;
  append_snapshot(out, snap, skip_zero);
  return out;
}

std::string Registry::to_json(bool skip_zero) const {
  std::string out = "{\"slots\":{";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += slots_[i].first;
    out += "\":";
    append_snapshot(out, slots_[i].second->snapshot(), skip_zero);
  }
  out += '}';
  if (shared_ != nullptr) {
    out += ",\"shared\":";
    append_snapshot(out, shared_->snapshot(), skip_zero);
  }
  out += ",\"total\":";
  append_snapshot(out, aggregate(), skip_zero);
  out += '}';
  return out;
}

}  // namespace hppc::obs
