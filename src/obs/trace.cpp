#include "obs/trace.h"

#include <chrono>

#include <cstdio>

namespace hppc::obs {

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = head_ - n;
  for (std::uint64_t i = start; i < head_; ++i) {
    out.push_back(buf_[i & (kCapacity - 1)]);
  }
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string trace_to_chrome_json(const std::vector<NamedRing>& rings,
                                 double ts_per_us) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& nr : rings) {
    if (nr.ring == nullptr) continue;
    for (const TraceRecord& r : nr.ring->snapshot()) {
      if (!first) out += ',';
      first = false;
      const auto ev = static_cast<TraceEvent>(r.event);
      if (ev == TraceEvent::kSpanBegin || ev == TraceEvent::kSpanEnd) {
        // Nestable async events keyed by trace id: Perfetto/chrome stack
        // "b"/"e" pairs with the same (cat, id, name) and draw the whole
        // request as one flow across tids. The begin record's arg is the
        // SpanKind, which names the slice; the matching end record names
        // itself by span id alone (matched by the viewer via id+name is
        // not required for nestable events — only cat+id scope them).
        const bool begin = ev == TraceEvent::kSpanBegin;
        out += "{\"name\":\"";
        out += begin ? span_kind_name(static_cast<SpanKind>(r.arg)) : "span";
        out += "\",\"cat\":\"hppc\",\"ph\":\"";
        out += begin ? 'b' : 'e';
        out += "\",\"id\":\"0x";
        char idbuf[24];
        std::snprintf(idbuf, sizeof idbuf, "%llx",
                      static_cast<unsigned long long>(r.trace_id));
        out += idbuf;
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(r.slot);
        out += ",\"ts\":";
        append_double(out, static_cast<double>(r.ts) / ts_per_us);
        out += ",\"args\":{\"span\":";
        out += std::to_string(r.span);
        out += ",\"parent\":";
        out += std::to_string(r.parent);
        if (!begin) {
          out += ",\"status\":";
          out += std::to_string(r.arg);
        }
        out += ",\"ring\":\"";
        out += nr.label;
        out += "\"}}";
        continue;
      }
      out += "{\"name\":\"";
      out += trace_event_name(ev);
      out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
      out += std::to_string(r.slot);
      out += ",\"ts\":";
      append_double(out, static_cast<double>(r.ts) / ts_per_us);
      out += ",\"args\":{\"arg\":";
      out += std::to_string(r.arg);
      if (r.trace_id != 0) {
        char idbuf[24];
        std::snprintf(idbuf, sizeof idbuf, "\"0x%llx\"",
                      static_cast<unsigned long long>(r.trace_id));
        out += ",\"trace_id\":";
        out += idbuf;
        out += ",\"span\":";
        out += std::to_string(r.span);
      }
      out += ",\"ring\":\"";
      out += nr.label;
      out += "\"}}";
    }
  }
  out += "]}";
  return out;
}

std::string trace_to_json(const std::vector<NamedRing>& rings) {
  std::string out = "{\"rings\":{";
  bool first_ring = true;
  for (const auto& nr : rings) {
    if (nr.ring == nullptr) continue;
    if (!first_ring) out += ',';
    first_ring = false;
    out += '"';
    out += nr.label;
    out += "\":{\"total_recorded\":";
    out += std::to_string(nr.ring->total_recorded());
    out += ",\"records\":[";
    bool first = true;
    for (const TraceRecord& r : nr.ring->snapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ts\":";
      out += std::to_string(r.ts);
      out += ",\"slot\":";
      out += std::to_string(r.slot);
      out += ",\"event\":\"";
      out += trace_event_name(static_cast<TraceEvent>(r.event));
      out += "\",\"arg\":";
      out += std::to_string(r.arg);
      out += ",\"trace_id\":";
      out += std::to_string(r.trace_id);
      out += ",\"span\":";
      out += std::to_string(r.span);
      out += ",\"parent\":";
      out += std::to_string(r.parent);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::uint64_t host_trace_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace hppc::obs
