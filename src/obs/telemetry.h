// Continuous-telemetry derivation: folds per-slot counter and histogram
// deltas into the derived series the future self-tuning controller (and a
// human with `watch`) actually wants — drain rate, ring-occupancy EWMA,
// estimated queueing delay, RTT/wakeup quantiles in nanoseconds.
//
// The derivation functions here are PURE: they take snapshot deltas plus
// observer-sampled occupancy and clock calibration, and never touch a
// Runtime. Runtime::telemetry() owns the stateful part (remembering the
// previous snapshots, sampling ring depth, calibrating cycles-per-ns) and
// feeds windows in; tests feed synthetic windows and check the arithmetic.
//
// Queueing delay is Little's law applied to the xcall ring: with L the
// occupancy EWMA (cells waiting) and lambda the measured drain rate
// (cells/sec, which equals throughput in a stable window), the expected
// wait is W = L / lambda. That is exactly the sensor pair the ROADMAP's
// adaptive drain/backoff items need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"

namespace hppc::obs {

/// Raw inputs for one slot over one observation window. Counter/histogram
/// fields are DELTAS over the window (current minus previous snapshot);
/// occupancy_ewma and cycles_per_ns are observer-side samples.
struct SlotWindow {
  std::uint32_t slot = 0;
  double window_s = 0.0;       // wall-clock seconds the deltas cover
  double cycles_per_ns = 1.0;  // histogram tick -> ns conversion (<=0: raw)
  double occupancy_ewma = 0.0; // EWMA of summed inbound ring depth (cells)
  CounterSnapshot counters;
  HistSnapshot hists;
};

/// Derived per-slot series for one window.
struct SlotSeries {
  std::uint32_t slot = 0;
  std::uint64_t calls = 0;            // sync + async + remote executed here
  std::uint64_t drained_cells = 0;    // ring cells retired by this slot
  std::uint64_t drain_batches = 0;    // non-empty drain sweeps
  double drain_rate_per_sec = 0.0;    // drained_cells / window
  double mean_drain_batch = 0.0;      // drained_cells / drain_batches
  double occupancy_ewma = 0.0;        // pass-through of the sampled EWMA
  double est_queue_delay_ns = 0.0;    // Little: occupancy / drain_rate
  double rtt_remote_p50_ns = 0.0;     // from Hist::kRttRemote
  double rtt_remote_p99_ns = 0.0;
  double wakeup_p99_ns = 0.0;         // from Hist::kWakeup (park -> kick)
  std::uint64_t trace_drops = 0;      // spans dropped under pressure
};

/// One full telemetry snapshot: every slot's series plus fleet totals.
struct Telemetry {
  double window_s = 0.0;
  std::vector<SlotSeries> slots;
  // Fleet aggregates (sums of the per-slot inputs, re-derived rates).
  std::uint64_t total_drained_cells = 0;
  double total_drain_rate_per_sec = 0.0;
  double total_occupancy_ewma = 0.0;
  double est_queue_delay_ns = 0.0;  // Little's law on the fleet totals
  // Cross-process transport totals (summed over the windows; a process
  // embedding an shm::Server or shm::Peer books these into the counter
  // blocks its windows are derived from — see src/shm/).
  std::uint64_t shm_segments_mapped = 0;
  std::uint64_t bulk_copy_bytes = 0;
  double bulk_copy_mbps = 0.0;  // bulk_copy_bytes over the window
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t peer_deaths = 0;
};

/// Derive one slot's series from its window. Pure.
SlotSeries derive_slot_series(const SlotWindow& w);

/// Derive the full snapshot (per-slot series + fleet totals). Pure.
Telemetry derive_telemetry(const std::vector<SlotWindow>& windows);

/// JSON export, one object: {"window_s":..,"totals":{..},"slots":[{..}..]}.
std::string telemetry_to_json(const Telemetry& t);

}  // namespace hppc::obs
