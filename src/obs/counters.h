// Per-slot observability counters, built the same way the facility itself
// is built (§2): every hot-path increment is a single-writer store into a
// fixed-id, cache-line-aligned block owned by exactly one slot (one rt
// thread slot or one simulated kernel::Cpu). Nothing on the fast path is
// an RMW, a lock, or a store to a line another slot writes; the relaxed
// load+store pair compiles to the same add-to-memory a plain store did,
// while letting a live observer read each word race-free. Blocks are
// merged only at snapshot time, the same way RunningStats::merge folds
// per-stream moments.
//
// The two headline counters — kLocksTaken and kSharedLinesTouched — exist
// to turn the paper's central claim ("in the common case the fast path
// accesses no shared data and requires no locks", §1, §2) from a comment
// into a measured invariant: after warmup, a null PPC must leave both at
// exactly zero in its slot's delta.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/cacheline.h"

namespace hppc::obs {

/// Fixed counter ids. Append only — ids are part of the BENCH_*.json and
/// kFrankStats contract across PRs. Keep the hottest ids in the first
/// cache line of the block (8 ids per 64-byte line).
enum class Counter : std::uint32_t {
  // -- call variants (hot: first line) --
  kCallsSync = 0,       // synchronous calls (incl. blocking-capable ones)
  kCallsAsync,          // §4.4 async variant
  kCallsBlocking,       // continuation-style synchronous calls
  kCallsRemote,         // cross-processor variant
  kCallsInterrupt,      // interrupt dispatches
  kCallsUpcall,         // software upcalls
  kNestedCalls,         // server-to-server calls from inside a handler
  kHoldCdHits,          // calls served by a permanently held CD (§2)

  // -- per-slot pool dynamics --
  kWorkerPoolHits,      // worker taken from the slot-local pool
  kWorkersCreated,      // pool grow (Frank redirect / host slow path)
  kWorkersReclaimed,    // pool shrink (trim, kill, exchange)
  kCdRecycles,          // CD taken from the slot-local free list
  kCdsCreated,          // CD pool grow
  kPoolTrims,           // trim_pools sweeps

  // -- slow-path entries (anything that leaves the per-slot fast path) --
  kSlowPathEntries,     // total slow-path diversions
  kFrankWorkerRefills,  // empty worker pool -> Frank
  kFrankCdRefills,      // empty CD pool -> Frank
  kHashedLookups,       // overflow-table lookups (§4.5.5 extension)
  kBinds,               // entry points bound
  kSoftKills,
  kHardKills,

  // -- cross-slot traffic (the host analogue of remote interrupts) --
  kMailboxPosts,        // actions posted to another slot's mailbox
  kMailboxDrains,       // mailbox drain sweeps performed by the owner
  kIpisSent,            // simulated cross-processor interrupts sent
  kGatewayForwards,     // PPC->message gateway forwards (§5)

  // -- the zero-contention invariants --
  kLocksTaken,          // locks/mutexes acquired on behalf of this slot
  kSharedLinesTouched,  // stores/RMWs to cache lines other slots access

  // -- xcall: bounded cross-slot call rings (appended: ids are contract) --
  kXcallPosts,          // cells published into another slot's ring
  kXcallBatches,        // non-empty ring drain batches
  kXcallRingFull,       // posts that found the ring full (overflow path)
  kXcallDirect,         // remote calls direct-executed on an idle slot
  kMailboxAllocs,       // legacy mailbox node allocations (one per post)

  // -- repl: replicated read-mostly objects (appended: ids are contract) --
  kReplReads,           // replica reads (seqlock-validated, lock-free)
  kReplSeqRetries,      // reads that observed a mid-update replica
  kReplInvalidations,   // replica updates propagated by a writer
  kReplFallbackLocked,  // reads that gave up retrying and took the master lock

  // -- robustness: fault injection, deadlines, overload shedding --
  kFaultsInjected,      // failpoints that fired on this slot's paths
  kDeadlineExceeded,    // calls abandoned because their deadline expired
  kCallsShed,           // calls rejected by admission control (watermark)
  kRetries,             // ring-full re-post attempts on the sync xcall path
  kBackoffCycles,       // cpu_relax spins burned in ring-full backoff

  // -- batched submission, ready-mask scheduling, adaptive waiters --
  kXcallBatchPosts,     // vectored ring submissions (one doorbell each)
  kXcallCellsPerBatch,  // cells carried by those submissions (sum)
  kReadyMaskSkips,      // doorbell stores skipped: target bit already set
  kWaiterParks,         // sync waiters that parked on the completion word
  kWaiterKicks,         // completions that woke a parked waiter

  // -- telemetry: drain accounting, trace degradation, snapshot exports --
  kXcallCellsDrained,   // ring cells retired by drains (the drain-rate source)
  kTraceDrops,          // spans dropped instead of blocking the call path
  kTelemetrySnaps,      // Runtime::telemetry() snapshots taken

  // -- frame ABI (Figure 4 register contract) + node-local arena gauges --
  kCallsFrame,          // frame-ABI calls executed (any path: local/direct/ring)
  kArenaBytesReserved,  // gauge: bytes mmap'd into the runtime arena
  kArenaHugepages,      // gauge: explicit hugepages backing arena chunks
  kArenaNodeMismatch,   // gauge: arena pages found resident off their node

  // -- request context: budgets, cancellation, traffic classes --
  kCallsBulk,           // calls admitted carrying TrafficClass::kBulk
  kCallsShedBulk,       // of kCallsShed, how many were bulk-class
  kCallsCancelled,      // calls refused/aborted because their token fired
  kCancelRequests,      // Runtime::cancel() invocations
  kDeadlineInherited,   // calls whose binding budget came from the ambient ctx
  kBulkDrainsDeferred,  // drain passes where bulk waited behind interactive

  // -- shm: cross-process transport, bulk copy engine, peer liveness --
  kShmSegmentsMapped,   // gauge: shm segments/regions this process has mapped
  kBulkCopyBytes,       // bytes moved by the CopyServer between granted regions
  kHeartbeatsMissed,    // reap passes that found a peer's heartbeat stale
  kPeerDeaths,          // peers declared dead and reaped (cells aborted)

  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

constexpr const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kCallsSync: return "calls_sync";
    case Counter::kCallsAsync: return "calls_async";
    case Counter::kCallsBlocking: return "calls_blocking";
    case Counter::kCallsRemote: return "calls_remote";
    case Counter::kCallsInterrupt: return "calls_interrupt";
    case Counter::kCallsUpcall: return "calls_upcall";
    case Counter::kNestedCalls: return "nested_calls";
    case Counter::kHoldCdHits: return "hold_cd_hits";
    case Counter::kWorkerPoolHits: return "worker_pool_hits";
    case Counter::kWorkersCreated: return "workers_created";
    case Counter::kWorkersReclaimed: return "workers_reclaimed";
    case Counter::kCdRecycles: return "cd_recycles";
    case Counter::kCdsCreated: return "cds_created";
    case Counter::kPoolTrims: return "pool_trims";
    case Counter::kSlowPathEntries: return "slow_path_entries";
    case Counter::kFrankWorkerRefills: return "frank_worker_refills";
    case Counter::kFrankCdRefills: return "frank_cd_refills";
    case Counter::kHashedLookups: return "hashed_lookups";
    case Counter::kBinds: return "binds";
    case Counter::kSoftKills: return "soft_kills";
    case Counter::kHardKills: return "hard_kills";
    case Counter::kMailboxPosts: return "mailbox_posts";
    case Counter::kMailboxDrains: return "mailbox_drains";
    case Counter::kIpisSent: return "ipis_sent";
    case Counter::kGatewayForwards: return "gateway_forwards";
    case Counter::kLocksTaken: return "locks_taken";
    case Counter::kSharedLinesTouched: return "shared_lines_touched";
    case Counter::kXcallPosts: return "xcall_posts";
    case Counter::kXcallBatches: return "xcall_batches";
    case Counter::kXcallRingFull: return "xcall_ring_full";
    case Counter::kXcallDirect: return "xcall_direct";
    case Counter::kMailboxAllocs: return "mailbox_allocs";
    case Counter::kReplReads: return "repl_reads";
    case Counter::kReplSeqRetries: return "repl_seq_retries";
    case Counter::kReplInvalidations: return "repl_invalidations";
    case Counter::kReplFallbackLocked: return "repl_fallback_locked";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kDeadlineExceeded: return "deadline_exceeded";
    case Counter::kCallsShed: return "calls_shed";
    case Counter::kRetries: return "retries";
    case Counter::kBackoffCycles: return "backoff_cycles";
    case Counter::kXcallBatchPosts: return "xcall_batch_posts";
    case Counter::kXcallCellsPerBatch: return "xcall_cells_per_batch";
    case Counter::kReadyMaskSkips: return "ready_mask_skips";
    case Counter::kWaiterParks: return "waiter_parks";
    case Counter::kWaiterKicks: return "waiter_kicks";
    case Counter::kXcallCellsDrained: return "xcall_cells_drained";
    case Counter::kTraceDrops: return "trace_drops";
    case Counter::kTelemetrySnaps: return "telemetry_snaps";
    case Counter::kCallsFrame: return "calls_frame";
    case Counter::kArenaBytesReserved: return "arena_bytes_reserved";
    case Counter::kArenaHugepages: return "arena_hugepages";
    case Counter::kArenaNodeMismatch: return "arena_node_mismatch";
    case Counter::kCallsBulk: return "calls_bulk";
    case Counter::kCallsShedBulk: return "calls_shed_bulk";
    case Counter::kCallsCancelled: return "calls_cancelled";
    case Counter::kCancelRequests: return "cancel_requests";
    case Counter::kDeadlineInherited: return "deadline_inherited";
    case Counter::kBulkDrainsDeferred: return "bulk_drains_deferred";
    case Counter::kShmSegmentsMapped: return "shm_segments_mapped";
    case Counter::kBulkCopyBytes: return "bulk_copy_bytes";
    case Counter::kHeartbeatsMissed: return "heartbeats_missed";
    case Counter::kPeerDeaths: return "peer_deaths";
    case Counter::kCount: break;
  }
  return "unknown";
}

/// Constexpr string equality for the compile-time name-exhaustiveness
/// checks here and in trace.h/histogram.h: a counter (or event, or
/// histogram) added without a name must break the build, not emit blank
/// keys into BENCH JSON.
constexpr bool obs_name_eq(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (*a != *b) return false;
  }
  return *a == *b;
}

namespace detail {
template <std::size_t... I>
constexpr bool all_counters_named(std::index_sequence<I...>) {
  return (!obs_name_eq(counter_name(static_cast<Counter>(I)), "unknown") &&
          ...);
}
}  // namespace detail
static_assert(
    detail::all_counters_named(std::make_index_sequence<kNumCounters>{}),
    "every Counter value needs a counter_name() case");

/// A merged, point-in-time view of one or more counter blocks. Plain value
/// type: snapshots can be subtracted to get per-phase deltas.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> v{};

  std::uint64_t get(Counter c) const {
    return v[static_cast<std::size_t>(c)];
  }

  void merge(const CounterSnapshot& o) {
    for (std::size_t i = 0; i < kNumCounters; ++i) v[i] += o.v[i];
  }

  /// Counter-wise `this - since` (for warmup-relative deltas), saturating
  /// at zero. Raw counters are monotonic so the subtraction cannot
  /// underflow on a well-ordered pair, but snapshot-derived values (see
  /// rt's derive_pool_counters) may undershoot by a bounded amount; a
  /// clamped zero reads far better in a report than 2^64 - k.
  CounterSnapshot delta(const CounterSnapshot& since) const {
    CounterSnapshot d;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      d.v[i] = v[i] > since.v[i] ? v[i] - since.v[i] : 0;
    }
    return d;
  }

  bool operator==(const CounterSnapshot&) const = default;
};

/// The per-slot block. Single writer (the owning slot/CPU). Increments are
/// single-writer relaxed stores — a load+store pair, NOT a fetch_add: with
/// one writer per block no RMW is needed and no line is contended (x86
/// codegen is the same plain add the block always used), but a concurrent
/// observer (Runtime::telemetry scraping a live system, the TSan merge
/// tests) reads each word race-free. Aligned so adjacent slots' blocks
/// never share a cache line.
struct alignas(kHostCacheLine) SlotCounters {
  std::array<std::atomic<std::uint64_t>, kNumCounters> v{};

  void inc(Counter c, std::uint64_t n = 1) {
    std::atomic<std::uint64_t>& a = v[static_cast<std::size_t>(c)];
    a.store(a.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  std::uint64_t get(Counter c) const {
    return v[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& a : v) a.store(0, std::memory_order_relaxed);
  }

  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.v[i] = v[i].load(std::memory_order_relaxed);
    }
    return s;
  }
};

/// Counters for operations that do not run on behalf of a single slot
/// (binding, kills, cross-slot posts from unregistered threads). These sit
/// on slow paths by definition, so relaxed atomics are fine here — the
/// fast path never touches this block.
class SharedCounters {
 public:
  void inc(Counter c, std::uint64_t n = 1) {
    v_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t get(Counter c) const {
    return v_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& a : v_) a.store(0, std::memory_order_relaxed);
  }

  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.v[i] = v_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> v_{};
};

}  // namespace hppc::obs
