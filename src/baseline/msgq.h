// Message-queue IPC baseline: the traditional client/server alternative.
//
// A request is placed on the server's (locked) message queue; one of the
// server's dedicated processes — pinned to fixed processors — dequeues,
// services, and posts the reply, waking the client with a cross-processor
// interrupt. Compared with PPC this loses both properties the paper is
// after: requests are NOT serviced on the caller's processor (so the
// server's state is remote and the reply needs an IPI), and the queue is
// shared data behind a lock.
//
// The server side is modelled as per-server-process timelines rather than
// fully executed processes: each server process has a `free_at` horizon and
// charges its work to its own processor's ledger. This keeps the baseline
// drivable from the same in-time-order harness as everything else while
// preserving exactly the effects being compared: queue-lock serialization,
// remote data, handoff latency, and limited server parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/machine.h"
#include "ppc/regs.h"
#include "sim/spinlock.h"

namespace hppc::baseline {

class MsgQueueIpc {
 public:
  struct Config {
    NodeId home = 0;                  // queue + server state home
    std::vector<CpuId> server_cpus;   // where server processes run
    Cycles handler_cycles = 120;      // per-request service work
    Cycles dispatch_cycles = 90;      // dequeue + dispatch overhead
  };

  MsgQueueIpc(kernel::Machine& machine, Config cfg);

  /// Synchronous request/response round trip, driven in global-time order.
  /// The caller's clock advances across enqueue, waiting (idle), and reply
  /// delivery; the servicing server processor's ledger gets the work.
  Status call(kernel::Cpu& cpu, ppc::RegSet& regs,
              const std::function<void(ppc::RegSet&)>& handler);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t queue_lock_migrations() const { return qlock_.migrations(); }

 private:
  struct ServerSlot {
    CpuId cpu;
    Cycles free_at = 0;
  };

  kernel::Machine& machine_;
  Config cfg_;
  sim::SimSpinLock qlock_;
  SimAddr queue_saddr_;
  std::vector<ServerSlot> slots_;
  std::uint64_t requests_ = 0;
};

}  // namespace hppc::baseline
