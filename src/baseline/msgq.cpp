#include "baseline/msgq.h"

#include <algorithm>

namespace hppc::baseline {

using kernel::Cpu;
using ppc::RegSet;
using sim::CostCategory;
using sim::TlbContext;

MsgQueueIpc::MsgQueueIpc(kernel::Machine& machine, Config cfg)
    : machine_(machine),
      cfg_(cfg),
      qlock_(machine.allocator().alloc(cfg.home, 64, 64)),
      queue_saddr_(machine.allocator().alloc(cfg.home, 512, 64)) {
  HPPC_ASSERT_MSG(!cfg_.server_cpus.empty(), "need at least one server CPU");
  for (CpuId c : cfg_.server_cpus) {
    HPPC_ASSERT(c < machine.num_cpus());
    slots_.push_back(ServerSlot{c, 0});
  }
}

Status MsgQueueIpc::call(Cpu& cpu, RegSet& regs,
                         const std::function<void(RegSet&)>& handler) {
  auto& mem = cpu.mem();
  const auto& mc = machine_.config();

  // Client: trap, marshal the request into the (shared, remote) queue.
  mem.trap_roundtrip();
  mem.charge(CostCategory::kUserSaveRestore, 30);  // marshal into a message
  qlock_.acquire(mem, CostCategory::kPpcKernel);
  mem.access_uncached(queue_saddr_, CostCategory::kPpcKernel);
  mem.store(queue_saddr_ + (requests_ % 8) * 64, 48, TlbContext::kSupervisor,
            CostCategory::kPpcKernel);
  qlock_.release(mem, CostCategory::kPpcKernel);
  const Cycles enqueued_at = mem.now();

  // Pick the server process that frees up first.
  ServerSlot* slot = &slots_[0];
  for (auto& s : slots_) {
    if (s.free_at < slot->free_at) slot = &s;
  }
  const Cycles start = std::max(enqueued_at + mc.ipi_latency_cycles,
                                slot->free_at);

  // The server processor does the dequeue + work; charge its ledger so
  // system-wide accounting stays honest.
  auto& server_mem = machine_.cpu(slot->cpu).mem();
  sim::MemContext* smem = &server_mem;
  if (slot->cpu == cpu.id()) smem = &mem;  // degenerate colocated case
  smem->charge(CostCategory::kPpcKernel, cfg_.dispatch_cycles);
  smem->charge(CostCategory::kServerTime, cfg_.handler_cycles);
  handler(regs);

  const Cycles done = start + cfg_.dispatch_cycles + cfg_.handler_cycles;
  slot->free_at = done;
  ++requests_;

  // Reply: IPI back to the client, which has been blocked the whole time.
  mem.idle_until(done + mc.ipi_latency_cycles);
  mem.trap_roundtrip();
  mem.charge(CostCategory::kUserSaveRestore, 24);  // unmarshal the reply
  return ppc::rc_of(regs);
}

}  // namespace hppc::baseline
