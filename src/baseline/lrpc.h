// LRPC-style baseline: the design the paper contrasts itself with (§2).
//
// "The key difference is that not all resources required by an LRPC
//  operation are exclusively accessed by a single processor. This has
//  implications for the IPC facility itself as well as the servers. The IPC
//  facility accesses shared data which must be locked and may cause
//  additional bus traffic. From a server perspective, the stacks used to
//  handle the calls are not reserved on a per-processor basis, and hence
//  the server may implicitly access remote data."
//
// This facility has the same call semantics as the PPC fast path but draws
// its call descriptors (A-stacks, in LRPC terms) and worker bindings from
// *global* pools protected by spinlocks, homed on one node. Under
// concurrency the locks serialize and every descriptor/stack acquisition is
// remote for most processors — exactly the costs the PPC design eliminates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/free_stack.h"
#include "kernel/machine.h"
#include "ppc/regs.h"
#include "sim/spinlock.h"

namespace hppc::baseline {

class LrpcFacility;

/// Minimal server-side context for baseline handlers.
class LrpcCtx {
 public:
  LrpcCtx(kernel::Cpu& cpu, ProgramId caller) : cpu_(cpu), caller_(caller) {}
  kernel::Cpu& cpu() { return cpu_; }
  ProgramId caller_program() const { return caller_; }

  void work(Cycles cycles) {
    cpu_.mem().charge(sim::CostCategory::kServerTime, cycles);
  }
  void touch(SimAddr addr, std::size_t bytes, bool is_store) {
    cpu_.mem().access(addr, bytes, is_store, sim::TlbContext::kUser,
                      sim::CostCategory::kServerTime);
  }

 private:
  kernel::Cpu& cpu_;
  ProgramId caller_;
};

struct LrpcConfig {
  NodeId pool_home = 0;  // where the shared pools live
  std::uint32_t initial_cds = 4;
  std::uint32_t handler_instructions = 20;
};

class LrpcFacility {
 public:
  using Handler = std::function<void(LrpcCtx&, ppc::RegSet&)>;
  using Config = LrpcConfig;

  explicit LrpcFacility(kernel::Machine& machine, LrpcConfig cfg = {});

  /// Bind a service; returns its id.
  std::uint32_t bind(Handler handler, bool kernel_space = false);

  /// Synchronous round-trip call. Safe to drive from the multi-CPU engine
  /// in global-time order (the pool locks are timeline locks).
  Status call(kernel::Cpu& cpu, kernel::Process& caller, std::uint32_t id,
              ppc::RegSet& regs);

  std::uint64_t lock_acquisitions() const;
  std::uint64_t lock_migrations() const;

 private:
  struct Descriptor {
    SimAddr saddr;
    SimAddr stack_page;
    CpuId last_cpu = kInvalidCpu;
    StackLink link;
  };

  struct Service {
    Handler handler;
    bool kernel_space;
    sim::CodeRegion code;
  };

  kernel::Machine& machine_;
  LrpcConfig cfg_;
  sim::SimSpinLock pool_lock_;  // guards the global descriptor pool
  SimAddr pool_head_saddr_;
  FreeStack<Descriptor, &Descriptor::link> cd_pool_;
  std::vector<std::unique_ptr<Descriptor>> cds_;
  std::vector<Service> services_;
  sim::CodeRegion path_code_;  // the (shared, node-0) IPC path text
};

}  // namespace hppc::baseline
