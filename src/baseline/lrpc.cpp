#include "baseline/lrpc.h"

namespace hppc::baseline {

using kernel::Cpu;
using ppc::RegSet;
using sim::CostCategory;
using sim::TlbContext;

namespace {
constexpr std::uint32_t kPathInstructions = 180;  // comparable fast path
constexpr std::uint32_t kUserRegBytes = 56;
constexpr std::uint32_t kKernelCtxBytes = 32;
constexpr std::uint32_t kCdBytes = 16;
}  // namespace

LrpcFacility::LrpcFacility(kernel::Machine& machine, LrpcConfig cfg)
    : machine_(machine),
      cfg_(cfg),
      pool_lock_(machine.allocator().alloc(cfg.pool_home, 64, 64)),
      pool_head_saddr_(machine.allocator().alloc(cfg.pool_home, 32, 32)) {
  auto& alloc = machine_.allocator();
  for (std::uint32_t i = 0; i < cfg_.initial_cds; ++i) {
    auto d = std::make_unique<Descriptor>();
    d->saddr = alloc.alloc(cfg_.pool_home, 32, 32);
    d->stack_page = alloc.alloc_page(cfg_.pool_home);
    cd_pool_.push(d.get());
    cds_.push_back(std::move(d));
  }
  path_code_ = {alloc.alloc(cfg_.pool_home, kPathInstructions * 4, 16),
                kPathInstructions, TlbContext::kSupervisor};
}

std::uint32_t LrpcFacility::bind(Handler handler, bool kernel_space) {
  Service s;
  s.handler = std::move(handler);
  s.kernel_space = kernel_space;
  s.code = {machine_.allocator().alloc(cfg_.pool_home,
                                       cfg_.handler_instructions * 4, 16),
            cfg_.handler_instructions,
            kernel_space ? TlbContext::kSupervisor : TlbContext::kUser};
  services_.push_back(std::move(s));
  return static_cast<std::uint32_t>(services_.size() - 1);
}

Status LrpcFacility::call(Cpu& cpu, kernel::Process& caller,
                          std::uint32_t id, RegSet& regs) {
  if (id >= services_.size()) return Status::kNoSuchEntryPoint;
  Service& svc = services_[id];
  auto& mem = cpu.mem();

  // User-side save + trap, as in any synchronous IPC.
  const bool user_caller = !caller.address_space()->supervisor();
  if (user_caller) {
    mem.store(caller.user_stack(), kUserRegBytes, TlbContext::kUser,
              CostCategory::kUserSaveRestore);
    mem.charge(CostCategory::kUserSaveRestore, 20);
  }
  mem.trap_roundtrip();
  mem.exec(path_code_, CostCategory::kPpcKernel);

  // The difference: a *global* descriptor pool behind a lock. Every
  // acquisition serializes against all processors, and the pool header and
  // descriptors are remote for everyone off the pool's home station.
  pool_lock_.acquire(mem, CostCategory::kPpcKernel);
  mem.access_uncached(pool_head_saddr_, CostCategory::kCdManipulation);
  Descriptor* cd = cd_pool_.pop();
  if (cd == nullptr) {
    // Grow the pool (still under the lock).
    auto d = std::make_unique<Descriptor>();
    d->saddr = machine_.allocator().alloc(cfg_.pool_home, 32, 32);
    d->stack_page = machine_.allocator().alloc_page(cfg_.pool_home);
    mem.charge(CostCategory::kCdManipulation, 350);
    cd = d.get();
    cds_.push_back(std::move(d));
  }
  pool_lock_.release(mem, CostCategory::kPpcKernel);

  // Fill return info in the (remote) descriptor.
  mem.store(cd->saddr, kCdBytes, TlbContext::kSupervisor,
            CostCategory::kCdManipulation);
  // Stacks are not per-processor: a descriptor last used elsewhere brings a
  // cold (and, without hardware coherence, explicitly invalidated) stack.
  if (cd->last_cpu != cpu.id() && cd->last_cpu != kInvalidCpu) {
    for (int line = 0; line < 4; ++line) {
      mem.dcache().invalidate(cd->stack_page + kPageSize - 64 +
                              line * mem.config().dcache.line_bytes);
    }
    mem.charge(CostCategory::kCdManipulation,
               2 * mem.config().dcache.costs.fill_cycles);
  }
  cd->last_cpu = cpu.id();

  // Context switch into the server, as in the PPC path.
  mem.exec(path_code_, CostCategory::kKernelSaveRestore);
  mem.store(caller.context_save_area(), kKernelCtxBytes,
            TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  if (!svc.kernel_space) mem.tlb_flush_user();

  // Server executes on the borrowed stack.
  mem.exec(svc.code, CostCategory::kServerTime);
  mem.access_mapped(cd->stack_page + kPageSize - 64,
                    (SimAddr{0xEE} << 40) + kPageSize - 64, 32,
                    /*is_store=*/true,
                    svc.kernel_space ? TlbContext::kSupervisor
                                     : TlbContext::kUser,
                    CostCategory::kServerTime);
  LrpcCtx ctx(cpu, caller.program());
  svc.handler(ctx, regs);

  // Return path: free the descriptor back to the global pool.
  mem.trap_roundtrip();
  if (!svc.kernel_space) mem.tlb_flush_user();
  pool_lock_.acquire(mem, CostCategory::kPpcKernel);
  mem.access_uncached(pool_head_saddr_, CostCategory::kCdManipulation);
  cd_pool_.push(cd);
  pool_lock_.release(mem, CostCategory::kPpcKernel);

  mem.load(caller.context_save_area(), kKernelCtxBytes,
           TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  if (user_caller) {
    mem.load(caller.user_stack(), kUserRegBytes, TlbContext::kUser,
             CostCategory::kUserSaveRestore);
    mem.charge(CostCategory::kUserSaveRestore, 18);
  }
  mem.charge(CostCategory::kUnaccounted,
             mem.config().unaccounted_stall_cycles_per_call);
  return ppc::rc_of(regs);
}

std::uint64_t LrpcFacility::lock_acquisitions() const {
  return pool_lock_.acquisitions();
}

std::uint64_t LrpcFacility::lock_migrations() const {
  return pool_lock_.migrations();
}

}  // namespace hppc::baseline
