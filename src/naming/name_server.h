// The Name Server (§4.5.5).
//
// "In order for a program to become a PPC server, it must first obtain an
//  unused entry point ID and call a special server [Frank] to bind this ID
//  to its call handling routine. The ID can then be registered with the
//  Name Server (which has a well-known entry point ID). A client that
//  wants to call the server obtains the server's entry point ID from the
//  Name Server, and uses the ID as an argument on subsequent PPC
//  operations."
//
// Naming is deliberately separated from authentication (§4.1): the name
// server maps strings to small-integer entry-point ids and nothing more;
// each server checks its callers' program ids itself.
//
// Names travel *in the registers*: up to 24 bytes packed into words 0..5 of
// the register set, the same way every PPC argument travels (§4.5.1) — no
// shared buffers, no marshalling.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ppc/facility.h"
#include "ppc/stub.h"

namespace hppc::naming {

/// Opcodes of the name service.
enum NameOp : Word {
  kNameRegister = 1,    // w[0..5]=name, w[6]=entry point id
  kNameLookup = 2,      // w[0..5]=name              -> w[6]=entry point id
  kNameUnregister = 3,  // w[0..5]=name (owner only)
};

inline constexpr std::size_t kMaxNameBytes = 24;  // 6 words

/// Resolve-and-bind in one step: look `name` up and return a stub bound to
/// the resolved entry point. Returns std::nullopt when the name is unknown.
std::optional<ppc::ClientStub> resolve(ppc::PpcFacility& ppc,
                                       kernel::Cpu& cpu,
                                       kernel::Process& caller,
                                       std::string_view name);

/// Pack a name into words 0..5 (zero padded). Longer names are rejected by
/// the helpers below before any call is made.
void pack_name(std::string_view name, ppc::RegSet& regs);
std::string unpack_name(const ppc::RegSet& regs);

/// The server itself. Constructing it binds entry point kNameServerEp as a
/// kernel-space service.
class NameServer {
 public:
  explicit NameServer(ppc::PpcFacility& ppc, NodeId home_node = 0);

  NameServer(const NameServer&) = delete;
  NameServer& operator=(const NameServer&) = delete;

  std::size_t size() const { return table_.size(); }

  // ----- client-side stubs (each is one full PPC call) -----

  static Status register_name(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                              kernel::Process& caller, std::string_view name,
                              EntryPointId ep);

  static Status lookup(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                       kernel::Process& caller, std::string_view name,
                       EntryPointId* out_ep);

  static Status unregister_name(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                                kernel::Process& caller,
                                std::string_view name);

 private:
  struct Entry {
    EntryPointId ep;
    ProgramId owner;  // only the registering program may unregister (§4.1)
  };

  void handler(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  void touch_bucket(ppc::ServerCtx& ctx, const std::string& name,
                    bool is_store);

  std::unordered_map<std::string, Entry> table_;
  SimAddr table_saddr_ = kInvalidAddr;
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kBucketBytes = 32;
};

}  // namespace hppc::naming
