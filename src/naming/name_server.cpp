#include "naming/name_server.h"

#include <cstring>

#include "fault/failpoints.h"

namespace hppc::naming {

using ppc::RegSet;
using ppc::ServerCtx;

void pack_name(std::string_view name, ppc::RegSet& regs) {
  HPPC_ASSERT(name.size() <= kMaxNameBytes);
  std::array<char, kMaxNameBytes> buf{};
  std::memcpy(buf.data(), name.data(), name.size());
  for (std::size_t i = 0; i < 6; ++i) {
    Word w;
    std::memcpy(&w, buf.data() + i * 4, 4);
    regs[i] = w;
  }
}

std::string unpack_name(const ppc::RegSet& regs) {
  std::array<char, kMaxNameBytes + 1> buf{};
  for (std::size_t i = 0; i < 6; ++i) {
    std::memcpy(buf.data() + i * 4, &regs[i], 4);
  }
  return std::string(buf.data());  // up to the first NUL
}

NameServer::NameServer(ppc::PpcFacility& ppc, NodeId home_node) {
  table_saddr_ =
      ppc.machine().allocator().alloc(home_node, kBuckets * kBucketBytes, 64);

  ppc::EntryPointConfig cfg;
  cfg.name = "name-server";
  cfg.kernel_space = true;
  ppc::ServiceCode code;
  code.handler_instructions = 40;
  code.home_node = home_node;
  ppc.bind_well_known(
      ppc::kNameServerEp, cfg, /*as=*/nullptr, /*program=*/0,
      [this](ServerCtx& ctx, RegSet& regs) { handler(ctx, regs); }, code);
}

void NameServer::touch_bucket(ServerCtx& ctx, const std::string& name,
                              bool is_store) {
  const std::size_t bucket = std::hash<std::string>{}(name) % kBuckets;
  ctx.touch(table_saddr_ + bucket * kBucketBytes, kBucketBytes, is_store);
}

void NameServer::handler(ServerCtx& ctx, RegSet& regs) {
  const std::string name = unpack_name(regs);
  if (name.empty()) {
    set_rc(regs, Status::kInvalidArgument);
    return;
  }
  switch (opcode_of(regs)) {
    case kNameRegister: {
      // Fault seam: the binding table is "full" — models slot exhaustion
      // so clients exercise their register-failure path.
      if (HPPC_FAULT_POINT("naming.register.exhausted")) {
        ctx.cpu().counters().inc(obs::Counter::kFaultsInjected);
        set_rc(regs, Status::kOutOfResources);
        return;
      }
      const EntryPointId ep = regs[6];
      touch_bucket(ctx, name, /*is_store=*/true);
      ctx.work(30);
      auto [it, inserted] =
          table_.emplace(name, Entry{ep, ctx.caller_program()});
      (void)it;
      set_rc(regs, inserted ? Status::kOk : Status::kInvalidArgument);
      return;
    }
    case kNameLookup: {
      // Fault seam: a forced miss — models a stale client racing an
      // unregister, independent of actual table contents.
      if (HPPC_FAULT_POINT("naming.lookup.miss")) {
        ctx.cpu().counters().inc(obs::Counter::kFaultsInjected);
        set_rc(regs, Status::kNoSuchEntryPoint);
        return;
      }
      touch_bucket(ctx, name, /*is_store=*/false);
      ctx.work(24);
      auto it = table_.find(name);
      if (it == table_.end()) {
        set_rc(regs, Status::kNoSuchEntryPoint);
        return;
      }
      regs[6] = it->second.ep;
      set_rc(regs, Status::kOk);
      return;
    }
    case kNameUnregister: {
      touch_bucket(ctx, name, /*is_store=*/true);
      ctx.work(26);
      auto it = table_.find(name);
      if (it == table_.end()) {
        set_rc(regs, Status::kNoSuchEntryPoint);
        return;
      }
      // Owner check: naming is not authentication, but the binding itself
      // belongs to whoever created it (§4.1).
      if (it->second.owner != ctx.caller_program() &&
          ctx.caller_program() != 0) {
        set_rc(regs, Status::kPermissionDenied);
        return;
      }
      table_.erase(it);
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

std::optional<ppc::ClientStub> resolve(ppc::PpcFacility& ppc,
                                       kernel::Cpu& cpu,
                                       kernel::Process& caller,
                                       std::string_view name) {
  EntryPointId ep = 0;
  if (NameServer::lookup(ppc, cpu, caller, name, &ep) != Status::kOk) {
    return std::nullopt;
  }
  return ppc::ClientStub(ppc, cpu, caller, ep);
}

Status NameServer::register_name(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                                 kernel::Process& caller,
                                 std::string_view name, EntryPointId ep) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::kInvalidArgument;
  }
  RegSet regs;
  pack_name(name, regs);
  regs[6] = ep;
  set_op(regs, kNameRegister);
  return ppc.call(cpu, caller, ppc::kNameServerEp, regs);
}

Status NameServer::lookup(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                          kernel::Process& caller, std::string_view name,
                          EntryPointId* out_ep) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::kInvalidArgument;
  }
  RegSet regs;
  pack_name(name, regs);
  set_op(regs, kNameLookup);
  const Status s = ppc.call(cpu, caller, ppc::kNameServerEp, regs);
  if (ok(s)) *out_ep = regs[6];
  return s;
}

Status NameServer::unregister_name(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                                   kernel::Process& caller,
                                   std::string_view name) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::kInvalidArgument;
  }
  RegSet regs;
  pack_name(name, regs);
  set_op(regs, kNameUnregister);
  return ppc.call(cpu, caller, ppc::kNameServerEp, regs);
}

}  // namespace hppc::naming
