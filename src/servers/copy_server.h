// The CopyServer (§4.2): bulk data transfer for PPC.
//
// "Our PPC model provides explicit transfer of 8 words in both directions,
//  but does not directly address how to transfer larger amounts of data. We
//  provide a mechanism borrowed from the V system where a caller may give
//  permission to the server to read and write selected portions of its
//  address space. The actual transfer of data is done by a separate CopyTo
//  or CopyFrom request. (CopyTo and CopyFrom are normal PPC requests made
//  to the CopyServer.)"
//
// Flow: a client grants a server program read and/or write rights over a
// region of its memory; the server, while handling the client's request,
// PPC-calls the CopyServer to move bytes between that region and its own
// memory. The CopyServer validates the grant (by program id, §4.1), moves
// the bytes through the machine's functional data memory, and charges the
// streaming cache traffic on both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "ppc/facility.h"

namespace hppc::servers {

enum CopyOp : Word {
  /// Caller grants `grantee` rights over [base, base+len) of its memory.
  /// w[0]=grantee program, w[1]=base lo, w[2]=base hi, w[3]=len,
  /// w[4]=rights (bit0 read, bit1 write).
  kCopyGrant = 1,
  /// Caller revokes all grants it made to w[0]=grantee program.
  kCopyRevoke = 2,
  /// Caller (the grantee) copies from the granter's region into its own
  /// memory. w[0]=granter program, w[1]=src lo, w[2]=src hi, w[3]=dst lo,
  /// w[4]=dst hi, w[5]=len. Requires a read grant covering the source.
  kCopyFrom = 3,
  /// Caller (the grantee) copies into the granter's region. Same register
  /// layout with src/dst meanings swapped. Requires a write grant.
  kCopyTo = 4,
};

inline constexpr Word kCopyRightRead = 1;
inline constexpr Word kCopyRightWrite = 2;

class CopyServer {
 public:
  explicit CopyServer(ppc::PpcFacility& ppc, NodeId home_node = 0);

  CopyServer(const CopyServer&) = delete;
  CopyServer& operator=(const CopyServer&) = delete;

  std::size_t grant_count() const { return grants_.size(); }

  // ----- client-side stubs -----

  static Status grant(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                      kernel::Process& caller, ProgramId grantee,
                      SimAddr base, std::uint32_t len, Word rights);

  static Status revoke(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                       kernel::Process& caller, ProgramId grantee);

  static Status copy_from(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                          kernel::Process& caller, ProgramId granter,
                          SimAddr src, SimAddr dst, std::uint32_t len);

  static Status copy_to(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                        kernel::Process& caller, ProgramId granter,
                        SimAddr src, SimAddr dst, std::uint32_t len);

 private:
  struct Grant {
    ProgramId granter;
    ProgramId grantee;
    SimAddr base;
    std::uint32_t len;
    Word rights;
  };

  void handler(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  const Grant* find_grant(ProgramId granter, ProgramId grantee, SimAddr addr,
                          std::uint32_t len, Word need) const;
  void do_copy(ppc::ServerCtx& ctx, SimAddr src, SimAddr dst,
               std::uint32_t len);

  ppc::PpcFacility& ppc_;
  std::vector<Grant> grants_;
  SimAddr table_saddr_ = kInvalidAddr;
};

}  // namespace hppc::servers
