#include "servers/exception_server.h"

namespace hppc::servers {

using ppc::RegSet;
using ppc::ServerCtx;

ExceptionServer::ExceptionServer(ppc::PpcFacility& ppc, NodeId home_node)
    : ppc_(ppc), home_node_(home_node) {
  registry_saddr_ = ppc.machine().allocator().alloc(home_node, 512, 64);

  ppc::EntryPointConfig cfg;
  cfg.name = "exceptions";
  cfg.kernel_space = true;
  ppc::ServiceCode code;
  code.handler_instructions = 36;
  code.home_node = home_node;
  // The handler installed into fresh workers is the *init* routine (§4.5.3);
  // it swaps itself out on the worker's first call.
  ep_ = ppc.bind(cfg, /*as=*/nullptr, /*program=*/0,
                 [this](ServerCtx& ctx, RegSet& regs) {
                   init_routine(ctx, regs);
                 },
                 code);
}

void ExceptionServer::init_routine(ServerCtx& ctx, RegSet& regs) {
  // One-time setup: allocate a per-worker scratch buffer on this worker's
  // processor's node and register with the registry. Charged once, not on
  // every subsequent call — that is the whole point of the protocol.
  const SimAddr scratch =
      ctx.machine().allocator().alloc(ctx.cpu().node(), 256, 64);
  ctx.touch(scratch, 64, /*is_store=*/true);
  ctx.touch(registry_saddr_ + (registered_ % 16) * 32, 32, /*is_store=*/true);
  ctx.work(150);  // registration bookkeeping
  ++registered_;

  ctx.set_worker_handler([this](ServerCtx& c, RegSet& r) {
    main_routine(c, r);
  });
  main_routine(ctx, regs);  // and handle this first call
}

void ExceptionServer::main_routine(ServerCtx& ctx, RegSet& regs) {
  switch (opcode_of(regs)) {
    case kExceptionRaise: {
      const ProgramId victim = regs[0];
      ctx.work(40);
      ctx.touch(registry_saddr_, 32, /*is_store=*/true);
      ++counts_[victim];
      set_rc(regs, Status::kOk);
      return;
    }
    case kExceptionQuery: {
      const ProgramId victim = regs[0];
      ctx.work(20);
      auto it = counts_.find(victim);
      regs[1] = it == counts_.end() ? 0 : static_cast<Word>(it->second);
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

Status ExceptionServer::deliver(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                                EntryPointId ep, ProgramId victim,
                                Word code) {
  RegSet regs;
  regs[0] = victim;
  regs[1] = code;
  set_op(regs, kExceptionRaise);
  return ppc.upcall(cpu, ep, regs);
}

}  // namespace hppc::servers
