// "Bob", the file server (§3, §4.5.6 footnote 7).
//
// The Figure-3 workload: independent clients repeatedly request the length
// of an open file. "The base time for the sequential case is 66 usec, with
// half of the time attributable to the IPC facility and half to the file
// system server."
//
// The file system's per-file state is genuinely shared data. On a machine
// without hardware cache coherence it is accessed uncached under a per-file
// spinlock, so when every client hits the *same* file the lock plus "a very
// small number of memory accesses in the critical section" serialize ~16 us
// of every 66 us call and throughput saturates at ~4 processors — the
// paper's demonstration of "the dramatic impact any locks in the IPC path
// might have".
#pragma once

#include <memory>
#include <vector>

#include "ppc/facility.h"
#include "repl/sim_replicated.h"
#include "sim/spinlock.h"

namespace hppc::servers {

enum FileOp : Word {
  kFileGetLength = 1,  // w[0]=file id          -> w[1],w[2]=length (lo,hi)
  kFileSetLength = 2,  // w[0]=file id, w[1],w[2]=length (owner only)
  kFileRead = 3,       // w[0]=file id, w[1]=offset, w[2]=bytes -> w[3]=bytes
  kFileWrite = 4,      // w[0]=file id, w[1]=offset, w[2]=bytes (owner only)
  kFileCreate = 5,     // w[0]=home node, w[1],w[2]=length -> w[0]=file id
  /// Bulk write via the CopyServer (§4.2): the caller must first grant
  /// Bob's program read access over [src, src+len); Bob pulls the bytes
  /// with a nested CopyFrom and writes them at `offset`.
  /// w[0]=file id, w[1]=offset, w[2]=len, w[3],w[4]=src address.
  kFileWriteBulk = 6,
};

class FileServer {
 public:
  struct Config {
    NodeId home_node = 0;
    /// Bind as a user-space server (the paper's servers are user level).
    bool user_space = true;
    ProgramId program = 900;
    /// Scales the locked (serialized) portion of each call; 1.0 reproduces
    /// the paper's saturation at ~4 processors. The critical-section
    /// ablation bench sweeps this.
    double critsec_scale = 1.0;
    /// Replicate the read-mostly record block (the file length) per CPU:
    /// GetLength and the Read EOF check validate a CPU-local seqlock
    /// replica instead of taking the per-file spinlock; writes still go
    /// through the locked master and publish new versions to every CPU's
    /// update queue. Off (the default) reproduces the published Figure-3
    /// single-file saturation.
    bool replicate_read_path = false;
  };

  FileServer(ppc::PpcFacility& ppc, Config cfg);

  FileServer(const FileServer&) = delete;
  FileServer& operator=(const FileServer&) = delete;

  EntryPointId ep() const { return ep_; }
  ProgramId program() const { return cfg_.program; }

  /// Host-side file creation for harnesses (no PPC cost); files may also be
  /// created through the kFileCreate operation.
  std::uint32_t create_file(NodeId home, std::uint64_t length,
                            ProgramId owner = 0);

  std::uint64_t length_of(std::uint32_t file_id) const;
  std::size_t file_count() const { return files_.size(); }

  /// Lock-ownership migrations observed on a file's lock (Figure-3
  /// instrumentation: how often the serialized section changed processors).
  std::uint64_t lock_migrations(std::uint32_t file_id) const;

  // ----- client-side stubs (each is one full PPC call) -----

  static Status get_length(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                           kernel::Process& caller, EntryPointId ep,
                           std::uint32_t file_id, std::uint64_t* out_len);

  static Status set_length(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                           kernel::Process& caller, EntryPointId ep,
                           std::uint32_t file_id, std::uint64_t len);

  static Status read(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                     kernel::Process& caller, EntryPointId ep,
                     std::uint32_t file_id, std::uint32_t offset,
                     std::uint32_t bytes, std::uint32_t* out_bytes);

  /// Bulk write: the caller must have granted Bob's program read access
  /// over [src, src+len) through the CopyServer beforehand.
  static Status write_bulk(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                           kernel::Process& caller, EntryPointId ep,
                           std::uint32_t file_id, std::uint32_t offset,
                           SimAddr src, std::uint32_t len);

  /// Where a file's cached data lives (functional bytes live here too).
  SimAddr data_addr(std::uint32_t file_id) const;

 private:
  /// The read-mostly slice of the shared record: what GetLength and the
  /// Read EOF check actually need. Small and trivially copyable so it can
  /// ride a per-CPU seqlock replica.
  struct RecordBlock {
    std::uint64_t length = 0;
  };

  struct File {
    std::uint64_t length;
    SimAddr record;  // shared on-disk-cache metadata (accessed uncached)
    SimAddr data;    // cached file data pages
    NodeId home;
    ProgramId owner;
    sim::SimSpinLock lock;
    /// Per-CPU replicas of the record block (replicate_read_path only).
    std::unique_ptr<repl::SimReplicated<RecordBlock>> replicas;

    File(std::uint64_t len, SimAddr rec, SimAddr dat, NodeId h, ProgramId o)
        : length(len), record(rec), data(dat), home(h), owner(o), lock(rec) {}
  };

  void handler(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  void dispatch_op(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  File* file_for(ppc::RegSet& regs);  // sets rc on failure
  void locked_record_access(ppc::ServerCtx& ctx, File& f, bool is_store);
  /// Lock-free replicated read of the record block (replicate_read_path).
  std::uint64_t replicated_length(ppc::ServerCtx& ctx, File& f);
  /// Write-side publish: refresh every CPU's replica after a length change.
  void publish_record(ppc::ServerCtx& ctx, File& f);

  ppc::PpcFacility& ppc_;
  Config cfg_;
  EntryPointId ep_ = kInvalidEntryPoint;
  kernel::AddressSpace* as_ = nullptr;
  SimAddr open_table_ = kInvalidAddr;  // per-server open-file table
  std::vector<std::unique_ptr<File>> files_;
};

}  // namespace hppc::servers
