#include "servers/disk_server.h"

#include <algorithm>

namespace hppc::servers {

using kernel::Cpu;
using ppc::RegSet;
using ppc::ServerCtx;
using sim::CostCategory;

DiskServer::DiskServer(ppc::PpcFacility& ppc, Config cfg)
    : ppc_(ppc),
      cfg_(cfg),
      qlock_(ppc.machine().allocator().alloc(cfg.home_node, 64, 64)) {
  auto& alloc = ppc.machine().allocator();
  queue_saddr_ = alloc.alloc(cfg_.home_node, 256, 64);
  data_base_ = alloc.alloc(cfg_.home_node,
                           std::size_t{cfg_.num_blocks} * cfg_.block_bytes,
                           kPageSize);

  ppc::EntryPointConfig ep_cfg;
  ep_cfg.name = "disk";
  ep_cfg.kernel_space = true;  // device driver lives in the kernel space
  ppc::ServiceCode code;
  code.handler_instructions = 40;
  code.home_node = cfg_.home_node;
  ep_ = ppc.bind(ep_cfg, /*as=*/nullptr, /*program=*/0,
                 [this](ServerCtx& ctx, RegSet& regs) { handler(ctx, regs); },
                 code);
}

SimAddr DiskServer::block_addr(std::uint32_t block) const {
  HPPC_ASSERT(block < cfg_.num_blocks);
  return data_base_ + SimAddr{block} * cfg_.block_bytes;
}

void DiskServer::load_block(std::uint32_t block, const void* bytes,
                            std::size_t len) {
  HPPC_ASSERT(len <= cfg_.block_bytes);
  ppc_.machine().write_data(block_addr(block), bytes, len);
}

void DiskServer::start_transfer(Cpu& cpu) {
  // Program the controller; the transfer completes as a device interrupt
  // which is dispatched as a PPC to this same entry point (§4.4).
  RegSet regs;
  set_op(regs, kDiskComplete);
  ppc_.raise_interrupt(cfg_.interrupt_cpu, cpu.now() + cfg_.service_cycles,
                       ep_, regs);
}

void DiskServer::complete_one(ServerCtx& ctx) {
  Cpu& cpu = ctx.cpu();
  auto& mem = cpu.mem();

  qlock_.acquire(mem, CostCategory::kServerTime);
  mem.access_uncached(queue_saddr_, CostCategory::kServerTime);
  HPPC_ASSERT_MSG(!queue_.empty(), "completion with empty disk queue");
  Request req = queue_.front();
  queue_.pop_front();
  busy_ = !queue_.empty();
  if (busy_) start_transfer(cpu);
  qlock_.release(mem, CostCategory::kServerTime);

  // The DMA placed the block into the client's buffer; mirror the bytes in
  // functional memory and charge the completion bookkeeping.
  std::vector<std::uint8_t> buf(cfg_.block_bytes);
  ctx.machine().read_data(block_addr(req.block), buf.data(), buf.size());
  ctx.machine().write_data(req.dst, buf.data(), buf.size());
  ctx.work(80);
  ++completed_;

  // Wake the blocked worker on its own processor. Cross-processor wakeups
  // travel as interrupts, like every cross-processor operation (§4.3).
  ppc::Worker* w = req.worker;
  if (req.worker_cpu == cpu.id()) {
    ppc_.resume_worker(cpu, *w);
  } else {
    ppc_.machine().post_ipi(cpu, req.worker_cpu, [this, w](Cpu& target) {
      ppc_.resume_worker(target, *w);
    });
  }
}

void DiskServer::handler(ServerCtx& ctx, RegSet& regs) {
  switch (opcode_of(regs)) {
    case kDiskRead: {
      const std::uint32_t block = regs[0];
      const SimAddr dst = ppc::get_u64(regs, 1);
      if (block >= cfg_.num_blocks) {
        set_rc(regs, Status::kInvalidArgument);
        return;
      }
      Cpu& cpu = ctx.cpu();
      auto& mem = cpu.mem();

      // §4.3: the only shared state is the disk queue.
      qlock_.acquire(mem, CostCategory::kServerTime);
      mem.access_uncached(queue_saddr_, CostCategory::kServerTime);
      queue_.push_back(Request{block, dst, &ctx.worker(), cpu.id()});
      peak_depth_ = std::max(peak_depth_, queue_.size());
      const bool was_idle = !busy_;
      if (was_idle) {
        busy_ = true;
        start_transfer(cpu);
      }
      qlock_.release(mem, CostCategory::kServerTime);

      // Block until the interrupt-driven completion resumes us.
      const std::uint32_t bytes = cfg_.block_bytes;
      ctx.block_call([bytes](ServerCtx&, RegSet& r) {
        r[3] = bytes;
        set_rc(r, Status::kOk);
      });
      return;
    }
    case kDiskComplete: {
      complete_one(ctx);
      set_rc(regs, Status::kOk);
      return;
    }
    case kDiskStats: {
      regs[0] = static_cast<Word>(completed_);
      regs[1] = static_cast<Word>(peak_depth_);
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

Status DiskServer::read_block(ppc::PpcFacility& ppc, Cpu& cpu,
                              kernel::Process& caller, EntryPointId ep,
                              std::uint32_t block, SimAddr dst,
                              std::function<void(Status, RegSet&)> done) {
  RegSet regs;
  regs[0] = block;
  ppc::set_u64(regs, 1, dst);
  set_op(regs, kDiskRead);
  return ppc.call_blocking(cpu, caller, ep, regs, std::move(done));
}

}  // namespace hppc::servers
