// The exception server: upcall target (§4.4) and the worked example of the
// worker-initialization protocol (§4.5.3).
//
// §4.4: "Upcalls are essentially software-based interrupts. ... They have
//  wide application, and are currently used for debugging and exception
//  handling."
// §4.5.3: "in some servers the workers need to execute initialization code
//  once when they are first created (e.g. registering themselves with an
//  exception server, or allocating a buffer)".
//
// Each worker's first call runs the init routine: it allocates a per-worker
// scratch buffer and registers the worker here, then swaps in the main
// routine. Exceptions are delivered as upcalls carrying (program, code).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ppc/facility.h"

namespace hppc::servers {

enum ExceptionOp : Word {
  kExceptionRaise = 1,  // w[0]=victim program, w[1]=exception code
  kExceptionQuery = 2,  // w[0]=victim program -> w[1]=count
  kWorkerRegister = 3,  // internal: worker init registration
};

class ExceptionServer {
 public:
  explicit ExceptionServer(ppc::PpcFacility& ppc, NodeId home_node = 0);

  ExceptionServer(const ExceptionServer&) = delete;
  ExceptionServer& operator=(const ExceptionServer&) = delete;

  EntryPointId ep() const { return ep_; }

  /// Number of workers that ran their one-time init (== workers created).
  std::uint32_t registered_workers() const { return registered_; }

  std::uint64_t exceptions_for(ProgramId program) const {
    auto it = counts_.find(program);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Deliver an exception as an upcall on `cpu` (§4.4).
  static Status deliver(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                        EntryPointId ep, ProgramId victim, Word code);

 private:
  void init_routine(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  void main_routine(ppc::ServerCtx& ctx, ppc::RegSet& regs);

  ppc::PpcFacility& ppc_;
  NodeId home_node_;
  EntryPointId ep_ = kInvalidEntryPoint;
  SimAddr registry_saddr_ = kInvalidAddr;
  std::uint32_t registered_ = 0;
  std::unordered_map<ProgramId, std::uint64_t> counts_;
};

}  // namespace hppc::servers
