#include "servers/copy_server.h"

#include <algorithm>

namespace hppc::servers {

using ppc::RegSet;
using ppc::ServerCtx;
using sim::CostCategory;

namespace {
constexpr Cycles kGrantWork = 60;
constexpr Cycles kValidateWork = 45;

SimAddr addr_from(const RegSet& regs, std::size_t lo) {
  return ppc::get_u64(regs, lo);
}
}  // namespace

CopyServer::CopyServer(ppc::PpcFacility& ppc, NodeId home_node) : ppc_(ppc) {
  table_saddr_ = ppc.machine().allocator().alloc(home_node, 1024, 64);
  ppc::EntryPointConfig cfg;
  cfg.name = "copy-server";
  cfg.kernel_space = true;  // it moves bytes between address spaces
  ppc::ServiceCode code;
  code.handler_instructions = 48;
  code.home_node = home_node;
  ppc.bind_well_known(
      ppc::kCopyServerEp, cfg, /*as=*/nullptr, /*program=*/0,
      [this](ServerCtx& ctx, RegSet& regs) { handler(ctx, regs); }, code);
}

const CopyServer::Grant* CopyServer::find_grant(ProgramId granter,
                                                ProgramId grantee,
                                                SimAddr addr,
                                                std::uint32_t len,
                                                Word need) const {
  for (const Grant& g : grants_) {
    if (g.granter == granter && g.grantee == grantee &&
        (g.rights & need) == need && addr >= g.base &&
        addr + len <= g.base + g.len) {
      return &g;
    }
  }
  return nullptr;
}

void CopyServer::do_copy(ServerCtx& ctx, SimAddr src, SimAddr dst,
                         std::uint32_t len) {
  auto& m = ctx.machine();
  // Move the actual bytes through the functional data memory.
  std::vector<std::uint8_t> buf(len);
  m.read_data(src, buf.data(), len);
  m.write_data(dst, buf.data(), len);
  // Charge the streaming traffic: loads of the source, stores of the
  // destination, in cache-line units, against the server-time category of
  // the CopyServer worker on the caller's processor.
  ctx.touch(src, len, /*is_store=*/false);
  ctx.touch(dst, len, /*is_store=*/true);
}

void CopyServer::handler(ServerCtx& ctx, RegSet& regs) {
  switch (opcode_of(regs)) {
    case kCopyGrant: {
      const ProgramId grantee = regs[0];
      const SimAddr base = addr_from(regs, 1);
      const std::uint32_t len = regs[3];
      const Word rights = regs[4] & (kCopyRightRead | kCopyRightWrite);
      if (len == 0 || rights == 0) {
        set_rc(regs, Status::kInvalidArgument);
        return;
      }
      ctx.work(kGrantWork);
      ctx.touch(table_saddr_ + (grants_.size() % 32) * 32, 32, true);
      grants_.push_back(
          Grant{ctx.caller_program(), grantee, base, len, rights});
      set_rc(regs, Status::kOk);
      return;
    }
    case kCopyRevoke: {
      const ProgramId grantee = regs[0];
      const ProgramId granter = ctx.caller_program();
      ctx.work(kGrantWork);
      grants_.erase(std::remove_if(grants_.begin(), grants_.end(),
                                   [&](const Grant& g) {
                                     return g.granter == granter &&
                                            g.grantee == grantee;
                                   }),
                    grants_.end());
      set_rc(regs, Status::kOk);
      return;
    }
    case kCopyFrom: {
      const ProgramId granter = regs[0];
      const SimAddr src = addr_from(regs, 1);
      const SimAddr dst = addr_from(regs, 3);
      const std::uint32_t len = regs[5];
      ctx.work(kValidateWork);
      if (find_grant(granter, ctx.caller_program(), src, len,
                     kCopyRightRead) == nullptr) {
        set_rc(regs, Status::kBadRegion);
        return;
      }
      do_copy(ctx, src, dst, len);
      set_rc(regs, Status::kOk);
      return;
    }
    case kCopyTo: {
      const ProgramId granter = regs[0];
      const SimAddr src = addr_from(regs, 1);
      const SimAddr dst = addr_from(regs, 3);
      const std::uint32_t len = regs[5];
      ctx.work(kValidateWork);
      if (find_grant(granter, ctx.caller_program(), dst, len,
                     kCopyRightWrite) == nullptr) {
        set_rc(regs, Status::kBadRegion);
        return;
      }
      do_copy(ctx, src, dst, len);
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

// ----- client-side stubs -----

Status CopyServer::grant(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                         kernel::Process& caller, ProgramId grantee,
                         SimAddr base, std::uint32_t len, Word rights) {
  RegSet regs;
  regs[0] = grantee;
  ppc::set_u64(regs, 1, base);
  regs[3] = len;
  regs[4] = rights;
  set_op(regs, kCopyGrant);
  return ppc.call(cpu, caller, ppc::kCopyServerEp, regs);
}

Status CopyServer::revoke(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                          kernel::Process& caller, ProgramId grantee) {
  RegSet regs;
  regs[0] = grantee;
  set_op(regs, kCopyRevoke);
  return ppc.call(cpu, caller, ppc::kCopyServerEp, regs);
}

Status CopyServer::copy_from(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                             kernel::Process& caller, ProgramId granter,
                             SimAddr src, SimAddr dst, std::uint32_t len) {
  RegSet regs;
  regs[0] = granter;
  ppc::set_u64(regs, 1, src);
  ppc::set_u64(regs, 3, dst);
  regs[5] = len;
  set_op(regs, kCopyFrom);
  return ppc.call(cpu, caller, ppc::kCopyServerEp, regs);
}

Status CopyServer::copy_to(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                           kernel::Process& caller, ProgramId granter,
                           SimAddr src, SimAddr dst, std::uint32_t len) {
  RegSet regs;
  regs[0] = granter;
  ppc::set_u64(regs, 1, src);
  ppc::set_u64(regs, 3, dst);
  regs[5] = len;
  set_op(regs, kCopyTo);
  return ppc.call(cpu, caller, ppc::kCopyServerEp, regs);
}

}  // namespace hppc::servers
