// The disk device server: the paper's example of the two cross-processor
// mechanisms that complement PPC.
//
// §4.3: "interactions with a disk only involve accesses to shared queues:
//  in the case of a busy disk, appending the request to the end of the disk
//  queue; in the case of an idle disk, additionally adding the disk device
//  driver process to the ready queue."
// §4.4: "An asynchronous request from the kernel to the device server is
//  manufactured by the interrupt handler and dispatched as for a normal
//  call. From the device server's point of view, it appears as a normal PPC
//  request."
//
// Flow here: a client's read is a blocking PPC handled on the client's own
// processor; the handler appends to the (spinlock-protected, genuinely
// shared) disk queue and blocks the worker. When the transfer completes the
// "hardware" raises an interrupt on the disk's interrupt processor, which
// is dispatched as an interrupt-manufactured PPC to this same entry point;
// that handler performs completion bookkeeping and resumes the blocked
// worker over on its home processor (via an event — cross-processor
// operations always travel as interrupts).
#pragma once

#include <cstdint>
#include <deque>

#include "ppc/facility.h"
#include "sim/spinlock.h"

namespace hppc::servers {

enum DiskOp : Word {
  kDiskRead = 1,      // w[0]=block, w[1..2]=dst addr -> w[3]=bytes read
  kDiskComplete = 2,  // interrupt-manufactured completion (internal)
  kDiskStats = 3,     // -> w[0]=completed, w[1]=queued peak
};

class DiskServer {
 public:
  struct Config {
    NodeId home_node = 0;
    CpuId interrupt_cpu = 0;   // where the disk's interrupts are delivered
    Cycles service_cycles = 4000;  // transfer time per block (~240 us)
    std::uint32_t block_bytes = 512;
    std::uint32_t num_blocks = 256;
  };

  DiskServer(ppc::PpcFacility& ppc, Config cfg);

  DiskServer(const DiskServer&) = delete;
  DiskServer& operator=(const DiskServer&) = delete;

  EntryPointId ep() const { return ep_; }

  /// Host-side: place content into a disk block.
  void load_block(std::uint32_t block, const void* bytes, std::size_t len);
  SimAddr block_addr(std::uint32_t block) const;

  std::uint64_t completed() const { return completed_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Client-side stub: a blocking PPC read of one block into `dst`.
  /// `on_complete` runs on the caller's CPU when the data has arrived.
  static Status read_block(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                           kernel::Process& caller, EntryPointId ep,
                           std::uint32_t block, SimAddr dst,
                           std::function<void(Status, ppc::RegSet&)> done);

 private:
  struct Request {
    std::uint32_t block;
    SimAddr dst;
    ppc::Worker* worker;  // blocked worker awaiting this transfer
    CpuId worker_cpu;
  };

  void handler(ppc::ServerCtx& ctx, ppc::RegSet& regs);
  void start_transfer(kernel::Cpu& cpu);
  void complete_one(ppc::ServerCtx& ctx);

  ppc::PpcFacility& ppc_;
  Config cfg_;
  EntryPointId ep_ = kInvalidEntryPoint;
  SimAddr data_base_ = kInvalidAddr;
  SimAddr queue_saddr_ = kInvalidAddr;
  sim::SimSpinLock qlock_;
  std::deque<Request> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace hppc::servers
