// The frame ABI's bulk-data side path — the host-runtime analogue of the
// CopyServer (§4.2).
//
// A CallFrame carries exactly 8 words each way; payloads past that do not
// grow the frame. Instead the caller sets kFrameFlagSg and points w[0..1]
// at a FrameSg descriptor block naming gather segments (request bytes the
// handler may read) and scatter segments (reply ranges the handler may
// write). That is the same shape as the paper's grant: the descriptors ARE
// the permission — the handler touches exactly the ranges the caller
// enumerated, nothing else, and the bytes move once, directly between the
// caller's buffers and the service's own memory. No intermediate kernel
// buffer, no second copy.
//
// Synchronous frame calls make the lifetime rule trivial: the caller's
// stack frame (and therefore every segment it described) outlives the call
// by construction. Handlers for one-way (fire-and-forget) frames must not
// accept SG spills — there is no reply edge to sequence the caller's
// reclaim against; post bulk payloads through a synchronous call first.
//
// Helpers here are deliberately memcpy-thin. A service that wants a
// node-local staging area allocates one FrameBulkStage per slot from the
// runtime arena so the gather target sits on the slot that will chew on it.
#pragma once

#include <cstddef>
#include <cstring>

#include "common/assert.h"
#include "mem/arena.h"
#include "rt/frame_abi.h"

namespace hppc::servers {

/// Total request bytes across the gather segments.
inline std::size_t sg_total_in(const rt::FrameSg& sg) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < sg.n_in; ++i) n += sg.in[i].len;
  return n;
}

/// Total reply capacity across the scatter segments.
inline std::size_t sg_total_out(const rt::FrameSg& sg) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < sg.n_out; ++i) n += sg.out[i].len;
  return n;
}

/// Gather the request: concatenate the in-segments into [dst, dst+cap).
/// Returns bytes copied; stops (without overrun) when dst is full — the
/// caller checks against sg_total_in when truncation must be an error.
inline std::size_t sg_gather(const rt::FrameSg& sg, void* dst,
                             std::size_t cap) {
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < sg.n_in && off < cap; ++i) {
    const rt::SgSeg& seg = sg.in[i];
    const std::size_t n = seg.len < cap - off ? seg.len : cap - off;
    std::memcpy(static_cast<std::byte*>(dst) + off, seg.base, n);
    off += n;
  }
  return off;
}

/// Scatter the reply: spread [src, src+len) across the out-segments in
/// order. Returns bytes placed; stops when the segments are full.
inline std::size_t sg_scatter(const rt::FrameSg& sg, const void* src,
                              std::size_t len) {
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < sg.n_out && off < len; ++i) {
    const rt::SgMutSeg& seg = sg.out[i];
    const std::size_t n = seg.len < len - off ? seg.len : len - off;
    std::memcpy(seg.base, static_cast<const std::byte*>(src) + off, n);
    off += n;
  }
  return off;
}

/// A node-local staging buffer for services that transform bulk payloads
/// rather than streaming them: gather lands the request on the serving
/// slot's own node, the handler works in place, scatter sends the result
/// back. Arena-backed; create one per slot at service construction.
class FrameBulkStage {
 public:
  FrameBulkStage(mem::Arena& arena, NodeId node, std::size_t capacity)
      : buf_(static_cast<std::byte*>(
            arena.allocate(node, capacity, alignof(std::max_align_t)))),
        cap_(capacity) {}

  FrameBulkStage(const FrameBulkStage&) = delete;
  FrameBulkStage& operator=(const FrameBulkStage&) = delete;

  std::byte* data() { return buf_; }
  std::size_t capacity() const { return cap_; }

  /// Gather a spilled frame's request into the stage. Fails (returns
  /// false) when the payload exceeds the stage — the handler should answer
  /// kOutOfResources rather than truncate silently.
  bool gather(const rt::FrameSg& sg, std::size_t* len) {
    if (sg_total_in(sg) > cap_) return false;
    *len = sg_gather(sg, buf_, cap_);
    return true;
  }

  /// Scatter [data(), data()+len) back through the frame's out-segments.
  std::size_t scatter(const rt::FrameSg& sg, std::size_t len) {
    HPPC_ASSERT(len <= cap_);
    return sg_scatter(sg, buf_, len);
  }

 private:
  std::byte* buf_;  // arena storage: freed wholesale with the arena
  std::size_t cap_;
};

}  // namespace hppc::servers
