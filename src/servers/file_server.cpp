#include "servers/file_server.h"

#include <algorithm>

#include "servers/copy_server.h"

namespace hppc::servers {

using ppc::RegSet;
using ppc::ServerCtx;
using sim::CostCategory;

namespace {
// Calibration of the file-system half of the 66 us GetLength call (§3):
// lookup + result work outside the lock, and a small number of uncached
// shared-record accesses inside it.
constexpr Cycles kLookupWork = 130;       // descriptor/directory resolution
constexpr Cycles kResultWork = 60;        // result assembly, accounting
// The critical section (§3): the descriptor update/validation work done
// while the per-file lock is held, plus "a very small number of memory
// accesses" to the shared record (uncached: no hardware coherence).
// Together they serialize ~16.5 us of each 66 us call, which is what makes
// the single-file curve saturate at four processors.
constexpr Cycles kLockedWork = 200;
constexpr int kRecordAccesses = 2;        // "a very small number"
constexpr std::size_t kRecordBytes = 64;  // metadata record
constexpr std::size_t kOpenTableEntry = 32;
// The replicated read path replaces the whole serialized section with a
// CPU-local seqlock validation: no lock, no remote record accesses, just
// the version check and the copy of the (one-word) record block.
constexpr Cycles kReplicaWork = 40;
}  // namespace

FileServer::FileServer(ppc::PpcFacility& ppc, Config cfg)
    : ppc_(ppc), cfg_(cfg) {
  auto& m = ppc.machine();
  open_table_ = m.allocator().alloc(cfg_.home_node, 256 * kOpenTableEntry, 64);

  ppc::EntryPointConfig ep_cfg;
  ep_cfg.name = "bob";
  if (cfg_.user_space) {
    as_ = &m.create_address_space(cfg_.program, cfg_.home_node);
  } else {
    as_ = nullptr;  // kernel-space file service
    ep_cfg.kernel_space = true;
  }
  ppc::ServiceCode code;
  code.handler_instructions = 80;  // the file server is a real service
  code.home_node = cfg_.home_node;
  ep_ = ppc.bind(ep_cfg, as_, cfg_.program,
                 [this](ServerCtx& ctx, RegSet& regs) { handler(ctx, regs); },
                 code);
}

std::uint32_t FileServer::create_file(NodeId home, std::uint64_t length,
                                      ProgramId owner) {
  auto& alloc = ppc_.machine().allocator();
  const SimAddr record = alloc.alloc(home, kRecordBytes, 64);
  const SimAddr data = alloc.alloc(home, kPageSize, kPageSize);
  files_.push_back(std::make_unique<File>(length, record, data, home, owner));
  if (cfg_.replicate_read_path) {
    files_.back()->replicas =
        std::make_unique<repl::SimReplicated<RecordBlock>>(
            ppc_.machine(), RecordBlock{length});
  }
  return static_cast<std::uint32_t>(files_.size() - 1);
}

SimAddr FileServer::data_addr(std::uint32_t file_id) const {
  HPPC_ASSERT(file_id < files_.size());
  return files_[file_id]->data;
}

std::uint64_t FileServer::length_of(std::uint32_t file_id) const {
  HPPC_ASSERT(file_id < files_.size());
  return files_[file_id]->length;
}

std::uint64_t FileServer::lock_migrations(std::uint32_t file_id) const {
  HPPC_ASSERT(file_id < files_.size());
  return files_[file_id]->lock.migrations();
}

FileServer::File* FileServer::file_for(RegSet& regs) {
  const std::uint32_t id = regs[0];
  if (id >= files_.size()) {
    set_rc(regs, Status::kInvalidArgument);
    return nullptr;
  }
  return files_[id].get();
}

void FileServer::locked_record_access(ServerCtx& ctx, File& f,
                                      bool is_store) {
  // The critical section (§3): a per-file lock around a handful of accesses
  // to the shared metadata record. Without hardware coherence the record is
  // accessed uncached, so each access pays the NUMA distance to the
  // record's home.
  auto& mem = ctx.cpu().mem();
  f.lock.acquire(mem, CostCategory::kServerTime);
  mem.charge(CostCategory::kServerTime,
             static_cast<Cycles>(kLockedWork * cfg_.critsec_scale + 0.5));
  const int accesses = std::max(
      1, static_cast<int>(kRecordAccesses * cfg_.critsec_scale + 0.5));
  for (int i = 0; i < accesses; ++i) {
    mem.access_uncached(f.record + (i % 4) * 16, CostCategory::kServerTime);
  }
  if (is_store) {
    mem.access_uncached(f.record, CostCategory::kServerTime);
  }
  f.lock.release(mem, CostCategory::kServerTime);
}

std::uint64_t FileServer::replicated_length(ServerCtx& ctx, File& f) {
  // The replicated fast path: validate this CPU's replica of the record
  // block. No lock acquired, no shared record touched — only the CPU-local
  // update-queue flag and replica line (plus the lazy apply of a pending
  // update). A reader that lands inside a writer's publish window retries
  // once and waits the window out (SimSeqlockReplica charges it).
  const auto out = f.replicas->read(ctx.cpu().mem(), CostCategory::kServerTime);
  ctx.work(kReplicaWork);
  return out.value.length;
}

void FileServer::publish_record(ServerCtx& ctx, File& f) {
  if (!f.replicas) return;
  // Write side of the replication: still serialized by the per-file lock
  // (the caller holds it logically — writes are rare); push the new record
  // block into every CPU's update queue.
  f.replicas->write(ctx.cpu().mem(), CostCategory::kServerTime,
                    RecordBlock{f.length});
}

void FileServer::handler(ServerCtx& ctx, RegSet& regs) {
  // Server-side execution latency in simulated cycles: what the handler
  // itself cost, exclusive of the PPC entry/exit machinery around it.
  const Cycles t0 = ctx.cpu().now();
  dispatch_op(ctx, regs);
  ctx.cpu().histograms().record(obs::Hist::kServerExec, ctx.cpu().now() - t0);
}

void FileServer::dispatch_op(ServerCtx& ctx, RegSet& regs) {
  switch (opcode_of(regs)) {
    case kFileGetLength: {
      File* f = file_for(regs);
      if (!f) return;
      ctx.work(kLookupWork);
      ctx.touch(open_table_ + (regs[0] % 256) * kOpenTableEntry,
                kOpenTableEntry, /*is_store=*/false);
      std::uint64_t len;
      if (f->replicas) {
        len = replicated_length(ctx, *f);
      } else {
        locked_record_access(ctx, *f, /*is_store=*/false);
        len = f->length;
      }
      ctx.work(kResultWork);
      set_u64(regs, 1, len);
      set_rc(regs, Status::kOk);
      return;
    }
    case kFileSetLength: {
      File* f = file_for(regs);
      if (!f) return;
      // §4.1: the server authenticates the caller by program id itself.
      if (f->owner != 0 && f->owner != ctx.caller_program()) {
        set_rc(regs, Status::kPermissionDenied);
        return;
      }
      ctx.work(kLookupWork);
      ctx.touch(open_table_ + (regs[0] % 256) * kOpenTableEntry,
                kOpenTableEntry, /*is_store=*/true);
      const std::uint64_t len = get_u64(regs, 1);
      locked_record_access(ctx, *f, /*is_store=*/true);
      f->length = len;
      publish_record(ctx, *f);
      ctx.work(kResultWork);
      set_rc(regs, Status::kOk);
      return;
    }
    case kFileRead: {
      File* f = file_for(regs);
      if (!f) return;
      ctx.work(kLookupWork);
      const std::uint32_t offset = regs[1];
      std::uint32_t bytes = regs[2];
      std::uint64_t len;
      if (f->replicas) {
        // EOF check against the CPU-local replica: the read path of a
        // replicated file takes no lock at all.
        len = replicated_length(ctx, *f);
      } else {
        locked_record_access(ctx, *f, /*is_store=*/false);
        len = f->length;
      }
      if (offset >= len) {
        regs[3] = 0;
        set_rc(regs, Status::kOk);
        return;
      }
      bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(bytes, len - offset));
      bytes = std::min<std::uint32_t>(bytes, kPageSize);
      // Stream the data through the cache (file cache pages at the file's
      // home node).
      ctx.touch(f->data + offset % kPageSize, std::max<std::uint32_t>(bytes, 1),
                /*is_store=*/false);
      regs[3] = bytes;
      ctx.work(kResultWork);
      set_rc(regs, Status::kOk);
      return;
    }
    case kFileWrite: {
      File* f = file_for(regs);
      if (!f) return;
      if (f->owner != 0 && f->owner != ctx.caller_program()) {
        set_rc(regs, Status::kPermissionDenied);
        return;
      }
      ctx.work(kLookupWork);
      const std::uint32_t offset = regs[1];
      std::uint32_t bytes = std::min<std::uint32_t>(regs[2], kPageSize);
      locked_record_access(ctx, *f, /*is_store=*/true);
      ctx.touch(f->data + offset % kPageSize, std::max<std::uint32_t>(bytes, 1),
                /*is_store=*/true);
      if (offset + bytes > f->length) {
        f->length = offset + bytes;
        publish_record(ctx, *f);
      }
      ctx.work(kResultWork);
      set_rc(regs, Status::kOk);
      return;
    }
    case kFileWriteBulk: {
      File* f = file_for(regs);
      if (!f) return;
      if (f->owner != 0 && f->owner != ctx.caller_program()) {
        set_rc(regs, Status::kPermissionDenied);
        return;
      }
      const std::uint32_t offset = regs[1];
      const std::uint32_t len = std::min<std::uint32_t>(regs[2], kPageSize);
      const SimAddr src = ppc::get_u64(regs, 3);
      if (len == 0 || offset >= kPageSize) {
        set_rc(regs, Status::kInvalidArgument);
        return;
      }
      ctx.work(kLookupWork);
      // Pull the caller's bytes with a nested PPC to the CopyServer (§4.2:
      // "The actual transfer of data is done by a separate CopyTo or
      // CopyFrom request"). The grant must name Bob's program.
      ppc::RegSet c;
      c[0] = ctx.caller_program();  // the granter
      ppc::set_u64(c, 1, src);
      ppc::set_u64(c, 3, f->data + offset % kPageSize);
      c[5] = len;
      set_op(c, kCopyFrom);
      const Status s = ctx.call(ppc::kCopyServerEp, c);
      if (!ok(s)) {
        set_rc(regs, s);
        return;
      }
      locked_record_access(ctx, *f, /*is_store=*/true);
      if (offset + len > f->length) {
        f->length = offset + len;
        publish_record(ctx, *f);
      }
      ctx.work(kResultWork);
      set_rc(regs, Status::kOk);
      return;
    }
    case kFileCreate: {
      const NodeId home = regs[0] % ppc_.machine().config().num_nodes();
      const std::uint64_t len = get_u64(regs, 1);
      ctx.work(kLookupWork + kResultWork);
      regs[0] = create_file(home, len, ctx.caller_program());
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

Status FileServer::get_length(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                              kernel::Process& caller, EntryPointId ep,
                              std::uint32_t file_id, std::uint64_t* out_len) {
  RegSet regs;
  regs[0] = file_id;
  set_op(regs, kFileGetLength);
  const Status s = ppc.call(cpu, caller, ep, regs);
  if (ok(s) && out_len != nullptr) *out_len = get_u64(regs, 1);
  return s;
}

Status FileServer::set_length(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                              kernel::Process& caller, EntryPointId ep,
                              std::uint32_t file_id, std::uint64_t len) {
  RegSet regs;
  regs[0] = file_id;
  set_u64(regs, 1, len);
  set_op(regs, kFileSetLength);
  return ppc.call(cpu, caller, ep, regs);
}

Status FileServer::read(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                        kernel::Process& caller, EntryPointId ep,
                        std::uint32_t file_id, std::uint32_t offset,
                        std::uint32_t bytes, std::uint32_t* out_bytes) {
  RegSet regs;
  regs[0] = file_id;
  regs[1] = offset;
  regs[2] = bytes;
  set_op(regs, kFileRead);
  const Status s = ppc.call(cpu, caller, ep, regs);
  if (ok(s) && out_bytes != nullptr) *out_bytes = regs[3];
  return s;
}

Status FileServer::write_bulk(ppc::PpcFacility& ppc, kernel::Cpu& cpu,
                              kernel::Process& caller,
                              EntryPointId ep, std::uint32_t file_id,
                              std::uint32_t offset, SimAddr src,
                              std::uint32_t len) {
  RegSet regs;
  regs[0] = file_id;
  regs[1] = offset;
  regs[2] = len;
  ppc::set_u64(regs, 3, src);
  set_op(regs, kFileWriteBulk);
  return ppc.call(cpu, caller, ep, regs);
}

}  // namespace hppc::servers
