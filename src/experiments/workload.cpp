#include "experiments/workload.h"

#include <cmath>
#include <vector>

#include "common/prng.h"
#include "kernel/machine.h"
#include "naming/name_server.h"
#include "ppc/facility.h"
#include "servers/file_server.h"

namespace hppc::experiments {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;

namespace {

/// Zipf sampler over [0, n): precomputed CDF, inverse-transform sampling.
class Zipf {
 public:
  Zipf(std::uint32_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::uint32_t sample(Prng& rng) const {
    const double u = rng.uniform();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::uint32_t>(lo);
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg) {
  HPPC_ASSERT(cfg.clients >= 1 && cfg.clients <= cfg.total_cpus);
  HPPC_ASSERT(cfg.num_files >= 1);

  sim::MachineConfig mc = sim::hector_config(cfg.total_cpus);
  Machine m(mc);
  PpcFacility ppc(m);
  naming::NameServer names(ppc);
  servers::FileServer bob(ppc, {});

  // Files spread round-robin across stations; each client owns its data.
  std::vector<std::uint32_t> files;
  for (std::uint32_t i = 0; i < cfg.num_files; ++i) {
    files.push_back(bob.create_file(i % mc.num_nodes(), 1024 + i,
                                    /*owner=*/0));
  }

  // Register the file server so the name-lookup mix has a real target.
  auto& reg_as = m.create_address_space(900, 0);
  Process& registrar = m.create_process(900, &reg_as, "registrar", 0);
  naming::NameServer::register_name(ppc, m.cpu(0), registrar, "bob",
                                    bob.ep());

  std::vector<Process*> clients;
  std::vector<Prng> rngs;
  Prng root(cfg.seed);
  for (CpuId c = 0; c < cfg.clients; ++c) {
    auto& as = m.create_address_space(100 + c, mc.node_of_cpu(c));
    clients.push_back(&m.create_process(100 + c, &as, "client",
                                        mc.node_of_cpu(c)));
    rngs.push_back(root.split(c));
  }

  const Zipf zipf(cfg.num_files, cfg.zipf_s);
  WorkloadResult out;

  // Warm pools on every client CPU.
  for (CpuId c = 0; c < cfg.clients; ++c) {
    std::uint64_t len = 0;
    servers::FileServer::get_length(ppc, m.cpu(c), *clients[c], bob.ep(),
                                    files[0], &len);
  }

  const Cycles window =
      static_cast<Cycles>(cfg.measure_ms * 1000.0 * mc.clock_mhz);
  std::vector<Cycles> deadline(cfg.clients);
  std::vector<sim::CostLedger> before(cfg.clients);
  for (CpuId c = 0; c < cfg.clients; ++c) {
    Cpu& cpu = m.cpu(c);
    deadline[c] = cpu.now() + window;
    before[c] = cpu.mem().ledger();
    clients[c]->set_body([&, c](Cpu& cpu2, Process& self) {
      if (cpu2.now() >= deadline[c]) return;
      Prng& rng = rngs[c];
      const double dice = rng.uniform();
      if (dice < cfg.name_lookup_fraction) {
        EntryPointId found = 0;
        naming::NameServer::lookup(ppc, cpu2, self, "bob", &found);
        ++out.name_lookups;
      } else {
        const std::uint32_t fid = files[zipf.sample(rng)];
        if (rng.uniform() < cfg.write_fraction) {
          servers::FileServer::set_length(ppc, cpu2, self, bob.ep(), fid,
                                          rng.below(1 << 20));
          ++out.writes;
        } else {
          std::uint64_t len = 0;
          servers::FileServer::get_length(ppc, cpu2, self, bob.ep(), fid,
                                          &len);
          ++out.reads;
        }
      }
      ++out.total_calls;
      m.ready(cpu2, self);
    });
    m.ready(cpu, *clients[c]);
  }
  m.run_until_idle();

  out.calls_per_sec =
      static_cast<double>(out.total_calls) / (cfg.measure_ms / 1000.0);
  for (std::uint32_t i = 0; i < cfg.num_files; ++i) {
    out.lock_migrations += bob.lock_migrations(files[i]);
  }

  sim::CostLedger total;
  for (CpuId c = 0; c < cfg.clients; ++c) {
    total += m.cpu(c).mem().ledger().since(before[c]);
  }
  if (total.total() > 0) {
    out.idle_fraction =
        static_cast<double>(total.get(sim::CostCategory::kIdle)) /
        static_cast<double>(total.total());
    for (std::size_t i = 0; i < sim::kNumCostCategories; ++i) {
      out.category_share[i] =
          static_cast<double>(
              total.get(static_cast<sim::CostCategory>(i))) /
          static_cast<double>(total.total());
    }
  }
  return out;
}

}  // namespace hppc::experiments
