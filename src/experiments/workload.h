// Synthetic system workload: many clients, a real service mix (file reads
// and writes with Zipf-distributed popularity, occasional name lookups),
// driven on the simulated multiprocessor. This is the "large number of
// different programs" scenario of §1, beyond the single-op microbenchmarks
// of Figures 2 and 3: contention appears exactly where files get popular,
// and nowhere in the IPC layer itself.
#pragma once

#include <array>
#include <cstdint>

#include "sim/cost.h"

namespace hppc::experiments {

struct WorkloadConfig {
  std::uint32_t total_cpus = 16;
  std::uint32_t clients = 16;  // one per processor, at most total_cpus
  std::uint32_t num_files = 64;
  /// Zipf skew of file popularity: 0 = uniform; ~1 = heavily skewed (a few
  /// hot files absorb most requests and their locks become the bottleneck).
  double zipf_s = 0.0;
  double write_fraction = 0.1;        // SetLength instead of GetLength
  double name_lookup_fraction = 0.02; // occasional name-server traffic
  double measure_ms = 10.0;
  std::uint64_t seed = 42;
};

struct WorkloadResult {
  double calls_per_sec = 0;
  std::uint64_t total_calls = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t name_lookups = 0;
  std::uint64_t lock_migrations = 0;  // across all file locks
  /// Fraction of total CPU cycles spent idle (spinning on file locks).
  double idle_fraction = 0;
  /// Machine-wide cycle shares by cost category.
  std::array<double, sim::kNumCostCategories> category_share{};
};

WorkloadResult run_workload(const WorkloadConfig& cfg);

}  // namespace hppc::experiments
