#include "experiments/experiments.h"

#include <algorithm>

#include "common/stats.h"
#include "kernel/machine.h"
#include "ppc/facility.h"
#include "servers/file_server.h"

namespace hppc::experiments {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::EntryPointConfig;
using ppc::PpcFacility;
using ppc::RegSet;
using ppc::ServerCtx;
using sim::CostCategory;

double Fig2Result::us(sim::CostCategory c) const {
  return cycles[static_cast<std::size_t>(c)] / sim::hector_config().clock_mhz;
}

Fig2Result run_fig2(const Fig2Config& cfg) {
  Machine m(cfg.machine);
  PpcFacility ppc(m);

  // The dummy server of Figure 2: "the time spent in the worker executing
  // the dummy server code (saving and restoring a few registers)".
  EntryPointConfig ec;
  ec.name = "null-server";
  ec.kernel_space = cfg.kernel_server;
  ec.hold_cd = cfg.hold_cd;
  kernel::AddressSpace* as =
      cfg.kernel_server ? nullptr : &m.create_address_space(500, 0);
  ppc::ServiceCode code;
  code.handler_instructions = 16;
  code.home_node = 0;
  // Even a null server reads a little of its own state (its service
  // descriptor); after a user->user crossing that is one more user-context
  // TLB reload.
  const SimAddr server_data = m.allocator().alloc(0, 64, kPageSize);
  const EntryPointId id = ppc.bind(
      ec, as, /*program=*/500,
      [server_data](ServerCtx& ctx, RegSet& regs) {
        ctx.touch(server_data, 16, /*is_store=*/false);
        set_rc(regs, Status::kOk);
      },
      code);

  kernel::AddressSpace& cas = m.create_address_space(600, 0);
  Process& client = m.create_process(600, &cas, "fig2-client", 0);
  Cpu& cpu = m.cpu(0);

  // A junk region for the "dirty" cache condition.
  const SimAddr junk =
      m.allocator().alloc(0, cfg.machine.dcache.size_bytes * 2, kPageSize);

  RegSet regs;
  for (std::size_t i = 0; i + 1 < ppc::kOpWord; ++i) {
    regs[i] = static_cast<Word>(0x1000 + i);  // "up to 8 arguments"
  }

  for (int i = 0; i < cfg.warmup_calls; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, id, regs);
  }

  Fig2Result out;
  sim::CostLedger before = cpu.mem().ledger();
  for (int i = 0; i < cfg.measured_calls; ++i) {
    if (cfg.flush_dcache) cpu.mem().dcache().flush_all();
    if (cfg.dirty_and_flush_icache) {
      cpu.mem().dcache().fill_with_junk(junk);
      cpu.mem().icache().flush_all();
    }
    set_op(regs, 1);
    ppc.call(cpu, client, id, regs);
  }
  // Exclude the cache-preparation work itself? flush_all/fill_with_junk on
  // the harness side charges nothing (they manipulate the model directly),
  // so the ledger delta is exactly the calls.
  sim::CostLedger delta = cpu.mem().ledger().since(before);

  const double n = cfg.measured_calls;
  for (std::size_t c = 0; c < sim::kNumCostCategories; ++c) {
    out.cycles[c] =
        static_cast<double>(delta.get(static_cast<CostCategory>(c))) / n;
  }
  out.total_cycles = static_cast<double>(delta.total()) / n;
  out.total_us = out.total_cycles / cfg.machine.clock_mhz;
  return out;
}

std::vector<Fig2Result> run_fig2_all(int measured_calls) {
  // Paper order (Figure 2, left to right): User->User primed {no CD, hold
  // CD}, flushed {no CD, hold CD}; then User->Kernel the same.
  std::vector<Fig2Result> out;
  for (bool kernel : {false, true}) {
    for (bool flushed : {false, true}) {
      for (bool hold : {false, true}) {
        Fig2Config cfg;
        cfg.kernel_server = kernel;
        cfg.hold_cd = hold;
        cfg.flush_dcache = flushed;
        cfg.measured_calls = measured_calls;
        Fig2Result r = run_fig2(cfg);
        r.label = std::string(kernel ? "user-to-kernel" : "user-to-user") +
                  (flushed ? ", cache flushed" : ", cache primed") +
                  (hold ? ", hold CD" : ", no CD");
        out.push_back(std::move(r));
      }
    }
  }
  return out;
}

Fig3Result run_fig3(const Fig3Config& cfg) {
  HPPC_ASSERT(cfg.clients >= 1 && cfg.clients <= cfg.total_cpus);
  sim::MachineConfig mc = sim::hector_config(cfg.total_cpus);
  Machine m(mc);
  PpcFacility ppc(m);

  servers::FileServer::Config fscfg;
  fscfg.user_space = true;
  fscfg.home_node = 0;
  fscfg.critsec_scale = cfg.critsec_scale;
  fscfg.replicate_read_path = cfg.replicate_read_path;
  servers::FileServer bob(ppc, fscfg);

  // Files: one common file, or one per client homed on the client's own
  // station ("each client is requesting the length of different files").
  std::vector<std::uint32_t> file_ids;
  if (cfg.single_file) {
    const std::uint32_t f = bob.create_file(/*home=*/0, 4096);
    file_ids.assign(cfg.clients, f);
  } else {
    for (CpuId c = 0; c < cfg.clients; ++c) {
      file_ids.push_back(bob.create_file(mc.node_of_cpu(c), 4096 + c));
    }
  }

  // One client per processor.
  std::vector<Process*> clients;
  for (CpuId c = 0; c < cfg.clients; ++c) {
    auto& as = m.create_address_space(100 + c, mc.node_of_cpu(c));
    clients.push_back(
        &m.create_process(100 + c, &as, "client" + std::to_string(c),
                          mc.node_of_cpu(c)));
  }

  // Warm each processor's pools and caches.
  for (CpuId c = 0; c < cfg.clients; ++c) {
    for (int i = 0; i < 4; ++i) {
      std::uint64_t len = 0;
      servers::FileServer::get_length(ppc, m.cpu(c), *clients[c], bob.ep(),
                                      file_ids[c], &len);
    }
  }

  // Snapshot after warmup so the measured phase gets its own counter delta
  // (the replicated read path's locks_taken == 0 invariant lives there).
  obs::CounterSnapshot warm_base;
  for (CpuId c = 0; c < cfg.total_cpus; ++c) {
    warm_base.merge(m.cpu(c).counters().snapshot());
  }

  const Cycles window =
      static_cast<Cycles>(cfg.measure_ms * 1000.0 * mc.clock_mhz);
  std::vector<std::uint64_t> counts(cfg.clients, 0);
  std::vector<Cycles> deadline(cfg.clients, 0);
  RunningStats latency;
  Percentiles tails;

  for (CpuId c = 0; c < cfg.clients; ++c) {
    Cpu& cpu = m.cpu(c);
    deadline[c] = cpu.now() + window;
    Process* self = clients[c];
    const std::uint32_t fid = file_ids[c];
    self->set_body([&ppc, &m, &bob, &counts, &deadline, &latency, &tails,
                    &mc, fid, c](Cpu& cpu2, Process& p) {
      if (cpu2.now() >= deadline[c]) return;  // window over: process ends
      std::uint64_t len = 0;
      const Cycles t0 = cpu2.now();
      servers::FileServer::get_length(ppc, cpu2, p, bob.ep(), fid, &len);
      const double us = mc.us(cpu2.now() - t0);
      latency.add(us);
      tails.add(us);
      ++counts[c];
      m.ready(cpu2, p);
    });
    m.ready(cpu, *self);
  }
  m.run_until_idle();

  Fig3Result out;
  out.clients = cfg.clients;
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  out.total_calls = total;
  const double window_s = cfg.measure_ms / 1000.0;
  out.calls_per_sec = static_cast<double>(total) / window_s / 1.0;
  if (cfg.clients == 1 && counts[0] > 0) {
    out.sequential_us = cfg.measure_ms * 1000.0 / static_cast<double>(counts[0]);
  }
  out.lock_migrations = bob.lock_migrations(file_ids[0]);
  if (latency.count() > 0) {
    out.mean_call_us = latency.mean();
    out.p99_call_us = tails.p99();
  }
  for (CpuId c = 0; c < cfg.total_cpus; ++c) {
    out.counters.merge(m.cpu(c).counters().snapshot());
  }
  out.warm_counters = out.counters.delta(warm_base);
  return out;
}

}  // namespace hppc::experiments
