// Reusable experiment harnesses that reproduce the paper's evaluation.
//
// Both the benchmark binaries (bench/) and the regression tests (tests/)
// drive these, so the numbers printed by a bench are exactly the numbers
// the test suite guards.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "sim/config.h"
#include "sim/cost.h"

namespace hppc::experiments {

/// One bar of Figure 2.
struct Fig2Config {
  bool kernel_server = false;  // user->kernel instead of user->user
  bool hold_cd = false;        // worker permanently holds CD+stack
  bool flush_dcache = false;   // D-cache flushed before each call
  bool dirty_and_flush_icache = false;  // §3's "another 20-30 usec" case
  int warmup_calls = 32;
  int measured_calls = 256;
  sim::MachineConfig machine = sim::hector_config(1);
};

struct Fig2Result {
  /// Mean cycles per round trip by category.
  std::array<double, sim::kNumCostCategories> cycles{};
  double total_cycles = 0;
  double total_us = 0;

  double us(sim::CostCategory c) const;
  std::string label;
};

/// Run one Figure-2 configuration: a client process repeatedly making a
/// null PPC (8 words each way) to a dummy server that saves and restores a
/// few registers.
Fig2Result run_fig2(const Fig2Config& cfg);

/// All eight bars of Figure 2 in the paper's order:
/// User->User {primed, flushed} x {no CD, hold CD},
/// User->Kernel {primed, flushed} x {no CD, hold CD}.
std::vector<Fig2Result> run_fig2_all(int measured_calls = 256);

/// One point of Figure 3.
struct Fig3Config {
  std::uint32_t clients = 1;      // = processors in use
  bool single_file = false;       // all clients hit one common file
  double measure_ms = 30.0;       // simulated measurement window
  std::uint32_t total_cpus = 16;  // machine size
  /// Extra knob for the critical-section ablation: scales the file server's
  /// per-call locked work (1.0 reproduces the paper's setup).
  double critsec_scale = 1.0;
  /// Replicate the file server's read-mostly record block per CPU (see
  /// FileServer::Config::replicate_read_path): the GetLength path takes no
  /// lock at all. Off reproduces the published Figure-3 curves.
  bool replicate_read_path = false;
};

struct Fig3Result {
  std::uint32_t clients = 0;
  double calls_per_sec = 0;
  double sequential_us = 0;  // single-client per-call latency
  std::uint64_t total_calls = 0;
  std::uint64_t lock_migrations = 0;  // lock handoffs between processors
  double mean_call_us = 0;            // per-call latency across all clients
  double p99_call_us = 0;             // tail latency (lock-wait victims)
  /// Merged observability counters across every CPU in the run (lock and
  /// shared-line traffic separates the two curves mechanically).
  obs::CounterSnapshot counters;
  /// Counters for the measured (post-warmup) phase only: the warm-read
  /// invariant of the replicated path — locks_taken == 0 — is asserted on
  /// this delta, since warmup legitimately pays locked work (file creation,
  /// pool growth).
  obs::CounterSnapshot warm_counters;
};

/// Run one Figure-3 point: `clients` independent client processes, one per
/// processor, each in a closed loop of GetLength PPC calls to the file
/// server ("Bob").
Fig3Result run_fig3(const Fig3Config& cfg);

}  // namespace hppc::experiments
