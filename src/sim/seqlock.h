// Timeline-based simulated per-CPU seqlock replica (cost accounting for
// the repl/ layer on the simulated facility).
//
// Hector has no hardware cache coherence, so replicating read-mostly data
// per processor is a software protocol: each CPU owns a node-local replica
// record plus a one-deep update queue. A writer publishes a new version by
// storing the payload and flipping the queue's sequence word on every
// CPU's record (remote uncached stores, paid by the writer); each owner
// applies the pending update the next time it reads (local uncached
// accesses, paid by the reader) — the simulated analogue of ReplHub's
// xcall nudges on the host runtime.
//
// The model follows sim/spinlock.h's timeline idiom: the writer's stores
// open a publish window [window_start, window_end) on the replica; a
// reader whose clock lands inside the window has observed the sequence
// word mid-flip, retries (booked repl_seq_retries), and idles to the
// window's end — the seqlock retry, charged in simulated time. Readers
// earlier than the window see the previous version; readers past it apply
// and see the new one. Everything is a function of simulated clocks, so
// runs stay deterministic (the Fig3 determinism test extends to the
// replicated curve).
//
// Cost model per operation (uncached: these words are written remotely,
// so they can never live in a CPU's cache on this machine):
//   read   : 1 uncached access to the local queue/sequence word
//            + 1 uncached access to the local payload
//            (+ 2 uncached accesses when applying a pending update)
//   publish: 2 uncached stores per replica (payload + sequence flip),
//            paying the NUMA distance to each CPU's node.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "obs/counters.h"
#include "sim/cost.h"
#include "sim/memctx.h"

namespace hppc::sim {

class SimSeqlockReplica {
 public:
  /// `queue_addr` / `replica_addr` are simulated addresses on the owning
  /// CPU's node (they determine the writer's NUMA surcharge).
  SimSeqlockReplica(SimAddr queue_addr, SimAddr replica_addr)
      : queue_addr_(queue_addr), replica_addr_(replica_addr) {}

  struct ReadCharge {
    int retries = 0;    // mid-window observations (seqlock retries)
    bool applied = false;  // a pending update became visible to this read
  };

  /// Charge one replicated read on the owning CPU at its current clock.
  /// Advances the reader past any in-flight publish window and books
  /// repl_reads / repl_seq_retries on the CPU's counter block. Lock-free
  /// by construction: no locks_taken, no shared_lines_touched.
  ReadCharge read(MemContext& cpu, CostCategory cat) {
    ReadCharge out;
    cpu.access_uncached(queue_addr_, cat);  // sequence/pending check
    if (pending_ && cpu.now() >= window_start_ && cpu.now() < window_end_) {
      // Observed the sequence word mid-flip: retry until the writer's
      // stores complete, then apply.
      out.retries = 1;
      cpu.idle_until(window_end_);
    }
    if (pending_ && cpu.now() >= window_end_) {
      // Drain the one-deep update queue into the replica (local work).
      cpu.access_uncached(queue_addr_, cat);
      cpu.access_uncached(replica_addr_, cat);
      applied_version_ = version_;
      pending_ = false;
      out.applied = true;
    }
    cpu.access_uncached(replica_addr_, cat);  // payload read
    if (obs::SlotCounters* c = cpu.obs()) {
      c->inc(obs::Counter::kReplReads);
      if (out.retries != 0) {
        c->inc(obs::Counter::kReplSeqRetries,
               static_cast<std::uint64_t>(out.retries));
      }
    }
    return out;
  }

  /// Writer side: charge the publish stores (payload + sequence flip,
  /// paying the NUMA distance to this replica's home) and open the
  /// visibility window. A publish that overtakes an unapplied one
  /// coalesces: the older version becomes the "previous" value readers
  /// before the new window see. Books repl_invalidations on the writer.
  void publish(MemContext& writer, CostCategory cat) {
    if (pending_ && writer.now() >= window_end_) {
      // The earlier update was visible before this publish began; fold it
      // so pre-window readers see it as the current version.
      applied_version_ = version_;
    }
    window_start_ = writer.now();
    writer.access_uncached(queue_addr_, cat);    // payload store
    writer.access_uncached(queue_addr_, cat);    // sequence flip
    window_end_ = writer.now();
    ++version_;
    pending_ = true;
    if (obs::SlotCounters* c = writer.obs()) {
      c->inc(obs::Counter::kReplInvalidations);
    }
  }

  /// Versions: `version()` counts publishes; `applied_version()` is what a
  /// read at the CPU's current clock has already drained. The value-typed
  /// wrapper (repl::SimReplicated) keys its generation switch off the
  /// ReadCharge plus these.
  std::uint64_t version() const { return version_; }
  std::uint64_t applied_version() const { return applied_version_; }
  bool has_pending() const { return pending_; }
  Cycles window_start() const { return window_start_; }
  Cycles window_end() const { return window_end_; }

 private:
  SimAddr queue_addr_;
  SimAddr replica_addr_;
  Cycles window_start_ = 0;
  Cycles window_end_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t applied_version_ = 0;
  bool pending_ = false;
};

}  // namespace hppc::sim
