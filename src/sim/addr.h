// Simulated physical address space.
//
// The machine model never dereferences simulated addresses; it only needs
// them for cache indexing, TLB page numbers, and NUMA home-node lookup.
// Each NUMA node (Hector station) owns a 4 GiB region; allocations are
// bump-allocated within their node so that "memory local to processor P"
// (the paper's per-processor pools, stacks and service tables) really is
// homed on P's station in the model.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace hppc::sim {

inline constexpr unsigned kNodeShift = 32;

constexpr NodeId node_of_addr(SimAddr a) {
  return static_cast<NodeId>(a >> kNodeShift);
}

constexpr SimAddr node_base(NodeId n) {
  return static_cast<SimAddr>(n) << kNodeShift;
}

/// Bump allocator over the simulated physical memory of every node.
class SimAllocator {
 public:
  explicit SimAllocator(std::size_t num_nodes) : next_(num_nodes) {
    HPPC_ASSERT(num_nodes > 0 && num_nodes <= kMaxNodes);
    for (NodeId n = 0; n < num_nodes; ++n) {
      // Skip the first page so that address 0 stays invalid-looking.
      next_[n] = node_base(n) + kPageSize;
    }
  }

  /// Allocate `bytes` from node `n`, aligned to `align` (power of two).
  SimAddr alloc(NodeId n, std::size_t bytes, std::size_t align = 16) {
    HPPC_ASSERT(n < next_.size());
    HPPC_ASSERT((align & (align - 1)) == 0);
    SimAddr a = (next_[n] + align - 1) & ~static_cast<SimAddr>(align - 1);
    next_[n] = a + bytes;
    HPPC_ASSERT_MSG(node_of_addr(next_[n] - 1) == n, "node region exhausted");
    return a;
  }

  /// Allocate one whole page (the unit of PPC stack management, §4.5.4).
  SimAddr alloc_page(NodeId n) { return alloc(n, kPageSize, kPageSize); }

  std::size_t bytes_used(NodeId n) const {
    HPPC_ASSERT(n < next_.size());
    return static_cast<std::size_t>(next_[n] - node_base(n)) - kPageSize;
  }

 private:
  static constexpr std::size_t kMaxNodes = 64;
  std::vector<SimAddr> next_;
};

}  // namespace hppc::sim
