// Set-associative write-back cache model (one per CPU for data, one for
// instructions), with the 88200's cost structure:
//   - hit: cache_hit_cycles,
//   - miss: cache_fill_cycles (+ writeback cycles if the victim is dirty),
//   - first store to a clean resident line: first_store_clean_cycles extra.
// NUMA transfer surcharges are added by the caller (MemContext), which knows
// the requesting CPU's station and the line's home node.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/config.h"

namespace hppc::sim {

/// Outcome of one cache access, in cycles plus event flags for statistics.
struct CacheAccessResult {
  Cycles cycles = 0;
  bool miss = false;
  bool writeback = false;     // a dirty victim was written back
  SimAddr victim_line = 0;    // line address of the written-back victim
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& cfg)
      : cfg_(cfg), sets_(cfg.num_sets()) {
    HPPC_ASSERT(cfg.associativity >= 1);
    HPPC_ASSERT((cfg.num_sets() & (cfg.num_sets() - 1)) == 0);
    for (auto& set : sets_) set.ways.resize(cfg.associativity);
  }

  /// Access one line; `addr` may be anywhere within the line.
  CacheAccessResult access(SimAddr addr, bool is_store) {
    CacheAccessResult r;
    const SimAddr line = line_addr(addr);
    Set& set = set_of(line);
    ++tick_;

    for (auto& way : set.ways) {
      if (way.valid && way.line == line) {
        r.cycles = cfg_.costs.hit_cycles;
        if (is_store && !way.dirty) {
          r.cycles += cfg_.costs.first_store_clean_cycles;
          way.dirty = true;
        }
        way.lru = tick_;
        ++hits_;
        return r;
      }
    }

    // Miss: fill, evicting the LRU way.
    r.miss = true;
    ++misses_;
    Line* victim = &set.ways[0];
    for (auto& way : set.ways) {
      if (!way.valid) {
        victim = &way;
        break;
      }
      if (way.lru < victim->lru) victim = &way;
    }
    r.cycles = cfg_.costs.fill_cycles;
    if (victim->valid && victim->dirty) {
      r.cycles += cfg_.costs.writeback_cycles;
      r.writeback = true;
      r.victim_line = victim->line;
      ++writebacks_;
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = false;
    victim->lru = tick_;
    if (is_store) {
      r.cycles += cfg_.costs.first_store_clean_cycles;
      victim->dirty = true;
    }
    return r;
  }

  /// True if the line containing `addr` is resident.
  bool resident(SimAddr addr) const {
    const SimAddr line = line_addr(addr);
    const Set& set = sets_[set_index(line)];
    for (const auto& way : set.ways) {
      if (way.valid && way.line == line) return true;
    }
    return false;
  }

  /// Invalidate one line if present (cross-processor data invalidation on a
  /// machine without hardware coherence is done in software; hard-kill and
  /// the baseline facilities use this). Returns true if the line was dirty.
  bool invalidate(SimAddr addr) {
    const SimAddr line = line_addr(addr);
    Set& set = set_of(line);
    for (auto& way : set.ways) {
      if (way.valid && way.line == line) {
        const bool was_dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        return was_dirty;
      }
    }
    return false;
  }

  /// Invalidate everything without writing back (the "cache flushed"
  /// experiment condition of Figure 2 discards, it does not clean).
  void flush_all() {
    for (auto& set : sets_) {
      for (auto& way : set.ways) {
        way.valid = false;
        way.dirty = false;
      }
    }
  }

  /// Mark every resident line dirty ("dirtying the cache" condition, §3:
  /// subsequent misses pay writebacks on top of fills).
  void dirty_all() {
    for (auto& set : sets_) {
      for (auto& way : set.ways) {
        if (way.valid) way.dirty = true;
      }
    }
  }

  /// Fill the whole cache with unrelated lines (conflict traffic), all dirty.
  /// `junk_base` should point at otherwise-unused simulated memory.
  void fill_with_junk(SimAddr junk_base) {
    for (std::size_t i = 0; i < cfg_.num_lines(); ++i) {
      access(junk_base + i * cfg_.line_bytes, /*is_store=*/true);
    }
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }

  const CacheConfig& config() const { return cfg_; }

  SimAddr line_addr(SimAddr a) const {
    return a & ~static_cast<SimAddr>(cfg_.line_bytes - 1);
  }

 private:
  struct Line {
    SimAddr line = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };
  struct Set {
    std::vector<Line> ways;
  };

  std::size_t set_index(SimAddr line) const {
    return static_cast<std::size_t>((line / cfg_.line_bytes) &
                                    (cfg_.num_sets() - 1));
  }
  Set& set_of(SimAddr line) { return sets_[set_index(line)]; }

  CacheConfig cfg_;
  std::vector<Set> sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace hppc::sim
