// Cost accounting: the categories of Figure 2.
//
// Every cycle charged on a simulated CPU lands in exactly one category of
// the ledger, so the stacked-bar breakdown of Figure 2 can be regenerated
// and the "sum of parts == total" invariant is testable.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

namespace hppc::sim {

/// The categories of Figure 2, plus kIdle for time a CPU spends spinning or
/// waiting (used only by the multi-processor experiments).
enum class CostCategory : std::uint8_t {
  kTlbSetup = 0,      // modifying virtual->physical mappings
  kServerTime,        // worker executing server code
  kKernelSaveRestore, // minimum processor state for a process switch
  kUserSaveRestore,   // user-level registers that the call may clobber
  kCdManipulation,    // call descriptors, free lists, stack management
  kPpcKernel,         // everything else the PPC call model requires
  kTlbMiss,           // TLB reload penalties
  kTrapOverhead,      // two traps + two returns-from-interrupt
  kUnaccounted,       // pipeline stalls, interference; modelled as residue
  kIdle,              // spinning on locks / waiting (multi-CPU runs only)
  kNumCategories,
};

inline constexpr std::size_t kNumCostCategories =
    static_cast<std::size_t>(CostCategory::kNumCategories);

constexpr const char* to_string(CostCategory c) {
  switch (c) {
    case CostCategory::kTlbSetup: return "TLB setup";
    case CostCategory::kServerTime: return "server time";
    case CostCategory::kKernelSaveRestore: return "kernel save/restore";
    case CostCategory::kUserSaveRestore: return "user save/restore";
    case CostCategory::kCdManipulation: return "CD manipulation";
    case CostCategory::kPpcKernel: return "PPC kernel";
    case CostCategory::kTlbMiss: return "TLB miss";
    case CostCategory::kTrapOverhead: return "trap overhead";
    case CostCategory::kUnaccounted: return "unaccounted";
    case CostCategory::kIdle: return "idle";
    case CostCategory::kNumCategories: break;
  }
  return "?";
}

/// Per-CPU accumulator of cycles by category.
class CostLedger {
 public:
  void charge(CostCategory c, Cycles cycles) {
    cells_[static_cast<std::size_t>(c)] += cycles;
    total_ += cycles;
  }

  Cycles get(CostCategory c) const {
    return cells_[static_cast<std::size_t>(c)];
  }

  Cycles total() const { return total_; }

  void reset() {
    cells_.fill(0);
    total_ = 0;
  }

  /// Difference ledger: *this - earlier snapshot (per category).
  CostLedger since(const CostLedger& snapshot) const {
    CostLedger d;
    for (std::size_t i = 0; i < kNumCostCategories; ++i) {
      d.cells_[i] = cells_[i] - snapshot.cells_[i];
    }
    d.total_ = total_ - snapshot.total_;
    return d;
  }

  CostLedger& operator+=(const CostLedger& o) {
    for (std::size_t i = 0; i < kNumCostCategories; ++i) {
      cells_[i] += o.cells_[i];
    }
    total_ += o.total_;
    return *this;
  }

 private:
  std::array<Cycles, kNumCostCategories> cells_{};
  Cycles total_ = 0;
};

}  // namespace hppc::sim
