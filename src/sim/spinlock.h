// Timeline-based simulated spinlock.
//
// The multiprocessor experiments advance each simulated CPU's clock
// independently and only interact where the software actually shares data.
// A lock is exactly such a point: this model serializes holders on a single
// timeline (`free_at_`) and charges
//   - the spin time (booked as idle) to a contending acquirer,
//   - a line-transfer cost whenever ownership moves between stations or
//     processors (Hector has no hardware coherence, so the lock word is
//     accessed uncached; every acquire/release is a remote access when the
//     lock's home is off-station),
//   - nothing beyond a local access in the uncontended, same-owner case.
//
// Callers must be driven in global-time order (the throughput engine pops
// the earliest CPU first), which makes the timeline causally consistent.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "sim/cost.h"
#include "sim/memctx.h"

namespace hppc::sim {

class SimSpinLock {
 public:
  /// `home` is the simulated address of the lock word (determines its NUMA
  /// home node and hence the transfer cost for remote acquirers).
  explicit SimSpinLock(SimAddr home) : home_(home) {}

  /// Acquire at the acquirer's current time; advances the acquirer's clock
  /// past any spin (booked idle) plus the lock-word traffic (booked `cat`).
  void acquire(MemContext& cpu, CostCategory cat) {
    // Every acquisition is, by definition, a lock taken and a touch of a
    // line other processors access — exactly what the warm PPC path must
    // never do. Booked on the acquirer's observability block.
    if (obs::SlotCounters* c = cpu.obs()) {
      c->inc(obs::Counter::kLocksTaken);
      c->inc(obs::Counter::kSharedLinesTouched);
    }
    // Spin until the lock is free.
    cpu.idle_until(free_at_);
    // Test-and-set on the (uncached) lock word.
    cpu.access_uncached(home_, cat);
    if (last_owner_ != cpu.cpu() && last_owner_ != kInvalidCpu) {
      // Ownership migration: the next holder starts with the protected
      // data cold; charge one extra line transfer for the handoff.
      cpu.charge(cat, cpu.config().dcache.costs.fill_cycles +
                          cpu.numa_surcharge(home_));
      ++migrations_;
    }
    held_ = true;
    last_owner_ = cpu.cpu();
    ++acquisitions_;
  }

  /// Release at the holder's current time.
  void release(MemContext& cpu, CostCategory cat) {
    if (obs::SlotCounters* c = cpu.obs()) {
      c->inc(obs::Counter::kSharedLinesTouched);  // lock-word store
    }
    cpu.access_uncached(home_, cat);
    free_at_ = cpu.now();
    held_ = false;
  }

  Cycles free_at() const { return free_at_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t migrations() const { return migrations_; }
  CpuId last_owner() const { return last_owner_; }

 private:
  SimAddr home_;
  Cycles free_at_ = 0;
  CpuId last_owner_ = kInvalidCpu;
  bool held_ = false;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace hppc::sim
