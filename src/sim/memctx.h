// MemContext: one simulated CPU's view of the machine.
//
// Owns the CPU's D-cache, I-cache, TLB, cycle clock and cost ledger, and is
// the single funnel through which every simulated cycle is charged. The PPC
// facility and kernel substrate run *real* C++ code over *real* data
// structures; what makes the run a simulation is that each load, store,
// instruction burst, trap and TLB operation is mirrored into a MemContext
// call, so Figure 2's breakdown and Figure 3's curves emerge from the same
// code paths the functional tests exercise.
#pragma once

#include <cstdint>
#include <functional>

#include "common/assert.h"
#include "common/types.h"
#include "fault/failpoints.h"
#include "obs/counters.h"
#include "sim/addr.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/cost.h"
#include "sim/tlb.h"

namespace hppc::sim {

/// A contiguous region of code in the simulated machine: `instructions`
/// fixed-size (4-byte, M88100) instructions starting at `base`.
/// Executing the region streams its lines through the I-cache.
struct CodeRegion {
  SimAddr base = 0;
  std::uint32_t instructions = 0;
  TlbContext ctx = TlbContext::kSupervisor;

  std::size_t bytes() const { return std::size_t{instructions} * 4; }
};

class MemContext {
 public:
  MemContext(const MachineConfig& mc, CpuId cpu)
      : mc_(mc),
        cpu_(cpu),
        node_(mc.node_of_cpu(cpu)),
        dcache_(mc.dcache),
        icache_(mc.icache),
        tlb_(mc.tlb) {}

  CpuId cpu() const { return cpu_; }
  NodeId node() const { return node_; }
  Cycles now() const { return clock_; }
  const MachineConfig& config() const { return mc_; }

  CostLedger& ledger() { return ledger_; }
  const CostLedger& ledger() const { return ledger_; }
  CacheSim& dcache() { return dcache_; }
  CacheSim& icache() { return icache_; }
  TlbSim& tlb() { return tlb_; }

  /// Optional trace hook: observes every charge in order (category,
  /// cycles, clock-after). The reproduction's analogue of the paper's
  /// methodology — "a detailed description of the architecture, low-level
  /// measurements, and direct inspection of the compiler generated
  /// assembly code" — applied to the model instead of the hardware.
  using TraceFn = std::function<void(CostCategory, Cycles, Cycles)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  void clear_trace() { trace_ = nullptr; }

  /// Observability block of the owning CPU (set by kernel::Cpu). Lets
  /// shared primitives that only receive a MemContext — the simulated
  /// spinlock above all — book locks_taken / shared_lines_touched against
  /// the right slot. May be null for bare contexts built in unit tests.
  void set_obs(obs::SlotCounters* c) { obs_ = c; }
  obs::SlotCounters* obs() const { return obs_; }

  /// Raw charge: advances the clock and books the cycles.
  void charge(CostCategory cat, Cycles cycles) {
    clock_ += cycles;
    ledger_.charge(cat, cycles);
    if (trace_) trace_(cat, cycles, clock_);
  }

  /// Jump the clock forward without booking work (used by the event engine
  /// when a CPU sits idle until an event arrives).
  void idle_until(Cycles t) {
    if (t > clock_) {
      const Cycles gap = t - clock_;
      ledger_.charge(CostCategory::kIdle, gap);
      clock_ = t;
      if (trace_) trace_(CostCategory::kIdle, gap, clock_);
    }
  }

  /// Cached data access spanning [addr, addr+bytes). Each line touched goes
  /// through the TLB (misses booked to kTlbMiss) and the D-cache (cycles
  /// booked to `cat`); misses leaving the station pay the NUMA surcharge.
  void access(SimAddr addr, std::size_t bytes, bool is_store, TlbContext ctx,
              CostCategory cat) {
    HPPC_ASSERT(bytes > 0);
    const std::size_t line = mc_.dcache.line_bytes;
    SimAddr first = addr & ~static_cast<SimAddr>(line - 1);
    SimAddr last = (addr + bytes - 1) & ~static_cast<SimAddr>(line - 1);
    for (SimAddr a = first;; a += line) {
      tlb_access(a, ctx);
      CacheAccessResult r = dcache_.access(a, is_store);
      Cycles c = r.cycles;
      if (r.miss) c += numa_surcharge(a);
      if (r.writeback) c += numa_surcharge(r.victim_line);
      charge(cat, c);
      if (a == last) break;
    }
  }

  /// Access where the virtual and physical addresses differ (worker stacks:
  /// the CD's physical page mapped at the server's fixed stack vaddr). The
  /// TLB is indexed by the virtual page, the cache by the physical line —
  /// the 88200 caches are physically addressed, which is what makes the
  /// paper's serial stack sharing pay off: the same physical page stays hot
  /// across successive calls to different servers (§2).
  void access_mapped(SimAddr paddr, SimAddr vaddr, std::size_t bytes,
                     bool is_store, TlbContext ctx, CostCategory cat) {
    HPPC_ASSERT(bytes > 0);
    const std::size_t line = mc_.dcache.line_bytes;
    const SimAddr delta = paddr - vaddr;  // same page offset; mod-2^64 safe
    const SimAddr off_first = vaddr & ~static_cast<SimAddr>(line - 1);
    const SimAddr off_last =
        (vaddr + bytes - 1) & ~static_cast<SimAddr>(line - 1);
    for (SimAddr v = off_first;; v += line) {
      tlb_access(v, ctx);
      const SimAddr p = v + delta;
      CacheAccessResult r = dcache_.access(p, is_store);
      Cycles c = r.cycles;
      if (r.miss) c += numa_surcharge(p);
      if (r.writeback) c += numa_surcharge(r.victim_line);
      charge(cat, c);
      if (v == off_last) break;
    }
  }

  void load(SimAddr addr, std::size_t bytes, TlbContext ctx,
            CostCategory cat) {
    access(addr, bytes, /*is_store=*/false, ctx, cat);
  }

  void store(SimAddr addr, std::size_t bytes, TlbContext ctx,
             CostCategory cat) {
    access(addr, bytes, /*is_store=*/true, ctx, cat);
  }

  /// Uncached access (device registers, lock words on a machine without
  /// hardware coherence): 10 cycles local plus the NUMA surcharge.
  void access_uncached(SimAddr addr, CostCategory cat) {
    Cycles c = mc_.uncached_local_cycles + numa_surcharge(addr);
    // Fault seam: an off-station uncached access (lock word, interrupt
    // register) pays a pathological interconnect round trip — models a
    // congested or degraded link. Injections are visible via
    // fault::injected("sim.mem.remote_delay"); the cost lands on the same
    // ledger category as the access itself.
    if (numa_surcharge(addr) != 0 && HPPC_FAULT_POINT("sim.mem.remote_delay")) {
      c += 100 * mc_.numa_hop_cycles;
    }
    charge(cat, c);
  }

  /// Execute a code region: one cycle per instruction (pipelined hits) plus
  /// I-cache fills for non-resident lines, booked to `cat`.
  void exec(const CodeRegion& code, CostCategory cat) {
    charge(cat, code.instructions * mc_.icache.costs.hit_cycles);
    const std::size_t line = mc_.icache.line_bytes;
    const std::size_t n = (code.bytes() + line - 1) / line;
    for (std::size_t i = 0; i < n; ++i) {
      const SimAddr a = code.base + i * line;
      tlb_access(a, code.ctx);
      CacheAccessResult r = icache_.access(a, /*is_store=*/false);
      Cycles c = r.cycles;
      if (r.miss) c += numa_surcharge(a);
      // Subtract the hit cycle already charged per instruction above so a
      // fully-resident region costs exactly instructions * hit_cycles.
      c = c > mc_.icache.costs.hit_cycles ? c - mc_.icache.costs.hit_cycles : 0;
      charge(cat, c);
    }
  }

  /// One trap into supervisor mode plus the matching return (half of the
  /// "two traps and corresponding return-from-interrupts" per round trip).
  void trap_roundtrip() {
    charge(CostCategory::kTrapOverhead, mc_.trap_roundtrip_cycles);
  }

  /// TLB/page-table manipulation primitives (booked to kTlbSetup).
  void tlb_map_one(SimAddr vaddr, TlbContext ctx) {
    (void)vaddr;
    (void)ctx;
    charge(CostCategory::kTlbSetup, mc_.tlb_map_one_cycles);
  }

  void tlb_unmap_one(SimAddr vaddr, TlbContext ctx) {
    tlb_.invalidate(vaddr, ctx);
    charge(CostCategory::kTlbSetup, mc_.tlb_map_one_cycles);
  }

  void tlb_flush_user() {
    tlb_.flush_user();
    charge(CostCategory::kTlbSetup, mc_.tlb_flush_user_cycles);
  }

  /// NUMA round-trip surcharge for traffic whose home is off-station.
  Cycles numa_surcharge(SimAddr addr) const {
    const NodeId home = node_of_addr(addr);
    return mc_.numa_hop_cycles * mc_.hops(node_, home);
  }

 private:
  void tlb_access(SimAddr addr, TlbContext ctx) {
    TlbAccessResult t = tlb_.access(addr, ctx);
    if (t.miss) charge(CostCategory::kTlbMiss, t.cycles);
  }

  const MachineConfig& mc_;
  CpuId cpu_;
  NodeId node_;
  CacheSim dcache_;
  CacheSim icache_;
  TlbSim tlb_;
  CostLedger ledger_;
  Cycles clock_ = 0;
  TraceFn trace_;
  obs::SlotCounters* obs_ = nullptr;
};

}  // namespace hppc::sim
