// Dual-context TLB model.
//
// The 88200 keeps separate user and supervisor translation contexts in its
// ATC (§3: "dual context TLB (user/supervisor bit)"). This is what makes
// user->kernel PPC calls cheaper than user->user calls in Figure 2: calls
// into the supervisor space need no user-context flush, so the client's
// translations survive the round trip, while user->user calls flush the
// user context twice and eat the resulting misses at 27 cycles each.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/config.h"

namespace hppc::sim {

enum class TlbContext : std::uint8_t { kUser = 0, kSupervisor = 1 };

struct TlbAccessResult {
  Cycles cycles = 0;
  bool miss = false;
};

class TlbSim {
 public:
  explicit TlbSim(const TlbConfig& cfg) : cfg_(cfg), entries_(cfg.entries) {}

  /// Translate the page containing `vaddr` under `ctx`; charges the miss
  /// penalty and installs the entry on a miss (fully-associative LRU).
  TlbAccessResult access(SimAddr vaddr, TlbContext ctx) {
    const SimAddr vpn = vaddr >> kPageShift;
    ++tick_;
    for (auto& e : entries_) {
      if (e.valid && e.ctx == ctx && e.vpn == vpn) {
        e.lru = tick_;
        ++hits_;
        return {0, false};
      }
    }
    ++misses_;
    Entry* victim = &entries_[0];
    for (auto& e : entries_) {
      if (!e.valid) {
        victim = &e;
        break;
      }
      if (e.lru < victim->lru) victim = &e;
    }
    victim->valid = true;
    victim->ctx = ctx;
    victim->vpn = vpn;
    victim->lru = tick_;
    return {cfg_.miss_cycles, true};
  }

  /// Invalidate all user-context entries: the cost of switching address
  /// spaces. Supervisor entries survive (the dual-context property).
  void flush_user() {
    for (auto& e : entries_) {
      if (e.valid && e.ctx == TlbContext::kUser) e.valid = false;
    }
  }

  /// Invalidate one translation (unmap / TLB shootdown).
  void invalidate(SimAddr vaddr, TlbContext ctx) {
    const SimAddr vpn = vaddr >> kPageShift;
    for (auto& e : entries_) {
      if (e.valid && e.ctx == ctx && e.vpn == vpn) e.valid = false;
    }
  }

  void flush_all() {
    for (auto& e : entries_) e.valid = false;
  }

  bool present(SimAddr vaddr, TlbContext ctx) const {
    const SimAddr vpn = vaddr >> kPageShift;
    for (const auto& e : entries_) {
      if (e.valid && e.ctx == ctx && e.vpn == vpn) return true;
    }
    return false;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    SimAddr vpn = 0;
    std::uint64_t lru = 0;
    TlbContext ctx = TlbContext::kUser;
    bool valid = false;
  };

  TlbConfig cfg_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hppc::sim
