// Machine configuration: the modelled multiprocessor.
//
// Defaults reproduce the paper's platform (§3): the Hector shared-memory
// NUMA multiprocessor with 16.67 MHz Motorola 88100/88200 processors,
// 16 KB instruction and data caches with 16-byte lines, a dual-context
// (user/supervisor) TLB with a 27-cycle miss penalty, ~1.7 us trap cost,
// 10-cycle uncached local accesses and 20-cycle cache loads/writebacks with
// an extra 10 cycles on the first store to a clean line. Hector has no
// hardware cache coherence; sharing costs are paid as explicit uncached or
// invalidate/transfer traffic.
//
// Every constant is overridable so benches can sweep them (ablations) and
// tests can pin tiny configurations.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace hppc::sim {

struct CacheCosts {
  Cycles fill_cycles = 20;        // line load from memory (§3)
  Cycles writeback_cycles = 20;   // dirty eviction (§3)
  Cycles first_store_clean_cycles = 10;  // first store to a clean line (§3)
  Cycles hit_cycles = 1;          // pipelined hit
};

struct CacheConfig {
  std::size_t size_bytes = 16 * 1024;  // 88200: 16 KB
  std::size_t line_bytes = 16;         // 16-byte lines
  std::size_t associativity = 4;       // 88200 CMMU is 4-way set-associative
  CacheCosts costs{};

  std::size_t num_lines() const { return size_bytes / line_bytes; }
  std::size_t num_sets() const { return num_lines() / associativity; }
};

/// Instruction fetch streams sequentially, so the effective fill cost per
/// line is much lower than a demand data miss (the CMMU overlaps the next
/// fetch with execution). Calibrated so that flushing the I-cache adds the
/// 20-30 us the paper reports rather than a full demand-miss penalty per
/// code line.
inline CacheConfig default_icache_config() {
  CacheConfig c;
  c.costs.fill_cycles = 4;
  c.costs.writeback_cycles = 0;  // code is never dirty
  c.costs.first_store_clean_cycles = 0;
  return c;
}

struct TlbConfig {
  // The 88200 has a dual-context (user/supervisor) fully-associative
  // block/page ATC; 56 page entries per CMMU. We model one unified
  // dual-context TLB per CPU.
  std::size_t entries = 56;
  Cycles miss_cycles = 27;  // measured on Hector (§3)
};

struct MachineConfig {
  std::uint32_t num_cpus = 16;
  std::uint32_t cpus_per_station = 4;  // Hector: stations on a ring

  double clock_mhz = 16.67;

  CacheConfig dcache{};
  CacheConfig icache = default_icache_config();
  TlbConfig tlb{};

  // Uncached access cost (§3: "Uncached local memory accesses require 10
  // cycles"); remote uncached accesses add the NUMA surcharge per hop.
  Cycles uncached_local_cycles = 10;

  // Residual pipeline-stall/interference cycles charged once per PPC call
  // (the paper's "unaccounted" category: "likely pipeline stalls, extra TLB
  // misses, and cache misses caused by cache interference").
  Cycles unaccounted_stall_cycles_per_call = 40;

  // NUMA: additional cycles per off-station hop for any memory traffic that
  // leaves the processor module (line fills, writebacks, uncached accesses).
  // The paper reports the PPC design makes NUMA distance unmeasurable (§3);
  // the ablation bench verifies exactly that by sweeping this cost.
  Cycles numa_hop_cycles = 12;

  // Trap to supervisor mode and the matching return: ~1.7 us total (§3).
  // At 16.67 MHz that is ~28 cycles; keep it in cycles so sweeps stay exact.
  Cycles trap_roundtrip_cycles = 28;

  // Cost of modifying the TLB/page tables for one mapping (insert or
  // remove a translation), and of flushing the user context on an address-
  // space switch. These are supervisor-mode register writes to the CMMU.
  Cycles tlb_map_one_cycles = 6;
  Cycles tlb_flush_user_cycles = 14;

  // Cross-processor interrupt latency (used for hard-kill cleanup, §4.5.2,
  // and the remote-interrupt pattern of §4.3).
  Cycles ipi_latency_cycles = 120;

  double cycles_per_us() const { return clock_mhz; }
  double us(Cycles c) const { return static_cast<double>(c) / clock_mhz; }
  Cycles cycles_from_us(double us_) const {
    return static_cast<Cycles>(us_ * clock_mhz + 0.5);
  }

  NodeId node_of_cpu(CpuId cpu) const { return cpu / cpus_per_station; }
  std::uint32_t num_nodes() const {
    return (num_cpus + cpus_per_station - 1) / cpus_per_station;
  }

  /// Hop count between two stations on the Hector ring (shorter way round).
  std::uint32_t hops(NodeId a, NodeId b) const {
    if (a == b) return 0;
    const std::uint32_t n = num_nodes();
    const std::uint32_t d = a > b ? a - b : b - a;
    const std::uint32_t around = n - d;
    return d < around ? d : around;
  }
};

/// The paper's platform, verbatim.
inline MachineConfig hector_config(std::uint32_t cpus = 16) {
  MachineConfig cfg;
  cfg.num_cpus = cpus;
  return cfg;
}

}  // namespace hppc::sim
