// Replicated read-mostly objects: a cache-line-aligned, seqlock-versioned
// replica of a small trivially-copyable T per slot/CPU.
//
// The paper removes locks from the IPC *facility*; Figure 3 then shows the
// next bottleneck is any lock the *service* takes — the per-file spinlock
// serializes ~16 us of every 66 us GetLength call and the single-file curve
// saturates at four processors. For read-mostly service state the remedy is
// the same per-processor discipline the facility itself uses: give every
// slot its own replica, make reads validate a slot-local sequence counter
// (no shared lines touched, no locks), and push the rare writes through a
// single master path that propagates new versions outward.
//
// Read protocol (per replica, classic seqlock with TSan-clean atomics):
//   s0 = seq.load(acquire); if odd, the replica is mid-update -> retry
//   copy the payload words with relaxed atomic loads
//   fence(acquire); if seq.load(relaxed) == s0 the copy is consistent
// After kMaxSeqRetries failed attempts the reader falls back to the locked
// master copy (booked as repl_fallback_locked + locks_taken) so a stalled
// writer can never wedge readers.
//
// Write protocol: mutate the master under its mutex, bump the version, then
// publish — either inline to every replica (standalone mode), or through a
// propagator hook (repl::ReplHub rides Runtime::call_remote_async so each
// owner refreshes its own replica at its next drain; see repl_hub.h). All
// replica publishes are serialized by the master mutex, so the sequence
// word is never torn by two writers.
//
// Consistency contract: readers see a *consistent* (never torn) value that
// is at most one propagation delay stale. Use a lock instead when readers
// must observe a write the instant it completes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/cacheline.h"
#include "common/cpu_relax.h"
#include "mem/arena.h"
#include "obs/counters.h"

namespace hppc::repl {

/// Seqlock read attempts before a reader gives up and takes the master
/// lock. Retries only happen while a writer is mid-publish on this exact
/// replica, so the bound is generous.
inline constexpr int kMaxSeqRetries = 8;

/// Writer-slot sentinel for threads that own no runtime slot.
inline constexpr std::uint32_t kNoSlot = ~0u;

struct ReplicatedTestAccess;  // white-box test hook (stall a replica)

template <typename T>
class Replicated {
  static_assert(std::is_trivially_copyable_v<T>,
                "replicas are copied word-by-word");
  static_assert(sizeof(T) <= 256, "replicate small records, not buffers");

 public:
  /// Called once per non-writer slot on write() when installed: posts the
  /// refresh to `target_slot` (ReplHub rides the xcall ring). The writer's
  /// own replica is always published inline before the propagator runs.
  using Propagator = std::function<void(
      std::uint32_t writer_slot, std::uint32_t target_slot,
      std::uint64_t version)>;

  /// Maps a slot to the NUMA node its replica should live on (defaults to
  /// node 0 for every slot; Runtime passes its slot-striping).
  using NodeOf = std::function<NodeId(std::uint32_t slot)>;

  /// Without an arena, replicas live in one heap array (cache-line aligned,
  /// first-touch placement). With one, each slot's replica is arena-placed
  /// on `node_of(slot)` — the read path's seqlock line is then node-local
  /// to its single reader, matching the paper's per-processor discipline.
  explicit Replicated(std::uint32_t slots, T initial = T{},
                      mem::Arena* arena = nullptr, NodeOf node_of = {})
      : master_(initial),
        slots_(slots),
        replicas_(slots, nullptr),
        counters_(slots, nullptr) {
    if (arena != nullptr) {
      for (std::uint32_t s = 0; s < slots_; ++s) {
        replicas_[s] = arena->create<Replica>(node_of ? node_of(s) : 0);
      }
    } else {
      heap_ = std::make_unique<Replica[]>(slots);
      for (std::uint32_t s = 0; s < slots_; ++s) replicas_[s] = &heap_[s];
    }
    for (std::uint32_t s = 0; s < slots_; ++s) {
      store_words(*replicas_[s], initial, /*version=*/0);
    }
  }

  Replicated(const Replicated&) = delete;
  Replicated& operator=(const Replicated&) = delete;

  std::uint32_t slots() const { return slots_; }

  /// Wire a slot's observability block (repl_reads / repl_seq_retries /
  /// repl_fallback_locked book here). The block must be owned by the thread
  /// that calls read(slot) — the same single-writer discipline every
  /// SlotCounters block carries.
  void attach_counters(std::uint32_t slot, obs::SlotCounters* c) {
    counters_[slot] = c;
  }

  /// Install the cross-slot propagation hook (see ReplHub). Without one,
  /// write() publishes every replica inline from the writing thread.
  void set_propagator(Propagator p) { propagator_ = std::move(p); }

  /// Lock-free read of `slot`'s replica. Must be called by the thread that
  /// currently owns the slot (its registered thread, or a gate thief) so
  /// the counter booking stays single-writer. Never blocks on a writer for
  /// more than the retry bound; the fallback takes the master mutex.
  T read(std::uint32_t slot) {
    Replica& r = *replicas_[slot];
    obs::SlotCounters* c = counters_[slot];
    std::uint64_t retries = 0;
    for (int attempt = 0; attempt < kMaxSeqRetries; ++attempt) {
      const std::uint32_t s0 = r.seq.load(std::memory_order_acquire);
      if (s0 & 1u) {  // mid-update
        ++retries;
        cpu_relax();
        continue;
      }
      std::array<std::uint64_t, kWords> w;
      for (std::size_t i = 0; i < kWords; ++i) {
        w[i] = r.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (r.seq.load(std::memory_order_relaxed) == s0) {
        if (c != nullptr) {
          c->inc(obs::Counter::kReplReads);
          if (retries != 0) c->inc(obs::Counter::kReplSeqRetries, retries);
        }
        T out;
        std::memcpy(&out, w.data(), sizeof(T));
        return out;
      }
      ++retries;
    }
    // Retry bound exhausted: a writer is parked mid-publish on this
    // replica. Read the master under its lock — correct, just not private.
    if (c != nullptr) {
      c->inc(obs::Counter::kReplReads);
      c->inc(obs::Counter::kReplSeqRetries, retries);
      c->inc(obs::Counter::kReplFallbackLocked);
      c->inc(obs::Counter::kLocksTaken);
    }
    std::lock_guard<std::mutex> lock(master_mutex_);
    return master_;
  }

  /// Single writer path: mutate the master under its mutex, then propagate.
  /// `writer_slot` names the calling thread's slot (its replica is
  /// published inline so the writer reads its own writes immediately);
  /// pass repl::kNoSlot from threads that own no slot.
  template <typename Fn>
    requires requires(Fn f, T& t) { f(t); }
  void write(std::uint32_t writer_slot, Fn&& mutate) {
    std::lock_guard<std::mutex> lock(master_mutex_);
    mutate(master_);
    const std::uint64_t v = version_.load(std::memory_order_relaxed) + 1;
    version_.store(v, std::memory_order_relaxed);
    std::uint64_t published = 0;
    std::uint64_t remote_lines = 0;
    if (writer_slot != kNoSlot) {
      store_words(*replicas_[writer_slot], master_, v);
      ++published;
    }
    for (std::uint32_t s = 0; s < slots_; ++s) {
      if (s == writer_slot) continue;
      if (propagator_) {
        propagator_(writer_slot, s, v);  // ReplHub books the ring traffic
      } else {
        store_words(*replicas_[s], master_, v);
        ++remote_lines;  // inline publish writes another slot's line
      }
      ++published;
    }
    if (writer_slot != kNoSlot && counters_[writer_slot] != nullptr) {
      obs::SlotCounters* c = counters_[writer_slot];
      c->inc(obs::Counter::kReplInvalidations, published);
      c->inc(obs::Counter::kLocksTaken);  // the master mutex
      if (remote_lines != 0) {
        c->inc(obs::Counter::kSharedLinesTouched, remote_lines);
      }
    }
  }

  /// Owner-side refresh: copy the current master into `slot`'s replica.
  /// ReplHub invokes this when the posted update reaches the slot; also
  /// the recovery path for a replica found stale by other means. Takes the
  /// master mutex (booked on the slot) — propagation, not the read path.
  void pull(std::uint32_t slot) {
    if (counters_[slot] != nullptr) {
      counters_[slot]->inc(obs::Counter::kLocksTaken);
    }
    std::lock_guard<std::mutex> lock(master_mutex_);
    store_words(*replicas_[slot], master_,
                version_.load(std::memory_order_relaxed));
  }

  /// Master version (writes so far). Relaxed: use for staleness probes.
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// The version a slot's replica last applied.
  std::uint64_t replica_version(std::uint32_t slot) const {
    return replicas_[slot]->version.load(std::memory_order_relaxed);
  }

 private:
  friend struct ReplicatedTestAccess;

  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  /// One slot's replica: the sequence word and the payload share the
  /// slot-private line(s); nothing here is written by remote readers.
  struct alignas(kHostCacheLine) Replica {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint64_t> version{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  /// Seqlock write: callers hold master_mutex_, so `seq` moves odd->even
  /// under exactly one thread at a time; readers key off the parity.
  static void store_words(Replica& r, const T& value, std::uint64_t v) {
    std::array<std::uint64_t, kWords> w{};
    std::memcpy(w.data(), &value, sizeof(T));
    const std::uint32_t s = r.seq.load(std::memory_order_relaxed);
    r.seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i) {
      r.words[i].store(w[i], std::memory_order_relaxed);
    }
    r.version.store(v, std::memory_order_relaxed);
    r.seq.store(s + 2, std::memory_order_release);
  }

  mutable std::mutex master_mutex_;
  T master_;
  std::atomic<std::uint64_t> version_{0};
  std::uint32_t slots_;
  std::vector<Replica*> replicas_;  // arena- or heap_-backed
  std::unique_ptr<Replica[]> heap_;   // fallback storage (no arena)
  std::vector<obs::SlotCounters*> counters_;
  Propagator propagator_;
};

/// White-box hook for the retry-bound tests: parks a replica in the
/// mid-update (odd sequence) state and releases it again. Test-only.
struct ReplicatedTestAccess {
  template <typename T>
  static void begin_stall(Replicated<T>& r, std::uint32_t slot) {
    r.replicas_[slot]->seq.fetch_add(1, std::memory_order_release);
  }
  template <typename T>
  static void end_stall(Replicated<T>& r, std::uint32_t slot) {
    r.replicas_[slot]->seq.fetch_add(1, std::memory_order_release);
  }
};

}  // namespace hppc::repl
