// Host-runtime propagation for Replicated<T>: writers nudge every other
// slot through the existing xcall rings (Runtime::call_remote_async), and
// each slot refreshes its own replica when the nudge reaches its drain —
// the host analogue of the simulated facility's per-CPU update queues.
//
// Why a nudge and not the payload? The ring cell carries 8 words; a
// replica can be larger, and more importantly the refresh must read the
// *latest* master (two writes may coalesce into one pull). So the cell
// carries only {object id}, and the handler calls Replicated::pull(slot),
// which copies the master under its mutex into the slot's replica with the
// seqlock publish protocol. Nudges are deduplicated per (object, slot)
// with a pending flag so a write burst posts at most one cell per slot.
//
// Delivery contract is the ring's: the update lands at the target's next
// poll()/serve() drain (or a help-drain/gate-steal). Until then the slot
// reads its previous — consistent, bounded-stale — version. Slots that
// never drain keep their stale replica; that is the same liveness contract
// every xcall ring already carries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/failpoints.h"
#include "obs/trace.h"
#include "ppc/regs.h"
#include "repl/replicated.h"
#include "rt/runtime.h"

namespace hppc::repl {

class ReplHub {
 public:
  /// Binds the hub's refresh service on `rt`. One hub can manage any
  /// number of replicated objects; they share the entry point.
  explicit ReplHub(rt::Runtime& rt, std::string name = "repl-hub",
                   ProgramId program = 0)
      : rt_(rt), program_(program) {
    ep_ = rt_.bind({.name = std::move(name)}, program_,
                   [this](rt::RtCtx& ctx, rt::RegSet& regs) {
                     handle(ctx, regs);
                   });
  }

  ReplHub(const ReplHub&) = delete;
  ReplHub& operator=(const ReplHub&) = delete;

  EntryPointId ep() const { return ep_; }

  /// Take over propagation for `obj`: wires each slot's runtime counter
  /// block into the object and installs the xcall-ring propagator. The
  /// object must outlive the hub's traffic.
  template <typename T>
  std::uint32_t manage(Replicated<T>& obj) {
    const std::uint32_t id = static_cast<std::uint32_t>(entries_.size());
    auto entry = std::make_unique<Entry>();
    entry->pull = [&obj](std::uint32_t slot) { obj.pull(slot); };
    entry->pending = std::make_unique<std::atomic<bool>[]>(rt_.slots());
    entries_.push_back(std::move(entry));
    for (std::uint32_t s = 0; s < rt_.slots(); ++s) {
      obj.attach_counters(s, &rt_.slot_counters(s));
    }
    obj.set_propagator([this, id](std::uint32_t writer_slot,
                                  std::uint32_t target_slot,
                                  std::uint64_t /*version*/) {
      post_update(id, writer_slot, target_slot);
    });
    return id;
  }

 private:
  struct Entry {
    std::function<void(std::uint32_t)> pull;
    // Per-slot "a refresh cell is already in flight" flag: a write burst
    // posts at most one ring cell per slot, and the pull always reads the
    // latest master anyway.
    std::unique_ptr<std::atomic<bool>[]> pending;
  };

  void post_update(std::uint32_t id, std::uint32_t writer_slot,
                   std::uint32_t target_slot) {
    Entry& e = *entries_[id];
    if (e.pending[target_slot].exchange(true, std::memory_order_acq_rel)) {
      return;  // a cell is already queued; its pull will see this write
    }
    rt::RegSet regs;
    regs[0] = id;
    ppc::set_op(regs, kReplPullOp);
    // Writers without a slot (kNoSlot) still post; call_remote_async only
    // uses the caller slot for trace attribution.
    const rt::SlotId from = writer_slot == kNoSlot ? 0 : writer_slot;
    rt_.call_remote_async(from, target_slot, program_, ep_, regs);
    if (writer_slot != kNoSlot) {
      HPPC_TRACE_EVENT(rt_.trace_ring(writer_slot), obs::host_trace_now(),
                       writer_slot, obs::TraceEvent::kReplPublish, id);
    }
  }

  void handle(rt::RtCtx& ctx, rt::RegSet& regs) {
    if (ppc::opcode_of(regs) != kReplPullOp || regs[0] >= entries_.size()) {
      ppc::set_rc(regs, Status::kInvalidArgument);
      return;
    }
    Entry& e = *entries_[regs[0]];
    const std::uint32_t slot = ctx.slot();
    // Clear the flag BEFORE pulling: a write that lands during the pull
    // posts a fresh nudge instead of being swallowed.
    e.pending[slot].store(false, std::memory_order_release);
    // Fault seam: stretch the window between flag-clear and pull (the
    // failpoint burns its delay budget) so races that hide in that gap —
    // a write landing mid-pull — get hit deterministically under chaos.
    if (HPPC_FAULT_POINT("repl.pull.delay")) {
      ctx.runtime().slot_counters(slot).inc(obs::Counter::kFaultsInjected);
      HPPC_TRACE_EVENT(ctx.runtime().trace_ring(slot), obs::host_trace_now(),
                       slot, obs::TraceEvent::kFaultInject, regs[0]);
    }
    e.pull(slot);
    HPPC_TRACE_EVENT(ctx.runtime().trace_ring(slot), obs::host_trace_now(),
                     slot, obs::TraceEvent::kReplPull, regs[0]);
    ppc::set_rc(regs, Status::kOk);
  }

  static constexpr Word kReplPullOp = 1;

  rt::Runtime& rt_;
  ProgramId program_;
  EntryPointId ep_ = kInvalidEntryPoint;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace hppc::repl
