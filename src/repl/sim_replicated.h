// SimReplicated<T>: the simulated-facility face of the replicated
// read-mostly object layer. One node-local replica record per CPU, each
// modelled by a sim::SimSeqlockReplica (the timeline seqlock cost model),
// carrying a functional value of type T with two generations — the value a
// reader earlier than the in-flight publish window sees, and the value a
// reader past it applies. Mirrors repl::Replicated<T> on the host runtime:
// reads are lock-free and slot-local, writes are serialized by the caller
// (the service's existing master lock) and propagated to every CPU's
// update queue at the writer's expense.
#pragma once

#include <type_traits>
#include <vector>

#include "kernel/machine.h"
#include "sim/seqlock.h"

namespace hppc::repl {

template <typename T>
class SimReplicated {
  static_assert(std::is_trivially_copyable_v<T>,
                "replicas are copied by value");

 public:
  /// Allocates one replica record + update-queue word per CPU, homed on
  /// the CPU's own node so warm reads never leave the station.
  SimReplicated(kernel::Machine& m, T initial) : master_(initial) {
    const sim::MachineConfig& mc = m.config();
    per_cpu_.reserve(mc.num_cpus);
    for (CpuId c = 0; c < mc.num_cpus; ++c) {
      const NodeId node = mc.node_of_cpu(c);
      const SimAddr queue = m.allocator().alloc(node, 64, 64);
      const SimAddr replica = m.allocator().alloc(node, 64, 64);
      per_cpu_.push_back(PerCpu{sim::SimSeqlockReplica(queue, replica),
                                initial, initial});
    }
  }

  struct ReadOutcome {
    T value{};
    int retries = 0;
    bool applied = false;
  };

  /// Read the calling CPU's own replica at its current clock. Charges the
  /// seqlock read (and any retry wait / update application) to `cat`;
  /// never takes a lock, never touches another CPU's lines.
  ReadOutcome read(sim::MemContext& cpu, sim::CostCategory cat) {
    PerCpu& p = per_cpu_[cpu.cpu()];
    const sim::SimSeqlockReplica::ReadCharge ch = p.sl.read(cpu, cat);
    if (ch.applied) p.current = p.pending;
    return ReadOutcome{p.current, ch.retries, ch.applied};
  }

  /// Publish a new version to every CPU's update queue at the writer's
  /// expense. The caller serializes writers (the service's master lock);
  /// readers on other CPUs see the new value once their clock passes the
  /// per-replica publish window.
  void write(sim::MemContext& writer, sim::CostCategory cat, const T& value) {
    for (PerCpu& p : per_cpu_) {
      // A still-unapplied older update that was already visible before
      // this publish begins becomes the "previous" generation.
      if (p.sl.has_pending() && writer.now() >= p.sl.window_end()) {
        p.current = p.pending;
      }
      p.pending = value;
      p.sl.publish(writer, cat);
    }
    master_ = value;
  }

  /// The master (latest-written) value — harness/introspection only; the
  /// service path always goes through read().
  const T& master() const { return master_; }

  std::uint64_t version(CpuId cpu) const {
    return per_cpu_[cpu].sl.version();
  }

 private:
  struct PerCpu {
    sim::SimSeqlockReplica sl;
    T current;  // visible to readers before the in-flight window
    T pending;  // visible once the reader's clock passes the window
  };

  std::vector<PerCpu> per_cpu_;
  T master_{};
};

}  // namespace hppc::repl
