// A sample domain service on the host runtime: a fixed-capacity key/value
// store exposed through the PPC-style register interface. Demonstrates how
// a real service composes the runtime's pieces — opcode dispatch, the
// worker-initialization protocol (per-worker scratch buffers), caller
// authentication by program token (§4.1), and per-slot sharding so the
// fast path stays shared-nothing.
//
// Keys and values are single words (the register-passing discipline: bulk
// data would go through a copy interface, §4.2). Each slot owns an
// independent shard; cross-slot access goes through the owner's xcall
// channel (Runtime::call_remote — direct execution on an idle owner, a
// bounded ring cell otherwise), mirroring the cross-processor rule of the
// simulated kernel without the allocation the old post() path paid.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "repl/repl_hub.h"
#include "repl/replicated.h"
#include "rt/dispatch.h"
#include "rt/runtime.h"

namespace hppc::rt {

enum KvOp : Word {
  kKvPut = 1,     // w[0]=key, w[1]=value
  kKvGet = 2,     // w[0]=key            -> w[1]=value
  kKvErase = 3,   // w[0]=key (owner of the key's entry only)
  kKvSize = 4,    // -> w[0]=entries in this slot's shard
  kKvOwnerOf = 5, // w[0]=key            -> w[1]=owning program
};

/// Fixed capacity of the replicated hot set. Sized so HotSet stays within
/// the Replicated<T> small-payload bound (256 bytes); the config capacity
/// is clamped to this.
inline constexpr std::size_t kKvHotSetCapacity = 8;

/// Default chunk stride of the vectored stubs (multi_put / multi_get): one
/// chunk = one stack RegSet array, one batched submission (one claim CAS +
/// one doorbell). Overridable per instance via Config::multi_op_chunk.
inline constexpr std::size_t kKvDefaultMultiOpChunk = 16;

/// Upper bound on the chunk stride: the stack arrays the vectored stubs
/// carry are sized to this at compile time, and a single batched submission
/// cannot exceed one ring's capacity anyway.
inline constexpr std::size_t kKvMaxMultiOpChunk = XcallRing::kCapacity;

struct KvServiceConfig {
  std::string name = "kv";
  std::size_t shard_capacity = 1024;
  /// When set, only the creating program may erase an entry.
  bool enforce_ownership = true;
  /// Replicate a read-mostly hot set of entries per slot
  /// (repl::Replicated, propagated through the xcall rings by a ReplHub):
  /// get_remote consults the caller's local seqlock replica first and only
  /// falls back to the owner's xcall channel on a miss — the same
  /// un-saturation the file server's replicated record block buys on the
  /// simulated facility. Entries are admitted write-through on put while
  /// space remains. 0 disables; clamped to kKvHotSetCapacity.
  std::size_t replicated_hot_capacity = 0;
  /// Chunk stride of the vectored stubs. Clamped to
  /// [1, kKvMaxMultiOpChunk]; tune down when callers interleave latency-
  /// sensitive singles with bursts, up (toward ring capacity) for pure
  /// bulk-load throughput.
  std::size_t multi_op_chunk = kKvDefaultMultiOpChunk;
};

class KvService {
 public:
  using Config = KvServiceConfig;

  KvService(Runtime& rt, KvServiceConfig cfg = {})
      : rt_(rt),
        cfg_(std::move(cfg)),
        chunk_(std::clamp<std::size_t>(cfg_.multi_op_chunk, 1,
                                       kKvMaxMultiOpChunk)),
        shards_(rt.slots()) {
    for (auto& shard : shards_) {
      shard->entries.resize(cfg_.shard_capacity);
    }
    if (cfg_.replicated_hot_capacity > 0) {
      hot_cap_ = std::min(cfg_.replicated_hot_capacity, kKvHotSetCapacity);
      // Replicas live in the runtime arena, each on its reading slot's node.
      hot_ = std::make_unique<repl::Replicated<HotSet>>(
          rt_.slots(), HotSet{}, &rt_.arena(),
          [this](std::uint32_t s) { return rt_.node_of_slot(s); });
      hub_ = std::make_unique<repl::ReplHub>(rt_, cfg_.name + "-repl");
      hub_->manage(*hot_);
    }
    ep_ = rt_.bind({.name = cfg_.name}, /*program=*/0,
                   [this](RtCtx& ctx, RegSet& regs) { init(ctx, regs); });
  }

  EntryPointId ep() const { return ep_; }

  /// Workers initialized so far (the §4.5.3 protocol at work).
  std::uint32_t initialized_workers() const {
    std::uint32_t n = 0;
    for (const auto& s : shards_) n += s->inits;
    return n;
  }

  // Convenience client stubs (run on the calling thread's slot).
  Status put(SlotId slot, ProgramId caller, Word key, Word value) {
    RegSet r;
    r[0] = key;
    r[1] = value;
    ppc::set_op(r, kKvPut);
    return rt_.call(slot, caller, ep_, r);
  }

  std::optional<Word> get(SlotId slot, ProgramId caller, Word key) {
    RegSet r;
    r[0] = key;
    ppc::set_op(r, kKvGet);
    if (rt_.call(slot, caller, ep_, r) != Status::kOk) return std::nullopt;
    return r[1];
  }

  Status erase(SlotId slot, ProgramId caller, Word key) {
    RegSet r;
    r[0] = key;
    ppc::set_op(r, kKvErase);
    return rt_.call(slot, caller, ep_, r);
  }

  // Cross-slot stubs: operate on `owner_slot`'s shard from `caller_slot`'s
  // thread. Synchronous, allocation-free (xcall), degenerate to the local
  // fast path when the slots coincide.
  Status put_remote(SlotId caller_slot, SlotId owner_slot, ProgramId caller,
                    Word key, Word value) {
    RegSet r;
    r[0] = key;
    r[1] = value;
    ppc::set_op(r, kKvPut);
    return rt_.call_remote(caller_slot, owner_slot, caller, ep_, r);
  }

  std::optional<Word> get_remote(SlotId caller_slot, SlotId owner_slot,
                                 ProgramId caller, Word key) {
    // Replicated fast path: consult the caller's own seqlock replica of the
    // hot set — no lock, no xcall, no remote lines. A miss (cold key, or an
    // entry the hot set never admitted) falls through to the owner.
    if (hot_ != nullptr) {
      const HotSet h = hot_->read(caller_slot);
      for (std::uint32_t i = 0; i < hot_cap_; ++i) {
        if (h.e[i].used != 0 && h.e[i].key == key) {
          note_repl_hit(caller_slot, key);
          return h.e[i].value;
        }
      }
    }
    RegSet r;
    r[0] = key;
    ppc::set_op(r, kKvGet);
    if (rt_.call_remote(caller_slot, owner_slot, caller, ep_, r) !=
        Status::kOk) {
      return std::nullopt;
    }
    return r[1];
  }

  /// The effective chunk stride of the vectored stubs (config value after
  /// clamping): one chunk = one stack RegSet array, one batched submission
  /// (one claim CAS + one doorbell).
  std::size_t multi_op_chunk() const { return chunk_; }

  /// Vectored write: store keys[i] → values[i] into `owner_slot`'s shard
  /// through call_remote_batch, so a burst of M puts pays ~M/chunk
  /// doorbells instead of M ring round trips. Zero heap allocations.
  /// Returns the first non-kOk per-call status (kOk if all stored).
  Status multi_put(SlotId caller_slot, SlotId owner_slot, ProgramId caller,
                   std::span<const Word> keys, std::span<const Word> values) {
    HPPC_ASSERT(keys.size() == values.size());
    Status overall = Status::kOk;
    std::array<RegSet, kKvMaxMultiOpChunk> regs;
    for (std::size_t pos = 0; pos < keys.size(); pos += chunk_) {
      const std::size_t n = std::min(chunk_, keys.size() - pos);
      for (std::size_t k = 0; k < n; ++k) {
        regs[k] = RegSet{};
        regs[k][0] = keys[pos + k];
        regs[k][1] = values[pos + k];
        ppc::set_op(regs[k], kKvPut);
      }
      const Status s = rt_.call_remote_batch(
          caller_slot, owner_slot, caller, ep_,
          std::span<RegSet>(regs.data(), n));
      if (overall == Status::kOk && s != Status::kOk) overall = s;
    }
    return overall;
  }

  /// Vectored read: out[i] = value of keys[i] (nullopt on miss). Keys the
  /// caller's replicated hot-set replica already holds are answered
  /// locally; only the misses ride the batched xcall. Returns the number
  /// of keys found. `out.size()` must be >= `keys.size()`.
  std::size_t multi_get(SlotId caller_slot, SlotId owner_slot,
                        ProgramId caller, std::span<const Word> keys,
                        std::span<std::optional<Word>> out) {
    HPPC_ASSERT(out.size() >= keys.size());
    std::size_t hits = 0;
    std::array<RegSet, kKvMaxMultiOpChunk> regs;
    std::array<std::size_t, kKvMaxMultiOpChunk> origin;
    std::size_t pending = 0;
    auto flush = [&] {
      if (pending == 0) return;
      rt_.call_remote_batch(caller_slot, owner_slot, caller, ep_,
                            std::span<RegSet>(regs.data(), pending));
      for (std::size_t k = 0; k < pending; ++k) {
        if (ppc::rc_of(regs[k]) == Status::kOk) {
          out[origin[k]] = regs[k][1];
          ++hits;
        } else {
          out[origin[k]] = std::nullopt;
        }
      }
      pending = 0;
    };
    for (std::size_t idx = 0; idx < keys.size(); ++idx) {
      if (hot_ != nullptr) {
        // One replica read per key keeps the probe lock-free and local;
        // hot hits never touch the ring at all.
        const HotSet h = hot_->read(caller_slot);
        bool hit = false;
        for (std::uint32_t j = 0; j < hot_cap_; ++j) {
          if (h.e[j].used != 0 && h.e[j].key == keys[idx]) {
            out[idx] = h.e[j].value;
            ++hits;
            hit = true;
            note_repl_hit(caller_slot, keys[idx]);
            break;
          }
        }
        if (hit) continue;
      }
      regs[pending] = RegSet{};
      regs[pending][0] = keys[idx];
      ppc::set_op(regs[pending], kKvGet);
      origin[pending] = idx;
      if (++pending == chunk_) flush();
    }
    flush();
    return hits;
  }

 private:
  struct Entry {
    Word key = 0;
    Word value = 0;
    ProgramId owner = 0;
    bool used = false;
  };

  /// The replicated hot set: a fixed, trivially-copyable record small
  /// enough for a per-slot seqlock replica. Admission is write-through on
  /// put while slots remain; eviction only on erase (read-mostly data —
  /// churn would turn every put into a fan-out publish).
  struct HotEntry {
    Word key = 0;
    Word value = 0;
    std::uint32_t used = 0;
  };
  struct HotSet {
    std::uint32_t n = 0;
    std::array<HotEntry, kKvHotSetCapacity> e{};
  };

  /// Ctx-carrying breadcrumb for a replica answer: the one hop a remote-get
  /// trace would otherwise lose entirely (no ring, no server span). Shows up
  /// in the chrome export as an instant on the caller's track tagged with
  /// the live trace id.
  void note_repl_hit(SlotId caller_slot, Word key) {
#if defined(HPPC_TRACE) && HPPC_TRACE
    const obs::TraceCtx ctx = rt_.trace_ctx(caller_slot);
    if (!ctx.traced()) return;
    rt_.trace_ring(caller_slot)
        .record_span(obs::host_trace_now(),
                     static_cast<std::uint16_t>(caller_slot),
                     obs::TraceEvent::kReplHit, static_cast<std::uint32_t>(key),
                     ctx.trace_id, ctx.span_id, 0);
#else
    (void)caller_slot;
    (void)key;
#endif
  }

  void hot_put(std::uint32_t writer_slot, Word key, Word value) {
    hot_->write(writer_slot, [&](HotSet& h) {
      for (std::uint32_t i = 0; i < hot_cap_; ++i) {
        if (h.e[i].used != 0 && h.e[i].key == key) {
          h.e[i].value = value;
          return;
        }
      }
      for (std::uint32_t i = 0; i < hot_cap_; ++i) {
        if (h.e[i].used == 0) {
          h.e[i] = HotEntry{key, value, 1};
          ++h.n;
          return;
        }
      }
      // Hot set full: not admitted — gets for this key take the xcall path.
    });
  }

  void hot_erase(std::uint32_t writer_slot, Word key) {
    hot_->write(writer_slot, [&](HotSet& h) {
      for (std::uint32_t i = 0; i < hot_cap_; ++i) {
        if (h.e[i].used != 0 && h.e[i].key == key) {
          h.e[i] = HotEntry{};
          --h.n;
          return;
        }
      }
    });
  }

  /// One slot's shard: touched only by that slot's thread on the fast path.
  struct Shard {
    std::vector<Entry> entries;
    std::size_t size = 0;
    std::uint32_t inits = 0;
  };

  Entry* find(Shard& shard, Word key) {
    const std::size_t start = key % shard.entries.size();
    for (std::size_t probe = 0; probe < shard.entries.size(); ++probe) {
      Entry& e = shard.entries[(start + probe) % shard.entries.size()];
      if (!e.used) return nullptr;
      if (e.key == key) return &e;
    }
    return nullptr;
  }

  Entry* find_free(Shard& shard, Word key) {
    const std::size_t start = key % shard.entries.size();
    for (std::size_t probe = 0; probe < shard.entries.size(); ++probe) {
      Entry& e = shard.entries[(start + probe) % shard.entries.size()];
      if (!e.used || e.key == key) return &e;
    }
    return nullptr;
  }

  void init(RtCtx& ctx, RegSet& regs) {
    // One-time worker setup (§4.5.3): count it, swap in the real handler.
    ++shards_[ctx.slot()]->inits;
    auto main = OpDispatcher()
                    .on(kKvPut,
                        [this](RtCtx& c, RegSet& r) { do_put(c, r); })
                    .on(kKvGet,
                        [this](RtCtx& c, RegSet& r) { do_get(c, r); })
                    .on(kKvErase,
                        [this](RtCtx& c, RegSet& r) { do_erase(c, r); })
                    .on(kKvSize,
                        [this](RtCtx& c, RegSet& r) {
                          r[0] = static_cast<Word>(
                              shards_[c.slot()]->size);
                          ppc::set_rc(r, Status::kOk);
                        })
                    .on(kKvOwnerOf,
                        [this](RtCtx& c, RegSet& r) {
                          Entry* e = find(*shards_[c.slot()], r[0]);
                          if (!e) {
                            ppc::set_rc(r, Status::kInvalidArgument);
                            return;
                          }
                          r[1] = e->owner;
                          ppc::set_rc(r, Status::kOk);
                        })
                    .handler();
    ctx.set_worker_handler(main);
    main(ctx, regs);
  }

  void do_put(RtCtx& ctx, RegSet& regs) {
    Shard& shard = *shards_[ctx.slot()];
    Entry* e = find_free(shard, regs[0]);
    if (e == nullptr) {
      ppc::set_rc(regs, Status::kOutOfResources);
      return;
    }
    if (!e->used) {
      e->used = true;
      e->key = regs[0];
      e->owner = ctx.caller_program();
      ++shard.size;
    }
    e->value = regs[1];
    if (hot_ != nullptr) hot_put(ctx.slot(), regs[0], regs[1]);
    ppc::set_rc(regs, Status::kOk);
  }

  void do_get(RtCtx& ctx, RegSet& regs) {
    Entry* e = find(*shards_[ctx.slot()], regs[0]);
    if (e == nullptr) {
      ppc::set_rc(regs, Status::kInvalidArgument);
      return;
    }
    regs[1] = e->value;
    ppc::set_rc(regs, Status::kOk);
  }

  void do_erase(RtCtx& ctx, RegSet& regs) {
    Shard& shard = *shards_[ctx.slot()];
    Entry* e = find(shard, regs[0]);
    if (e == nullptr) {
      ppc::set_rc(regs, Status::kInvalidArgument);
      return;
    }
    if (cfg_.enforce_ownership && e->owner != ctx.caller_program()) {
      ppc::set_rc(regs, Status::kPermissionDenied);
      return;
    }
    // Tombstone-free removal: backward-shift the probe chain so that later
    // entries whose home slot precedes the hole stay reachable.
    const std::size_t cap = shard.entries.size();
    std::size_t hole = static_cast<std::size_t>(e - shard.entries.data());
    shard.entries[hole].used = false;
    --shard.size;
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) % cap;
      Entry& ej = shard.entries[j];
      if (!ej.used) break;
      const std::size_t home = ej.key % cap;
      // ej may move into the hole unless its home lies strictly within
      // (hole, j] on the probe circle.
      const std::size_t dist_home = (j - home + cap) % cap;
      const std::size_t dist_hole = (j - hole + cap) % cap;
      if (dist_home >= dist_hole) {
        shard.entries[hole] = ej;
        ej.used = false;
        hole = j;
      }
    }
    if (hot_ != nullptr) hot_erase(ctx.slot(), regs[0]);
    ppc::set_rc(regs, Status::kOk);
  }

  Runtime& rt_;
  KvServiceConfig cfg_;
  const std::size_t chunk_;  // clamped Config::multi_op_chunk
  std::vector<CacheAligned<Shard>> shards_;
  EntryPointId ep_ = kInvalidEntryPoint;
  std::uint32_t hot_cap_ = 0;
  std::unique_ptr<repl::Replicated<HotSet>> hot_;
  std::unique_ptr<repl::ReplHub> hub_;
};

}  // namespace hppc::rt
