// Per-CPU slots for the host runtime.
//
// The paper's design needs "this processor's" resources; on the host we
// approximate processors with slots: each participating thread registers
// once, is assigned a slot, and (where the platform allows) is pinned to
// the matching CPU. All slot-owned state is cache-line aligned so slots
// never false-share — the host analogue of node-local memory.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>

#include "common/assert.h"
#include "common/cacheline.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hppc::rt {

using SlotId = std::uint32_t;
inline constexpr SlotId kInvalidSlot = ~SlotId{0};

/// Assigns slot ids to threads; at most `capacity` threads may register.
class SlotRegistry {
 public:
  explicit SlotRegistry(std::uint32_t capacity)
      : generation_(next_generation()),
        capacity_(capacity ? capacity
                           : std::max(1u, std::thread::hardware_concurrency())) {}

  std::uint32_t capacity() const { return capacity_; }

  /// Register the calling thread; idempotent per thread per registry.
  /// Optionally pins the thread to CPU (slot % hardware cpus).
  ///
  /// The cached TLS record is keyed by the registry's process-unique
  /// generation, NOT its address: a `this` comparison would let a new
  /// registry constructed at a reused address silently hand back the slot
  /// the thread held in the destroyed one.
  SlotId register_thread(bool pin = false) {
    thread_local struct TlsSlot {
      std::uint64_t generation = 0;  // 0 never issued
      SlotId slot = kInvalidSlot;
    } tls;
    if (tls.generation == generation_ && tls.slot != kInvalidSlot) {
      return tls.slot;
    }
    const SlotId slot = next_.fetch_add(1, std::memory_order_relaxed);
    HPPC_ASSERT_MSG(slot < capacity_, "too many threads for this registry");
    tls.generation = generation_;
    tls.slot = slot;
    if (pin) pin_to_cpu(slot);
    return slot;
  }

  static void pin_to_cpu(SlotId slot) {
#if defined(__linux__)
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(slot % n, &set);
    // Best effort: pinning may be forbidden in constrained environments.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)slot;
#endif
  }

 private:
  static std::uint64_t next_generation() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t generation_;
  std::uint32_t capacity_;
  std::atomic<SlotId> next_{0};
};

/// Lock-free MPSC mailbox: any thread pushes, only the owning slot pops.
/// This is the host analogue of the cross-processor interrupt (§4.5.2):
/// remote slots never touch a slot's pools directly, they post work.
template <typename T>
class Mailbox {
 public:
  struct Node {
    T value;
    Node* next = nullptr;
  };

  ~Mailbox() {
    Node* n = head_.exchange(nullptr, std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  /// Any thread. Lock-free (Treiber push).
  void post(T value) {
    Node* node = new Node{std::move(value), nullptr};
    Node* old = head_.load(std::memory_order_relaxed);
    do {
      node->next = old;
    } while (!head_.compare_exchange_weak(old, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Owner only: drain everything, invoking `fn` in FIFO order.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    Node* n = head_.exchange(nullptr, std::memory_order_acquire);
    // Reverse the LIFO chain for FIFO delivery.
    Node* rev = nullptr;
    while (n != nullptr) {
      Node* next = n->next;
      n->next = rev;
      rev = n;
      n = next;
    }
    std::size_t count = 0;
    while (rev != nullptr) {
      Node* next = rev->next;
      fn(std::move(rev->value));
      delete rev;
      rev = next;
      ++count;
    }
    return count;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Node*> head_{nullptr};
};

}  // namespace hppc::rt
