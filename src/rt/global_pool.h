// Host baseline 1: same call semantics as rt::Runtime but with a single
// mutex-protected global descriptor/worker pool — the LRPC-ish structure
// whose lock and shared lines the paper's design eliminates. Used by the
// rt benches to show what the per-slot pools buy on modern hardware.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ppc/regs.h"
#include "rt/runtime.h"

namespace hppc::rt {

class GlobalPoolRuntime {
 public:
  using Handler = std::function<void(ProgramId caller, RegSet&)>;

  GlobalPoolRuntime() = default;
  GlobalPoolRuntime(const GlobalPoolRuntime&) = delete;
  GlobalPoolRuntime& operator=(const GlobalPoolRuntime&) = delete;

  EntryPointId bind(Handler handler) {
    std::lock_guard<std::mutex> lock(mutex_);
    services_.push_back(std::move(handler));
    return static_cast<EntryPointId>(services_.size() - 1);
  }

  Status call(ProgramId caller, EntryPointId id, RegSet& regs) {
    Handler* handler = nullptr;
    Cd* cd = nullptr;
    {
      // The global pool: every call from every thread serializes here.
      std::lock_guard<std::mutex> lock(mutex_);
      if (id >= services_.size()) {
        ppc::set_rc(regs, Status::kNoSuchEntryPoint);
        return Status::kNoSuchEntryPoint;
      }
      handler = &services_[id];
      if (free_ != nullptr) {
        cd = free_;
        free_ = cd->next;
      } else {
        auto owned = std::make_unique<Cd>();
        owned->stack = std::make_unique<std::byte[]>(kPageSize);
        cd = owned.get();
        cds_.push_back(std::move(owned));
      }
    }
    // Touch the (possibly remote-thread-dirtied) stack like a real worker.
    cd->stack[0] = std::byte{1};
    (*handler)(caller, regs);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cd->next = free_;
      free_ = cd;
    }
    return ppc::rc_of(regs);
  }

 private:
  struct Cd {
    std::unique_ptr<std::byte[]> stack;
    Cd* next = nullptr;
  };

  std::mutex mutex_;
  std::vector<Handler> services_;
  std::vector<std::unique_ptr<Cd>> cds_;
  Cd* free_ = nullptr;
};

}  // namespace hppc::rt
