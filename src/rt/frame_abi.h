// The Figure-4 call ABI: 8 words in, the same 8 words out, one packed
// opcode|flags|service word — the paper's PPC register contract lifted to
// a first-class call frame.
//
// The typed-handler path (Runtime::bind / Runtime::call) resolves a
// Service*, acquires a worker and a CD, and invokes a std::function —
// three pointer chases and a heap-backed callable between the caller and
// the handler. A CallFrame call does none of that: the packed op word
// indexes a flat table of raw function pointers, the 8 payload words are
// the whole argument/result surface, and a cross-slot frame call inlines
// the entire request in the 64-byte XcallCell (the op word rides the
// cell's spare 8-byte lane; the payload rides the cell's inline RegSet).
// No std::function, no worker/CD acquisition, no heap touch, no pointer
// chase past the one table load on the warm path.
//
// Calls whose payload exceeds the 8 words do NOT grow the frame: they set
// kFrameFlagSg and spend two payload words on a pointer to a caller-owned
// BulkDesc descriptor block — scatter/gather segments in the unified
// bulk-data format (rt/bulk_desc.h) shared with the cross-process
// CopyServer, the host analogue of the paper's §4.2 copy-server channel.
// The frame itself stays 8 words; only the descriptors' bytes move, and
// only once.
//
// Packed op word (64-bit):
//   [63:48] reserved (zero)
//   [47:32] service  — FrameServiceId, index into the runtime's frame table
//   [31:16] opcode   — service-defined operation number   -+
//   [15: 8] flags    — service-defined modifier bits       +- identical to
//   [ 7: 0] rc       — return code (Status), out only     -+  ppc::op_flags
// The low 32 bits are bit-for-bit the legacy regs[kOpWord] layout, so the
// compatibility shim (Runtime::bind_frame_shim) forwards them unmodified.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "ppc/regs.h"
#include "rt/bulk_desc.h"
#include "rt/percpu.h"

namespace hppc::rt {

class Runtime;

/// The packed opcode|flags|service word.
using FrameWord = std::uint64_t;

/// Index into the runtime's frame-service table. Dense, starting at 0.
using FrameServiceId = std::uint32_t;

inline constexpr std::size_t kMaxFrameServices = 256;
inline constexpr FrameServiceId kInvalidFrameService = ~FrameServiceId{0};

// -- op word packing -------------------------------------------------------

constexpr FrameWord frame_op(FrameServiceId service, Word opcode,
                             Word flags = 0) {
  return (static_cast<FrameWord>(service & 0xFFFFu) << 32) |
         ppc::op_flags(opcode, flags);
}

constexpr FrameServiceId frame_service_of(FrameWord op) {
  return static_cast<FrameServiceId>((op >> 32) & 0xFFFFu);
}
constexpr Word frame_opflags_of(FrameWord op) {  // the legacy 32-bit word
  return static_cast<Word>(op);
}
constexpr Word frame_opcode_of(FrameWord op) {
  return ppc::opcode_of(frame_opflags_of(op));
}
constexpr Word frame_flags_of(FrameWord op) {
  return ppc::flags_of(frame_opflags_of(op));
}
constexpr Status frame_rc_of(FrameWord op) {
  return ppc::rc_of(frame_opflags_of(op));
}
constexpr FrameWord frame_with_rc(FrameWord op, Status rc) {
  return (op & ~FrameWord{0xFFu}) | static_cast<FrameWord>(rc);
}
constexpr FrameWord frame_with_flags(FrameWord op, Word flags) {
  return (op & ~(FrameWord{0xFFu} << 8)) |
         (static_cast<FrameWord>(flags & 0xFFu) << 8);
}

// -- the call frame --------------------------------------------------------

/// Figure 4 as a value type: the packed op word plus the 8 in/out words.
/// `w` is entirely the application's — unlike the legacy RegSet, no word is
/// stolen for the opcode (it travels in `op`), so a frame call carries a
/// full 8 words of payload each way.
struct CallFrame {
  FrameWord op = 0;
  std::array<Word, kPpcWords> w{};

  bool operator==(const CallFrame&) const = default;
};
static_assert(sizeof(CallFrame) == sizeof(FrameWord) + sizeof(ppc::RegSet),
              "a frame must inline into one XcallCell");

inline CallFrame make_frame(FrameServiceId service, Word opcode,
                            Word flags = 0) {
  CallFrame f;
  f.op = frame_op(service, opcode, flags);
  return f;
}

// -- scatter/gather spill (the >8-word side path) ---------------------------

/// Flag bit: w[0..1] carry a pointer to a caller-owned BulkDesc block
/// (rt/bulk_desc.h — the same descriptor layout the cross-process
/// CopyServer ships in ring cells; here the segments are process-local,
/// region == kBulkRegionLocal, and handlers resolve them with
/// LocalBulkResolver).
inline constexpr Word kFrameFlagSg = 0x01;

/// Attach a descriptor block: burns w[0] and w[1] on the pointer and sets
/// kFrameFlagSg. w[2..7] stay free for inline arguments. The block and
/// every segment it names are caller-owned and must outlive the call
/// (synchronous frame calls guarantee that by construction — the caller's
/// frame is alive until the reply lands).
inline void frame_attach_sg(CallFrame& f, const BulkDesc* sg) {
  const auto p = reinterpret_cast<std::uintptr_t>(sg);
  f.w[0] = static_cast<Word>(p);
  f.w[1] = static_cast<Word>(static_cast<std::uint64_t>(p) >> 32);
  f.op = frame_with_flags(f.op, frame_flags_of(f.op) | kFrameFlagSg);
}

inline bool frame_has_sg(const CallFrame& f) {
  return (frame_flags_of(f.op) & kFrameFlagSg) != 0;
}

/// Handler side: resolve the descriptor block (nullptr when the flag is
/// clear — an 8-word call has no spill).
inline const BulkDesc* frame_sg(const CallFrame& f) {
  if (!frame_has_sg(f)) return nullptr;
  const std::uint64_t p = static_cast<std::uint64_t>(f.w[0]) |
                          (static_cast<std::uint64_t>(f.w[1]) << 32);
  return reinterpret_cast<const BulkDesc*>(static_cast<std::uintptr_t>(p));
}

// -- handler contract ------------------------------------------------------

/// What a frame handler sees. No worker, no CD, no per-call stack: frame
/// handlers run to completion on the calling/draining thread and use their
/// service's own state (`self`).
struct FrameCtx {
  Runtime* rt = nullptr;
  SlotId slot = 0;        // the slot being executed on
  ProgramId caller = 0;   // the caller's program token (§4.1)
};

/// A frame handler: a raw function pointer — no std::function, nothing to
/// copy or chase on the warm path. `self` is the pointer registered at
/// bind_frame time; `f` is in/out (mutate f.w in place for the reply; the
/// returned Status is packed into f.op's rc byte by the runtime).
using FrameFn = Status (*)(void* self, FrameCtx& ctx, CallFrame& f);

}  // namespace hppc::rt
