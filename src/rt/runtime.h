// The PPC pattern as a host library: per-slot worker and call-descriptor
// pools, a replicated-by-construction service table, and a fast path that
// executes the service handler on the calling thread with NO locks and NO
// shared mutable data — one relaxed atomic load to resolve the entry point
// is the only synchronization a warm call performs.
//
// Semantics mirror the simulated facility: 8 words in/out through a RegSet,
// opcode+flags+rc packed in the last word, caller identified by a program
// token (§4.1), workers created on demand with a one-time init routine
// (§4.5.3), hold-CD mode, soft/hard kill (§4.5.2), and async calls
// deferred to the owning slot.
//
// Cross-slot traffic (the paper's cross-processor path, §4.5.2) rides the
// xcall layer: per-slot bounded MPSC rings of cache-line cells for the hot
// path — call_remote() is a synchronous cross-slot PPC that either
// direct-executes on an idle target slot (LRPC-style ownership handoff
// through the SlotGate) or posts a ring cell and spin-then-yields on its
// completion word — while the legacy allocating mailbox survives only as
// the control-plane/overflow channel (kill reclamation, ring-full async
// posts). A warm cross-slot call performs zero heap allocations, asserted
// by the mailbox_allocs counter.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/cacheline.h"
#include "common/status.h"
#include "common/tsc.h"
#include "common/types.h"
#include "mem/arena.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "ppc/regs.h"
#include "rt/frame_abi.h"
#include "rt/percpu.h"
#include "rt/request_ctx.h"
#include "rt/xcall.h"

namespace hppc::rt {

using ppc::RegSet;

class Runtime;
class RtWorker;

/// What a handler sees while servicing a call.
class RtCtx {
 public:
  RtCtx(Runtime& rt, SlotId slot, RtWorker& worker, ProgramId caller)
      : rt_(rt), slot_(slot), worker_(worker), caller_(caller) {}

  Runtime& runtime() { return rt_; }
  SlotId slot() const { return slot_; }
  ProgramId caller_program() const { return caller_; }

  /// The worker's stack buffer for this call (one page, recycled LIFO
  /// across services on this slot, exactly like the paper's stacks).
  std::span<std::byte> stack();

  /// Worker-initialization protocol (§4.5.3).
  void set_worker_handler(std::function<void(RtCtx&, RegSet&)> h);

  /// Nested call to another service from inside a handler.
  Status call(EntryPointId id, RegSet& regs);

  /// Cooperative cancellation probe for long handlers: true when the
  /// ambient request this handler is executing under has been cancelled or
  /// its inherited deadline has expired. A handler that observes true
  /// should abandon its remaining work and return promptly (the runtime
  /// cannot preempt a running handler; the probe is how deep loops keep
  /// the cancel latency bounded).
  bool cancellation_requested() const;

 private:
  Runtime& rt_;
  SlotId slot_;
  RtWorker& worker_;
  ProgramId caller_;
};

using RtHandler = std::function<void(RtCtx&, RegSet&)>;

struct RtServiceConfig {
  std::string name = "service";
  bool hold_cd = false;
  std::uint32_t pool_target = 1;
};

/// How much observability a call path carries. The shipped configuration
/// is kFull: counters + histograms (+ trace hooks under HPPC_TRACE). The
/// lower levels exist ONLY for the obs_overhead bench, which measures the
/// marginal cost of each layer by differencing otherwise-identical paths.
enum class ObsLevel : std::uint8_t {
  kStripped,  // no counters, no histograms, no trace hooks
  kCounters,  // counters only (the pre-histogram shipped path)
  kFull,      // counters + histograms + trace hooks — what call() runs
};

/// What a synchronous cross-slot caller does when the target ring is full.
enum class RetryPolicy : std::uint8_t {
  /// Legacy behaviour: retry forever (help-drain the target when its owner
  /// parks, otherwise yield). Never returns kOverloaded.
  kBlock,
  /// Bounded exponential backoff: burn a doubling cpu_relax budget per
  /// round (booked as backoff_cycles), help-drain between rounds, and give
  /// up with kOverloaded after `backoff_rounds` failed posts.
  kBackoff,
  /// Return kOverloaded on the first full ring, without waiting at all.
  kFailFast,
};

/// Per-call knobs for Runtime::call / call_remote. The default-constructed
/// value reproduces the legacy behaviour exactly (no deadline, block on a
/// full ring), so existing callers see an identical hot path.
struct CallOptions {
  /// Relative deadline in host_cycles() ticks; 0 = no deadline. When it
  /// expires before the call completes the caller abandons the wait and
  /// gets kDeadlineExceeded — the handler may or may not have executed
  /// (timed-out-RPC semantics); the in-flight cell is reclaimed safely.
  /// Only meaningful for cross-slot calls: a same-slot call executes
  /// inline on the calling thread and cannot be abandoned mid-handler.
  std::uint64_t deadline_cycles = 0;
  RetryPolicy retry = RetryPolicy::kBlock;
  /// kBackoff only: failed post attempts before giving up. The spin budget
  /// doubles each round (capped at 1024 cpu_relax rounds per attempt).
  std::uint32_t backoff_rounds = 16;
  /// Admission/drain priority (see rt/request_ctx.h). kBulk requests are
  /// shed first when the target saturates (the bulk shed watermark) and
  /// drained after interactive doorbells.
  TrafficClass traffic_class = TrafficClass::kInteractive;
  /// Cancel handle from Runtime::cancel_token_create(); 0 = not
  /// cancellable. A cancelled call — and every nested call it makes —
  /// completes with kCallAborted at the next seam.
  CancelToken cancel_token = 0;

  /// Resolve this call's absolute deadline against an inherited ambient
  /// bound. Relative→absolute conversion happens exactly once, here (one
  /// host_cycles() read, only when a relative deadline is set), and the
  /// result is clamped so a nested call may tighten the root's budget but
  /// never extend it. Returns 0 when neither side has a bound.
  std::uint64_t with_budget(std::uint64_t inherited_abs) const {
    const std::uint64_t mine =
        deadline_cycles != 0 ? host_cycles() + deadline_cycles : 0;
    return RequestCtx::clamp_deadline(inherited_abs, mine);
  }
};

/// A call descriptor: return info slot + the stack buffer (§2). Both the
/// descriptor and its one-page stack live in the runtime arena, on the
/// owning slot's NUMA node; the arena reclaims the storage wholesale at
/// Runtime destruction (RtCd is trivially destructible by design).
struct RtCd {
  std::byte* stack = nullptr;  // one arena page, node-local
  RtCd* next = nullptr;        // slot-local free list
};

class RtWorker {
 public:
  explicit RtWorker(RtHandler handler) : handler_(std::move(handler)) {}

  RtHandler& handler() { return handler_; }

  /// Stage a replacement handler. Only reachable from inside this worker's
  /// own handler (via RtCtx::set_worker_handler, the §4.5.3 init protocol),
  /// so the swap is deferred until the current call returns — the live
  /// handler_ is never destroyed mid-invocation and the fast path can invoke
  /// it by reference instead of copying a std::function on every call.
  void set_handler(RtHandler h) {
    pending_handler_ = std::move(h);
    has_pending_handler_ = true;
  }
  bool has_pending_handler() const { return has_pending_handler_; }
  void commit_pending_handler() {
    handler_ = std::move(pending_handler_);
    pending_handler_ = nullptr;
    has_pending_handler_ = false;
  }

  RtCd* held_cd = nullptr;   // hold-CD mode
  RtCd* active_cd = nullptr;
  RtWorker* next = nullptr;  // slot-local pool link

 private:
  RtHandler handler_;
  RtHandler pending_handler_;
  bool has_pending_handler_ = false;
};

class Runtime {
 public:
  /// `slots` = maximum participating threads (0 = hardware concurrency).
  explicit Runtime(std::uint32_t slots = 0, bool pin_threads = false);
  ~Runtime();

  /// Teardown sweep (idempotent; also run by the destructor). Caller must
  /// guarantee quiescence: no thread is posting, polling, or waiting.
  /// Drains every ring without executing — abandoned cells are acked,
  /// never-abandoned sync cells completed with kCallAborted — then reaps
  /// every zombie XcallWait block: once all rings are empty no server can
  /// ever touch a block again, so even blocks orphaned by a permanently
  /// killed ring (e.g. a dropped-completion fault on an owner that never
  /// drained) are reclaimable. Asserts the pool is fully reclaimed.
  /// Returns the number of zombie blocks reaped.
  std::size_t shutdown();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Register the calling thread; must be called before it makes calls.
  /// Claims the slot's gate: from this point remote callers use the ring
  /// (drained by poll()) until the thread parks via serve()/enter_idle().
  SlotId register_thread();

  std::uint32_t slots() const { return registry_.capacity(); }

  // ----- binding (slow path; internally locked) -----

  EntryPointId bind(RtServiceConfig cfg, ProgramId program,
                    RtHandler initial_handler);

  /// Soft kill: new calls fail with kEntryPointDraining/kNoSuchEntryPoint;
  /// pooled resources are reclaimed lazily by each slot.
  Status soft_kill(EntryPointId id);

  /// Hard kill: like soft kill, plus reclamation requests are posted to
  /// every slot's mailbox immediately.
  Status hard_kill(EntryPointId id);

  // ----- the fast path -----

  /// Synchronous call on the calling thread's slot. regs[kOpWord] carries
  /// opcode+flags in and rc out. `caller` is the caller's program token.
  Status call(SlotId slot, ProgramId caller, EntryPointId id, RegSet& regs);

  /// Same-slot call with per-call options. A local call executes the
  /// handler inline, so the deadline/retry knobs have nothing to act on —
  /// the overload exists so generic callers can pass one options struct to
  /// either path (and so fault sites screen it like any other call).
  Status call(SlotId slot, ProgramId caller, EntryPointId id, RegSet& regs,
              const CallOptions& opts);

  /// The identical fast path with ALL instrumentation (counters,
  /// histograms, trace hooks) compiled out. Exists ONLY as the baseline
  /// for the observability-overhead bench (shipped-vs-stripped of the same
  /// code, so the measured difference is exactly what the instrumentation
  /// costs). Never use this to serve real traffic.
  Status call_unobserved_for_benchmark(SlotId slot, ProgramId caller,
                                       EntryPointId id, RegSet& regs);

  /// The fast path at ObsLevel::kCounters — counters on, histograms and
  /// trace hooks off. The bench's middle rung: differencing this against
  /// the two neighbours splits the counter cost from the histogram cost.
  Status call_counters_only_for_benchmark(SlotId slot, ProgramId caller,
                                          EntryPointId id, RegSet& regs);

  /// Asynchronous call: queued on this slot, executed at the next poll().
  Status call_async(SlotId slot, ProgramId caller, EntryPointId id,
                    RegSet regs);

  // ----- cross-slot calls (xcall) -----

  /// Synchronous cross-slot PPC: execute `id` against `target`'s slot
  /// state, from the thread owning `caller_slot`. Adaptive: if the target
  /// slot is idle (parked in serve(), or never registered) the call is
  /// direct-executed on the calling thread under a gate steal — zero
  /// context switches, zero allocations; otherwise a cell is posted into
  /// the target's bounded ring and the caller spin-then-yields on the
  /// completion word, helping (stealing + draining) if the owner parks
  /// meanwhile. `target == caller_slot` degenerates to a local call().
  /// Requires the target slot to be either idle-gated or actively
  /// poll()ing/serve()ing — like the mailbox, the ring is at-least-
  /// eventually drained by construction only under that contract.
  Status call_remote(SlotId caller_slot, SlotId target, ProgramId caller,
                     EntryPointId id, RegSet& regs);

  /// call_remote with per-call robustness knobs: a relative deadline
  /// (host_cycles ticks) after which the caller abandons the wait with
  /// kDeadlineExceeded, and a retry policy for the ring-full case (block /
  /// bounded backoff / fail fast — the latter two return kOverloaded when
  /// the budget runs out). Deadline calls ride slot-pooled completion
  /// blocks so an abandoned in-flight cell always points at storage that
  /// outlives the caller's frame; the no-deadline path is byte-for-byte
  /// the legacy stack-block path.
  Status call_remote(SlotId caller_slot, SlotId target, ProgramId caller,
                     EntryPointId id, RegSet& regs, const CallOptions& opts);

  /// Batched synchronous cross-slot PPC: submit every RegSet in `batch`
  /// against `target` and wait for all of them. On an idle target one gate
  /// steal direct-executes the whole batch; otherwise the batch is posted
  /// in chunks of up to XcallRing::kCapacity cells, each chunk claimed
  /// with ONE CAS and published with ONE release store + ONE doorbell
  /// (see try_post_many) — a burst of M calls costs ~1 cross-slot line
  /// transfer instead of M. Per-call results land in each RegSet's rc
  /// word; the return value is the first non-kOk rc (kOk if all passed).
  /// Zero heap allocations: completion blocks live on this stack frame.
  Status call_remote_batch(SlotId caller_slot, SlotId target,
                           ProgramId caller, EntryPointId id,
                           std::span<RegSet> batch);

  /// call_remote_batch with per-call options: a deadline (applies to the
  /// whole batch; carried in every cell so the server also refuses to
  /// execute expired cells late) rides slot-pooled completion blocks, and
  /// the retry policy governs each chunk post exactly as in call_remote.
  Status call_remote_batch(SlotId caller_slot, SlotId target,
                           ProgramId caller, EntryPointId id,
                           std::span<RegSet> batch, const CallOptions& opts);

  /// Fire-and-forget cross-slot call: posted into the target's ring (or,
  /// if the ring is full, the legacy mailbox — the allocating overflow
  /// path) and executed at the target's next drain. Results discarded.
  Status call_remote_async(SlotId caller_slot, SlotId target,
                           ProgramId caller, EntryPointId id, RegSet regs);

  /// call_remote_async with options. Only the deadline acts here: it is
  /// carried in the posted cell (and checked by the mailbox overflow
  /// lambda), and a cell that drains after its deadline is dropped —
  /// counted as deadline_exceeded on the target slot — instead of being
  /// executed late. kFailFast additionally turns the ring-full overflow
  /// into an immediate kOverloaded instead of an allocating mailbox post.
  Status call_remote_async(SlotId caller_slot, SlotId target,
                           ProgramId caller, EntryPointId id, RegSet regs,
                           const CallOptions& opts);

  // ----- the frame ABI (Figure 4 register contract) -----
  //
  // The lean call lane: a CallFrame carries 8 words each way plus the
  // packed opcode|flags|service word, resolved through a flat table of raw
  // function pointers — no Service lookup, no worker/CD acquisition, no
  // std::function, no per-call histogram. Cross-slot frame calls inline
  // the whole request in the 64 B XcallCell. Frame calls carry no
  // deadline and no trace span (the cell lanes those would use carry the
  // op word instead); callers that need those knobs use the typed path.

  /// Register a frame service: `fn` is invoked with `self` on every call.
  /// `self` must outlive the runtime (or the service's last call). Slow
  /// path, internally locked.
  FrameServiceId bind_frame(ProgramId program, FrameFn fn, void* self);

  /// Compatibility shim: expose a legacy typed entry point through the
  /// frame table so callers migrate incrementally. The shim forwards
  /// w[0..6] as regs[0..6] and the op word's low half as regs[kOpWord]
  /// (the layouts are bit-identical), runs the full typed path — worker,
  /// CD, histograms and all — and copies regs[0..6] back. w[7] passes
  /// through untouched: the legacy ABI only ever had 7 payload words.
  FrameServiceId bind_frame_shim(EntryPointId legacy);

  /// Unbind: subsequent frame calls to `id` fail with kNoSuchEntryPoint;
  /// in-flight cells drain with the same status. The table slot is not
  /// reused.
  Status unbind_frame(FrameServiceId id);

  /// Same-slot frame call: one acquire load of the table entry, one
  /// indirect call, one counter store. Replies in f.w; rc packed into
  /// f.op's rc byte (also returned).
  Status call_frame(SlotId slot, ProgramId caller, CallFrame& f);

  /// Synchronous cross-slot frame call. Adaptive exactly like
  /// call_remote: direct-executes under a gate steal when the target is
  /// idle, else inlines the frame in a ring cell and spin-then-yields on
  /// the completion word. Zero heap allocations on either path.
  Status call_remote_frame(SlotId caller_slot, SlotId target,
                           ProgramId caller, CallFrame& f);

  /// Batched cross-slot frame calls: chunks of up to XcallRing::kCapacity
  /// cells, each chunk claimed with ONE CAS and published with ONE release
  /// store + ONE doorbell. Frames in one batch may carry different op
  /// words. Per-frame rc lands in each frame's op word; returns the first
  /// non-kOk rc.
  Status call_remote_frame_batch(SlotId caller_slot, SlotId target,
                                 ProgramId caller,
                                 std::span<CallFrame> batch);

  // ----- the memory arena (node-local placement) -----

  /// The runtime's hugepage-first, node-local arena. Every hot per-slot
  /// structure — rings, CD stacks, wait blocks, histogram blocks — lives
  /// here, on its slot's node. Layers above (KvService's replicated hot
  /// set) may co-locate their own slot structures through this.
  mem::Arena& arena() { return arena_; }

  /// Arena gauges (also overlaid into snapshot() as the arena_* counters).
  mem::ArenaStats arena_stats() const { return arena_.stats(); }

  /// The node a slot's structures are placed on: slots stripe round-robin
  /// across the visible NUMA nodes (with pinned threads, slot s runs on
  /// CPU s % ncpus, which Linux enumerates node-major on the sane
  /// topologies we target — see docs/MEMORY.md).
  NodeId node_of_slot(SlotId slot) const { return slot % arena_.nodes(); }

  /// Drain this slot's ring (one batch), mailbox, and deferred/async
  /// queue. Owner thread only. Returns the number of actions performed.
  std::size_t poll(SlotId slot);

  /// Owner's service loop: poll, then park idle — publishing the slot for
  /// remote direct execution — until `stop` or new work arrives. Returns
  /// total actions performed. The gate is re-held (kOwner) on return.
  std::size_t serve(SlotId slot, const std::atomic<bool>& stop);

  /// Park/unpark primitives behind serve(): while idle, remote callers
  /// direct-execute on this slot instead of waiting for a poll. Owner
  /// thread only; must not be mid-call.
  void enter_idle(SlotId slot);
  void exit_idle(SlotId slot);

  // ----- overload shedding (admission control) -----

  /// Arm per-slot admission control: a cross-slot call (sync or async)
  /// whose target ring already holds >= `depth` undrained cells is shed
  /// with kOverloaded instead of being queued — in-flight work keeps
  /// draining, new work is refused at the door. 0 (the default) disables
  /// shedding. The depth read is a racy two-load snapshot; an off-by-a-few
  /// answer just moves the threshold by that much for one call.
  ///
  /// Concurrency contract: any thread may retune the watermark while
  /// callers are admitting. Both sides use memory_order_relaxed on an
  /// atomic word — deliberately. The watermark is a tuning knob, not a
  /// synchronization point: an admission check that reads the old value
  /// for one more call is exactly as correct as one that raced the store
  /// the other way, and no other state is published through this word, so
  /// no ordering stronger than relaxed buys anything. The atomic (rather
  /// than a plain word) is what makes the torn-read impossible and the
  /// intent visible to TSan.
  void set_shed_watermark(std::uint32_t depth) {
    for (auto& w : shed_watermark_) w.store(depth, std::memory_order_relaxed);
  }
  std::uint32_t shed_watermark() const {
    return shed_watermark(TrafficClass::kInteractive);
  }

  /// Per-class watermarks: give kBulk a LOWER depth than kInteractive and
  /// bulk traffic absorbs the shedding first while interactive requests
  /// keep being admitted — the criticality-aware degradation the overload
  /// bench's per-class curves demonstrate. The classless setter above
  /// retunes both (legacy behaviour).
  void set_shed_watermark(TrafficClass cls, std::uint32_t depth) {
    shed_watermark_[static_cast<std::size_t>(cls)].store(
        depth, std::memory_order_relaxed);
  }
  std::uint32_t shed_watermark(TrafficClass cls) const {
    return shed_watermark_[static_cast<std::size_t>(cls)].load(
        std::memory_order_relaxed);
  }

  // ----- request contexts (deadline/cancel/class propagation) -----
  //
  // The ambient RequestCtx is the cross-cutting twin of the trace context:
  // installed on a slot, it rides every call the slot makes — same-slot,
  // remote, batched, async — through the xcall cell to the server slot,
  // where it is re-installed around the handler so NESTED calls inherit
  // it. CallOptions::deadline_cycles folds into the ambient budget under
  // the remaining-budget clamp (tighten, never extend); every admission
  // and drain seam checks the effective deadline (kDeadlineExceeded) and
  // cancel flag (kCallAborted), so an expired or cancelled root request
  // stops its whole tree at the next seam instead of executing late.

  /// Allocate a cancel token. Tokens are handles into a fixed pool of
  /// kMaxCancelTokens flags; allocation is wait-free (one fetch_add) and
  /// clears the slot it maps to, so reuse after 2^14 intervening
  /// allocations is benign-stale (documented in rt/request_ctx.h). Safe
  /// from any thread.
  CancelToken cancel_token_create();

  /// Raise `token`'s cancel flag, then best-effort sweep: for every slot
  /// whose gate is idle, steal it and drain its rings so already-posted
  /// cells carrying the token complete kCallAborted NOW (via the normal
  /// drain-side check) instead of at the owner's next poll. Cells on busy
  /// slots are refused when their drain reaches them; parked callers are
  /// kicked by that completion — the existing abandon/complete CAS
  /// protocol does all the lifetime work. Safe from any thread.
  void cancel(CancelToken token);

  /// Has cancel() been called for this token? (0 is never cancelled.)
  bool cancel_requested(CancelToken token) const;

  /// Re-point the cancel pool at external storage: `flags` must be a
  /// zero-initialised array of kMaxCancelTokens atomic words and
  /// `next_token` a shared allocation cursor (>= 1). The intended caller
  /// is the shm transport (src/shm/), which places both inside the
  /// cross-process segment so a peer's cancel(token) raises a flag this
  /// runtime's drain-side sweep reads directly — cancellation crosses the
  /// process boundary through the same one-relaxed-load check the
  /// in-process path uses. Call before any traffic (tokens minted from
  /// the old pool do not transfer); the previously owned pool is retained
  /// but unused. Storage must outlive this Runtime.
  void adopt_cancel_pool(std::atomic<std::uint32_t>* flags,
                         std::atomic<std::uint32_t>* next_token);

  /// Ambient probe: is the request `slot` is currently executing under
  /// cancelled or past its deadline? Handlers reach this through
  /// RtCtx::cancellation_requested(). Owner thread only.
  bool cancellation_requested(SlotId slot) const;

  /// Install / read / clear the slot's ambient request context directly
  /// (root callers that want a context without threading CallOptions
  /// through every stub; tests). Owner thread only. call/call_remote*
  /// save and restore this around handler execution, so installing it
  /// before a call tree and clearing it after is the whole discipline.
  void set_request_ctx(SlotId slot, const RequestCtx& ctx);
  RequestCtx request_ctx(SlotId slot) const;
  void clear_request_ctx(SlotId slot);

  /// Post a cross-slot action (host analogue of an IPI); it runs when the
  /// owning thread next polls. Control-plane path: allocates a mailbox
  /// node per post (booked as mailbox_allocs) — cross-slot *calls* belong
  /// on call_remote, which does not.
  void post(SlotId target, std::function<void()> fn);

  // ----- request tracing (spans recorded only under HPPC_TRACE) -----

  /// Start a new trace rooted at `slot`: mints a trace id, installs the
  /// context as the slot's current one (subsequent calls from this slot
  /// become spans of it), and emits the root kSpanBegin. In non-trace
  /// builds this returns an untraced (zeroed) context and records nothing.
  /// Owner thread only.
  obs::TraceCtx trace_begin(SlotId slot);

  /// End the trace started by trace_begin (emits the root kSpanEnd and
  /// clears the slot's current context). Owner thread only.
  void trace_end(SlotId slot, Status rc = Status::kOk);

  /// Install / read the slot's current request context (propagation across
  /// layers that carry their own context, e.g. tests). Owner thread only.
  void set_trace_ctx(SlotId slot, const obs::TraceCtx& ctx);
  obs::TraceCtx trace_ctx(SlotId slot) const;

  // ----- histograms & telemetry -----

  /// The slot's always-on latency histogram block (single writer: the
  /// slot's ownership holder; racy-but-race-free reads for observers).
  const obs::SlotHistograms& histograms(SlotId slot) const;
  obs::SlotHistograms& slot_histograms(SlotId slot);

  /// One slot's histogram snapshot / the merge across all slots.
  obs::HistSnapshot hist_snapshot(SlotId slot) const;
  obs::HistSnapshot hist_snapshot() const;

  /// Continuous-telemetry snapshot: per-slot counter/histogram deltas since
  /// the previous telemetry() call folded into derived series (drain rate,
  /// ring-occupancy EWMA, estimated queueing delay — see obs/telemetry.h).
  /// The first call primes the baseline and reports a zero-length window.
  /// Safe from any thread (reads are racy-but-race-free; the derivation
  /// state itself is mutex-guarded — this is an observer path, not a fast
  /// path). Serialize with telemetry_to_json() for export.
  obs::Telemetry telemetry();

  // ----- introspection -----

  /// Legacy summary view, derived from the counter block below.
  struct SlotStats {
    std::uint64_t calls = 0;
    std::uint64_t async_calls = 0;
    std::uint64_t worker_creations = 0;
    std::uint64_t cd_creations = 0;
  };
  SlotStats stats(SlotId slot) const;

  /// The slot's full observability block (single writer: the slot's own
  /// thread; read-only for observers).
  const obs::SlotCounters& counters(SlotId slot) const;

  /// Writable view of a slot's counter block, for slot-local layers built
  /// on top of the runtime (repl::ReplHub wires Replicated<T> reads into
  /// it). The single-writer discipline is the caller's contract: only the
  /// slot's current ownership holder may increment through this.
  obs::SlotCounters& slot_counters(SlotId slot);

  /// Counters for off-slot slow paths (bind, kill, cross-slot post).
  const obs::SharedCounters& shared_counters() const { return shared_; }

  /// One slot's snapshot with the derived pool counters filled in
  /// (worker_pool_hits, cd_recycles — see runtime.cpp).
  obs::CounterSnapshot slot_snapshot(SlotId slot) const;

  /// Merge of every slot block plus the shared block.
  obs::CounterSnapshot snapshot() const;

  /// The slot's trace ring (records only under HPPC_TRACE).
  obs::TraceRing& trace_ring(SlotId slot);

  std::size_t pooled_workers(SlotId slot, EntryPointId id) const;

  /// Racy snapshot of a slot's undrained ring depth (the quantity the shed
  /// watermark compares against). Atomic cursor loads — safe from any
  /// thread; tests use it to observe "a cell is parked" without racing the
  /// slot's plain-store counters.
  std::size_t xcall_depth(SlotId slot) const;

 private:
  friend class RtCtx;

  enum class SvcState : std::uint8_t { kActive, kDraining, kDead };

  struct Service {
    RtServiceConfig cfg;
    ProgramId program;
    RtHandler initial_handler;
    std::atomic<SvcState> state{SvcState::kActive};
    EntryPointId id = kInvalidEntryPoint;
  };

  struct DeferredCall {
    ProgramId caller;
    EntryPointId id;
    RegSet regs;
    std::uint64_t enqueue_tsc = 0;  // host_cycles() at call_async time
    obs::TraceCtx tctx{};           // trace context at enqueue time
    RequestCtx rctx{};              // request context at enqueue time
  };

  /// Everything one slot owns. Only the slot's current ownership holder —
  /// the registered thread while the gate reads kOwner, or a remote thief
  /// while it reads kStolen — touches the non-atomic members; all other
  /// threads go through the xcall ring (hot path) or mailbox (control
  /// plane). Gate transitions are acquire/release, so ownership handoff
  /// carries the slot state with it.
  struct Slot {
    SlotId self_id = 0;  // set once at construction; used by trace hooks
    NodeId node = 0;     // the NUMA node this slot's structures live on
    // Per-service worker pools, indexed by entry-point id (sparse).
    std::array<RtWorker*, kMaxEntryPoints> worker_pool{};
    RtCd* cd_pool = nullptr;
    obs::SlotCounters counters;
    // The latency histogram block, arena-placed on this slot's node (it is
    // written on every observed call — keeping it node-local keeps the
    // histogram store off the interconnect).
    obs::SlotHistograms* hists = nullptr;
    obs::TraceRing trace_ring;
    // Request-tracing state: the context the slot is currently executing
    // under (installed by trace_begin / restored around remote and async
    // execution) and the slot-local span-id allocator. Span ids are only
    // unique within a trace; 0 is "no span" everywhere, and the high bits
    // carry the slot id so two slots minting concurrently never collide.
    obs::TraceCtx cur_trace;
    std::uint32_t next_span = 1;
    // The ambient request context (deadline/cancel/class) the slot is
    // currently executing under. Same ownership discipline as cur_trace
    // (saved/restored around remote and deferred execution), but unlike
    // the trace context it is load-bearing in every build: nested calls
    // read it to inherit the root's budget.
    RequestCtx cur_req;
    std::vector<std::unique_ptr<RtWorker>> owned_workers;
    // CDs (and their stacks) are arena-placed on this slot's node; the
    // vector only tracks them for introspection — storage is the arena's.
    std::vector<RtCd*> owned_cds;
    std::vector<DeferredCall> deferred;
    std::vector<DeferredCall> deferred_scratch;  // reused across polls
    Mailbox<std::function<void()>> mailbox;
    // Caller-side completion-block pool for deadline calls. Owned (and only
    // linked/unlinked) by this slot's ownership holder; blocks live until
    // the Runtime dies, so an abandoned server-visible block can never
    // dangle. `wait_zombies` holds abandoned blocks whose server has not
    // yet acked; they are reaped into `wait_free` on the next acquire.
    XcallWait* wait_free = nullptr;
    XcallWait* wait_zombies = nullptr;
    // Arena-placed on this slot's node (storage is the arena's); the
    // vector's size is the pool-conservation invariant shutdown() asserts.
    std::vector<XcallWait*> owned_waits;
    SlotGate gate;        // remote-CASed: keep off the hot members' lines
    // Per-producer xcall channels, indexed by the PRODUCER's slot id: each
    // (src, dst) pair gets its own ring, so concurrent posters to one slot
    // never CAS the same enqueue cursor (the rings stay MPSC internally
    // because layers like repl::ReplHub post with a shared caller slot).
    // Allocated once at construction from the arena, on this slot's node:
    // the consumer-side cells of every (src, this) channel sit in the
    // consumer's local memory — the paper's "structures live on the
    // processor's own station" rule applied to the ring layer.
    XcallRing* rings = nullptr;
    // The doorbell word. Bit b = min(src, 63) set means "rings[src] may
    // hold undrained cells" — producers set it (release) on post iff they
    // saw it clear; the consumer exchanges it to 0 (acquire) and drains
    // exactly the flagged rings, re-arming any ring it leaves non-empty.
    // Idle poll is one load; drain work is O(popcount), not O(nslots).
    // Liveness backstop for the benign set/clear race (producer skips the
    // store just as the consumer clears the bit): every kPollScanPeriod-th
    // poll does a full scan, and helpers always drain their own channel.
    alignas(kHostCacheLine) std::atomic<std::uint64_t> ready_mask{0};
    // The bulk doorbell word: producers posting kBulk-class cells ring
    // this mask instead, and the consumer's drain serves it only after
    // the interactive mask above is empty — interactive-first drain
    // ordering without touching cells or rings. Same set/clear protocol
    // and the same full-scan liveness backstop as ready_mask. Own line:
    // bulk posters must not bounce the interactive doorbell's line.
    alignas(kHostCacheLine) std::atomic<std::uint64_t> bulk_ready_mask{0};
    std::uint32_t polls_since_scan = 0;  // consumer-private rescan ticker
  };

  static constexpr std::uint32_t kPollScanPeriod = 64;
  /// Producers at or beyond the mask width share the last doorbell bit.
  static std::uint64_t doorbell_bit(SlotId src) {
    return 1ull << (src < 63 ? src : 63);
  }

  Service* lookup(EntryPointId id) const {
    if (id >= kMaxEntryPoints) return nullptr;
    return services_[id].load(std::memory_order_acquire);
  }

  /// One frame-table entry. `self`/`program` are written before the fn
  /// release-store at bind time and never change afterwards, so a caller's
  /// fn acquire-load licenses the plain reads — one load on the warm path.
  struct FrameService {
    std::atomic<FrameFn> fn{nullptr};
    void* self = nullptr;
    ProgramId program = 0;
  };

  /// Shim record for bind_frame_shim (arena-allocated; trivially
  /// destructible).
  struct FrameShim {
    Runtime* rt = nullptr;
    EntryPointId ep = kInvalidEntryPoint;
  };

  static Status frame_shim_fn(void* self, FrameCtx& ctx, CallFrame& f);

  /// The shared frame call body (same-slot fast path, direct execution
  /// under a gate steal, and ring-cell drain all funnel here): one table
  /// load, one indirect call, one counter store. Ownership of `slot` is
  /// held by the calling thread.
  Status execute_frame(Slot& slot, ProgramId caller, CallFrame& f);

  template <ObsLevel kLevel>
  Status call_impl(SlotId slot, ProgramId caller, EntryPointId id,
                   RegSet& regs);
  template <bool kObserved>
  RtWorker* acquire_worker(Slot& slot, Service& svc);
  template <bool kObserved>
  RtCd* acquire_cd(Slot& slot, RtWorker& w);
  void release(Slot& slot, Service& svc, RtWorker* w, RtCd* cd);
  void reclaim_service_on_slot(Slot& slot, EntryPointId id);
  Status kill(EntryPointId id, bool hard);

  /// The call body shared by the same-slot fast path and both remote
  /// execution modes: worker/CD acquire, handler, release. Caller has
  /// already resolved the service and booked the per-variant counter.
  template <ObsLevel kLevel>
  Status execute_on_slot(Slot& slot, SlotId slot_id, Service& svc,
                         ProgramId caller, RegSet& regs);
  /// Execute one ring cell / remote request on `slot` (ownership held by
  /// the calling thread): re-checks service state, books calls_remote.
  Status execute_remote(Slot& slot, ProgramId caller, EntryPointId id,
                        RegSet& regs);
  /// Drain one batch of one producer ring on `slot` (ownership held).
  /// Books xcall_batches, drops/fails expired-deadline cells, completes
  /// sync cells (kicking parked waiters).
  std::size_t drain_ring(Slot& slot, XcallRing& ring);
  /// Mask-guided drain (ownership held): exchange the doorbell words to 0
  /// and drain exactly the flagged producer rings, re-arming any left
  /// non-empty. Interactive doorbells are served to empty before the bulk
  /// mask is consulted (books bulk_drains_deferred when bulk work had to
  /// wait). O(1) when idle, O(popcount) when not.
  std::size_t drain_ready(Slot& slot);
  /// One doorbell word's drain pass (the body drain_ready runs per class).
  std::size_t drain_mask(Slot& slot, std::atomic<std::uint64_t>& mask);
  /// Full-scan drain of every producer ring (ownership held): the
  /// periodic liveness backstop for lost doorbells, and the teardown path.
  std::size_t drain_all(Slot& slot);
  /// Producer-side doorbell: flag `src`'s ring in `tgt`'s ready mask
  /// (bulk_ready_mask when `bulk`), skipping the shared-line store when
  /// the bit is already set (doorbell coalescing, booked as
  /// ready_mask_skips on `me`).
  void ring_doorbell(Slot& me, Slot& tgt, SlotId src, bool bulk = false);
  /// Racy any-ring-pending scan, for serve()'s periodic idle recheck.
  bool any_ring_pending(const Slot& slot) const;
  /// Waiter-side progress: if `target`'s gate is idle, steal it, drain its
  /// flagged rings — plus the helper's OWN channel unconditionally, which
  /// makes a waiter's rescue independent of doorbell races — and hand the
  /// gate back. Returns true if it drained.
  bool help_drain(Slot& target, SlotId self);
  /// Caller-slot completion-block pool (deadline calls only). Reaps acked
  /// zombies, then recycles or grows. Caller-slot-owner thread only.
  XcallWait* acquire_wait(Slot& me);
  void release_wait(Slot& me, XcallWait* w);

  /// Span bookkeeping (trace builds; no-ops otherwise). begin_span mints a
  /// span id on `slot`, emits kSpanBegin into its ring, and carries the
  /// rt.trace.drop failpoint — a dropped span returns id 0 (books
  /// trace_drops) and everything downstream of it quietly elides.
  std::uint32_t begin_span(Slot& slot, obs::SpanKind kind,
                           std::uint64_t trace_id, std::uint32_t parent);
  void end_span(Slot& slot, std::uint64_t trace_id, std::uint32_t span,
                std::uint32_t parent, Status rc);

  /// Observer-side telemetry state: previous snapshots and the occupancy
  /// EWMAs, advanced once per telemetry() call. Mutex-guarded — telemetry
  /// is an observer path; the fast path never touches this.
  struct TelemetryState {
    std::mutex mu;
    bool primed = false;
    std::uint64_t prev_ns = 0;
    std::uint64_t prev_cycles = 0;
    std::vector<obs::CounterSnapshot> prev_counters;
    std::vector<obs::HistSnapshot> prev_hists;
    std::vector<double> occ_ewma;
  };

  SlotRegistry registry_;
  bool pin_threads_;
  // Declared before slots_ so it outlives them: every slot's rings, CDs,
  // wait blocks and histogram block point into this arena.
  mem::Arena arena_;
  std::vector<CacheAligned<Slot>> slots_;
  std::array<std::atomic<Service*>, kMaxEntryPoints> services_{};
  std::array<FrameService, kMaxFrameServices> frame_services_{};
  std::uint32_t next_frame_service_ = 0;  // under bind_mutex_
  std::vector<std::unique_ptr<Service>> owned_services_;
  std::mutex bind_mutex_;  // slow path only
  obs::SharedCounters shared_;
  // Per-class admission watermarks (0 = shedding disabled for the class).
  std::array<std::atomic<std::uint32_t>, kNumTrafficClasses>
      shed_watermark_{};
  // The cancel-flag pool: token t maps to cancel_flags_[t % kMaxCancel-
  // Tokens]. Fixed-size so a token index fits the cell ep lane and lookup
  // is one relaxed load with no lifetime question. By default the pool is
  // process-private (owned_cancel_* below, allocated zeroed at
  // construction); adopt_cancel_pool() re-points both the flag array and
  // the allocation cursor at segment-resident storage so cancellation is
  // visible across processes. next_cancel_token never hands out index 0.
  std::unique_ptr<std::atomic<std::uint32_t>[]> owned_cancel_flags_;
  std::atomic<std::uint32_t> owned_next_cancel_token_{1};
  std::atomic<std::uint32_t>* cancel_flags_ = nullptr;
  std::atomic<std::uint32_t>* next_cancel_token_ = &owned_next_cancel_token_;
  TelemetryState telemetry_;
  EntryPointId next_ep_ = 8;
};

}  // namespace hppc::rt
