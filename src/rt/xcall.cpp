// Layout and protocol invariants for the xcall channel types. The channel
// itself is header-only (everything on the hot path must inline); this TU
// pins down the properties the protocol depends on so a refactor that
// breaks them fails the build here, with a message, rather than showing up
// as a perf or correctness regression downstream.
#include "rt/xcall.h"

#include <type_traits>

namespace hppc::rt {

// Cells tile cache lines exactly: producers writing adjacent cells never
// false-share, and the inline RegSet payload stays on the cell's own line.
static_assert(alignof(XcallCell) == kHostCacheLine);
static_assert(sizeof(XcallCell) % kHostCacheLine == 0);

// The payload fields are trivially copyable — a cell publish is plain
// stores plus one release store of `seq`, nothing with a destructor or a
// throwing copy in between.
static_assert(std::is_trivially_copyable_v<ppc::RegSet>);
static_assert(std::is_trivially_copyable_v<ProgramId>);
static_assert(std::is_trivially_copyable_v<EntryPointId>);

// The producer-shared and consumer-private ring cursors must not share a
// line with each other or with the first cell (checked structurally: the
// ring is at least three lines before the cells).
static_assert(sizeof(XcallRing) >=
              2 * kHostCacheLine + XcallRing::kCapacity * sizeof(XcallCell));

// Status must fit beside XcallWait::kDoneBit in one 32-bit completion word
// (the wait loop unpacks it with `v & 0xFF`).
static_assert(sizeof(Status) == 1 && XcallWait::kDoneBit > 0xFFu);

// The three state bits of the completion word must be distinct and all
// clear of the status byte: the park CAS (0→kParkedBit), the abandon CAS
// (0→kAbandonedBit), and the completing exchange (→kDoneBit|status) each
// need to be able to tell exactly which transition they raced with.
static_assert((XcallWait::kParkedBit &
               (XcallWait::kDoneBit | XcallWait::kAbandonedBit | 0xFFu)) == 0);

// The cell deadline is plain payload: published before the seq release
// store, read by the consumer after its acquire — same discipline as regs.
static_assert(std::is_trivially_copyable_v<decltype(XcallCell::deadline)>);

}  // namespace hppc::rt
