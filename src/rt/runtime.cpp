#include "rt/runtime.h"

#include <bit>

#include "common/tsc.h"
#include "fault/failpoints.h"

namespace hppc::rt {

using ppc::rc_of;
using ppc::set_rc;

// ---------------------------------------------------------------------------
// RtCtx
// ---------------------------------------------------------------------------

std::span<std::byte> RtCtx::stack() {
  RtCd* cd = worker_.active_cd;
  HPPC_ASSERT_MSG(cd != nullptr, "stack() outside a call");
  return {cd->stack, kPageSize};
}

void RtCtx::set_worker_handler(std::function<void(RtCtx&, RegSet&)> h) {
  worker_.set_handler(std::move(h));
}

Status RtCtx::call(EntryPointId id, RegSet& regs) {
  return rt_.call(slot_, caller_, id, regs);
}

bool RtCtx::cancellation_requested() const {
  return rt_.cancellation_requested(slot_);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(std::uint32_t slots, bool pin_threads)
    : registry_(slots), pin_threads_(pin_threads), slots_(registry_.capacity()) {
  // Deliberate placement, not first-touch accident: every slot's hot
  // structures — its ring cells and its histogram block here; CD stacks
  // and wait blocks as they are pooled — come from the arena pool of the
  // slot's own node, so the warm path's stores stay on local memory.
  const std::uint32_t cap = registry_.capacity();
  for (SlotId s = 0; s < cap; ++s) {
    Slot& slot = *slots_[s];
    slot.self_id = s;
    slot.node = node_of_slot(s);
    slot.rings = arena_.create_array<XcallRing>(slot.node, cap);
    slot.hists = arena_.create<obs::SlotHistograms>(slot.node);
  }
  // The cancel-flag pool (value-initialized: every flag starts clear).
  // Heap, not arena: it is runtime-wide, not per-slot, and cold until a
  // cancel actually lands. adopt_cancel_pool() may later re-point the
  // working pointers at segment-resident storage.
  owned_cancel_flags_ =
      std::make_unique<std::atomic<std::uint32_t>[]>(kMaxCancelTokens);
  cancel_flags_ = owned_cancel_flags_.get();
}

void Runtime::adopt_cancel_pool(std::atomic<std::uint32_t>* flags,
                                std::atomic<std::uint32_t>* next_token) {
  cancel_flags_ = flags;
  next_cancel_token_ = next_token;
}

Runtime::~Runtime() { shutdown(); }

std::size_t Runtime::shutdown() {
  // Quiescent by contract: this thread is the only one touching any slot,
  // so it may assume ownership of every ring and pool without gates.
  //
  // Pass 1 — empty every ring without executing. A sync cell still parked
  // here means its caller is gone (quiescence), so completing it with
  // kCallAborted is a store nobody reads; an abandoned cell is acked
  // exactly as a live drain would. After this pass no server-side
  // reference to any XcallWait block exists anywhere in the runtime.
  for (auto& sp : slots_) {
    Slot& slot = *sp;
    for (std::uint32_t src = 0; src < registry_.capacity(); ++src) {
      slot.rings[src].drain([](XcallCell& cell) {
        if (cell.wait == nullptr) return;
        if (cell.wait->abandoned()) {
          cell.wait->ack_abandoned();
        } else {
          cell.wait->complete(Status::kCallAborted);
        }
      });
    }
    slot.ready_mask.store(0, std::memory_order_relaxed);
    slot.bulk_ready_mask.store(0, std::memory_order_relaxed);
  }
  // Pass 2 — reap the zombie lists. Blocks whose server acked above (or
  // long ago) are recyclable as usual; blocks orphaned by a ring that was
  // permanently killed (dropped completion, owner never drained) are now
  // unreachable from any ring, so reclaiming them is safe too.
  std::size_t reaped = 0;
  for (auto& sp : slots_) {
    Slot& slot = *sp;
    while (XcallWait* z = slot.wait_zombies) {
      slot.wait_zombies = z->next;
      z->reset();
      z->next = slot.wait_free;
      slot.wait_free = z;
      ++reaped;
    }
    // The reclamation invariant: every block the slot ever allocated is
    // back on its free list. A leak here means a wait escaped both the
    // normal recycle path and the sweep above.
    std::size_t free_count = 0;
    for (XcallWait* w = slot.wait_free; w != nullptr; w = w->next) {
      ++free_count;
    }
    HPPC_ASSERT_MSG(free_count == slot.owned_waits.size(),
                    "XcallWait blocks leaked past the teardown sweep");
  }
  return reaped;
}

EntryPointId Runtime::bind(RtServiceConfig cfg, ProgramId program,
                           RtHandler initial_handler) {
  // Off-slot slow path: the bind lock and the service-table publication are
  // exactly the shared traffic the warm path avoids — book them.
  shared_.inc(obs::Counter::kBinds);
  shared_.inc(obs::Counter::kLocksTaken);
  shared_.inc(obs::Counter::kSharedLinesTouched);
  std::lock_guard<std::mutex> lock(bind_mutex_);
  while (next_ep_ < kMaxEntryPoints &&
         services_[next_ep_].load(std::memory_order_relaxed) != nullptr) {
    ++next_ep_;
  }
  HPPC_ASSERT_MSG(next_ep_ < kMaxEntryPoints, "out of entry points");
  auto svc = std::make_unique<Service>();
  svc->cfg = std::move(cfg);
  svc->program = program;
  svc->initial_handler = std::move(initial_handler);
  svc->id = next_ep_;
  Service* raw = svc.get();
  owned_services_.push_back(std::move(svc));
  services_[next_ep_].store(raw, std::memory_order_release);
  return next_ep_++;
}

Status Runtime::kill(EntryPointId id, bool hard) {
  Service* svc = lookup(id);
  if (svc == nullptr || svc->state.load() == SvcState::kDead) {
    return Status::kNoSuchEntryPoint;
  }
  shared_.inc(hard ? obs::Counter::kHardKills : obs::Counter::kSoftKills);
  shared_.inc(obs::Counter::kSharedLinesTouched);  // the state store below
  svc->state.store(hard ? SvcState::kDead : SvcState::kDraining,
                   std::memory_order_release);
  if (hard) {
    services_[id].store(nullptr, std::memory_order_release);
    // Per-slot resources may only be touched by their owner: post the
    // reclamation to every slot (the mailbox stands in for the IPI of
    // §4.5.2).
    for (SlotId s = 0; s < slots_.size(); ++s) {
      post(s, [this, s, id] { reclaim_service_on_slot(*slots_[s], id); });
    }
  }
  return Status::kOk;
}

Status Runtime::soft_kill(EntryPointId id) { return kill(id, /*hard=*/false); }
Status Runtime::hard_kill(EntryPointId id) { return kill(id, /*hard=*/true); }

void Runtime::reclaim_service_on_slot(Slot& slot, EntryPointId id) {
  RtWorker* w = slot.worker_pool[id];
  slot.worker_pool[id] = nullptr;
  while (w != nullptr) {
    RtWorker* next = w->next;
    slot.counters.inc(obs::Counter::kWorkersReclaimed);
    HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot.self_id,
                     obs::TraceEvent::kReclaim, id);
    if (w->held_cd != nullptr) {
      // Return the held CD (and its stack) to the slot's shared pool.
      w->held_cd->next = slot.cd_pool;
      slot.cd_pool = w->held_cd;
      w->held_cd = nullptr;
    }
    w = next;  // the owned_workers vector keeps the storage alive
  }
}

template <bool kObserved>
RtWorker* Runtime::acquire_worker(Slot& slot, Service& svc) {
  RtWorker* w = slot.worker_pool[svc.id];
  if (w != nullptr) {
    slot.worker_pool[svc.id] = w->next;
    w->next = nullptr;
    return w;
  }
  // Slow path: create a worker initialized to the service's initial
  // (possibly one-time-init, §4.5.3) routine.
  if constexpr (kObserved) {
    slot.counters.inc(obs::Counter::kWorkersCreated);
    slot.counters.inc(obs::Counter::kSlowPathEntries);
    HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot.self_id,
                     obs::TraceEvent::kWorkerCreate, svc.id);
  }
  auto owned = std::make_unique<RtWorker>(svc.initial_handler);
  w = owned.get();
  slot.owned_workers.push_back(std::move(owned));
  if (svc.cfg.hold_cd) {
    w->held_cd = acquire_cd<kObserved>(slot, *w);
  }
  return w;
}

template <bool kObserved>
RtCd* Runtime::acquire_cd(Slot& slot, RtWorker& w) {
  if (w.held_cd != nullptr) {
    if constexpr (kObserved) {
      slot.counters.inc(obs::Counter::kHoldCdHits);
    }
    return w.held_cd;
  }
  RtCd* cd = slot.cd_pool;
  if (cd != nullptr) {
    slot.cd_pool = cd->next;
    cd->next = nullptr;
    return cd;
  }
  if constexpr (kObserved) {
    slot.counters.inc(obs::Counter::kCdsCreated);
    slot.counters.inc(obs::Counter::kSlowPathEntries);
  }
  // Pool growth (slow path): descriptor and stack both land on the slot's
  // node. Page alignment keeps each stack to whole local pages.
  cd = arena_.create<RtCd>(slot.node);
  cd->stack =
      static_cast<std::byte*>(arena_.allocate(slot.node, kPageSize, kPageSize));
  slot.owned_cds.push_back(cd);
  return cd;
}

void Runtime::release(Slot& slot, Service& svc, RtWorker* w, RtCd* cd) {
  w->active_cd = nullptr;
  if (w->held_cd != cd) {
    cd->next = slot.cd_pool;
    slot.cd_pool = cd;
  }
  if (svc.state.load(std::memory_order_acquire) == SvcState::kActive) {
    w->next = slot.worker_pool[svc.id];
    slot.worker_pool[svc.id] = w;
  } else if (w->held_cd != nullptr) {
    // Draining/dead: the worker is not re-pooled; free its held CD.
    w->held_cd->next = slot.cd_pool;
    slot.cd_pool = w->held_cd;
    w->held_cd = nullptr;
  }
}

template <ObsLevel kLevel>
Status Runtime::execute_on_slot(Slot& slot, SlotId slot_id, Service& svc,
                                ProgramId caller, RegSet& regs) {
  constexpr bool kObserved = kLevel != ObsLevel::kStripped;
  // The shared call body: everything below is slot-local under the current
  // ownership — no atomics, no locks. Pool-hit and CD-recycle tallies are
  // derived at snapshot time from the slow-path counters instead of being
  // incremented per call (see derive_pool_counters).
  if constexpr (kObserved) {
    HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                     obs::TraceEvent::kCallEnter, svc.id);
    // Fault seams for the resource-acquisition half of the call body:
    // simulate the worker pool (then the CD pool) being exhausted past even
    // Frank's reach — the §4.5.6 failure mode — without perturbing the real
    // pools.
    if (HPPC_FAULT_POINT("rt.worker.exhausted") ||
        HPPC_FAULT_POINT("rt.cd.exhausted")) {
      slot.counters.inc(obs::Counter::kFaultsInjected);
      HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                       obs::TraceEvent::kFaultInject, svc.id);
      set_rc(regs, Status::kOutOfResources);
      return Status::kOutOfResources;
    }
  }
  RtWorker* w = acquire_worker<kObserved>(slot, svc);
  RtCd* cd = acquire_cd<kObserved>(slot, *w);
  w->active_cd = cd;

  bool aborted = false;
  if constexpr (kObserved) {
    // Simulated handler abort (§4.5.2 in-flight failure): the worker and CD
    // were acquired, the handler never runs, resources are released below.
    if (HPPC_FAULT_POINT("rt.handler.abort")) {
      slot.counters.inc(obs::Counter::kFaultsInjected);
      HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                       obs::TraceEvent::kFaultInject, svc.id);
      set_rc(regs, Status::kCallAborted);
      aborted = true;
    }
  }
  if (!aborted) {
    RtCtx ctx(*this, slot_id, *w, caller);
    // Invoked by reference: self-replacement (§4.5.3) is staged in the
    // worker and committed below, so no per-call std::function copy is
    // needed.
    w->handler()(ctx, regs);
    if (w->has_pending_handler()) w->commit_pending_handler();
  }

  release(slot, svc, w, cd);
  if constexpr (kObserved) {
    HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                     obs::TraceEvent::kCallExit,
                     static_cast<std::uint32_t>(rc_of(regs)));
  }
  return rc_of(regs);
}

template <ObsLevel kLevel>
Status Runtime::call_impl(SlotId slot_id, ProgramId caller, EntryPointId id,
                          RegSet& regs) {
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];

  Service* svc = lookup(id);
  if (svc == nullptr) {
    set_rc(regs, Status::kNoSuchEntryPoint);
    return Status::kNoSuchEntryPoint;
  }
  const SvcState st = svc->state.load(std::memory_order_acquire);
  if (st != SvcState::kActive) {
    const Status s = st == SvcState::kDraining ? Status::kEntryPointDraining
                                               : Status::kNoSuchEntryPoint;
    set_rc(regs, s);
    return s;
  }

  // Ambient request screen — present at EVERY ObsLevel because it is call
  // semantics, not instrumentation (the overhead gate differences paths
  // that all share it). The warm no-context path pays two always-false
  // compares against slot-local state; an expired or cancelled root
  // request refuses every nested call in its tree right here, before a
  // worker is touched.
  const RequestCtx& req = slot.cur_req;
  if (req.abs_deadline_cycles != 0 &&
      host_cycles() >= req.abs_deadline_cycles) {
    if constexpr (kLevel != ObsLevel::kStripped) {
      slot.counters.inc(obs::Counter::kDeadlineExceeded);
      HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                       obs::TraceEvent::kDeadlineExceeded, id);
    }
    set_rc(regs, Status::kDeadlineExceeded);
    return Status::kDeadlineExceeded;
  }
  if (req.cancel_token != 0 && cancel_requested(req.cancel_token)) {
    if constexpr (kLevel != ObsLevel::kStripped) {
      slot.counters.inc(obs::Counter::kCallsCancelled);
      HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                       obs::TraceEvent::kCallCancelled, id);
    }
    set_rc(regs, Status::kCallAborted);
    return Status::kCallAborted;
  }

  // Fast path: one plain store (calls_sync; hold-CD services pay a second
  // for hold_cd_hits), then the shared slot-local call body.
  if constexpr (kLevel != ObsLevel::kStripped) {
    slot.counters.inc(obs::Counter::kCallsSync);
    // Pure-delay seam (the failpoint burns its armed cpu_relax budget
    // before returning true): models a preempted or cache-cold caller.
    if (HPPC_FAULT_POINT("rt.call.delay")) {
      slot.counters.inc(obs::Counter::kFaultsInjected);
      HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                       obs::TraceEvent::kFaultInject, id);
    }
  }
  if constexpr (kLevel == ObsLevel::kFull) {
    // Full observability adds one tsc pair + one histogram store per call.
    const std::uint64_t t0 = host_cycles();
#if defined(HPPC_TRACE) && HPPC_TRACE
    // Request-scoped span: if the slot is executing under a trace (root
    // installed by trace_begin, or a remote/async context restored around
    // us), this call is a child span of it. Swapping cur_trace around the
    // handler makes nested RtCtx::call chains parent correctly.
    const obs::TraceCtx saved = slot.cur_trace;
    std::uint32_t span = 0;
    if (saved.traced()) {
      span = begin_span(slot, obs::SpanKind::kLocalCall, saved.trace_id,
                        saved.span_id);
      if (span != 0) slot.cur_trace.span_id = span;
    }
#endif
    const Status rc =
        execute_on_slot<kLevel>(slot, slot_id, *svc, caller, regs);
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (saved.traced()) {
      slot.cur_trace = saved;
      end_span(slot, saved.trace_id, span, saved.span_id, rc);
    }
#endif
    slot.hists->record(obs::Hist::kRttSync, host_cycles() - t0);
    return rc;
  }
  return execute_on_slot<kLevel>(slot, slot_id, *svc, caller, regs);
}

Status Runtime::call(SlotId slot_id, ProgramId caller, EntryPointId id,
                     RegSet& regs) {
  return call_impl<ObsLevel::kFull>(slot_id, caller, id, regs);
}

Status Runtime::call(SlotId slot_id, ProgramId caller, EntryPointId id,
                     RegSet& regs, const CallOptions& opts) {
  // A same-slot call executes inline on the calling thread, so the retry
  // knob has nothing to act on — but the deadline/cancel/class knobs do:
  // they scope the ambient request context around the handler. The
  // relative deadline folds into the inherited absolute budget (tighten,
  // never extend — with_budget), nested calls the handler makes inherit
  // the result, and call_impl's pre-execution screen enforces both the
  // budget and the cancel flag.
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];
  const RequestCtx saved = slot.cur_req;
  RequestCtx eff = saved;
  eff.abs_deadline_cycles = opts.with_budget(saved.abs_deadline_cycles);
  if (opts.cancel_token != 0) eff.cancel_token = opts.cancel_token;
  if (opts.traffic_class == TrafficClass::kBulk) {
    eff.traffic_class = TrafficClass::kBulk;
  }
  if (saved.abs_deadline_cycles != 0 &&
      eff.abs_deadline_cycles == saved.abs_deadline_cycles) {
    slot.counters.inc(obs::Counter::kDeadlineInherited);
  }
  slot.cur_req = eff;
  const Status rc = call_impl<ObsLevel::kFull>(slot_id, caller, id, regs);
  slot.cur_req = saved;
  return rc;
}

Status Runtime::call_unobserved_for_benchmark(SlotId slot_id,
                                              ProgramId caller,
                                              EntryPointId id, RegSet& regs) {
  return call_impl<ObsLevel::kStripped>(slot_id, caller, id, regs);
}

Status Runtime::call_counters_only_for_benchmark(SlotId slot_id,
                                                 ProgramId caller,
                                                 EntryPointId id,
                                                 RegSet& regs) {
  return call_impl<ObsLevel::kCounters>(slot_id, caller, id, regs);
}

Status Runtime::call_async(SlotId slot_id, ProgramId caller, EntryPointId id,
                           RegSet regs) {
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];
  Service* svc = lookup(id);
  if (svc == nullptr) return Status::kNoSuchEntryPoint;
  if (svc->state.load(std::memory_order_acquire) != SvcState::kActive) {
    return Status::kEntryPointDraining;
  }
  slot.counters.inc(obs::Counter::kCallsAsync);
  HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot_id,
                   obs::TraceEvent::kAsyncEnqueue, id);
  DeferredCall d{caller, id, regs};
  d.enqueue_tsc = host_cycles();  // poll() turns this into kRttAsync
  d.tctx = slot.cur_trace;        // trace context rides the deferral
  d.rctx = slot.cur_req;          // ...and so does the request context:
  // poll() re-installs it around the execution, where call_impl's screen
  // drops the deferred call if the root expired or was cancelled meanwhile.
  slot.deferred.push_back(d);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Cross-slot calls (xcall)
// ---------------------------------------------------------------------------

SlotId Runtime::register_thread() {
  const SlotId s = registry_.register_thread(pin_threads_);
  // First registration claims the gate (slots start idle, so a never-
  // registered slot is remotely direct-executable); re-registration finds
  // it already held by this thread and is a no-op.
  slots_[s]->gate.claim_at_register();
  return s;
}

Status Runtime::execute_remote(Slot& slot, ProgramId caller, EntryPointId id,
                               RegSet& regs) {
  // Re-resolve: the service may have been killed between post and drain.
  // The caller pre-screened the entry point before admitting the call, so
  // a service that is gone (or hard-killed) *here* died while the call was
  // in flight — that is the §4.5.2 abort case, reported as kCallAborted so
  // a hard kill racing call_remote yields exactly {kOk, kCallAborted}.
  // Soft kill keeps its distinct drain code.
  Service* svc = lookup(id);
  if (svc == nullptr) {
    set_rc(regs, Status::kCallAborted);
    return Status::kCallAborted;
  }
  const SvcState st = svc->state.load(std::memory_order_acquire);
  if (st != SvcState::kActive) {
    const Status s = st == SvcState::kDraining ? Status::kEntryPointDraining
                                               : Status::kCallAborted;
    set_rc(regs, s);
    return s;
  }
  slot.counters.inc(obs::Counter::kCallsRemote);
  HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot.self_id,
                   obs::TraceEvent::kRemoteCall, id);
  return execute_on_slot<ObsLevel::kFull>(slot, slot.self_id, *svc, caller,
                                          regs);
}

std::size_t Runtime::drain_ring(Slot& slot, XcallRing& ring) {
  // Execute one cell's request under the request context it carried across
  // the ring (trace builds): a kServerExec span parented to the caller's
  // post span, with cur_trace swapped so nested calls inside the handler
  // parent to it in turn.
  const auto run_cell = [this, &slot](const XcallCell& cell,
                                      RegSet& out) -> Status {
    // Install the request context the cell carried across the ring: the
    // absolute budget rides the cell's deadline lane, the cancel-token
    // index and traffic class ride the ep word's high lanes. Swapped in
    // around the handler exactly like the trace context below — but
    // unconditionally, in every build — so NESTED calls the handler makes
    // inherit the root's budget and token. This is the hop the tentpole
    // exists for: before it, an expired root died at the first xcall seam
    // while downstream work kept burning cycles.
    const RequestCtx saved_req = slot.cur_req;
    RequestCtx req;
    req.abs_deadline_cycles = cell.deadline;
    req.cancel_token = cell_token_idx(cell.ep);
    req.traffic_class = cell_is_bulk(cell.ep) ? TrafficClass::kBulk
                                              : TrafficClass::kInteractive;
#if defined(HPPC_TRACE) && HPPC_TRACE
    const obs::TraceCtx cctx = cell.tctx;
    req.trace_id = cctx.trace_id;
    const obs::TraceCtx saved = slot.cur_trace;
    std::uint32_t span = 0;
    if (cctx.traced()) {
      span = begin_span(slot, obs::SpanKind::kServerExec, cctx.trace_id,
                        cctx.span_id);
      slot.cur_trace = cctx;
      if (span != 0) slot.cur_trace.span_id = span;
    }
#endif
    slot.cur_req = req;
    const Status rc =
        execute_remote(slot, cell.caller, cell_ep(cell.ep), out);
    slot.cur_req = saved_req;
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (cctx.traced()) {
      slot.cur_trace = saved;
      end_span(slot, cctx.trace_id, span, cctx.span_id, rc);
    }
#endif
    return rc;
  };
  // One batch: every cell published before the first gap, one acquire per
  // cell to observe its payload, one book-keeping store per batch.
  const std::size_t n = ring.drain([this, &slot, &run_cell](XcallCell& cell) {
    // Frame cells first: their `deadline` lane carries the packed op word,
    // so nothing below this branch may interpret it as a tick count.
    if (cell_is_frame(cell)) {
      CallFrame f = cell_frame(cell);
      if (cell.wait != nullptr) {
        XcallWait& w = *cell.wait;
        // Frame calls carry no deadline, so a live caller never abandons;
        // this is the shutdown/chaos path keeping the block reclaimable.
        if (w.abandoned()) {
          w.ack_abandoned();
          slot.counters.inc(obs::Counter::kSharedLinesTouched);
          return;
        }
        const Status rc = execute_frame(slot, cell.caller, f);
        w.reply_target().w = f.w;
        if (w.complete(rc)) {
          slot.counters.inc(obs::Counter::kWaiterKicks);
        }
        slot.counters.inc(obs::Counter::kSharedLinesTouched);
      } else {
        execute_frame(slot, cell.caller, f);  // fire-and-forget frame
      }
      return;
    }
    if (cell.wait != nullptr) {
      XcallWait& w = *cell.wait;
      // Abandoned cell: the caller's deadline expired and it left. Ack
      // (setting kDoneBit so the owning slot can recycle the block) and
      // skip execution — the §4.5.2 "caller died mid-call" drain path.
      if (w.abandoned()) {
        w.ack_abandoned();
        slot.counters.inc(obs::Counter::kSharedLinesTouched);
        return;
      }
      RegSet& out = w.reply_target();
      out = cell.regs;
      // A sync cell that drained past its deadline is not executed late:
      // the caller is abandoning (or about to) — fail it instead of
      // burning a worker on a result nobody can use. If the caller's
      // abandon CAS lands between the check above and the exchange below,
      // the exchange still sets kDoneBit, so the block stays reclaimable.
      if (cell.deadline != 0 && host_cycles() >= cell.deadline) {
        set_rc(out, Status::kDeadlineExceeded);
        if (w.complete(Status::kDeadlineExceeded)) {
          slot.counters.inc(obs::Counter::kWaiterKicks);
        }
        slot.counters.inc(obs::Counter::kDeadlineExceeded);
        slot.counters.inc(obs::Counter::kSharedLinesTouched);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kDeadlineExceeded,
                         cell_ep(cell.ep));
        return;
      }
      // A cancelled cell is refused the same way: the root asked for the
      // whole tree to stop, so an undrained cell completes kCallAborted
      // instead of executing. The completion exchange kicks a parked
      // caller exactly as a real result would.
      if (const std::uint32_t tok = cell_token_idx(cell.ep);
          tok != 0 && cancel_requested(tok)) {
        set_rc(out, Status::kCallAborted);
        if (w.complete(Status::kCallAborted)) {
          slot.counters.inc(obs::Counter::kWaiterKicks);
        }
        slot.counters.inc(obs::Counter::kCallsCancelled);
        slot.counters.inc(obs::Counter::kSharedLinesTouched);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kCallCancelled,
                         cell_ep(cell.ep));
        return;
      }
      // Synchronous: reply into the caller's register file (stack waits)
      // or the block's inline buffer (pooled deadline waits), then publish
      // completion (release exchange) — one shared-line RMW, booked below.
      const Status rc = run_cell(cell, out);
      // Fault seams on the completion publish: a dropped completion (the
      // caller MUST hold a deadline or it spins forever — chaos-only) and
      // a delayed one (the failpoint burns its delay budget first).
      if (HPPC_FAULT_POINT("rt.xcall.complete.drop")) {
        slot.counters.inc(obs::Counter::kFaultsInjected);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kFaultInject,
                         cell.ep);
        return;
      }
      if (HPPC_FAULT_POINT("rt.xcall.complete.delay")) {
        slot.counters.inc(obs::Counter::kFaultsInjected);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kFaultInject,
                         cell.ep);
      }
      if (w.complete(rc)) {
        // The completing exchange found the parked bit: we just futex-woke
        // a waiter that gave up its timeslice to us.
        slot.counters.inc(obs::Counter::kWaiterKicks);
#if defined(HPPC_TRACE) && HPPC_TRACE
        // The kick instant carries the cell's request ids so the exported
        // trace shows WHICH call's completion woke the parked waiter.
        slot.trace_ring.record_span(
            obs::host_trace_now(),
            static_cast<std::uint16_t>(slot.self_id),
            obs::TraceEvent::kWaiterKick, cell_ep(cell.ep),
            cell.tctx.trace_id, cell.tctx.span_id, 0);
#endif
      }
      slot.counters.inc(obs::Counter::kSharedLinesTouched);
    } else {
      // Fire-and-forget. An expired deadline is the kCallerDied-style
      // skip: drop the cell at drain time instead of executing it late.
      if (cell.deadline != 0 && host_cycles() >= cell.deadline) {
        slot.counters.inc(obs::Counter::kDeadlineExceeded);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kDeadlineExceeded,
                         cell_ep(cell.ep));
        return;
      }
      // A cancelled fire-and-forget cell is simply dropped: nobody is
      // waiting, and the root asked for the tree to stop.
      if (const std::uint32_t tok = cell_token_idx(cell.ep);
          tok != 0 && cancel_requested(tok)) {
        slot.counters.inc(obs::Counter::kCallsCancelled);
        HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                         slot.self_id, obs::TraceEvent::kCallCancelled,
                         cell_ep(cell.ep));
        return;
      }
      RegSet regs = cell.regs;  // results discarded
      run_cell(cell, regs);
    }
  });
  if (n > 0) {
    // Drain accounting: xcall_cells_drained is the telemetry layer's
    // drain-rate source; the batch-size histogram shows how well doorbell
    // coalescing is amortizing cross-slot transfers.
    slot.counters.inc(obs::Counter::kXcallBatches);
    slot.counters.inc(obs::Counter::kXcallCellsDrained, n);
    slot.hists->record(obs::Hist::kDrainBatch, n);
    HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(), slot.self_id,
                     obs::TraceEvent::kXcallBatch, n);
  }
  return n;
}

std::size_t Runtime::drain_mask(Slot& slot,
                                std::atomic<std::uint64_t>& mask) {
  // One acquire exchange claims every doorbell rung so far; the acquire
  // pairs with the producers' release fetch_or, so a flagged ring's cells
  // are visible. Bits we consume but whose ring refills mid-drain are
  // re-armed below — the consumer never strands a cell behind a bit a
  // producer believes is still set.
  std::uint64_t ready = mask.exchange(0, std::memory_order_acquire);
  if (ready == 0) return 0;
  const std::uint32_t nslots = registry_.capacity();
  std::size_t done = 0;
  while (ready != 0) {
    const auto b = static_cast<std::uint32_t>(std::countr_zero(ready));
    ready &= ready - 1;
    // Bit 63 aliases every producer at or beyond the mask width.
    const std::uint32_t last = (b == 63 && nslots > 64) ? nslots - 1 : b;
    for (std::uint32_t src = b; src <= last && src < nslots; ++src) {
      done += drain_ring(slot, slot.rings[src]);
      if (slot.rings[src].has_pending()) {
        mask.fetch_or(doorbell_bit(src), std::memory_order_relaxed);
      }
    }
  }
  return done;
}

std::size_t Runtime::drain_ready(Slot& slot) {
  // Interactive-first drain ordering: the interactive doorbell word is
  // served to empty before the bulk word is even consulted, so a slot
  // with both classes queued retires the latency-sensitive work first.
  // Starvation is bounded by the ring capacities: one drain_ready pass
  // serves at most one batch per flagged interactive ring, then ALWAYS
  // falls through to the bulk word.
  std::size_t done = drain_mask(slot, slot.ready_mask);
  if (slot.bulk_ready_mask.load(std::memory_order_relaxed) != 0) {
    if (done != 0) {
      // Bulk work sat queued while interactive doorbells were served.
      slot.counters.inc(obs::Counter::kBulkDrainsDeferred);
    }
    done += drain_mask(slot, slot.bulk_ready_mask);
  }
  return done;
}

std::size_t Runtime::drain_all(Slot& slot) {
  // Full O(nslots) sweep: the periodic backstop that makes a lost doorbell
  // a latency blip instead of a hang. Clears the masks first so a bit for
  // a ring this sweep is about to drain anyway is not left rung. Re-arms
  // conservatively into the interactive mask (the sweep cannot know which
  // class refilled a ring — promoting is the safe direction).
  slot.ready_mask.exchange(0, std::memory_order_acquire);
  slot.bulk_ready_mask.exchange(0, std::memory_order_acquire);
  std::size_t done = 0;
  for (std::uint32_t src = 0; src < registry_.capacity(); ++src) {
    done += drain_ring(slot, slot.rings[src]);
    if (slot.rings[src].has_pending()) {
      slot.ready_mask.fetch_or(doorbell_bit(src), std::memory_order_relaxed);
    }
  }
  return done;
}

void Runtime::ring_doorbell(Slot& me, Slot& tgt, SlotId src, bool bulk) {
  // Doorbell coalescing: while the bit is already set the consumer is
  // guaranteed to visit the ring (or re-arm the bit itself), so the post
  // can skip the shared-line RMW entirely — that is what lets a burst of
  // posts cost ~one cross-slot line transfer instead of one each. Bulk
  // posts ring the bulk word, which the consumer serves only after the
  // interactive one — drain priority decided at the doorbell, free of
  // per-cell cost.
  std::atomic<std::uint64_t>& mask =
      bulk ? tgt.bulk_ready_mask : tgt.ready_mask;
  const std::uint64_t bit = doorbell_bit(src);
  if ((mask.load(std::memory_order_relaxed) & bit) != 0) {
    me.counters.inc(obs::Counter::kReadyMaskSkips);
    return;
  }
  mask.fetch_or(bit, std::memory_order_release);
}

bool Runtime::any_ring_pending(const Slot& slot) const {
  for (std::uint32_t src = 0; src < registry_.capacity(); ++src) {
    if (slot.rings[src].has_pending()) return true;
  }
  return false;
}

bool Runtime::help_drain(Slot& target, SlotId self) {
  if (!target.gate.try_steal()) return false;
  drain_ready(target);
  // Always sweep our own channel: a waiter rescuing its own call must not
  // depend on its doorbell having survived the set/clear race.
  drain_ring(target, target.rings[self]);
  target.gate.release_steal();
  return true;
}

CancelToken Runtime::cancel_token_create() {
  // Wait-free monotonic allocation. Values whose pool-index lane is zero
  // are skipped — 0 in the cell's token lane means "not cancellable", so
  // no real token may alias it. The pool is generation-free: reuse needs
  // kMaxCancelTokens intervening allocations, and a stale cancel on a
  // recycled index is a benign spurious kCallAborted (see request_ctx.h).
  std::uint32_t t;
  do {
    t = next_cancel_token_->fetch_add(1, std::memory_order_relaxed);
  } while ((t & kCellTokenLaneMask) == 0);
  cancel_flags_[t & kCellTokenLaneMask].store(0, std::memory_order_relaxed);
  return t;
}

bool Runtime::cancel_requested(CancelToken token) const {
  return token != 0 && cancel_flags_[token & kCellTokenLaneMask].load(
                           std::memory_order_acquire) != 0;
}

void Runtime::cancel(CancelToken token) {
  if (token == 0) return;
  shared_.inc(obs::Counter::kCancelRequests);
  shared_.inc(obs::Counter::kSharedLinesTouched);
  // Raise the flag first: every seam (admission, drain, give-up loops,
  // cooperative handler polls) observes it from here on.
  cancel_flags_[token & kCellTokenLaneMask].store(1,
                                                  std::memory_order_release);
  if (HPPC_FAULT_POINT("rt.cancel.sweep")) {
    // Delay seam between flag-raise and sweep: widens the window where a
    // cancelled cell is still in a ring, so the soak exercises the
    // drain-side kCallAborted path rather than only the sweep.
    shared_.inc(obs::Counter::kFaultsInjected);
  }
  // Sweep: drain every slot's rings so matching in-flight cells complete
  // (with kCallAborted, via the drain-side token check) instead of waiting
  // for the server's next natural pass — this is what turns a cancel of a
  // PARKED caller into a prompt kick. The existing abandon/complete CAS
  // protocol does the lifetime work; the sweep only forces the drain.
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    if (!slot.gate.try_steal()) continue;  // owner will drain on its own
    drain_all(slot);
    slot.gate.release_steal();
  }
}

bool Runtime::cancellation_requested(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  const RequestCtx& req = slots_[slot]->cur_req;
  return cancel_requested(req.cancel_token) || req.expired(host_cycles());
}

void Runtime::set_request_ctx(SlotId slot, const RequestCtx& ctx) {
  HPPC_ASSERT(slot < slots_.size());
  slots_[slot]->cur_req = ctx;
}

RequestCtx Runtime::request_ctx(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  return slots_[slot]->cur_req;
}

void Runtime::clear_request_ctx(SlotId slot) {
  HPPC_ASSERT(slot < slots_.size());
  slots_[slot]->cur_req = RequestCtx{};
}

XcallWait* Runtime::acquire_wait(Slot& me) {
  // Reap zombies first: an abandoned block becomes recyclable once the
  // server's final store (completion or abandonment ack) sets kDoneBit. A
  // block whose server never answers (the dropped-completion failpoint)
  // stays parked here — bounded by the number of drops, freed at ~Runtime.
  XcallWait** prev = &me.wait_zombies;
  while (XcallWait* z = *prev) {
    if (z->server_finished()) {
      *prev = z->next;
      z->reset();
      z->next = me.wait_free;
      me.wait_free = z;
    } else {
      prev = &z->next;
    }
  }
  XcallWait* w = me.wait_free;
  if (w != nullptr) {
    me.wait_free = w->next;
    w->next = nullptr;
    return w;
  }
  // Pool growth (slow path): the block lives on the caller slot's node —
  // the spinner polls it far more often than the server stores to it.
  w = arena_.create<XcallWait>(me.node);
  me.owned_waits.push_back(w);
  return w;
}

void Runtime::release_wait(Slot& me, XcallWait* w) {
  w->reset();
  w->next = me.wait_free;
  me.wait_free = w;
}

// ---------------------------------------------------------------------------
// The frame ABI (Figure 4 register contract)
// ---------------------------------------------------------------------------

FrameServiceId Runtime::bind_frame(ProgramId program, FrameFn fn,
                                   void* self) {
  HPPC_ASSERT(fn != nullptr);
  shared_.inc(obs::Counter::kBinds);
  shared_.inc(obs::Counter::kLocksTaken);
  shared_.inc(obs::Counter::kSharedLinesTouched);
  std::lock_guard<std::mutex> lock(bind_mutex_);
  HPPC_ASSERT_MSG(next_frame_service_ < kMaxFrameServices,
                  "out of frame services");
  const FrameServiceId id = next_frame_service_++;
  FrameService& fs = frame_services_[id];
  // self/program are plain members: published by the fn release-store and
  // immutable afterwards (unbind only clears fn).
  fs.self = self;
  fs.program = program;
  fs.fn.store(fn, std::memory_order_release);
  return id;
}

Status Runtime::frame_shim_fn(void* self, FrameCtx& ctx, CallFrame& f) {
  auto* shim = static_cast<FrameShim*>(self);
  // The op word's low half IS the legacy opflags word; w[0..6] map onto
  // regs[0..6]. w[7] has no legacy equivalent and passes through.
  RegSet regs;
  for (std::size_t i = 0; i < ppc::kOpWord; ++i) regs[i] = f.w[i];
  regs[ppc::kOpWord] = frame_opflags_of(f.op);
  const Status rc = shim->rt->call(ctx.slot, ctx.caller, shim->ep, regs);
  for (std::size_t i = 0; i < ppc::kOpWord; ++i) f.w[i] = regs[i];
  return rc;
}

FrameServiceId Runtime::bind_frame_shim(EntryPointId legacy) {
  // The shim record is immutable after construction and must outlive every
  // call through it: arena storage, freed with the runtime.
  auto* shim = arena_.create<FrameShim>(/*node=*/0);
  shim->rt = this;
  shim->ep = legacy;
  return bind_frame(/*program=*/0, &Runtime::frame_shim_fn, shim);
}

Status Runtime::unbind_frame(FrameServiceId id) {
  if (id >= kMaxFrameServices) return Status::kNoSuchEntryPoint;
  shared_.inc(obs::Counter::kSharedLinesTouched);
  if (frame_services_[id].fn.exchange(nullptr, std::memory_order_acq_rel) ==
      nullptr) {
    return Status::kNoSuchEntryPoint;
  }
  return Status::kOk;
}

Status Runtime::execute_frame(Slot& slot, ProgramId caller, CallFrame& f) {
  const FrameServiceId id = frame_service_of(f.op);
  const FrameFn fn = id < kMaxFrameServices
                         ? frame_services_[id].fn.load(std::memory_order_acquire)
                         : nullptr;
  if (fn == nullptr) {
    f.op = frame_with_rc(f.op, Status::kNoSuchEntryPoint);
    return Status::kNoSuchEntryPoint;
  }
  // The entire observed cost beyond the handler: one single-writer counter
  // store. No worker, no CD, no histogram, no trace hook — this is the
  // lane the Figure-2 numbers are chased on.
  slot.counters.inc(obs::Counter::kCallsFrame);
  FrameCtx ctx{this, slot.self_id, caller};
  const Status rc = fn(frame_services_[id].self, ctx, f);
  f.op = frame_with_rc(f.op, rc);
  return rc;
}

Status Runtime::call_frame(SlotId slot_id, ProgramId caller, CallFrame& f) {
  HPPC_ASSERT(slot_id < slots_.size());
  return execute_frame(*slots_[slot_id], caller, f);
}

Status Runtime::call_remote_frame(SlotId caller_slot, SlotId target,
                                  ProgramId caller, CallFrame& f) {
  HPPC_ASSERT(caller_slot < slots_.size());
  HPPC_ASSERT(target < slots_.size());
  if (target == caller_slot) return call_frame(caller_slot, caller, f);

  // Screen before touching the target (same contract as call_remote): an
  // unbound service fails here, not after a cell is in flight.
  const FrameServiceId id = frame_service_of(f.op);
  if (id >= kMaxFrameServices ||
      frame_services_[id].fn.load(std::memory_order_acquire) == nullptr) {
    f.op = frame_with_rc(f.op, Status::kNoSuchEntryPoint);
    return Status::kNoSuchEntryPoint;
  }

  Slot& me = *slots_[caller_slot];
  Slot& tgt = *slots_[target];

  // Frame cells repurpose the cell's deadline field as the op lane, so a
  // frame call cannot carry a budget or token in flight. The request
  // context is therefore enforced at ADMISSION ONLY: an already-expired or
  // cancelled root refuses here, but a frame that clears admission runs to
  // completion even if the root expires mid-flight (documented contract in
  // docs/XCALL.md). The traffic class does apply — it rides the doorbell,
  // not the cell.
  const RequestCtx ambient = me.cur_req;
  if (ambient.expired(host_cycles())) {
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    f.op = frame_with_rc(f.op, Status::kDeadlineExceeded);
    return Status::kDeadlineExceeded;
  }
  if (ambient.cancel_token != 0 && cancel_requested(ambient.cancel_token)) {
    me.counters.inc(obs::Counter::kCallsCancelled);
    f.op = frame_with_rc(f.op, Status::kCallAborted);
    return Status::kCallAborted;
  }
  const bool bulk = ambient.traffic_class == TrafficClass::kBulk;

  // Admission control, same relaxed-read watermark as the typed path.
  const std::uint32_t watermark = shed_watermark(ambient.traffic_class);
  if (watermark != 0 && xcall_depth(target) >= watermark) {
    me.counters.inc(obs::Counter::kCallsShed);
    if (bulk) me.counters.inc(obs::Counter::kCallsShedBulk);
    f.op = frame_with_rc(f.op, Status::kOverloaded);
    return Status::kOverloaded;
  }

  // Idle target: LRPC-style direct execution under the gate.
  if (tgt.gate.try_steal()) {
    me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
    tgt.counters.inc(obs::Counter::kXcallDirect);
    const Status rc = execute_frame(tgt, caller, f);
    drain_ready(tgt);
    tgt.gate.release_steal();
    return rc;
  }

  // Ring path: the whole request inlines in one cell. The reply lands in
  // a stack RegSet (cache-hot for the spinner) and is copied into f.w.
  RegSet reply;
  XcallWait wait;
  wait.regs = &reply;
  XcallRing& ring = tgt.rings[caller_slot];
  while (!ring.try_post_frame(caller, f, &wait)) {
    me.counters.inc(obs::Counter::kXcallRingFull);
    if (!help_drain(tgt, caller_slot)) std::this_thread::yield();
  }
  ring_doorbell(me, tgt, caller_slot, bulk);
  me.counters.inc(obs::Counter::kXcallPosts);
  me.counters.inc(obs::Counter::kSharedLinesTouched, 2);

  const int yield_rounds = (tgt.ready_mask.load(std::memory_order_relaxed) &
                            ~doorbell_bit(caller_slot)) != 0
                               ? kWaitYieldRoundsContended
                               : kWaitYieldRounds;
  const Status rc = wait_complete(
      wait, yield_rounds,
      [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
      [&me] { me.counters.inc(obs::Counter::kWaiterParks); });
  f.w = reply.w;
  f.op = frame_with_rc(f.op, rc);
  return rc;
}

Status Runtime::call_remote_frame_batch(SlotId caller_slot, SlotId target,
                                        ProgramId caller,
                                        std::span<CallFrame> batch) {
  HPPC_ASSERT(caller_slot < slots_.size());
  HPPC_ASSERT(target < slots_.size());
  if (batch.empty()) return Status::kOk;
  Status overall = Status::kOk;
  const auto fold = [&overall](Status s) {
    if (overall == Status::kOk && s != Status::kOk) overall = s;
  };
  if (target == caller_slot) {
    for (CallFrame& f : batch) fold(call_frame(caller_slot, caller, f));
    return overall;
  }

  Slot& me = *slots_[caller_slot];
  Slot& tgt = *slots_[target];
  // Same admission-only request-context contract as call_remote_frame:
  // frame cells cannot carry the budget in flight, so the guard is here.
  const RequestCtx ambient = me.cur_req;
  if (ambient.expired(host_cycles())) {
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    for (CallFrame& f : batch) {
      f.op = frame_with_rc(f.op, Status::kDeadlineExceeded);
    }
    return Status::kDeadlineExceeded;
  }
  if (ambient.cancel_token != 0 && cancel_requested(ambient.cancel_token)) {
    me.counters.inc(obs::Counter::kCallsCancelled, batch.size());
    for (CallFrame& f : batch) {
      f.op = frame_with_rc(f.op, Status::kCallAborted);
    }
    return Status::kCallAborted;
  }
  const bool bulk = ambient.traffic_class == TrafficClass::kBulk;
  const std::uint32_t watermark = shed_watermark(ambient.traffic_class);
  if (watermark != 0 && xcall_depth(target) >= watermark) {
    me.counters.inc(obs::Counter::kCallsShed, batch.size());
    if (bulk) me.counters.inc(obs::Counter::kCallsShedBulk, batch.size());
    for (CallFrame& f : batch) {
      f.op = frame_with_rc(f.op, Status::kOverloaded);
    }
    return Status::kOverloaded;
  }

  std::size_t i = 0;
  while (i < batch.size()) {
    // One gate steal covers every frame still unsubmitted.
    if (tgt.gate.try_steal()) {
      me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
      tgt.counters.inc(obs::Counter::kXcallDirect, batch.size() - i);
      for (; i < batch.size(); ++i) {
        fold(execute_frame(tgt, caller, batch[i]));
      }
      drain_ready(tgt);
      tgt.gate.release_steal();
      break;
    }

    // Chunk post: one CAS claims the run, one release store + one doorbell
    // publish it. Completion blocks and reply buffers live on this frame —
    // zero heap allocations regardless of batch size.
    std::array<XcallWait, XcallRing::kCapacity> waits;
    std::array<XcallWait*, XcallRing::kCapacity> wait_ptrs;
    std::array<RegSet, XcallRing::kCapacity> replies;
    const std::size_t want = std::min(batch.size() - i, wait_ptrs.size());
    for (std::size_t k = 0; k < want; ++k) {
      waits[k].regs = &replies[k];
      wait_ptrs[k] = &waits[k];
    }
    XcallRing& ring = tgt.rings[caller_slot];
    const std::size_t posted =
        ring.try_post_frames(caller, &batch[i], wait_ptrs.data(), want);
    if (posted == 0) {
      me.counters.inc(obs::Counter::kXcallRingFull);
      if (!help_drain(tgt, caller_slot)) std::this_thread::yield();
      continue;
    }
    ring_doorbell(me, tgt, caller_slot, bulk);
    me.counters.inc(obs::Counter::kXcallPosts, posted);
    me.counters.inc(obs::Counter::kXcallBatchPosts);
    me.counters.inc(obs::Counter::kXcallCellsPerBatch, posted);
    me.counters.inc(obs::Counter::kSharedLinesTouched, 2);

    const int yield_rounds =
        (tgt.ready_mask.load(std::memory_order_relaxed) &
         ~doorbell_bit(caller_slot)) != 0
            ? kWaitYieldRoundsContended
            : kWaitYieldRounds;
    for (std::size_t k = 0; k < posted; ++k) {
      const Status s = wait_complete(
          waits[k], yield_rounds,
          [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
          [&me] { me.counters.inc(obs::Counter::kWaiterParks); });
      fold(s);
      batch[i + k].w = replies[k].w;
      batch[i + k].op = frame_with_rc(batch[i + k].op, s);
    }
    i += posted;
  }
  return overall;
}

Status Runtime::call_remote(SlotId caller_slot, SlotId target,
                            ProgramId caller, EntryPointId id, RegSet& regs) {
  return call_remote(caller_slot, target, caller, id, regs, CallOptions{});
}

Status Runtime::call_remote(SlotId caller_slot, SlotId target,
                            ProgramId caller, EntryPointId id, RegSet& regs,
                            const CallOptions& opts) {
  HPPC_ASSERT(caller_slot < slots_.size());
  HPPC_ASSERT(target < slots_.size());
  if (target == caller_slot) return call(caller_slot, caller, id, regs);

  // Fail fast before touching the target: same screening as call().
  Service* svc = lookup(id);
  if (svc == nullptr) {
    set_rc(regs, Status::kNoSuchEntryPoint);
    return Status::kNoSuchEntryPoint;
  }
  const SvcState st = svc->state.load(std::memory_order_acquire);
  if (st != SvcState::kActive) {
    const Status s = st == SvcState::kDraining ? Status::kEntryPointDraining
                                               : Status::kNoSuchEntryPoint;
    set_rc(regs, s);
    return s;
  }

  Slot& me = *slots_[caller_slot];
  Slot& tgt = *slots_[target];

  // Fold the per-call knobs into the ambient request the caller is already
  // executing under: the relative deadline converts to an absolute budget
  // exactly once (with_budget) and clamps against the inherited one —
  // tighten, never extend — while the token and class default to the
  // ambient values so a context installed at the root rides every hop.
  const RequestCtx ambient = me.cur_req;
  const std::uint64_t deadline = opts.with_budget(ambient.abs_deadline_cycles);
  const bool deadlined = deadline != 0;
  const CancelToken token =
      opts.cancel_token != 0 ? opts.cancel_token : ambient.cancel_token;
  const bool bulk = opts.traffic_class == TrafficClass::kBulk ||
                    ambient.traffic_class == TrafficClass::kBulk;
  if (ambient.abs_deadline_cycles != 0 &&
      deadline == ambient.abs_deadline_cycles) {
    me.counters.inc(obs::Counter::kDeadlineInherited);
  }

  // Pre-admission screen: a call whose budget is already spent — or whose
  // root was cancelled — never touches the target at all.
  if (deadlined && host_cycles() >= deadline) {
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kDeadlineExceeded, target);
    set_rc(regs, Status::kDeadlineExceeded);
    return Status::kDeadlineExceeded;
  }
  if (token != 0 && cancel_requested(token)) {
    me.counters.inc(obs::Counter::kCallsCancelled);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallCancelled, target);
    set_rc(regs, Status::kCallAborted);
    return Status::kCallAborted;
  }

  // Admission control: refuse at the door while the target's queue is over
  // the CLASS's watermark — a lower bulk watermark makes bulk traffic
  // absorb the shedding while interactive calls keep being admitted.
  const std::uint32_t watermark = shed_watermark(
      bulk ? TrafficClass::kBulk : TrafficClass::kInteractive);
  if (watermark != 0 && xcall_depth(target) >= watermark) {
    me.counters.inc(obs::Counter::kCallsShed);
    if (bulk) me.counters.inc(obs::Counter::kCallsShedBulk);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallShed, target);
    set_rc(regs, Status::kOverloaded);
    return Status::kOverloaded;
  }
  if (bulk) me.counters.inc(obs::Counter::kCallsBulk);

  const std::uint64_t rtt_t0 = host_cycles();

  // Adaptive fast path: the target is parked — take the gate and run the
  // call right here, against the target's pools (LRPC-style migration).
  // No context switch, no allocation; two shared RMWs (steal + release).
  if (tgt.gate.try_steal()) {
    me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
    tgt.counters.inc(obs::Counter::kXcallDirect);
#if defined(HPPC_TRACE) && HPPC_TRACE
    // Direct execution crosses slots without crossing the ring: the span
    // lives on the caller's ring, and the stolen slot executes under the
    // caller's context (hop bumped) so nested spans parent correctly.
    const obs::TraceCtx parent = me.cur_trace;
    const obs::TraceCtx saved_tgt = tgt.cur_trace;
    std::uint32_t span = 0;
    if (parent.traced()) {
      span = begin_span(me, obs::SpanKind::kRemoteDirect, parent.trace_id,
                        parent.span_id);
      tgt.cur_trace = parent;
      if (span != 0) tgt.cur_trace.span_id = span;
      ++tgt.cur_trace.hop;
    }
#endif
    // Direct execution crosses slots without crossing the ring, so the
    // request context is installed on the stolen slot by hand (the same
    // save/restore the drain does for ring cells) — nested calls the
    // handler makes still inherit the effective budget and token.
    const RequestCtx saved_req = tgt.cur_req;
    RequestCtx eff = ambient;
    eff.abs_deadline_cycles = deadline;
    eff.cancel_token = token;
    eff.traffic_class =
        bulk ? TrafficClass::kBulk : TrafficClass::kInteractive;
    tgt.cur_req = eff;
    const Status rc = execute_remote(tgt, caller, id, regs);
    tgt.cur_req = saved_req;
    // Help while we hold the slot: retire anything ring-queued behind us.
    drain_ready(tgt);
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (parent.traced()) {
      tgt.cur_trace = saved_tgt;
      end_span(me, parent.trace_id, span, parent.span_id, rc);
    }
#endif
    tgt.gate.release_steal();
    me.hists->record(obs::Hist::kRttRemote, host_cycles() - rtt_t0);
    if (bulk) me.hists->record(obs::Hist::kRttBulk, host_cycles() - rtt_t0);
    return rc;
  }

  // Delay seam before the publish (models a caller preempted between claim
  // and post); the ring-full seam forces the first post attempt to fail so
  // tests can drive the overflow branch without 64 parked cells.
  if (HPPC_FAULT_POINT("rt.xcall.post")) {
    me.counters.inc(obs::Counter::kFaultsInjected);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kFaultInject, target);
  }
  bool force_full = false;
  if (HPPC_FAULT_POINT("rt.xcall.ring_full")) {
    me.counters.inc(obs::Counter::kFaultsInjected);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kFaultInject, target);
    force_full = true;
  }

#if defined(HPPC_TRACE) && HPPC_TRACE
  // Ring path: mint the caller-side span now (it must ride in the cell) —
  // every return below, success or give-up, closes it.
  const obs::TraceCtx parent = me.cur_trace;
  obs::TraceCtx post_ctx{};
  std::uint32_t span = 0;
  if (parent.traced()) {
    span = begin_span(me, obs::SpanKind::kRemoteCall, parent.trace_id,
                      parent.span_id);
    post_ctx = parent;
    if (span != 0) post_ctx.span_id = span;
    ++post_ctx.hop;
  }
  const obs::TraceCtx* post_ctx_ptr = &post_ctx;
#else
  const obs::TraceCtx* post_ctx_ptr = nullptr;
#endif

  // Deadline calls wait on a slot-pooled block (inline reply buffer): if
  // the caller abandons, the server still holds a pointer into storage the
  // Runtime owns. The no-deadline path keeps the legacy stack block —
  // cache-hot for the spinner, zero pool traffic.
  XcallWait stack_wait;
  XcallWait* wait = &stack_wait;
  if (deadlined) {
    wait = acquire_wait(me);
  } else {
    stack_wait.regs = &regs;
  }

  // Ring path: publish a cell (one CAS + one release store), then
  // spin-then-yield on the completion word. A full ring means other
  // waiters are ahead of us; what happens next is the retry policy:
  // kBlock helps/yields forever (legacy), kBackoff burns a doubling
  // cpu_relax budget per round and gives up with kOverloaded, kFailFast
  // gives up immediately. The deadline is also checked here — a call that
  // cannot even be queued before it expires was still too late.
  bool booked_full = false;
  std::uint32_t round = 0;
  // The request payload is copied into the cell at post time, so passing
  // the caller's regs is safe even for deadline calls — after an abandon
  // the server only ever reads the cell's inline copy. The deadline rides
  // in the cell too, so a drain that reaches it late refuses to execute.
  // The cancel token and traffic class ride the spare high bits of the ep
  // word (the cell has no free bytes); the drain unpacks them.
  const std::uint32_t wire_ep = cell_pack_ep(id, token, bulk);
  XcallRing& ring = tgt.rings[caller_slot];
  while (force_full ||
         !ring.try_post(caller, wire_ep, regs, wait, deadline, post_ctx_ptr)) {
    force_full = false;
    if (!booked_full) {
      booked_full = true;
      me.counters.inc(obs::Counter::kXcallRingFull);
    } else {
      me.counters.inc(obs::Counter::kRetries);
    }
    Status give_up = Status::kOk;
    if (opts.retry == RetryPolicy::kFailFast) {
      give_up = Status::kOverloaded;
    } else if (opts.retry == RetryPolicy::kBackoff &&
               round >= opts.backoff_rounds) {
      give_up = Status::kOverloaded;
    } else if (deadlined && host_cycles() >= deadline) {
      give_up = Status::kDeadlineExceeded;
    } else if (token != 0 && cancel_requested(token)) {
      give_up = Status::kCallAborted;
    }
    if (give_up != Status::kOk) {
      // The cell was never published, so the wait block was never shared:
      // a pooled block goes straight back to the free list.
      if (deadlined) release_wait(me, wait);
      if (give_up == Status::kDeadlineExceeded) {
        me.counters.inc(obs::Counter::kDeadlineExceeded);
        HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                         obs::TraceEvent::kDeadlineExceeded, target);
      } else if (give_up == Status::kCallAborted) {
        me.counters.inc(obs::Counter::kCallsCancelled);
        HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                         obs::TraceEvent::kCallCancelled, target);
      }
#if defined(HPPC_TRACE) && HPPC_TRACE
      if (parent.traced()) {
        end_span(me, parent.trace_id, span, parent.span_id, give_up);
      }
#endif
      set_rc(regs, give_up);
      return give_up;
    }
    if (opts.retry == RetryPolicy::kBackoff) {
      // Exponential backoff off the contended line, then one help attempt.
      const std::uint32_t spins = 1u << (round < 10 ? round : 10);
      for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
      me.counters.inc(obs::Counter::kBackoffCycles, spins);
      ++round;
      if (!help_drain(tgt, caller_slot)) std::this_thread::yield();
    } else {
      ++round;
      if (!help_drain(tgt, caller_slot)) std::this_thread::yield();
    }
  }
  ring_doorbell(me, tgt, caller_slot, bulk);
  me.counters.inc(obs::Counter::kXcallPosts);
  me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
  HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                   obs::TraceEvent::kXcallPost, target);
  const std::uint64_t post_t = host_cycles();  // publish -> completion

  if (!deadlined) {
    // Spin→yield→park ladder. The park failpoints: "rt.xcall.park.now"
    // collapses the yield phase so tests can drive the park/kick protocol
    // deterministically; "rt.xcall.park" is a delay seam inside the park
    // decision itself (fires between the park bookkeeping and the CAS,
    // widening the park-vs-complete race window for the chaos soak).
    // Adaptive yield budget: other producers' doorbells pending at the
    // target mean our cell sits behind a queue spanning multiple drain
    // passes — park after one courtesy round instead of churning the
    // scheduler for the whole ladder. Alone, keep the long ladder (the
    // server is at most one pass away and a park would only add a wakeup).
    int yield_rounds = (tgt.ready_mask.load(std::memory_order_relaxed) &
                        ~doorbell_bit(caller_slot)) != 0
                           ? kWaitYieldRoundsContended
                           : kWaitYieldRounds;
    if (HPPC_FAULT_POINT("rt.xcall.park.now")) {
      me.counters.inc(obs::Counter::kFaultsInjected);
      yield_rounds = 0;
    }
    std::uint64_t park_t = 0;  // stamped at park, read after the kick
    const Status rc = wait_complete(
        stack_wait, yield_rounds,
        [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
        [this, &me, &park_t, caller_slot, target] {
          me.counters.inc(obs::Counter::kWaiterParks);
          park_t = host_cycles();
          HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                           obs::TraceEvent::kWaiterPark, target);
          if (HPPC_FAULT_POINT("rt.xcall.park")) {
            me.counters.inc(obs::Counter::kFaultsInjected);
            HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(),
                             caller_slot, obs::TraceEvent::kFaultInject,
                             target);
          }
        });
    const std::uint64_t done_t = host_cycles();
    me.hists->record(obs::Hist::kRingWait, done_t - post_t);
    if (park_t != 0) me.hists->record(obs::Hist::kWakeup, done_t - park_t);
    me.hists->record(obs::Hist::kRttRemote, done_t - rtt_t0);
    if (bulk) me.hists->record(obs::Hist::kRttBulk, done_t - rtt_t0);
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (parent.traced()) {
      end_span(me, parent.trace_id, span, parent.span_id, rc);
    }
#endif
    return rc;
  }

  bool timed_out = false;
  const Status rc = wait_complete_deadline(
      *wait, deadline, [] { return host_cycles(); },
      [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
      &timed_out);
  const std::uint64_t done_t = host_cycles();
  me.hists->record(obs::Hist::kRingWait, done_t - post_t);
  me.hists->record(obs::Hist::kRttDeadlined, done_t - rtt_t0);
  if (bulk) me.hists->record(obs::Hist::kRttBulk, done_t - rtt_t0);
  if (timed_out) {
    // Abandoned: the block stays on the zombie list until the server's
    // drain acks it (or completes it — either sets kDoneBit).
    wait->next = me.wait_zombies;
    me.wait_zombies = wait;
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kDeadlineExceeded, target);
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (parent.traced()) {
      end_span(me, parent.trace_id, span, parent.span_id,
               Status::kDeadlineExceeded);
    }
#endif
    set_rc(regs, Status::kDeadlineExceeded);
    return Status::kDeadlineExceeded;
  }
  regs = wait->reply;  // copy the reply out of the pooled block
  release_wait(me, wait);
#if defined(HPPC_TRACE) && HPPC_TRACE
  if (parent.traced()) {
    end_span(me, parent.trace_id, span, parent.span_id, rc);
  }
#endif
  return rc;
}

Status Runtime::call_remote_async(SlotId caller_slot, SlotId target,
                                  ProgramId caller, EntryPointId id,
                                  RegSet regs) {
  return call_remote_async(caller_slot, target, caller, id, regs,
                           CallOptions{});
}

Status Runtime::call_remote_async(SlotId caller_slot, SlotId target,
                                  ProgramId caller, EntryPointId id,
                                  RegSet regs, const CallOptions& opts) {
  HPPC_ASSERT(caller_slot < slots_.size());
  HPPC_ASSERT(target < slots_.size());
  Service* svc = lookup(id);
  if (svc == nullptr) return Status::kNoSuchEntryPoint;
  if (svc->state.load(std::memory_order_acquire) != SvcState::kActive) {
    return Status::kEntryPointDraining;
  }
  if (target == caller_slot) {
    return call_async(caller_slot, caller, id, regs);
  }
  Slot& me = *slots_[caller_slot];
  Slot& tgt = *slots_[target];
  // Fold the ambient request context: a fire-and-forget call is still part
  // of the root request, so it carries the clamped inherited budget, the
  // cancel token, and the traffic class. With no waiter to rescue the
  // call, expiry is enforced by the DRAIN — a cell reached late is dropped
  // (deadline_exceeded on the target) rather than executed late.
  const RequestCtx ambient = me.cur_req;
  const std::uint64_t deadline = opts.with_budget(ambient.abs_deadline_cycles);
  const CancelToken token =
      opts.cancel_token != 0 ? opts.cancel_token : ambient.cancel_token;
  const bool bulk = opts.traffic_class == TrafficClass::kBulk ||
                    ambient.traffic_class == TrafficClass::kBulk;
  if (ambient.abs_deadline_cycles != 0 &&
      deadline == ambient.abs_deadline_cycles) {
    me.counters.inc(obs::Counter::kDeadlineInherited);
  }
  if (deadline != 0 && host_cycles() >= deadline) {
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kDeadlineExceeded, target);
    return Status::kDeadlineExceeded;
  }
  if (token != 0 && cancel_requested(token)) {
    me.counters.inc(obs::Counter::kCallsCancelled);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallCancelled, target);
    return Status::kCallAborted;
  }
  // Same admission check as the sync path: a fire-and-forget call adds to
  // the very queue the watermark protects, so it is shed the same way —
  // per class, bulk first.
  const std::uint32_t watermark = shed_watermark(
      bulk ? TrafficClass::kBulk : TrafficClass::kInteractive);
  if (watermark != 0 && xcall_depth(target) >= watermark) {
    me.counters.inc(obs::Counter::kCallsShed);
    if (bulk) me.counters.inc(obs::Counter::kCallsShedBulk);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallShed, target);
    return Status::kOverloaded;
  }
  if (bulk) me.counters.inc(obs::Counter::kCallsBulk);
#if defined(HPPC_TRACE) && HPPC_TRACE
  // Fire-and-forget: no caller-side span (nothing to close), but the
  // context still rides the cell so the server-side execution parents to
  // the caller's current span.
  obs::TraceCtx post_ctx = me.cur_trace;
  if (post_ctx.traced()) ++post_ctx.hop;
  const obs::TraceCtx* post_ctx_ptr = &post_ctx;
#else
  const obs::TraceCtx* post_ctx_ptr = nullptr;
#endif
  if (tgt.rings[caller_slot].try_post(caller, cell_pack_ep(id, token, bulk),
                                      regs, /*wait=*/nullptr, deadline,
                                      post_ctx_ptr)) {
    ring_doorbell(me, tgt, caller_slot, bulk);
    me.counters.inc(obs::Counter::kXcallPosts);
    me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kXcallPost, target);
    return Status::kOk;
  }
  me.counters.inc(obs::Counter::kXcallRingFull);
  if (opts.retry == RetryPolicy::kFailFast) return Status::kOverloaded;
  // Overflow: a fire-and-forget caller cannot wait for space, so this rare
  // case rides the legacy allocating mailbox (and is booked as such). The
  // deadline still holds — the drain lambda re-checks it before executing.
  post(target,
       [this, target, caller, id, regs, deadline, token, bulk]() mutable {
         Slot& slot = *slots_[target];
         if (deadline != 0 && host_cycles() >= deadline) {
           slot.counters.inc(obs::Counter::kDeadlineExceeded);
           HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                            slot.self_id, obs::TraceEvent::kDeadlineExceeded,
                            id);
           return;
         }
         if (token != 0 && cancel_requested(token)) {
           slot.counters.inc(obs::Counter::kCallsCancelled);
           HPPC_TRACE_EVENT(slot.trace_ring, obs::host_trace_now(),
                            slot.self_id, obs::TraceEvent::kCallCancelled,
                            id);
           return;
         }
         const RequestCtx saved_req = slot.cur_req;
         RequestCtx req;
         req.abs_deadline_cycles = deadline;
         req.cancel_token = token;
         req.traffic_class =
             bulk ? TrafficClass::kBulk : TrafficClass::kInteractive;
         slot.cur_req = req;
         execute_remote(slot, caller, id, regs);
         slot.cur_req = saved_req;
       });
  return Status::kOk;
}

Status Runtime::call_remote_batch(SlotId caller_slot, SlotId target,
                                  ProgramId caller, EntryPointId id,
                                  std::span<RegSet> batch) {
  return call_remote_batch(caller_slot, target, caller, id, batch,
                           CallOptions{});
}

Status Runtime::call_remote_batch(SlotId caller_slot, SlotId target,
                                  ProgramId caller, EntryPointId id,
                                  std::span<RegSet> batch,
                                  const CallOptions& opts) {
  HPPC_ASSERT(caller_slot < slots_.size());
  HPPC_ASSERT(target < slots_.size());
  if (batch.empty()) return Status::kOk;
  Status overall = Status::kOk;
  const auto fold = [&overall](Status s) {
    if (overall == Status::kOk && s != Status::kOk) overall = s;
  };
  if (target == caller_slot) {
    for (RegSet& regs : batch) fold(call(caller_slot, caller, id, regs));
    return overall;
  }

  // Screen once for the whole batch, same as call_remote.
  Service* svc = lookup(id);
  if (svc == nullptr) {
    for (RegSet& regs : batch) set_rc(regs, Status::kNoSuchEntryPoint);
    return Status::kNoSuchEntryPoint;
  }
  const SvcState st = svc->state.load(std::memory_order_acquire);
  if (st != SvcState::kActive) {
    const Status s = st == SvcState::kDraining ? Status::kEntryPointDraining
                                               : Status::kNoSuchEntryPoint;
    for (RegSet& regs : batch) set_rc(regs, s);
    return s;
  }

  Slot& me = *slots_[caller_slot];
  Slot& tgt = *slots_[target];
  // Fold the ambient request context once for the whole batch (same rules
  // as call_remote: clamp the budget, opts override the token, bulk is
  // sticky from either side).
  const RequestCtx ambient = me.cur_req;
  const std::uint64_t deadline = opts.with_budget(ambient.abs_deadline_cycles);
  const bool deadlined = deadline != 0;
  const CancelToken token =
      opts.cancel_token != 0 ? opts.cancel_token : ambient.cancel_token;
  const bool bulk = opts.traffic_class == TrafficClass::kBulk ||
                    ambient.traffic_class == TrafficClass::kBulk;
  if (ambient.abs_deadline_cycles != 0 &&
      deadline == ambient.abs_deadline_cycles) {
    me.counters.inc(obs::Counter::kDeadlineInherited);
  }
  if (deadlined && host_cycles() >= deadline) {
    me.counters.inc(obs::Counter::kDeadlineExceeded);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kDeadlineExceeded, target);
    for (RegSet& regs : batch) set_rc(regs, Status::kDeadlineExceeded);
    return Status::kDeadlineExceeded;
  }
  if (token != 0 && cancel_requested(token)) {
    me.counters.inc(obs::Counter::kCallsCancelled, batch.size());
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallCancelled, target);
    for (RegSet& regs : batch) set_rc(regs, Status::kCallAborted);
    return Status::kCallAborted;
  }

  const std::uint32_t watermark = shed_watermark(
      bulk ? TrafficClass::kBulk : TrafficClass::kInteractive);
  if (watermark != 0 && xcall_depth(target) >= watermark) {
    me.counters.inc(obs::Counter::kCallsShed, batch.size());
    if (bulk) me.counters.inc(obs::Counter::kCallsShedBulk, batch.size());
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kCallShed, target);
    for (RegSet& regs : batch) set_rc(regs, Status::kOverloaded);
    return Status::kOverloaded;
  }
  if (bulk) me.counters.inc(obs::Counter::kCallsBulk, batch.size());

  const std::uint32_t wire_ep = cell_pack_ep(id, token, bulk);
  XcallRing& ring = tgt.rings[caller_slot];

#if defined(HPPC_TRACE) && HPPC_TRACE
  // One span covers the whole batch; it rides in every chunk's cells, so
  // each server-side kServerExec span parents to it — the exported trace
  // shows one batch slice on the caller fanning into N executions on the
  // server slot.
  const obs::TraceCtx parent = me.cur_trace;
  obs::TraceCtx post_ctx{};
  std::uint32_t span = 0;
  if (parent.traced()) {
    span = begin_span(me, obs::SpanKind::kBatch, parent.trace_id,
                      parent.span_id);
    post_ctx = parent;
    if (span != 0) post_ctx.span_id = span;
    ++post_ctx.hop;
  }
  const obs::TraceCtx* post_ctx_ptr = &post_ctx;
#else
  const obs::TraceCtx* post_ctx_ptr = nullptr;
#endif

  std::size_t i = 0;
  while (i < batch.size()) {
    // Direct path: one gate steal covers every call still unsubmitted —
    // the batched analogue of the LRPC migration fast path.
    if (tgt.gate.try_steal()) {
      me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
      tgt.counters.inc(obs::Counter::kXcallDirect, batch.size() - i);
#if defined(HPPC_TRACE) && HPPC_TRACE
      const obs::TraceCtx saved_tgt = tgt.cur_trace;
      if (parent.traced()) tgt.cur_trace = post_ctx;
#endif
      // Install the effective request context on the stolen slot so the
      // handlers' own nested calls inherit it (mirrors call_remote's
      // direct path).
      const RequestCtx saved_req = tgt.cur_req;
      RequestCtx eff = ambient;
      eff.abs_deadline_cycles = deadline;
      eff.cancel_token = token;
      eff.traffic_class =
          bulk ? TrafficClass::kBulk : TrafficClass::kInteractive;
      tgt.cur_req = eff;
      for (; i < batch.size(); ++i) {
        fold(execute_remote(tgt, caller, id, batch[i]));
      }
      tgt.cur_req = saved_req;
      drain_ready(tgt);
#if defined(HPPC_TRACE) && HPPC_TRACE
      if (parent.traced()) tgt.cur_trace = saved_tgt;
#endif
      tgt.gate.release_steal();
      break;
    }

    // Ring path: claim a chunk with one CAS, publish with one release
    // store, ring one doorbell. No-deadline completion blocks live on this
    // frame — zero heap allocations regardless of batch size; deadline
    // chunks ride slot-pooled blocks exactly like call_remote, so an
    // abandoned cell always points at storage that outlives this frame.
    const std::uint64_t chunk_t0 = host_cycles();
    std::array<XcallWait, XcallRing::kCapacity> waits;
    std::array<XcallWait*, XcallRing::kCapacity> wait_ptrs;
    const std::size_t want = std::min(batch.size() - i, wait_ptrs.size());
    for (std::size_t k = 0; k < want; ++k) {
      if (deadlined) {
        wait_ptrs[k] = acquire_wait(me);
      } else {
        waits[k].regs = &batch[i + k];
        wait_ptrs[k] = &waits[k];
      }
    }
    // Delay seam between claim intent and publish: models a producer
    // preempted mid-batch, so the soak exercises consumers observing a
    // claimed-but-unpublished run behind a published one.
    if (HPPC_FAULT_POINT("rt.xcall.batch.post")) {
      me.counters.inc(obs::Counter::kFaultsInjected);
      HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                       obs::TraceEvent::kFaultInject, target);
    }
    const std::size_t posted = ring.try_post_many(
        caller, wire_ep, &batch[i], wait_ptrs.data(), want, deadline,
        post_ctx_ptr);
    if (deadlined) {
      // Unpublished pooled blocks were never shared: straight back.
      for (std::size_t k = posted; k < want; ++k) {
        release_wait(me, wait_ptrs[k]);
      }
    }
    if (posted == 0) {
      me.counters.inc(obs::Counter::kXcallRingFull);
      if (opts.retry == RetryPolicy::kFailFast ||
          (deadlined && host_cycles() >= deadline) ||
          (token != 0 && cancel_requested(token))) {
        Status s = Status::kOverloaded;
        if (opts.retry != RetryPolicy::kFailFast) {
          s = (deadlined && host_cycles() >= deadline)
                  ? Status::kDeadlineExceeded
                  : Status::kCallAborted;
        }
        if (s == Status::kDeadlineExceeded) {
          me.counters.inc(obs::Counter::kDeadlineExceeded);
        } else if (s == Status::kCallAborted) {
          me.counters.inc(obs::Counter::kCallsCancelled, batch.size() - i);
          HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                           obs::TraceEvent::kCallCancelled, target);
        }
        for (; i < batch.size(); ++i) set_rc(batch[i], s);
        fold(s);
        break;
      }
      me.counters.inc(obs::Counter::kRetries);
      if (!help_drain(tgt, caller_slot)) std::this_thread::yield();
      continue;
    }
    ring_doorbell(me, tgt, caller_slot, bulk);
    me.counters.inc(obs::Counter::kXcallPosts, posted);
    me.counters.inc(obs::Counter::kXcallBatchPosts);
    me.counters.inc(obs::Counter::kXcallCellsPerBatch, posted);
    me.counters.inc(obs::Counter::kSharedLinesTouched, 2);
    HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                     obs::TraceEvent::kXcallBatchPost,
                     static_cast<std::uint32_t>(posted));

    // Collect the chunk. Replies land directly in the caller's RegSets
    // (stack-wait style); the first waits dominate the wall time, later
    // ones are usually already complete by the time we look.
    // Same adaptive cue as call_remote, judged once per chunk: with other
    // producers queued ahead, collect by parking instead of yelling.
    const int yield_rounds =
        (tgt.ready_mask.load(std::memory_order_relaxed) &
         ~doorbell_bit(caller_slot)) != 0
            ? kWaitYieldRoundsContended
            : kWaitYieldRounds;
    for (std::size_t k = 0; k < posted; ++k) {
      if (!deadlined) {
        std::uint64_t park_t = 0;
        fold(wait_complete(
            waits[k], yield_rounds,
            [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
            [this, &me, &park_t, caller_slot, target] {
              me.counters.inc(obs::Counter::kWaiterParks);
              park_t = host_cycles();
              HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(),
                               caller_slot, obs::TraceEvent::kWaiterPark,
                               target);
            }));
        if (park_t != 0) {
          me.hists->record(obs::Hist::kWakeup, host_cycles() - park_t);
        }
        continue;
      }
      // Deadline chunk: the same abandon protocol as call_remote, per
      // cell. An abandoned pooled block goes to the zombie list (the
      // server acks it at drain); a completed one hands its inline reply
      // back and is recycled.
      bool timed_out = false;
      const Status s = wait_complete_deadline(
          *wait_ptrs[k], deadline, [] { return host_cycles(); },
          [this, &tgt, caller_slot] { help_drain(tgt, caller_slot); },
          &timed_out);
      if (timed_out) {
        wait_ptrs[k]->next = me.wait_zombies;
        me.wait_zombies = wait_ptrs[k];
        me.counters.inc(obs::Counter::kDeadlineExceeded);
        HPPC_TRACE_EVENT(me.trace_ring, obs::host_trace_now(), caller_slot,
                         obs::TraceEvent::kDeadlineExceeded, target);
        set_rc(batch[i + k], Status::kDeadlineExceeded);
        fold(Status::kDeadlineExceeded);
      } else {
        batch[i + k] = wait_ptrs[k]->reply;
        release_wait(me, wait_ptrs[k]);
        fold(s);
      }
    }
    // Whole-chunk RTT (post through last collection): the per-class entry
    // for the batched path, in the same units as kRttRemote.
    me.hists->record(obs::Hist::kRttBatched, host_cycles() - chunk_t0);
    if (bulk) me.hists->record(obs::Hist::kRttBulk, host_cycles() - chunk_t0);
    i += posted;
  }
#if defined(HPPC_TRACE) && HPPC_TRACE
  if (parent.traced()) {
    end_span(me, parent.trace_id, span, parent.span_id, overall);
  }
#endif
  return overall;
}

void Runtime::enter_idle(SlotId slot_id) {
  HPPC_ASSERT(slot_id < slots_.size());
  slots_[slot_id]->gate.enter_idle();
}

void Runtime::exit_idle(SlotId slot_id) {
  HPPC_ASSERT(slot_id < slots_.size());
  slots_[slot_id]->gate.exit_idle();
}

std::size_t Runtime::serve(SlotId slot_id, const std::atomic<bool>& stop) {
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];
  std::size_t total = 0;
  while (!stop.load(std::memory_order_acquire)) {
    total += poll(slot_id);
    enter_idle(slot_id);
    // Parked: remote callers direct-execute (or help-drain) through the
    // gate; we only need to wake for control-plane mailbox posts, a rung
    // doorbell, or stop. The idle test is O(1) — one mask load, one
    // mailbox head load — with a periodic full ring scan as the backstop
    // for a doorbell lost to the benign set/clear race.
    std::uint32_t idle_rounds = 0;
    while (!stop.load(std::memory_order_acquire) &&
           slot.ready_mask.load(std::memory_order_relaxed) == 0 &&
           slot.bulk_ready_mask.load(std::memory_order_relaxed) == 0 &&
           slot.mailbox.empty()) {
      if (++idle_rounds >= 256) {
        idle_rounds = 0;
        if (any_ring_pending(slot)) break;
      }
      std::this_thread::yield();
    }
    exit_idle(slot_id);
  }
  total += poll(slot_id);
  return total;
}

std::size_t Runtime::poll(SlotId slot_id) {
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];
  // Control plane first (kill reclamation must not trail the calls it
  // affects longer than necessary), then one ring batch, then the async
  // queue — which reuses a member scratch buffer instead of constructing
  // a fresh vector every poll.
  std::size_t done = slot.mailbox.drain([&slot](std::function<void()>&& fn) {
    slot.counters.inc(obs::Counter::kMailboxDrains);
    fn();
  });
  // Ready-mask scheduling: drain only the producer rings whose doorbell is
  // rung — idle polls cost one exchange, busy ones O(popcount) — with a
  // full scan every kPollScanPeriod-th poll as the lost-doorbell backstop.
  if (++slot.polls_since_scan >= kPollScanPeriod) {
    slot.polls_since_scan = 0;
    done += drain_all(slot);
  } else {
    done += drain_ready(slot);
  }
  std::vector<DeferredCall>& pending = slot.deferred_scratch;
  pending.swap(slot.deferred);  // async calls made below land in deferred
  for (auto& d : pending) {
    RegSet regs = d.regs;
    // Queueing delay first (enqueue -> execution start), then execute
    // under the context the call was enqueued with, so the async span
    // parents to the caller's span even though it runs a poll later.
    if (d.enqueue_tsc != 0) {
      slot.hists->record(obs::Hist::kRttAsync, host_cycles() - d.enqueue_tsc);
    }
#if defined(HPPC_TRACE) && HPPC_TRACE
    const obs::TraceCtx saved = slot.cur_trace;
    std::uint32_t aspan = 0;
    if (d.tctx.traced()) {
      aspan = begin_span(slot, obs::SpanKind::kAsyncExec, d.tctx.trace_id,
                         d.tctx.span_id);
      slot.cur_trace = d.tctx;
      if (aspan != 0) slot.cur_trace.span_id = aspan;
    }
#endif
    // Execute under the request context the call was enqueued with: a
    // root that expired or was cancelled since enqueue is refused by the
    // screen inside call() instead of executing late.
    const RequestCtx saved_req = slot.cur_req;
    slot.cur_req = d.rctx;
    call(slot_id, d.caller, d.id, regs);  // results discarded (§4.4 async)
    slot.cur_req = saved_req;
#if defined(HPPC_TRACE) && HPPC_TRACE
    if (d.tctx.traced()) {
      slot.cur_trace = saved;
      end_span(slot, d.tctx.trace_id, aspan, d.tctx.span_id, rc_of(regs));
    }
#endif
    ++done;
  }
  pending.clear();  // keep capacity for the next poll
  return done;
}

void Runtime::post(SlotId target, std::function<void()> fn) {
  HPPC_ASSERT(target < slots_.size());
  // A post pushes onto another slot's MPSC list — shared traffic by
  // definition, booked on the shared block (the poster may not own a slot),
  // and it heap-allocates the list node: this is the control-plane path,
  // kept off every hot cross-slot call.
  shared_.inc(obs::Counter::kMailboxPosts);
  shared_.inc(obs::Counter::kMailboxAllocs);
  shared_.inc(obs::Counter::kSharedLinesTouched);
  slots_[target]->mailbox.post(std::move(fn));
}

Runtime::SlotStats Runtime::stats(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  const obs::SlotCounters& c = slots_[slot]->counters;
  SlotStats s;
  s.calls = c.get(obs::Counter::kCallsSync);
  s.async_calls = c.get(obs::Counter::kCallsAsync);
  s.worker_creations = c.get(obs::Counter::kWorkersCreated);
  s.cd_creations = c.get(obs::Counter::kCdsCreated);
  return s;
}

const obs::SlotCounters& Runtime::counters(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  return slots_[slot]->counters;
}

obs::SlotCounters& Runtime::slot_counters(SlotId slot) {
  HPPC_ASSERT(slot < slots_.size());
  return slots_[slot]->counters;
}

namespace {

/// Fill in the per-call pool counters the fast path deliberately does not
/// increment. Every executed call — same-slot sync or remotely executed —
/// acquires exactly one worker (pool hit or creation) and one CD (held,
/// recycled, or created), so per slot:
///   worker_pool_hits = calls_sync + calls_remote - workers_created
///   cd_recycles      = calls_sync + calls_remote - hold_cd_hits - cds_created
/// Both saturate at zero: a hold-CD worker's creation-time CD acquisition
/// happens outside any call, so the second identity can undershoot by at
/// most the number of such workers.
void derive_pool_counters(obs::CounterSnapshot& s) {
  auto get = [&s](obs::Counter c) { return s.get(obs::Counter{c}); };
  auto& hits = s.v[static_cast<std::size_t>(obs::Counter::kWorkerPoolHits)];
  const std::uint64_t calls = get(obs::Counter::kCallsSync) +
                              get(obs::Counter::kCallsRemote);
  const std::uint64_t created = get(obs::Counter::kWorkersCreated);
  hits = calls > created ? calls - created : 0;
  auto& rec = s.v[static_cast<std::size_t>(obs::Counter::kCdRecycles)];
  const std::uint64_t spent = get(obs::Counter::kHoldCdHits) +
                              get(obs::Counter::kCdsCreated);
  rec = calls > spent ? calls - spent : 0;
}

}  // namespace

obs::CounterSnapshot Runtime::slot_snapshot(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  obs::CounterSnapshot s = slots_[slot]->counters.snapshot();
  derive_pool_counters(s);
  return s;
}

obs::CounterSnapshot Runtime::snapshot() const {
  obs::CounterSnapshot s = shared_.snapshot();
  for (const auto& slot : slots_) {
    obs::CounterSnapshot per = slot->counters.snapshot();
    derive_pool_counters(per);
    s.merge(per);
  }
  // Arena gauges: point-in-time values overlaid (not summed) — the arena is
  // runtime-wide, not per-slot, so merging would double-count.
  const mem::ArenaStats a = arena_.stats();
  s.v[static_cast<std::size_t>(obs::Counter::kArenaBytesReserved)] =
      a.bytes_reserved;
  s.v[static_cast<std::size_t>(obs::Counter::kArenaHugepages)] = a.hugepages;
  s.v[static_cast<std::size_t>(obs::Counter::kArenaNodeMismatch)] =
      a.node_mismatches;
  return s;
}

obs::TraceRing& Runtime::trace_ring(SlotId slot) {
  HPPC_ASSERT(slot < slots_.size());
  return slots_[slot]->trace_ring;
}

// ---------------------------------------------------------------------------
// Request tracing
// ---------------------------------------------------------------------------

std::uint32_t Runtime::begin_span(Slot& slot, obs::SpanKind kind,
                                  std::uint64_t trace_id,
                                  std::uint32_t parent) {
#if defined(HPPC_TRACE) && HPPC_TRACE
  // Degradation seam: a span that cannot be recorded is DROPPED (booked in
  // trace_drops, id 0 so downstream emission elides) — the call path never
  // blocks or fails on tracing's behalf.
  if (HPPC_FAULT_POINT("rt.trace.drop")) {
    slot.counters.inc(obs::Counter::kTraceDrops);
    slot.counters.inc(obs::Counter::kFaultsInjected);
    return 0;
  }
  // Slot-tagged span ids: two slots minting concurrently never collide,
  // and 0 stays reserved for "no span".
  std::uint32_t id = (slot.self_id << 24) | (slot.next_span++ & 0xFFFFFFu);
  if (id == 0) id = (slot.self_id << 24) | (slot.next_span++ & 0xFFFFFFu);
  slot.trace_ring.record_span(obs::host_trace_now(),
                              static_cast<std::uint16_t>(slot.self_id),
                              obs::TraceEvent::kSpanBegin,
                              static_cast<std::uint32_t>(kind), trace_id, id,
                              parent);
  return id;
#else
  (void)slot;
  (void)kind;
  (void)trace_id;
  (void)parent;
  return 0;
#endif
}

void Runtime::end_span(Slot& slot, std::uint64_t trace_id, std::uint32_t span,
                       std::uint32_t parent, Status rc) {
#if defined(HPPC_TRACE) && HPPC_TRACE
  if (span == 0) return;  // dropped at begin — nothing to close
  slot.trace_ring.record_span(obs::host_trace_now(),
                              static_cast<std::uint16_t>(slot.self_id),
                              obs::TraceEvent::kSpanEnd,
                              static_cast<std::uint32_t>(rc), trace_id, span,
                              parent);
#else
  (void)slot;
  (void)trace_id;
  (void)span;
  (void)parent;
  (void)rc;
#endif
}

obs::TraceCtx Runtime::trace_begin(SlotId slot_id) {
  HPPC_ASSERT(slot_id < slots_.size());
#if defined(HPPC_TRACE) && HPPC_TRACE
  Slot& slot = *slots_[slot_id];
  obs::TraceCtx ctx;
  // Trace ids only need to be unique across concurrently-live traces; the
  // tsc sampled at root creation, salted with the slot id, is plenty (and
  // the |1 keeps 0 meaning "untraced" forever).
  ctx.trace_id = (host_cycles() << 8) | ((slot_id & 0x7Fu) << 1) | 1u;
  ctx.span_id = begin_span(slot, obs::SpanKind::kRoot, ctx.trace_id, 0);
  slot.cur_trace = ctx;
  return ctx;
#else
  (void)slot_id;
  return {};
#endif
}

void Runtime::trace_end(SlotId slot_id, Status rc) {
  HPPC_ASSERT(slot_id < slots_.size());
  Slot& slot = *slots_[slot_id];
#if defined(HPPC_TRACE) && HPPC_TRACE
  if (slot.cur_trace.traced()) {
    end_span(slot, slot.cur_trace.trace_id, slot.cur_trace.span_id, 0, rc);
  }
#else
  (void)rc;
#endif
  slot.cur_trace = obs::TraceCtx{};
}

void Runtime::set_trace_ctx(SlotId slot_id, const obs::TraceCtx& ctx) {
  HPPC_ASSERT(slot_id < slots_.size());
  slots_[slot_id]->cur_trace = ctx;
}

obs::TraceCtx Runtime::trace_ctx(SlotId slot_id) const {
  HPPC_ASSERT(slot_id < slots_.size());
  return slots_[slot_id]->cur_trace;
}

// ---------------------------------------------------------------------------
// Histograms & telemetry
// ---------------------------------------------------------------------------

const obs::SlotHistograms& Runtime::histograms(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  return *slots_[slot]->hists;
}

obs::SlotHistograms& Runtime::slot_histograms(SlotId slot) {
  HPPC_ASSERT(slot < slots_.size());
  return *slots_[slot]->hists;
}

obs::HistSnapshot Runtime::hist_snapshot(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  return slots_[slot]->hists->snapshot();
}

obs::HistSnapshot Runtime::hist_snapshot() const {
  obs::HistSnapshot s;
  for (const auto& slot : slots_) s.merge(slot->hists->snapshot());
  return s;
}

obs::Telemetry Runtime::telemetry() {
  // Export failpoint: the chaos soak arms this to verify a telemetry
  // consumer failing mid-scrape degrades to an empty snapshot — derivation
  // state is left untouched, the runtime never notices.
  if (HPPC_FAULT_POINT("obs.export")) {
    shared_.inc(obs::Counter::kFaultsInjected);
    return obs::Telemetry{};
  }
  std::vector<obs::SlotWindow> windows;
  {
    std::lock_guard<std::mutex> lock(telemetry_.mu);
    const std::uint32_t n = registry_.capacity();
    const std::uint64_t now_ns = obs::host_trace_now();
    const std::uint64_t now_cy = host_cycles();
    if (!telemetry_.primed) {
      telemetry_.prev_counters.resize(n);
      telemetry_.prev_hists.resize(n);
      telemetry_.occ_ewma.assign(n, 0.0);
    }
    const bool have_window = telemetry_.primed && now_ns > telemetry_.prev_ns;
    const double window_s =
        have_window ? static_cast<double>(now_ns - telemetry_.prev_ns) * 1e-9
                    : 0.0;
    // Calibrate the histogram tick from this window's own clock pair (the
    // hot paths record host_cycles() ticks; exports are in nanoseconds).
    const double cycles_per_ns =
        have_window ? static_cast<double>(now_cy - telemetry_.prev_cycles) /
                          static_cast<double>(now_ns - telemetry_.prev_ns)
                    : 0.0;
    windows.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      obs::SlotWindow w;
      w.slot = s;
      w.window_s = window_s;
      w.cycles_per_ns = cycles_per_ns;
      // Observer-side occupancy EWMA, advanced once per scrape.
      const auto depth = static_cast<double>(xcall_depth(s));
      double& e = telemetry_.occ_ewma[s];
      e = telemetry_.primed ? 0.25 * depth + 0.75 * e : depth;
      w.occupancy_ewma = e;
      const obs::CounterSnapshot cs = slots_[s]->counters.snapshot();
      const obs::HistSnapshot hs = slots_[s]->hists->snapshot();
      w.counters = cs.delta(telemetry_.prev_counters[s]);
      w.hists = hs.delta(telemetry_.prev_hists[s]);
      telemetry_.prev_counters[s] = cs;
      telemetry_.prev_hists[s] = hs;
      windows.push_back(w);
    }
    telemetry_.prev_ns = now_ns;
    telemetry_.prev_cycles = now_cy;
    telemetry_.primed = true;
  }
  shared_.inc(obs::Counter::kTelemetrySnaps);
  return obs::derive_telemetry(windows);
}

std::size_t Runtime::xcall_depth(SlotId slot) const {
  HPPC_ASSERT(slot < slots_.size());
  std::size_t depth = 0;
  for (std::uint32_t src = 0; src < registry_.capacity(); ++src) {
    depth += slots_[slot]->rings[src].depth();
  }
  return depth;
}

std::size_t Runtime::pooled_workers(SlotId slot, EntryPointId id) const {
  HPPC_ASSERT(slot < slots_.size());
  HPPC_ASSERT(id < kMaxEntryPoints);
  std::size_t n = 0;
  for (RtWorker* w = slots_[slot]->worker_pool[id]; w != nullptr;
       w = w->next) {
    ++n;
  }
  return n;
}

}  // namespace hppc::rt
