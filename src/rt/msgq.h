// Host baseline 2: classic message-queue IPC — a locked MPMC request queue
// serviced by dedicated server threads, replies through per-request
// condition variables. Every request crosses threads twice; compare with
// the PPC pattern where the handler runs on the caller's own thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ppc/regs.h"

namespace hppc::rt {

class MsgQueueServer {
 public:
  using Handler = std::function<void(ppc::RegSet&)>;

  MsgQueueServer(std::uint32_t server_threads, Handler handler)
      : handler_(std::move(handler)) {
    for (std::uint32_t i = 0; i < server_threads; ++i) {
      threads_.emplace_back([this] { serve(); });
    }
  }

  ~MsgQueueServer() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  MsgQueueServer(const MsgQueueServer&) = delete;
  MsgQueueServer& operator=(const MsgQueueServer&) = delete;

  /// Synchronous request/response round trip across threads.
  Status call(ppc::RegSet& regs) {
    Request req;
    req.regs = &regs;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return Status::kShutdown;
      queue_.push_back(&req);
    }
    cv_.notify_one();
    std::unique_lock<std::mutex> lock(req.m);
    req.cv.wait(lock, [&] { return req.done; });
    return ppc::rc_of(regs);
  }

  std::uint64_t served() const { return served_.load(); }

 private:
  struct Request {
    ppc::RegSet* regs = nullptr;
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
  };

  void serve() {
    for (;;) {
      Request* req = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        req = queue_.front();
        queue_.pop_front();
      }
      handler_(*req->regs);
      served_.fetch_add(1, std::memory_order_relaxed);
      {
        // Notify while holding the request mutex: the Request lives on the
        // caller's stack and is destroyed the moment the caller observes
        // done==true, so the signal must complete before the caller can
        // reacquire the lock and return.
        std::lock_guard<std::mutex> lock(req->m);
        req->done = true;
        req->cv.notify_one();
      }
    }
  }

  Handler handler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> served_{0};
  std::vector<std::thread> threads_;
};

}  // namespace hppc::rt
