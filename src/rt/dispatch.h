// Opcode dispatch helper for rt services.
//
// Every server in the PPC world demultiplexes on the opcode packed into the
// opflags word (§4.5.1). This helper turns a set of per-opcode functions
// into a single handler, with unknown opcodes answered by
// Status::kInvalidArgument — the convention all the simulated servers
// follow, packaged for the host library.
#pragma once

#include <array>
#include <functional>

#include "ppc/regs.h"
#include "rt/runtime.h"

namespace hppc::rt {

class OpDispatcher {
 public:
  using OpHandler = std::function<void(RtCtx&, ppc::RegSet&)>;

  /// Register a handler for one opcode (1..kMaxOps-1). Returns *this for
  /// chaining: OpDispatcher().on(kRead, ...).on(kWrite, ...).handler().
  OpDispatcher& on(Word opcode, OpHandler h) {
    HPPC_ASSERT(opcode > 0 && opcode < kMaxOps);
    HPPC_ASSERT_MSG(!ops_[opcode], "opcode already registered");
    ops_[opcode] = std::move(h);
    return *this;
  }

  /// Produce the RtHandler to bind. The dispatcher is copied into the
  /// closure, so it may be a temporary.
  RtHandler handler() const {
    return [ops = ops_](RtCtx& ctx, ppc::RegSet& regs) {
      const Word op = ppc::opcode_of(regs);
      if (op >= kMaxOps || !ops[op]) {
        ppc::set_rc(regs, Status::kInvalidArgument);
        return;
      }
      ops[op](ctx, regs);
    };
  }

 private:
  static constexpr Word kMaxOps = 64;
  std::array<OpHandler, kMaxOps> ops_{};
};

}  // namespace hppc::rt
