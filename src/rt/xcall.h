// Lock-free cross-slot call channels (xcall).
//
// The paper's fast path covers same-processor calls only; cross-processor
// traffic goes through "interrupt + remote queue" (§4.5.2). The host
// runtime used to model that with a Mailbox<std::function<void()>> — a
// Treiber stack that heap-allocates a node per message — so every cross-
// slot operation paid an allocation plus unbounded CAS contention. This
// header replaces that hot path with a per-slot bounded MPSC ring of
// fixed-size, cache-line-sized POD cells (caller program, entry point,
// inline RegSet payload, completion pointer), in the style of the
// shared-memory rings the memory-offloading IPC literature places between
// "same-core procedure call" and "kernel message queue".
//
// Three pieces:
//
//   XcallRing  — a Vyukov-style bounded multi-producer/single-consumer
//                ring. Producers claim a cell with one CAS and publish it
//                with one release store; the consumer drains every ready
//                cell in a batch. No allocation, ever; a full ring is
//                reported to the caller, who falls back to the legacy
//                mailbox (the overflow path, now control-plane only).
//
//   SlotGate   — the slot-ownership word that makes the *adaptive* part of
//                Runtime::call_remote possible. A slot whose owning thread
//                is parked (or was never registered) publishes kIdle; a
//                remote caller may then CAS the gate to kStolen and run
//                the call directly against the target slot's pools — the
//                host analogue of LRPC thread migration — instead of
//                paying two context switches for a ring round trip. All
//                slot state handed across the gate is synchronized by the
//                acquire/release CAS pair, so single-consumer structures
//                stay single-consumer *at a time*.
//
//   XcallWait  — the caller-side completion block for synchronous calls:
//                one atomic word (0 while pending, 0x100|Status when
//                done) waited on with an adaptive spin→yield→park ladder.
//                A waiter that exhausts its yield budget parks on the word
//                (C++20 atomic wait); the completing server's exchange sees
//                the parked bit and kicks it with one notify.
//
// Batched submission: try_post_many() claims N contiguous cells with ONE
// CAS and publishes the whole run with ONE release store (the batch
// doorbell) — cells after the first are published with relaxed stores, and
// the consumer's in-order acquire of the run's first cell carries the
// happens-before edge for all of them.
//
// A warm cross-slot call — direct or ring, single or batched — performs
// ZERO heap allocations; the `mailbox_allocs` counter exists to assert
// that.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "common/cacheline.h"
#include "common/cpu_relax.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/trace.h"
#include "ppc/regs.h"
#include "rt/frame_abi.h"

namespace hppc::rt {

// The spin hint moved to common/cpu_relax.h so spin loops below rt/ (the
// repl seqlock read retry) can share it; re-exported here for existing
// callers.
using ::hppc::cpu_relax;

/// Caller-side completion block for a synchronous cross-slot call. The
/// default (no-deadline) path keeps it on the caller's stack (cache-hot
/// for the spinner) with `regs` pointing at the caller's register file;
/// deadline calls use slot-pooled blocks with `regs == nullptr` and the
/// reply landing in the inline `reply` buffer, so a caller that abandons
/// the wait leaves the server a target that stays valid forever.
///
/// The done word is a tiny state machine:
///   0                      — pending (caller spinning or yielding)
///   kParkedBit             — pending, caller parked on the word (only
///                            no-deadline waiters ever park)
///   kAbandonedBit          — caller's deadline expired; it left (only
///                            pooled blocks ever reach this state)
///   kDoneBit | status      — server completed (reply valid)
///   kDoneBit|kAbandonedBit|status — server acknowledged an abandoned cell
///                            without executing it (block is recyclable)
/// The caller abandons with a CAS from 0, so it can never erase a
/// completion; the caller parks with a CAS from 0, so it can never park
/// over one; the server's final exchange always sets kDoneBit and observes
/// the parked bit it replaces, so a parked waiter is always kicked and an
/// abandoned block always becomes reclaimable once its cell drains.
struct XcallWait {
  static constexpr std::uint32_t kDoneBit = 0x100;
  static constexpr std::uint32_t kAbandonedBit = 0x200;
  static constexpr std::uint32_t kParkedBit = 0x400;

  std::atomic<std::uint32_t> done{0};
  ppc::RegSet* regs = nullptr;  // caller's in/out register file (stack waits)
  XcallWait* next = nullptr;    // caller-slot pool link (pooled waits)
  ppc::RegSet reply{};          // inline reply buffer (pooled waits)

  /// Where the server writes the request/reply registers.
  ppc::RegSet& reply_target() { return regs != nullptr ? *regs : reply; }

  /// Server side: publish the result. The exchange (not a plain store)
  /// closes the park race — a waiter parks by CAS 0→kParkedBit, so either
  /// its CAS loses to this exchange and it sees the result without
  /// sleeping, or this exchange observes the parked bit and kicks it.
  /// Returns true when a parked waiter was woken (for the kick counter).
  bool complete(Status rc) {
    const std::uint32_t prev =
        done.exchange(kDoneBit | static_cast<std::uint32_t>(rc),
                      std::memory_order_acq_rel);
    if ((prev & kParkedBit) != 0) {
      done.notify_one();
      return true;
    }
    return false;
  }

  /// Server side, before executing: an abandoned cell is acknowledged
  /// (kDoneBit set so the owner can recycle the block) and skipped.
  bool abandoned() const {
    return (done.load(std::memory_order_acquire) & kAbandonedBit) != 0;
  }
  void ack_abandoned() {
    done.store(kDoneBit | kAbandonedBit |
                   static_cast<std::uint32_t>(Status::kCallAborted),
               std::memory_order_release);
  }

  /// Caller side, on deadline expiry. True: the wait is abandoned and the
  /// caller may leave (the block must survive until the server acks).
  /// False: the server completed first — the caller takes the real result.
  bool try_abandon() {
    std::uint32_t expect = 0;
    return done.compare_exchange_strong(expect, kAbandonedBit,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }

  /// Owner-side recycling check: the server's final store (completion or
  /// abandonment ack) has landed and nobody else will touch the block.
  bool server_finished() const {
    return (done.load(std::memory_order_acquire) & kDoneBit) != 0;
  }

  void reset() {
    done.store(0, std::memory_order_relaxed);
    regs = nullptr;
    next = nullptr;
  }
};

/// One ring cell: exactly one cache line in shipped builds. `seq` is the
/// Vyukov sequence (cell i starts at i; a producer claiming position p
/// publishes p+1; the consumer retires it to p+capacity). `wait == nullptr`
/// marks a fire-and-forget (async) cell. `deadline` is an absolute
/// host_cycles() tick (0 = none): a cell that drains after its deadline is
/// not executed late — the server drops it (async) or completes it with
/// kDeadlineExceeded (sync), booking deadline_exceeded either way.
///
/// Trace builds (HPPC_TRACE=1) carry the request's TraceCtx inline in the
/// cell — that is how a span crosses the ring to the server slot. The 16
/// extra bytes push the cell to two cache lines (alignas rounds 80 up to
/// 128); shipped builds stay exactly one line, so tracing's cost never
/// leaks into the configuration the paper's numbers come from.
struct alignas(kHostCacheLine) XcallCell {
  std::atomic<std::uint64_t> seq{0};
  XcallWait* wait = nullptr;
  std::uint64_t deadline = 0;
  ppc::RegSet regs{};  // inline request payload — no indirection, no alloc
  ProgramId caller = 0;
  EntryPointId ep = 0;
#if defined(HPPC_TRACE) && HPPC_TRACE
  obs::TraceCtx tctx{};  // request context riding the cell across slots
#endif
};
static_assert(sizeof(XcallCell) % kHostCacheLine == 0,
              "cells must tile cache lines exactly");
#if !defined(HPPC_TRACE) || !HPPC_TRACE
static_assert(sizeof(XcallCell) == kHostCacheLine,
              "shipped-build cells must stay exactly one cache line");
#endif

/// Frame-cell marker. An `ep` with this bit set carries a Figure-4
/// CallFrame inlined in the cell instead of a typed-handler request:
///   ep       = kFrameCellEp | FrameServiceId   (frame-table index)
///   deadline = the 64-bit packed op word       (frame cells carry no
///              deadline — the field is repurposed as the op lane)
///   regs     = the frame's 8 payload words
/// Legacy entry points are bounded by kMaxEntryPoints (1024), so the top
/// bit can never collide with a real id. The consumer checks this bit
/// FIRST and never interprets a frame cell's `deadline` as a tick count.
inline constexpr EntryPointId kFrameCellEp = 0x80000000u;

inline bool cell_is_frame(const XcallCell& cell) {
  return (cell.ep & kFrameCellEp) != 0;
}

/// Rebuild the CallFrame a frame cell carries (consumer side).
inline CallFrame cell_frame(const XcallCell& cell) {
  CallFrame f;
  f.op = cell.deadline;
  f.w = cell.regs.w;
  return f;
}

/// Request-context lanes in a typed (non-frame) cell's `ep` word. The cell
/// is exactly one cache line with no spare bytes, so the context that must
/// ride it — cancel-token index and traffic class — is packed into the ep
/// word's unused high bits (the absolute deadline already has its own
/// field). Layout, from the top:
///
///   bit  31      kFrameCellEp   frame-cell marker (frames carry NO request
///                               context in flight — see docs/XCALL.md)
///   bit  30      kCellBulkBit   traffic class (set = kBulk)
///   bits 16..29  token index    cancel-flag pool index (14 bits, 0 = none)
///   bits  0..15  entry point    the real EntryPointId
///
/// kMaxEntryPoints (1024) fits the low lane with room to spare; the
/// static_assert below keeps the packing honest if that ever grows.
inline constexpr EntryPointId kCellBulkBit = 0x40000000u;
inline constexpr unsigned kCellTokenShift = 16;
inline constexpr EntryPointId kCellTokenLaneMask = 0x3FFFu;  // 14 bits
inline constexpr EntryPointId kCellEpMask = 0xFFFFu;

/// Size of the runtime's cancel-flag pool: everything a cell's token lane
/// can address. Tokens allocate monotonically and index mod this, so a
/// stale cancel needs 2^14 intervening allocations to alias.
inline constexpr std::uint32_t kMaxCancelTokens = kCellTokenLaneMask + 1;

static_assert(kMaxEntryPoints <= kCellEpMask + 1,
              "entry-point ids must fit the cell ep lane");

inline EntryPointId cell_pack_ep(EntryPointId ep, std::uint32_t token_idx,
                                 bool bulk) {
  return ep | ((token_idx & kCellTokenLaneMask) << kCellTokenShift) |
         (bulk ? kCellBulkBit : 0u);
}

inline EntryPointId cell_ep(EntryPointId wire) { return wire & kCellEpMask; }

inline std::uint32_t cell_token_idx(EntryPointId wire) {
  return (wire >> kCellTokenShift) & kCellTokenLaneMask;
}

inline bool cell_is_bulk(EntryPointId wire) {
  return (wire & kCellBulkBit) != 0;
}

/// Bounded MPSC ring channel. Any thread posts; only the slot's current
/// ownership holder (owner thread, or a remote thread that won the
/// SlotGate) drains. Capacity is a compile-time power of two so the index
/// wrap is a mask.
class XcallRing {
 public:
  static constexpr std::size_t kCapacity = 64;
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  XcallRing() {
    for (std::size_t i = 0; i < kCapacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  XcallRing(const XcallRing&) = delete;
  XcallRing& operator=(const XcallRing&) = delete;

  /// Any thread. One CAS to claim a cell, one release store to publish.
  /// Returns false when the ring is full (the caller takes the overflow
  /// path); never blocks, never allocates. `tctx` (trace builds only)
  /// rides the cell to the consumer; ignored in shipped builds.
  bool try_post(ProgramId caller, EntryPointId ep, const ppc::RegSet& regs,
                XcallWait* wait, std::uint64_t deadline = 0,
                const obs::TraceCtx* tctx = nullptr) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    XcallCell* cell;
    for (;;) {
      cell = &cells_[pos & (kCapacity - 1)];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full: the cell kCapacity behind is not retired yet
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->caller = caller;
    cell->ep = ep;
    cell->regs = regs;
    cell->wait = wait;
    cell->deadline = deadline;
#if defined(HPPC_TRACE) && HPPC_TRACE
    cell->tctx = tctx != nullptr ? *tctx : obs::TraceCtx{};
#else
    (void)tctx;
#endif
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Any thread. Vectored post: claims up to `n` contiguous cells with ONE
  /// CAS on the enqueue cursor and publishes the whole run with ONE release
  /// store — the batch doorbell. Cells after the run's first are published
  /// with relaxed seq stores; that is sound because the single consumer
  /// drains strictly in order, so it only reads cell k after its acquire of
  /// cell 0's seq, which synchronizes-with the release below and the
  /// relaxed stores sequenced before it.
  ///
  /// The claim is validated against the run's LAST cell: the consumer
  /// retires cells in order, so `cells[pos+m-1].seq == pos+m-1` implies the
  /// whole run [pos, pos+m) is free. On a busy ring the attempted run is
  /// halved until it fits. Returns the number of cells posted (0 = ring
  /// full); a short count is not an error — the caller re-submits the tail.
  ///
  /// `waits[i]` may be null per cell (fire-and-forget); `waits == nullptr`
  /// means every cell is fire-and-forget. One `tctx` covers the whole run
  /// (a batch is one span; the server parents each cell's execution to it).
  std::size_t try_post_many(ProgramId caller, EntryPointId ep,
                            const ppc::RegSet* regs,
                            XcallWait* const* waits, std::size_t n,
                            std::uint64_t deadline = 0,
                            const obs::TraceCtx* tctx = nullptr) {
    if (n == 0) return 0;
    if (n > kCapacity) n = kCapacity;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t m;
    for (;;) {
      m = n;
      while (m > 0) {
        const XcallCell& last = cells_[(pos + m - 1) & (kCapacity - 1)];
        if (last.seq.load(std::memory_order_acquire) == pos + m - 1) break;
        m >>= 1;  // run not free at this length — try a shorter one
      }
      if (m == 0) return 0;
      if (enqueue_pos_.compare_exchange_weak(pos, pos + m,
                                             std::memory_order_relaxed)) {
        break;  // claimed [pos, pos+m)
      }
      // CAS reloaded pos: another producer moved the cursor; revalidate.
    }
    // Fill back to front so the run's first cell — the one the consumer's
    // drain cursor is waiting on — is published last, with release.
    for (std::size_t i = m; i-- > 0;) {
      XcallCell& cell = cells_[(pos + i) & (kCapacity - 1)];
      cell.caller = caller;
      cell.ep = ep;
      cell.regs = regs[i];
      cell.wait = waits != nullptr ? waits[i] : nullptr;
      cell.deadline = deadline;
#if defined(HPPC_TRACE) && HPPC_TRACE
      cell.tctx = tctx != nullptr ? *tctx : obs::TraceCtx{};
#else
      (void)tctx;
#endif
      cell.seq.store(pos + i + 1, i == 0 ? std::memory_order_release
                                         : std::memory_order_relaxed);
    }
    return m;
  }

  /// Any thread. Publish one Figure-4 frame call: the whole request —
  /// packed op word plus all 8 payload words — inlines in the cell (see
  /// kFrameCellEp for the lane assignment). Same claim/publish protocol
  /// and same failure contract as try_post.
  bool try_post_frame(ProgramId caller, const CallFrame& f, XcallWait* wait,
                      const obs::TraceCtx* tctx = nullptr) {
    return try_post(caller, kFrameCellEp | frame_service_of(f.op),
                    ppc::RegSet{f.w}, wait, /*deadline=*/f.op, tctx);
  }

  /// Any thread. Vectored frame post: the frame analogue of try_post_many
  /// (one CAS claims the run, one release store publishes it), except each
  /// cell carries its own op word — frames in one batch may target
  /// different opcodes (and even different frame services).
  std::size_t try_post_frames(ProgramId caller, const CallFrame* frames,
                              XcallWait* const* waits, std::size_t n,
                              const obs::TraceCtx* tctx = nullptr) {
    if (n == 0) return 0;
    if (n > kCapacity) n = kCapacity;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t m;
    for (;;) {
      m = n;
      while (m > 0) {
        const XcallCell& last = cells_[(pos + m - 1) & (kCapacity - 1)];
        if (last.seq.load(std::memory_order_acquire) == pos + m - 1) break;
        m >>= 1;
      }
      if (m == 0) return 0;
      if (enqueue_pos_.compare_exchange_weak(pos, pos + m,
                                             std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = m; i-- > 0;) {
      XcallCell& cell = cells_[(pos + i) & (kCapacity - 1)];
      cell.caller = caller;
      cell.ep = kFrameCellEp | frame_service_of(frames[i].op);
      cell.regs.w = frames[i].w;
      cell.wait = waits != nullptr ? waits[i] : nullptr;
      cell.deadline = frames[i].op;  // the op lane, not a deadline
#if defined(HPPC_TRACE) && HPPC_TRACE
      cell.tctx = tctx != nullptr ? *tctx : obs::TraceCtx{};
#else
      (void)tctx;
#endif
      cell.seq.store(pos + i + 1, i == 0 ? std::memory_order_release
                                         : std::memory_order_relaxed);
    }
    return m;
  }

  /// Ownership holder only. Consumes every ready cell in one batch —
  /// `fn(cell)` per cell — and retires them. Returns the batch size.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t n = 0;
    for (;;) {
      std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
      XcallCell& cell = cells_[pos & (kCapacity - 1)];
      if (cell.seq.load(std::memory_order_acquire) != pos + 1) break;
      fn(cell);
      cell.seq.store(pos + kCapacity, std::memory_order_release);
      dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
      ++n;
    }
    return n;
  }

  /// Producer-side hint (racy by nature): are there published-but-undrained
  /// cells? Used by serve() to decide whether to wake; correctness never
  /// depends on it (waiters help-drain through the gate).
  bool has_pending() const {
    return enqueue_pos_.load(std::memory_order_relaxed) !=
           dequeue_pos_.load(std::memory_order_relaxed);
  }

  /// Approximate queue depth (racy snapshot of the two cursors). Admission
  /// control compares it against a watermark; an off-by-a-few answer just
  /// moves the shedding threshold by that much for one call.
  std::size_t depth() const {
    const std::uint64_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq > deq ? static_cast<std::size_t>(enq - deq) : 0;
  }

 private:
  // Producer-shared and consumer-private positions on separate lines so
  // remote CAS traffic never collides with the drain cursor.
  alignas(kHostCacheLine) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kHostCacheLine) std::atomic<std::uint64_t> dequeue_pos_{0};
  std::array<XcallCell, kCapacity> cells_;
};

/// The slot-ownership word. States:
///   kOwner  — the registered thread is running; remote callers must use
///             the ring (it will be drained at the owner's next poll).
///   kIdle   — nobody is executing on the slot (thread parked in serve(),
///             or no thread ever registered); a remote caller may steal.
///   kStolen — a remote caller holds the slot and is executing on it.
/// The owner's fast path (Runtime::call) never touches this word: while
/// the owner runs, the state is kOwner and cannot change under it, so the
/// same-slot warm call stays zero-shared-lines by construction.
class SlotGate {
 public:
  enum : std::uint32_t { kOwner = 0, kIdle = 1, kStolen = 2 };

  /// Remote caller: try to take the slot for direct execution.
  bool try_steal() {
    std::uint32_t expect = kIdle;
    return state_.compare_exchange_strong(expect, kStolen,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  /// Remote caller: hand the slot back after direct execution.
  void release_steal() { state_.store(kIdle, std::memory_order_release); }

  /// Owner thread: park (publish idle). Must not be mid-call.
  void enter_idle() { state_.store(kIdle, std::memory_order_release); }

  /// Owner thread: un-park, waiting out any in-flight thief.
  void exit_idle() {
    std::uint32_t expect = kIdle;
    while (!state_.compare_exchange_weak(expect, kOwner,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expect = kIdle;
      std::this_thread::yield();
    }
  }

  /// First registration: claim an idle gate; idempotent re-registration
  /// (state already kOwner — necessarily ours, slots are per-thread) is a
  /// no-op. Waits out a thief caught mid-steal.
  void claim_at_register() {
    for (;;) {
      std::uint32_t expect = kIdle;
      if (state_.compare_exchange_weak(expect, kOwner,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      if (expect == kOwner) return;
      std::this_thread::yield();  // kStolen: thief is finishing
    }
  }

  std::uint32_t state() const {
    return state_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> state_{kIdle};
};

/// Yield rounds a no-deadline waiter burns (helping once per round) before
/// it parks on the completion word. Each round is a spin window plus a
/// help attempt, so by the time a waiter parks it has given the server a
/// long cooperative window AND tried to drain the target itself — parking
/// only happens when someone else demonstrably holds the slot.
inline constexpr int kWaitYieldRounds = 64;

/// The contended budget: when the target's ready mask already shows OTHER
/// producers' doorbells at post time, the owner has a queue in front of
/// our cell and the expected wait spans several drain passes — burning the
/// full yield ladder would just churn the scheduler (acutely so when
/// callers outnumber CPUs). One courtesy round, then park and let the
/// completing server's kick pay the single wakeup.
inline constexpr int kWaitYieldRoundsContended = 1;

/// Adaptive completion wait — the spin→yield→park ladder:
///
///   spin   96 cpu_relax polls of the done word (the multi-core happy
///          path, where the server replies within the spin window);
///   yield  up to `yield_rounds` rounds of help() + sched yield, so a
///          time-sliced server can run and an idle target can be drained
///          by the waiter itself (`help` steals the gate and drains);
///   park   CAS the done word 0→kParkedBit and block in the C++20 atomic
///          wait until the server's completing exchange — which observes
///          the parked bit it replaced — kicks us with notify_one().
///
/// `on_park` runs once per park attempt, before blocking (counters/trace/
/// failpoints). Deadline waiters must NOT use this path (atomic wait has
/// no timeout); they stay on wait_complete_deadline's spin+yield loop.
/// The park CAS is from 0 only, so a parker can never erase a completion
/// or an abandonment; completion checks mask kDoneBit, so a stale parked
/// bit observed after a spurious wake never reads as a result.
template <typename Helper, typename OnPark>
Status wait_complete(XcallWait& wait, int yield_rounds, Helper&& help,
                     OnPark&& on_park) {
  constexpr int kSpins = 96;
  for (int round = 0;; ++round) {
    for (int i = 0; i < kSpins; ++i) {
      const std::uint32_t v = wait.done.load(std::memory_order_acquire);
      if ((v & XcallWait::kDoneBit) != 0) {
        return static_cast<Status>(v & 0xFFu);
      }
      cpu_relax();
    }
    help();
    const std::uint32_t v = wait.done.load(std::memory_order_acquire);
    if ((v & XcallWait::kDoneBit) != 0) return static_cast<Status>(v & 0xFFu);
    if (round < yield_rounds) {
      std::this_thread::yield();
      continue;
    }
    // Ladder exhausted: park. By now we have posted our cell and rung the
    // doorbell, so the slot's current ownership holder (owner poll/serve,
    // or a helping thief) is guaranteed to reach it and kick us.
    on_park();
    for (;;) {
      std::uint32_t cur = wait.done.load(std::memory_order_acquire);
      if ((cur & XcallWait::kDoneBit) != 0) {
        return static_cast<Status>(cur & 0xFFu);
      }
      if (cur == 0 &&
          !wait.done.compare_exchange_strong(cur, XcallWait::kParkedBit,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        continue;  // completion raced in under us — re-examine
      }
      // Blocks while the word still reads kParkedBit; the server's
      // completing exchange changes it and notifies. Spurious wakes just
      // re-run the loop.
      wait.done.wait(XcallWait::kParkedBit, std::memory_order_acquire);
    }
  }
}

/// Deadline variant: the same spin-then-yield loop, but each yield round
/// checks `now()` against `deadline` and, on expiry, tries to abandon the
/// wait. Returns the completion status with `*timed_out == false`, or —
/// when the abandon CAS wins — Status::kDeadlineExceeded with
/// `*timed_out == true` (the caller must treat `wait` as in flight until
/// the server acks). A completion that races the expiry wins: the caller
/// takes the real result rather than reporting a deadline it missed by
/// nanoseconds.
template <typename Helper, typename Clock>
Status wait_complete_deadline(XcallWait& wait, std::uint64_t deadline,
                              Clock&& now, Helper&& help, bool* timed_out) {
  constexpr int kSpins = 96;
  *timed_out = false;
  for (;;) {
    for (int i = 0; i < kSpins; ++i) {
      const std::uint32_t v = wait.done.load(std::memory_order_acquire);
      if (v != 0) return static_cast<Status>(v & 0xFFu);
      cpu_relax();
    }
    if (now() >= deadline) {
      if (wait.try_abandon()) {
        *timed_out = true;
        return Status::kDeadlineExceeded;
      }
      // Lost to the server: the result is (or is about to be) published.
      // Spin it out (never park — the completing exchange is imminent).
      return wait_complete(wait, /*yield_rounds=*/1 << 20, help, [] {});
    }
    help();
    const std::uint32_t v = wait.done.load(std::memory_order_acquire);
    if (v != 0) return static_cast<Status>(v & 0xFFu);
    std::this_thread::yield();
  }
}

}  // namespace hppc::rt
