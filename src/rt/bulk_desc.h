// The unified bulk-data descriptor — ONE spill layout for both call lanes.
//
// Two paths move payloads that do not fit the 8-word register contract:
//
//   * the frame ABI's scatter/gather spill (kFrameFlagSg, rt/frame_abi.h):
//     a >8-word frame call points w[0..1] at a caller-owned descriptor
//     block and the handler copies exactly the enumerated ranges — the
//     same-process analogue of the paper's §4.2 grant;
//
//   * the cross-process CopyServer (src/shm/): a caller grants the server
//     a shared-memory region, and calls carry {region_id, offset, len}
//     descriptors in the ring cell while CopyTo/CopyFrom move the bytes
//     directly between granted regions — the payload never rides the ring.
//
// Both lanes describe a range the same way, so they share one segment
// descriptor: `BulkSeg{region, len, addr}`. A local segment (`region ==
// kBulkRegionLocal`) addresses the caller's own address space (`addr` is a
// VA); a granted segment names a region id and `addr` is a byte offset
// into it. Gather/scatter are written once, over a pluggable resolver:
// the frame lane resolves local VAs (LocalBulkResolver), the shm lane
// resolves region ids against its grant table (shm::CopyServer) — the
// copy loops, truncation rules and staging helper are identical either
// way. This replaces the arena-staged gather/scatter that used to live in
// servers/frame_bulk.h.
//
// Permission model, both lanes: the descriptors ARE the grant. A handler
// touches exactly the ranges the caller enumerated — nothing else — and
// the bytes move once, directly between the caller's buffers (or granted
// region) and the service's own memory.
//
// Lifetime, frame lane: descriptor blocks and local segments are
// caller-owned and must outlive the call; synchronous frame calls make
// that trivial (the caller's stack frame is alive until the reply lands).
// One-way frames must not carry local spills — there is no reply edge to
// sequence the caller's reclaim against. Granted-region segments instead
// live until revoked, which is what makes them safe to ship cross-process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/assert.h"
#include "mem/arena.h"
#include "ppc/regs.h"

namespace hppc::rt {

/// Region id of a process-local segment: `addr` is a virtual address in
/// the describing process. Any other value names a granted shm region and
/// `addr` is a byte offset into it.
inline constexpr std::uint32_t kBulkRegionLocal = 0xFFFFFFFFu;

/// One bulk-data segment — the wire format both lanes share.
struct BulkSeg {
  std::uint32_t region = kBulkRegionLocal;
  std::uint32_t len = 0;
  std::uint64_t addr = 0;  // VA when local, region byte offset when granted

  bool operator==(const BulkSeg&) const = default;
};

inline BulkSeg bulk_local(const void* p, std::size_t len) {
  BulkSeg s;
  s.region = kBulkRegionLocal;
  s.len = static_cast<std::uint32_t>(len);
  s.addr = reinterpret_cast<std::uintptr_t>(p);
  return s;
}

inline BulkSeg bulk_region(std::uint32_t region, std::uint64_t offset,
                           std::size_t len) {
  BulkSeg s;
  s.region = region;
  s.len = static_cast<std::uint32_t>(len);
  s.addr = offset;
  return s;
}

/// The descriptor block a spilled call points at: gather segments (request
/// bytes the handler may read) and scatter segments (reply ranges the
/// handler may write).
struct BulkDesc {
  const BulkSeg* in = nullptr;
  std::uint32_t n_in = 0;
  const BulkSeg* out = nullptr;
  std::uint32_t n_out = 0;
};

/// Total request bytes across the gather segments.
inline std::size_t bulk_total_in(const BulkDesc& d) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < d.n_in; ++i) n += d.in[i].len;
  return n;
}

/// Total reply capacity across the scatter segments.
inline std::size_t bulk_total_out(const BulkDesc& d) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < d.n_out; ++i) n += d.out[i].len;
  return n;
}

/// The frame lane's resolver: local segments are plain VAs; granted
/// regions do not exist in-process, so they refuse to resolve.
struct LocalBulkResolver {
  void* operator()(const BulkSeg& s, bool /*writable*/) const {
    if (s.region != kBulkRegionLocal) return nullptr;
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(s.addr));
  }
};

/// Gather the request: concatenate the in-segments into [dst, dst+cap).
/// Returns bytes copied; stops (without overrun) when dst fills or a
/// segment fails to resolve — callers compare against bulk_total_in when
/// a short gather must be an error (same contract the old sg_gather had
/// for truncation).
template <class Resolver>
std::size_t bulk_gather(const BulkDesc& d, Resolver&& resolve, void* dst,
                        std::size_t cap) {
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < d.n_in && off < cap; ++i) {
    const BulkSeg& seg = d.in[i];
    const void* base = resolve(seg, /*writable=*/false);
    if (base == nullptr) break;
    const std::size_t n = seg.len < cap - off ? seg.len : cap - off;
    std::memcpy(static_cast<std::byte*>(dst) + off, base, n);
    off += n;
  }
  return off;
}

/// Scatter the reply: spread [src, src+len) across the out-segments in
/// order. Returns bytes placed; stops when the segments fill or one fails
/// to resolve.
template <class Resolver>
std::size_t bulk_scatter(const BulkDesc& d, Resolver&& resolve,
                         const void* src, std::size_t len) {
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < d.n_out && off < len; ++i) {
    const BulkSeg& seg = d.out[i];
    void* base = resolve(seg, /*writable=*/true);
    if (base == nullptr) break;
    const std::size_t n = seg.len < len - off ? seg.len : len - off;
    std::memcpy(base, static_cast<const std::byte*>(src) + off, n);
    off += n;
  }
  return off;
}

// -- RegSet packing (the shm cell wire format) ------------------------------
//
// A granted-region segment rides a ring cell as four payload words:
// {region, len, addr lo, addr hi}. With the op word at w[7], a cell fits
// one segment per direction (in at w[0], out at... the handler's choice);
// calls needing more segments place a descriptor block in a granted region
// and point one segment at it.

inline constexpr std::size_t kBulkSegWords = 4;

inline void bulk_seg_pack(ppc::RegSet& regs, std::size_t w0,
                          const BulkSeg& s) {
  HPPC_ASSERT(w0 + kBulkSegWords <= kPpcWords);
  regs[w0] = s.region;
  regs[w0 + 1] = s.len;
  ppc::set_u64(regs, w0 + 2, s.addr);
}

inline BulkSeg bulk_seg_unpack(const ppc::RegSet& regs, std::size_t w0) {
  HPPC_ASSERT(w0 + kBulkSegWords <= kPpcWords);
  BulkSeg s;
  s.region = regs[w0];
  s.len = regs[w0 + 1];
  s.addr = ppc::get_u64(regs, w0 + 2);
  return s;
}

// -- staging ----------------------------------------------------------------

/// A node-local staging buffer for services that transform bulk payloads
/// rather than streaming them: gather lands the request on the serving
/// slot's own node, the handler works in place, scatter sends the result
/// back. Arena-backed; create one per slot at service construction. Works
/// against any resolver, so the frame lane and the shm CopyServer share it.
class BulkStage {
 public:
  BulkStage(mem::Arena& arena, NodeId node, std::size_t capacity)
      : buf_(static_cast<std::byte*>(
            arena.allocate(node, capacity, alignof(std::max_align_t)))),
        cap_(capacity) {}

  BulkStage(const BulkStage&) = delete;
  BulkStage& operator=(const BulkStage&) = delete;

  std::byte* data() { return buf_; }
  std::size_t capacity() const { return cap_; }

  /// Gather a spilled call's request into the stage. Fails (returns
  /// false) when the payload exceeds the stage — the handler should answer
  /// kOutOfResources rather than truncate silently.
  template <class Resolver>
  bool gather(const BulkDesc& d, Resolver&& resolve, std::size_t* len) {
    if (bulk_total_in(d) > cap_) return false;
    *len = bulk_gather(d, resolve, buf_, cap_);
    return true;
  }

  /// Scatter [data(), data()+len) back through the out-segments.
  template <class Resolver>
  std::size_t scatter(const BulkDesc& d, Resolver&& resolve,
                      std::size_t len) {
    HPPC_ASSERT(len <= cap_);
    return bulk_scatter(d, resolve, buf_, len);
  }

 private:
  std::byte* buf_;  // arena storage: freed wholesale with the arena
  std::size_t cap_;
};

}  // namespace hppc::rt
