// End-to-end request context: the per-request ambient state that rides a
// call tree across slot boundaries.
//
// The paper's death-and-destruction semantics (§4.5) stop at one PPC
// boundary: a hard-killed server aborts ITS in-flight calls, but nothing
// connects the caller's fate to work the server started on the caller's
// behalf. The host runtime makes nested calls routinely — KvService's
// vectored stubs ride xcall rings which ride the ppc facility — so a
// caller whose deadline already expired used to keep burning server
// cycles at every hop past the first. RequestCtx closes that gap:
//
//   abs_deadline_cycles  the root request's absolute budget (host_cycles
//                        tick; 0 = none). Nested calls inherit it under a
//                        remaining-budget clamp — a callee may tighten the
//                        budget with its own CallOptions::deadline_cycles
//                        but can never extend the root's. Checked at
//                        admission (caller side) and again at drain
//                        (server side), so an expired tree stops at the
//                        next seam instead of executing late.
//   cancel_token         index into the runtime's cancel-flag pool
//                        (0 = not cancellable). Runtime::cancel(token)
//                        raises the flag; every seam that checks the
//                        deadline checks the flag too, completing with
//                        kCallAborted. Long handlers poll cooperatively
//                        via Runtime::cancellation_requested().
//   traffic_class        kInteractive or kBulk. Admission control keeps a
//                        watermark per class (bulk sheds first) and the
//                        ready-mask drain scheduler serves interactive
//                        doorbells before bulk ones.
//   trace_id             the root trace id (mirrors obs::TraceCtx so the
//                        context is self-describing in all builds, not
//                        just HPPC_TRACE ones).
//
// Unlike obs::TraceCtx — which exists everywhere but only *records* under
// HPPC_TRACE — RequestCtx is load-bearing semantics in every build: the
// deadline/cancel checks decide call outcomes. The struct is installed as
// `Slot::cur_req` with the same save/restore discipline the trace context
// uses, so the no-context warm path costs two plain u64-sized copies and
// two always-false compares per call.
#pragma once

#include <cstdint>

namespace hppc::rt {

/// Admission/drain priority of a request. kInteractive is the default and
/// the latency-sensitive class; kBulk marks throughput traffic that should
/// absorb shedding and queueing first when the system saturates.
enum class TrafficClass : std::uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

inline constexpr std::size_t kNumTrafficClasses = 2;

/// Cancel-flag pool handle. 0 means "not cancellable"; nonzero tokens come
/// from Runtime::cancel_token_create() and index (mod pool size) into the
/// runtime's flag array. Tokens are generation-free: the pool is sized so
/// reuse requires 2^14 intervening allocations, and a stale cancel on a
/// recycled index is benign (the new request observes a spurious
/// kCallAborted — the same contract as a lost admission race).
using CancelToken = std::uint32_t;

struct RequestCtx {
  std::uint64_t abs_deadline_cycles = 0;  // absolute host_cycles tick; 0=none
  std::uint64_t trace_id = 0;             // root trace id (0 = untraced)
  CancelToken cancel_token = 0;           // 0 = not cancellable
  TrafficClass traffic_class = TrafficClass::kInteractive;

  /// Anything to propagate? (The warm no-context path keeps this false.)
  bool active() const {
    return abs_deadline_cycles != 0 || cancel_token != 0 ||
           traffic_class != TrafficClass::kInteractive;
  }

  bool expired(std::uint64_t now) const {
    return abs_deadline_cycles != 0 && now >= abs_deadline_cycles;
  }

  /// The inheritance rule: a nested bound may tighten the ambient one but
  /// never extend it. 0 on either side means "no bound from that side".
  static std::uint64_t clamp_deadline(std::uint64_t inherited,
                                      std::uint64_t mine) {
    if (mine == 0) return inherited;
    if (inherited == 0) return mine;
    return mine < inherited ? mine : inherited;
  }
};

}  // namespace hppc::rt
