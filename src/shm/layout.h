// The cross-process segment layout: every structure the shm transport
// shares between a server process and its peers, as PODs linked by BYTE
// OFFSETS from the segment base — never raw pointers, because the segment
// maps at a different virtual address in every process that opens it.
//
// This is the paper's PPC data area crossed with the xcall layer: the
// same Vyukov ring-cell protocol rt/xcall.h runs between slots of one
// process, laid out inside an shm_open/mmap segment so a caller PROCESS
// and a server PROCESS exchange warm null PPCs with zero locks and zero
// allocations. The wait-block done-word state machine is reused bit for
// bit (kDoneBit/kAbandonedBit from rt::XcallWait), with one cross-process
// amendment: nobody ever parks. std::atomic::wait lowers to
// FUTEX_WAIT_PRIVATE, which does not cross address spaces, so shm waiters
// spin-then-sched_yield and kParkedBit is never set on a segment word.
//
// Creation protocol: the server process lays the segment out through a
// segment-backed mem::Arena (mem/arena.h), records every offset in the
// ShmHeader, and publishes the header with a release store of the magic
// word — an opener acquire-loads the magic before trusting any offset.
//
// Ownership map (who writes what):
//   * PeerSlot.state     — CAS-claimed by attaching peers, reset by the
//                          server's reaper;
//   * PeerSlot.heartbeat — the peer, periodically; read by the reaper;
//   * lane ring cells    — the owning peer posts, the server drains
//                          (per-peer lanes, so rings are SPSC here, but
//                          they keep the MPSC claim protocol of the
//                          in-process layer);
//   * wait blocks        — the owning peer acquires/releases; the server
//                          writes replies and the done word; the reaper
//                          rebuilds the free list wholesale after a death;
//   * cancel pool        — any process raises flags; the server's drain
//                          sweep reads them (rt::Runtime::adopt_cancel_pool
//                          points a runtime at this pool);
//   * RegionSlot         — CAS-claimed by granting peers, invalidated by
//                          revoke or by the reaper.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/cacheline.h"
#include "common/types.h"
#include "ppc/regs.h"
#include "rt/xcall.h"

namespace hppc::shm {

inline constexpr std::uint64_t kShmMagic = 0x48505043'53484d31ull;  // HPPCSHM1
inline constexpr std::uint32_t kShmVersion = 1;

/// Peers one segment can host (one call lane each).
inline constexpr std::uint32_t kMaxShmPeers = 8;
/// Cells per peer lane; power of two (index wrap is a mask).
inline constexpr std::uint32_t kShmRingCapacity = 64;
/// Wait blocks per lane: one per cell is exactly enough, because a call
/// holds one cell and one wait for its whole lifetime.
inline constexpr std::uint32_t kShmWaitsPerLane = kShmRingCapacity;
/// Grantable bulk-data regions per segment.
inline constexpr std::uint32_t kMaxShmRegions = 32;
/// Entries in the server's shm dispatch table.
inline constexpr std::uint32_t kMaxShmEps = 64;

/// Offset sentinel: 0 is the header itself, so no linked structure ever
/// legitimately sits there.
inline constexpr std::uint64_t kNullOff = 0;

// -- wait blocks ------------------------------------------------------------

/// The cross-process completion block: rt::XcallWait with the pointers
/// replaced by offsets and the reply RegSet always inline (there is no
/// "caller's stack RegSet" to point at across address spaces). The done
/// word reuses rt::XcallWait's bit constants and CAS protocol; see the
/// file comment for why kParkedBit never appears here.
struct ShmWait {
  static constexpr std::uint32_t kDoneBit = rt::XcallWait::kDoneBit;
  static constexpr std::uint32_t kAbandonedBit = rt::XcallWait::kAbandonedBit;

  std::atomic<std::uint32_t> done{0};
  std::uint32_t pad = 0;
  std::uint64_t next_off = kNullOff;  // lane free-list link (peer-private)
  ppc::RegSet reply;                  // server writes the reply words here

  /// Server side: publish the result. No notify — shm waiters never park.
  void complete(Status rc) {
    done.store(kDoneBit | static_cast<std::uint32_t>(rc),
               std::memory_order_release);
  }

  bool abandoned() const {
    return (done.load(std::memory_order_acquire) & kAbandonedBit) != 0;
  }
  void ack_abandoned() {
    done.store(kDoneBit | kAbandonedBit |
                   static_cast<std::uint32_t>(Status::kCallAborted),
               std::memory_order_release);
  }

  bool completed() const {
    return (done.load(std::memory_order_acquire) & kDoneBit) != 0;
  }
  Status result() const {
    return static_cast<Status>(done.load(std::memory_order_acquire) & 0xFF);
  }
  void reset() { done.store(0, std::memory_order_relaxed); }
};
static_assert(std::is_trivially_destructible_v<ShmWait>);

// -- ring cells -------------------------------------------------------------

/// One lane cell: the 64-byte XcallCell with the wait pointer replaced by
/// a segment offset. `ep` uses the in-process packing (rt::cell_pack_ep —
/// entry point low, cancel-token index at kCellTokenShift, kCellBulkBit);
/// `aux` is the spare 8-byte lane (op word for future frame-style calls).
struct alignas(kHostCacheLine) ShmCell {
  std::atomic<std::uint64_t> seq{0};
  std::uint32_t ep = 0;
  std::uint32_t caller = 0;    // the posting peer's program token (§4.1)
  std::uint64_t wait_off = kNullOff;
  std::uint64_t aux = 0;
  ppc::RegSet regs;
};
static_assert(sizeof(ShmCell) == 64, "one cell, one cache line");
static_assert(std::is_trivially_destructible_v<ShmCell>);

// -- lanes ------------------------------------------------------------------

/// One peer's call lane: a bounded ring of ShmCells plus that peer's wait
/// pool. Producer cursor and consumer cursor sit on their own lines so
/// the poster and the drainer never bounce a line that isn't a cell.
struct LaneHeader {
  alignas(kHostCacheLine) std::atomic<std::uint64_t> enqueue_pos{0};
  alignas(kHostCacheLine) std::atomic<std::uint64_t> dequeue_pos{0};
  alignas(kHostCacheLine) std::uint64_t ring_off = kNullOff;   // ShmCell[kShmRingCapacity]
  std::uint64_t waits_off = kNullOff;  // ShmWait[kShmWaitsPerLane]
  /// Head of the lane's wait free list (offset; kNullOff = empty). Owned
  /// by the attached peer while it lives; rebuilt wholesale by the
  /// server's reaper after the peer dies.
  std::uint64_t wait_free_off = kNullOff;
};
static_assert(std::is_trivially_destructible_v<LaneHeader>);

// -- peers ------------------------------------------------------------------

enum PeerState : std::uint32_t {
  kPeerFree = 0,
  kPeerAttaching = 1,  // CAS-claimed, lane not yet ready for draining
  kPeerAttached = 2,
  kPeerDead = 3,       // reaper is tearing the lane down
};

struct PeerSlot {
  std::atomic<std::uint32_t> state{kPeerFree};
  std::atomic<std::uint32_t> pid{0};
  /// CLOCK_MONOTONIC nanoseconds of the peer's last sign of life. The
  /// peer stores on attach, after every call, and from heartbeat(); the
  /// server's reaper compares against its own clock (same host, same
  /// clock — that is the point of shared memory).
  std::atomic<std::uint64_t> heartbeat_ns{0};
  /// Bumped every reap/detach, so a stale peer handle can be recognised.
  std::atomic<std::uint32_t> generation{0};
  std::uint32_t program = 0;  // the peer's program token, set at attach
};
static_assert(std::is_trivially_destructible_v<PeerSlot>);

// -- granted bulk-data regions ----------------------------------------------

enum RegionState : std::uint32_t {
  kRegionFree = 0,
  kRegionGranting = 1,  // CAS-claimed, backing segment not yet sized
  kRegionGranted = 2,
};

inline constexpr std::uint32_t kRegionRead = 1;   // server may read
inline constexpr std::uint32_t kRegionWrite = 2;  // server may write

/// One granted region: a SEPARATE shm segment (named by region_name() in
/// segment.h) the granting peer created and the server maps on first use.
/// The slot carries everything the server needs to map and validate it;
/// the grant's byte range and rights bound every descriptor resolution,
/// which is the paper's grant check (§4.2) verbatim.
struct RegionSlot {
  std::atomic<std::uint32_t> state{kRegionFree};
  std::atomic<std::uint32_t> generation{0};  // bumped on revoke/reap
  std::uint32_t owner_peer = 0;              // peer index that granted it
  std::uint32_t rights = 0;                  // kRegionRead | kRegionWrite
  std::uint64_t bytes = 0;
};
static_assert(std::is_trivially_destructible_v<RegionSlot>);

// -- the header -------------------------------------------------------------

/// Page 0 of the segment. Offsets are bytes from the segment base. The
/// magic word is written LAST (release) by the creator and checked FIRST
/// (acquire) by openers, so a fully published header is the only thing an
/// opener can ever act on.
struct ShmHeader {
  std::atomic<std::uint64_t> magic{0};
  std::uint32_t version = 0;
  std::uint32_t max_peers = 0;
  std::uint32_t ring_capacity = 0;
  std::uint32_t waits_per_lane = 0;
  std::uint32_t max_regions = 0;
  std::atomic<std::uint32_t> server_pid{0};
  std::uint64_t total_bytes = 0;
  /// Cooperative shutdown flag: the server raises it; peers and helper
  /// processes poll it. (Uncooperative death is what heartbeats catch.)
  std::atomic<std::uint32_t> stop{0};
  std::uint32_t pad0 = 0;

  std::uint64_t peers_off = kNullOff;    // PeerSlot[max_peers]
  std::uint64_t lanes_off = kNullOff;    // LaneHeader[max_peers]
  std::uint64_t regions_off = kNullOff;  // RegionSlot[max_regions]
  /// The segment-resident cancel pool: flags_off names
  /// atomic<u32>[rt::kMaxCancelTokens] and cursor_off the shared token
  /// allocator — the storage rt::Runtime::adopt_cancel_pool() points a
  /// runtime at, which is what makes cancel(token) cross the process
  /// boundary (satellite of the transport: the server's drain-side sweep
  /// reads the same flag the remote canceller raised).
  std::uint64_t cancel_flags_off = kNullOff;
  std::uint64_t cancel_cursor_off = kNullOff;

  /// Pad to two cache lines so the arena laying out the rest of the
  /// segment starts line-aligned (transport.cpp asserts this).
  std::uint8_t reserved[40] = {};
};
static_assert(sizeof(ShmHeader) % kHostCacheLine == 0);
static_assert(std::is_trivially_destructible_v<ShmHeader>);

}  // namespace hppc::shm
