// POSIX shared-memory segments with offset-addressed access.
//
// A Segment is one shm_open/mmap mapping: the transport's main segment
// (laid out per shm/layout.h) and every granted bulk-data region are both
// Segments. Creation is create-exclusive — a stale name from a crashed
// earlier run is unlinked and retried once — and openers size the mapping
// from fstat, so the two sides never have to agree on a size out of band.
//
// Offsets, not pointers: the same segment maps at different bases in
// different processes, so every cross-process link in it is a byte offset
// from the base. `at<T>(off)` / `offset_of(p)` are the only two
// conversions, both trivial, both process-local.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/assert.h"

namespace hppc::shm {

class Segment {
 public:
  Segment() = default;

  /// Create a new segment of exactly `bytes` (O_CREAT|O_EXCL; one retry
  /// after unlinking a stale leftover of the same name). The mapping is
  /// zero-filled by the kernel. Throws std::runtime_error on failure.
  static Segment create(const std::string& name, std::size_t bytes);

  /// Map an existing segment, sized by fstat. Throws on failure.
  static Segment open(const std::string& name);

  /// Like open(), but returns an unmapped Segment instead of throwing
  /// when the name does not exist (grant races, reap races).
  static Segment try_open(const std::string& name);

  ~Segment();
  Segment(Segment&& other) noexcept { *this = static_cast<Segment&&>(other); }
  Segment& operator=(Segment&& other) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  bool mapped() const { return base_ != nullptr; }
  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

  /// Remove the name from the filesystem namespace (existing mappings
  /// live on). Idempotent; the creator calls this at teardown.
  void unlink();

  template <class T>
  T* at(std::uint64_t off) const {
    HPPC_ASSERT(off != 0 && off + sizeof(T) <= size_);
    return reinterpret_cast<T*>(base_ + off);
  }

  std::uint64_t offset_of(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    HPPC_ASSERT(b >= base_ && b < base_ + size_);
    return static_cast<std::uint64_t>(b - base_);
  }

 private:
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
};

/// The backing-segment name for granted region `idx`, generation `gen`,
/// of the transport segment `base`: the generation in the name is what
/// keeps a revoked-and-reused region id from resolving to the old bytes.
std::string region_name(const std::string& base, std::uint32_t idx,
                        std::uint32_t gen);

}  // namespace hppc::shm
