// The cross-process xcall transport: warm null PPCs between PROCESSES
// with zero locks and zero allocations.
//
// One Server process creates the segment (shm/layout.h) and polls it; up
// to kMaxShmPeers Peer processes attach, each claiming a private lane —
// a Vyukov cell ring plus a wait-block pool, all segment-resident, all
// offset-linked. A warm call is:
//
//   peer:   pop a wait block off the lane free list (plain loads/stores,
//           peer-private), reset it, claim+publish one ring cell (one CAS
//           on the lane's enqueue cursor, one release store of the cell
//           seq), then spin-then-sched_yield on the wait's done word;
//   server: drain the lane (acquire load of the cell seq, retire with a
//           release store), dispatch through a flat function-pointer
//           table — the frame-ABI shape, no std::function, no worker/CD
//           machinery — write the reply RegSet into the wait block and
//           release-store the done word;
//   peer:   observe done (acquire), copy the reply, push the wait back.
//
// No step locks, no step allocates, and the only cross-process traffic is
// the cell line, the wait line, and the two cursors. Parking is
// impossible across address spaces (futexes on segment words would need
// FUTEX_WAIT on shared mappings; std::atomic::wait is private-futex), so
// waiters spin-then-yield — on the single-CPU CI host every RTT is
// scheduler-bound anyway, which the bench quantifies honestly.
//
// Liveness (the hard-kill extension): each peer's PeerSlot carries a
// heartbeat word it refreshes on attach, per call, and from heartbeat().
// The server's reap_dead_peers() treats a stale heartbeat as suspicion
// (booked as heartbeats_missed) and kill(pid, 0) == ESRCH as confirmed
// death: the lane is drained administratively — every published in-flight
// cell's wait block completes with kCallAborted, nothing executes — the
// wait free list is rebuilt wholesale (pool conservation holds by
// construction: the reaper relinks all kShmWaitsPerLane blocks), the ring
// is re-armed, the peer's grants are revoked and unmapped, and the slot
// returns to kPeerFree (booked as peer_deaths). That is the paper's
// hard-kill reclamation (§4.5.2) extended to process death.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/counters.h"
#include "ppc/regs.h"
#include "rt/xcall.h"
#include "shm/copy.h"
#include "shm/layout.h"
#include "shm/segment.h"

namespace hppc::rt {
class Runtime;
}

namespace hppc::shm {

class Server;

/// What an shm handler sees. `copy` is the grant-checked bulk engine —
/// handlers move big payloads through it (or through rt::bulk_gather with
/// CopyResolver{copy}) instead of the ring.
struct ShmCtx {
  Server* server = nullptr;
  CopyServer* copy = nullptr;
  std::uint32_t peer = 0;      // lane index of the calling peer
  ProgramId caller = 0;        // the peer's program token (§4.1)
};

/// A raw function pointer, the frame-ABI handler shape: `self` is the
/// pointer registered at bind time, regs is in/out, the returned Status
/// lands in the caller's done word.
using ShmFn = Status (*)(void* self, ShmCtx& ctx, ppc::RegSet& regs);

/// Entry-point index into the server's dispatch table (low 16 bits of the
/// cell ep lane, same packing as in-process cells).
using ShmEp = std::uint32_t;

struct ServerOptions {
  std::size_t segment_bytes = 1u << 20;  // 1 MiB covers the default layout
  /// Counter sink; nullptr = the server's own private block (counters()).
  obs::SlotCounters* counters = nullptr;
};

class Server {
 public:
  /// Create and lay out the transport segment `name`. The layout is
  /// placed by a segment-backed mem::Arena; all offsets land in the
  /// header, and the magic word is release-published last.
  Server(const std::string& name, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a handler; returns its entry point (dense from 1 — 0 is
  /// reserved as "unbound" so a zeroed cell can never dispatch).
  ShmEp bind(ShmFn fn, void* self);

  /// Drain every attached peer's lane once. Single consumer: only the
  /// serving process's polling thread may call this (and reap_dead_peers
  /// below — same thread). Returns cells executed or refused.
  std::size_t poll();

  /// Serve until stop() (local or cross-process via request_stop) is
  /// raised: poll, reap every `reap_every` polls, sched_yield when idle.
  std::size_t serve(std::uint64_t dead_after_ns,
                    std::uint32_t reap_every = 1024);

  /// Sweep the peer table for death: a peer whose heartbeat is older than
  /// `dead_after_ns` books heartbeats_missed; if its pid is gone (ESRCH)
  /// — or the heartbeat is 8x past the threshold, covering pid reuse —
  /// the lane is reaped as described in the file comment. Returns peers
  /// reaped. Same-thread as poll().
  std::size_t reap_dead_peers(std::uint64_t dead_after_ns);

  /// Raise the segment's cooperative stop flag (peers poll it too).
  void request_stop();
  bool stop_requested() const;

  /// Adopt the segment's cancel pool into `rt` (satellite 2): after this,
  /// rt.cancel_token_create()/cancel() operate on segment-resident flags,
  /// so a token minted in EITHER process aborts calls in both — this
  /// server's drain checks the same flags rt's drain-side sweep reads.
  void adopt_cancel_pool_into(rt::Runtime& rt);

  /// The grant-checked bulk engine (handlers reach it via ShmCtx::copy).
  CopyServer& copy_server() { return copy_; }

  Segment& segment() { return seg_; }
  const obs::SlotCounters& counters() const { return own_counters_; }
  std::uint32_t attached_peers() const;

 private:
  friend class Peer;

  ShmHeader* header() const {
    return reinterpret_cast<ShmHeader*>(seg_.base());
  }
  std::size_t drain_lane(std::uint32_t peer_idx);
  void reap_lane(std::uint32_t peer_idx);

  struct ShmService {
    std::atomic<ShmFn> fn{nullptr};
    void* self = nullptr;
  };

  Segment seg_;
  CopyServer copy_;
  obs::SlotCounters own_counters_;
  obs::SlotCounters* counters_;  // == opts.counters or &own_counters_
  std::array<ShmService, kMaxShmEps> services_{};
  std::uint32_t next_ep_ = 1;
};

class Peer {
 public:
  /// Map the transport segment `name` (created by a Server, possibly in
  /// another process) and claim a lane. `program` is this peer's §4.1
  /// program token, carried in every cell.
  Peer(const std::string& name, ProgramId program, ServerOptions opts = {});
  ~Peer();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Synchronous cross-process PPC: post one cell on this peer's lane and
  /// spin-then-yield on the completion word. Warm path: zero locks, zero
  /// allocations (one wait-block pop, one cell CAS+publish, one spin).
  /// `token` (from cancel_token_create) rides the cell ep lane; 0 = not
  /// cancellable. kOverloaded when the lane ring is full.
  Status call(ShmEp ep, ppc::RegSet& regs, std::uint32_t token = 0);

  /// Cross-process cancellation over the segment-resident pool: tokens
  /// minted here are honoured by the server's drain (and by any runtime
  /// that adopted the pool). One fetch_add / one flag store.
  std::uint32_t cancel_token_create();
  void cancel(std::uint32_t token);

  /// Grant the server read/write rights over a fresh region of `bytes`
  /// (a new shm segment this peer creates and maps). Returns the region
  /// id, or kMaxShmRegions ( = failure: table full). The mapped bytes are
  /// reachable at region_base().
  std::uint32_t grant_region(std::size_t bytes,
                             std::uint32_t rights = kRegionRead |
                                                    kRegionWrite);
  /// Revoke a grant: bumps the generation (the server's cached mapping
  /// goes stale), frees the slot, unmaps and unlinks the backing segment.
  void revoke_region(std::uint32_t region);
  std::byte* region_base(std::uint32_t region);

  /// Refresh this peer's liveness word (also refreshed by every call).
  void heartbeat();

  /// Observe / raise the segment's cooperative stop flag.
  bool stop_requested() const;
  void request_stop();

  /// Adopt the segment's cancel pool into a runtime embedded in THIS
  /// process (mirror of Server::adopt_cancel_pool_into).
  void adopt_cancel_pool_into(rt::Runtime& rt);

  std::uint32_t peer_index() const { return idx_; }
  const obs::SlotCounters& counters() const { return own_counters_; }
  Segment& segment() { return seg_; }

 private:
  ShmHeader* header() const {
    return reinterpret_cast<ShmHeader*>(seg_.base());
  }
  ShmWait* acquire_wait();
  void release_wait(ShmWait* w);

  Segment seg_;
  obs::SlotCounters own_counters_;
  obs::SlotCounters* counters_;
  ProgramId program_ = 0;
  std::uint32_t idx_ = 0;       // claimed PeerSlot / lane index
  std::uint32_t generation_ = 0;
  LaneHeader* lane_ = nullptr;  // process-local pointers resolved once
  ShmCell* ring_ = nullptr;
  ShmWait* waits_ = nullptr;
  std::array<Segment, kMaxShmRegions> regions_{};  // this peer's grants
};

/// Segment-resident cancel-pool accessors shared by both endpoints (and
/// by tests): raise/read flag `token & rt::kCellTokenLaneMask`.
std::uint32_t shm_cancel_token_create(Segment& seg);
void shm_cancel(Segment& seg, std::uint32_t token);
bool shm_cancel_requested(Segment& seg, std::uint32_t token);

}  // namespace hppc::shm
