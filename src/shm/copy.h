// The cross-process CopyServer: bulk data over granted regions (§4.2).
//
// "A caller may give permission to the server to read and write selected
//  portions of its address space. The actual transfer of data is done by
//  a separate CopyTo or CopyFrom request."
//
// Host shape: a peer grants a region — a separate shm segment it created
// and registered in the transport segment's RegionSlot table — and calls
// carry rt::BulkSeg{region, offset, len} descriptors in the ring cell
// (four payload words, rt::bulk_seg_pack). The CopyServer here is the
// server process's view of the grant table: it maps a region's backing
// segment lazily on first resolution, validates every descriptor against
// the grant's byte range, rights and generation, and moves payloads with
// one memcpy directly between the granted region and the server's memory
// — O(1) cell traffic per call no matter the payload size, and the bytes
// themselves never ride the ring.
//
// It is also a rt::bulk_gather/bulk_scatter resolver (CopyResolver), so
// the frame ABI's in-process spill path and this cross-process path are
// the same copy loops over the same descriptor layout — the satellite
// unification this subsystem exists to prove.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "obs/counters.h"
#include "rt/bulk_desc.h"
#include "shm/layout.h"
#include "shm/segment.h"

namespace hppc::shm {

class CopyServer {
 public:
  /// `seg` is the transport segment whose header names the region table.
  /// `counters` is where bulk_copy_bytes / shm_segments_mapped are booked
  /// (single-writer: the server's polling thread); nullptr books nowhere.
  CopyServer(Segment& seg, obs::SlotCounters* counters);

  CopyServer(const CopyServer&) = delete;
  CopyServer& operator=(const CopyServer&) = delete;

  /// Resolve one granted range to a server-local pointer, or nullptr when
  /// the descriptor fails the grant check: unknown/revoked region, stale
  /// generation, range outside the grant, or rights not covering the
  /// access. Maps the region's backing segment on first use.
  void* resolve(std::uint32_t region, std::uint64_t off, std::uint32_t len,
                bool writable);

  /// CopyFrom: granted region -> server memory. One memcpy; books
  /// bulk_copy_bytes. kBadRegion when the grant check refuses.
  Status copy_from(std::uint32_t region, std::uint64_t off, void* dst,
                   std::size_t len);

  /// CopyTo: server memory -> granted region. Requires a write grant.
  Status copy_to(std::uint32_t region, std::uint64_t off, const void* src,
                 std::size_t len);

  /// Drop a cached mapping (revoke, peer reap). The next resolve re-reads
  /// the slot — and refuses if the grant is gone.
  void invalidate(std::uint32_t region);

  /// Drop every cached mapping owned by `peer` (the reaper's path).
  void invalidate_peer(std::uint32_t peer);

 private:
  struct Mapping {
    Segment seg;                     // unmapped when not resolved yet
    std::uint32_t generation = 0;    // grant generation the mapping is for
    std::uint32_t owner_peer = 0;
    bool live = false;
  };

  RegionSlot* slot(std::uint32_t region);
  void book(obs::Counter c, std::uint64_t n);

  Segment& seg_;
  obs::SlotCounters* counters_;
  std::array<Mapping, kMaxShmRegions> map_{};
};

/// rt::bulk_gather / bulk_scatter resolver for the server side: local
/// segments resolve as plain VAs (the in-process rule), granted segments
/// through the CopyServer's grant check. Handlers use this to run the
/// SAME gather/scatter the frame lane runs.
struct CopyResolver {
  CopyServer* cs;
  void* operator()(const rt::BulkSeg& s, bool writable) const {
    if (s.region == rt::kBulkRegionLocal) {
      return rt::LocalBulkResolver{}(s, writable);
    }
    return cs->resolve(s.region, s.addr, s.len, writable);
  }
};

}  // namespace hppc::shm
