#include "shm/copy.h"

#include <cstring>

namespace hppc::shm {

CopyServer::CopyServer(Segment& seg, obs::SlotCounters* counters)
    : seg_(seg), counters_(counters) {}

void CopyServer::book(obs::Counter c, std::uint64_t n) {
  if (counters_ != nullptr) counters_->inc(c, n);
}

RegionSlot* CopyServer::slot(std::uint32_t region) {
  const auto* hdr = reinterpret_cast<const ShmHeader*>(seg_.base());
  if (region >= hdr->max_regions) return nullptr;
  return seg_.at<RegionSlot>(hdr->regions_off) + region;
}

void* CopyServer::resolve(std::uint32_t region, std::uint64_t off,
                          std::uint32_t len, bool writable) {
  RegionSlot* rs = slot(region);
  if (rs == nullptr) return nullptr;
  if (rs->state.load(std::memory_order_acquire) != kRegionGranted) {
    return nullptr;
  }
  const std::uint32_t gen = rs->generation.load(std::memory_order_acquire);
  Mapping& m = map_[region];
  if (!m.live || m.generation != gen) {
    // First touch (or the grant was re-issued): map the backing segment.
    // try_open covers the revoke race — a grant that vanished between the
    // state check and here just fails the resolution.
    m.seg = Segment::try_open(region_name(seg_.name(), region, gen));
    m.live = m.seg.mapped();
    m.generation = gen;
    m.owner_peer = rs->owner_peer;
    if (!m.live) return nullptr;
    book(obs::Counter::kShmSegmentsMapped, 1);
  }
  // The grant check proper (§4.2): range inside the granted bytes, rights
  // covering the access. `bytes` is re-read from the slot so a shrunken
  // re-grant is honoured even with a cached mapping.
  const std::uint32_t need = writable ? kRegionWrite : kRegionRead;
  if ((rs->rights & need) == 0) return nullptr;
  if (off > rs->bytes || len > rs->bytes - off) return nullptr;
  if (off + len > m.seg.size()) return nullptr;
  return m.seg.base() + off;
}

Status CopyServer::copy_from(std::uint32_t region, std::uint64_t off,
                             void* dst, std::size_t len) {
  const void* src =
      resolve(region, off, static_cast<std::uint32_t>(len), false);
  if (src == nullptr) return Status::kBadRegion;
  std::memcpy(dst, src, len);
  book(obs::Counter::kBulkCopyBytes, len);
  return Status::kOk;
}

Status CopyServer::copy_to(std::uint32_t region, std::uint64_t off,
                           const void* src, std::size_t len) {
  void* dst = resolve(region, off, static_cast<std::uint32_t>(len), true);
  if (dst == nullptr) return Status::kBadRegion;
  std::memcpy(dst, src, len);
  book(obs::Counter::kBulkCopyBytes, len);
  return Status::kOk;
}

void CopyServer::invalidate(std::uint32_t region) {
  if (region >= kMaxShmRegions) return;
  Mapping& m = map_[region];
  m.seg = Segment{};
  m.live = false;
  m.generation = 0;
}

void CopyServer::invalidate_peer(std::uint32_t peer) {
  for (std::uint32_t r = 0; r < kMaxShmRegions; ++r) {
    if (map_[r].live && map_[r].owner_peer == peer) invalidate(r);
  }
}

}  // namespace hppc::shm
