#include "shm/segment.h"

#include <stdexcept>

#ifdef __linux__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace hppc::shm {

#ifdef __linux__

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& name) {
  throw std::runtime_error("shm::Segment: " + what + " failed for '" + name +
                           "' (errno " + std::to_string(errno) + ")");
}

std::byte* map_fd(int fd, std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  return p == MAP_FAILED ? nullptr : static_cast<std::byte*>(p);
}

}  // namespace

Segment Segment::create(const std::string& name, std::size_t bytes) {
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // A previous run died without unlinking. Its creator is gone (names
    // are per-boot and callers pick unique ones); reclaim the name.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) fail("shm_open(create)", name);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    fail("ftruncate", name);
  }
  std::byte* base = map_fd(fd, bytes);
  ::close(fd);  // the mapping keeps the object alive
  if (base == nullptr) {
    ::shm_unlink(name.c_str());
    fail("mmap", name);
  }
  Segment s;
  s.base_ = base;
  s.size_ = bytes;
  s.name_ = name;
  return s;
}

Segment Segment::open(const std::string& name) {
  Segment s = try_open(name);
  if (!s.mapped()) fail("shm_open", name);
  return s;
}

Segment Segment::try_open(const std::string& name) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return Segment{};
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Segment{};
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  std::byte* base = map_fd(fd, bytes);
  ::close(fd);
  if (base == nullptr) return Segment{};
  Segment s;
  s.base_ = base;
  s.size_ = bytes;
  s.name_ = name;
  return s;
}

Segment::~Segment() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = other.base_;
    size_ = other.size_;
    name_ = std::move(other.name_);
    other.base_ = nullptr;
    other.size_ = 0;
    other.name_.clear();
  }
  return *this;
}

void Segment::unlink() {
  if (!name_.empty()) ::shm_unlink(name_.c_str());
}

#else  // !__linux__ — the transport is POSIX-shm only; stubs keep the
       // library linkable on other hosts (tests gate on __linux__).

Segment Segment::create(const std::string& name, std::size_t) {
  throw std::runtime_error("shm::Segment unsupported on this platform: " +
                           name);
}
Segment Segment::open(const std::string& name) {
  throw std::runtime_error("shm::Segment unsupported on this platform: " +
                           name);
}
Segment Segment::try_open(const std::string&) { return Segment{}; }
Segment::~Segment() = default;
Segment& Segment::operator=(Segment&& other) noexcept {
  base_ = other.base_;
  size_ = other.size_;
  name_ = std::move(other.name_);
  other.base_ = nullptr;
  other.size_ = 0;
  return *this;
}
void Segment::unlink() {}

#endif  // __linux__

std::string region_name(const std::string& base, std::uint32_t idx,
                        std::uint32_t gen) {
  return base + ".r" + std::to_string(idx) + "g" + std::to_string(gen);
}

}  // namespace hppc::shm
