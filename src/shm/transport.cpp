#include "shm/transport.h"

#include <cstring>
#include <stdexcept>

#ifdef __linux__
#include <csignal>
#include <cerrno>
#include <ctime>
#include <sched.h>
#include <unistd.h>
#else
#include <chrono>
#include <thread>
#endif

#include "common/cpu_relax.h"
#include "mem/arena.h"
#include "rt/runtime.h"

namespace hppc::shm {

namespace {

std::uint64_t now_ns() {
#ifdef __linux__
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

void yield_thread() {
#ifdef __linux__
  ::sched_yield();
#else
  std::this_thread::yield();
#endif
}

std::uint32_t self_pid() {
#ifdef __linux__
  return static_cast<std::uint32_t>(::getpid());
#else
  return 1;
#endif
}

bool pid_gone(std::uint32_t pid) {
#ifdef __linux__
  return pid != 0 && ::kill(static_cast<pid_t>(pid), 0) != 0 &&
         errno == ESRCH;
#else
  (void)pid;
  return false;
#endif
}

std::atomic<std::uint32_t>* cancel_flags_of(Segment& seg) {
  const auto* hdr = reinterpret_cast<const ShmHeader*>(seg.base());
  return seg.at<std::atomic<std::uint32_t>>(hdr->cancel_flags_off);
}

std::atomic<std::uint32_t>* cancel_cursor_of(Segment& seg) {
  const auto* hdr = reinterpret_cast<const ShmHeader*>(seg.base());
  return seg.at<std::atomic<std::uint32_t>>(hdr->cancel_cursor_off);
}

}  // namespace

// -- segment-resident cancel pool -------------------------------------------

std::uint32_t shm_cancel_token_create(Segment& seg) {
  // Same contract as Runtime::cancel_token_create: never hand out a token
  // whose pool index is 0 (0 in the cell lane means "not cancellable"),
  // and clear the flag the new token maps to.
  std::atomic<std::uint32_t>* cursor = cancel_cursor_of(seg);
  std::uint32_t t;
  do {
    t = cursor->fetch_add(1, std::memory_order_relaxed);
  } while ((t & rt::kCellTokenLaneMask) == 0);
  cancel_flags_of(seg)[t & rt::kCellTokenLaneMask].store(
      0, std::memory_order_relaxed);
  return t;
}

void shm_cancel(Segment& seg, std::uint32_t token) {
  if (token == 0) return;
  cancel_flags_of(seg)[token & rt::kCellTokenLaneMask].store(
      1, std::memory_order_release);
}

bool shm_cancel_requested(Segment& seg, std::uint32_t token) {
  return token != 0 &&
         cancel_flags_of(seg)[token & rt::kCellTokenLaneMask].load(
             std::memory_order_acquire) != 0;
}

// -- Server -----------------------------------------------------------------

Server::Server(const std::string& name, ServerOptions opts)
    : seg_(Segment::create(name, opts.segment_bytes)),
      copy_(seg_, opts.counters != nullptr ? opts.counters : &own_counters_),
      counters_(opts.counters != nullptr ? opts.counters : &own_counters_) {
  // Lay the segment out through a segment-backed arena: the header is
  // page 0; everything else is bump-allocated behind it and linked into
  // the header by offset. The arena is a throwaway — its chunk is the
  // segment itself, which outlives it.
  auto* hdr = ::new (seg_.base()) ShmHeader{};
  mem::Arena arena(seg_.base() + sizeof(ShmHeader),
                   seg_.size() - sizeof(ShmHeader));
  // allocate() aligns relative to its own base; the segment base is
  // page-aligned, so as long as sizeof(ShmHeader) keeps the arena base
  // 64-byte aligned the cache-line intents below hold. Assert it.
  static_assert(sizeof(ShmHeader) % 64 == 0,
                "header must keep the arena base cache-line aligned");

  auto* peers = arena.create_array<PeerSlot>(0, kMaxShmPeers);
  auto* lanes = arena.create_array<LaneHeader>(0, kMaxShmPeers);
  auto* regions = arena.create_array<RegionSlot>(0, kMaxShmRegions);
  auto* flags =
      arena.create_array<std::atomic<std::uint32_t>>(0, rt::kMaxCancelTokens);
  auto* cursor = arena.create<std::atomic<std::uint32_t>>(0, 1u);

  for (std::uint32_t p = 0; p < kMaxShmPeers; ++p) {
    auto* ring = arena.create_array<ShmCell>(0, kShmRingCapacity);
    for (std::uint64_t i = 0; i < kShmRingCapacity; ++i) {
      ring[i].seq.store(i, std::memory_order_relaxed);
    }
    auto* waits = arena.create_array<ShmWait>(0, kShmWaitsPerLane);
    for (std::uint32_t i = 0; i + 1 < kShmWaitsPerLane; ++i) {
      waits[i].next_off = seg_.offset_of(&waits[i + 1]);
    }
    lanes[p].ring_off = seg_.offset_of(ring);
    lanes[p].waits_off = seg_.offset_of(waits);
    lanes[p].wait_free_off = seg_.offset_of(&waits[0]);
  }

  hdr->version = kShmVersion;
  hdr->max_peers = kMaxShmPeers;
  hdr->ring_capacity = kShmRingCapacity;
  hdr->waits_per_lane = kShmWaitsPerLane;
  hdr->max_regions = kMaxShmRegions;
  hdr->server_pid.store(self_pid(), std::memory_order_relaxed);
  hdr->total_bytes = seg_.size();
  hdr->peers_off = seg_.offset_of(peers);
  hdr->lanes_off = seg_.offset_of(lanes);
  hdr->regions_off = seg_.offset_of(regions);
  hdr->cancel_flags_off = seg_.offset_of(flags);
  hdr->cancel_cursor_off = seg_.offset_of(cursor);

  // Publish: openers acquire-load the magic before trusting any offset.
  hdr->magic.store(kShmMagic, std::memory_order_release);

  counters_->inc(obs::Counter::kShmSegmentsMapped);
}

Server::~Server() {
  if (seg_.mapped()) {
    header()->stop.store(1, std::memory_order_release);
    seg_.unlink();
  }
}

ShmEp Server::bind(ShmFn fn, void* self) {
  if (next_ep_ >= kMaxShmEps) return 0;
  const ShmEp ep = next_ep_++;
  services_[ep].self = self;
  services_[ep].fn.store(fn, std::memory_order_release);
  return ep;
}

std::size_t Server::poll() {
  const ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  std::size_t n = 0;
  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    if (peers[p].state.load(std::memory_order_acquire) == kPeerAttached) {
      n += drain_lane(p);
    }
  }
  return n;
}

std::size_t Server::drain_lane(std::uint32_t peer_idx) {
  const ShmHeader* hdr = header();
  auto* lane = seg_.at<LaneHeader>(hdr->lanes_off) + peer_idx;
  auto* ring = seg_.at<ShmCell>(lane->ring_off);
  auto* flags = cancel_flags_of(seg_);
  constexpr std::uint64_t kMask = kShmRingCapacity - 1;

  std::size_t n = 0;
  std::uint64_t pos = lane->dequeue_pos.load(std::memory_order_relaxed);
  for (;;) {
    ShmCell& cell = ring[pos & kMask];
    if (cell.seq.load(std::memory_order_acquire) != pos + 1) break;

    ShmWait* wait =
        cell.wait_off != kNullOff ? seg_.at<ShmWait>(cell.wait_off) : nullptr;
    const std::uint32_t wire = cell.ep;
    const ShmEp ep = rt::cell_ep(wire);
    const std::uint32_t token = rt::cell_token_idx(wire);

    if (wait != nullptr && wait->abandoned()) {
      wait->ack_abandoned();
    } else if (token != 0 &&
               flags[token].load(std::memory_order_acquire) != 0) {
      // The drain-side cancel sweep — the same one-load check the
      // in-process drain performs, reading a flag ANY process may have
      // raised (that is satellite 2's acceptance test).
      if (wait != nullptr) wait->complete(Status::kCallAborted);
    } else {
      ShmFn fn = ep < kMaxShmEps
                     ? services_[ep].fn.load(std::memory_order_acquire)
                     : nullptr;
      Status rc = Status::kNoSuchEntryPoint;
      if (fn != nullptr) {
        ShmCtx ctx{this, &copy_, peer_idx, cell.caller};
        if (wait != nullptr) {
          // Execute straight into the wait block's reply RegSet: the
          // cell's payload is copied there once, the handler mutates it
          // in place, and the done-word release publishes it.
          wait->reply = cell.regs;
          rc = fn(services_[ep].self, ctx, wait->reply);
        } else {
          ppc::RegSet scratch = cell.regs;
          rc = fn(services_[ep].self, ctx, scratch);
        }
      }
      if (wait != nullptr) wait->complete(rc);
    }

    cell.seq.store(pos + kShmRingCapacity, std::memory_order_release);
    ++pos;
    ++n;
    counters_->inc(obs::Counter::kXcallCellsDrained);
  }
  lane->dequeue_pos.store(pos, std::memory_order_relaxed);
  if (n != 0) counters_->inc(obs::Counter::kXcallBatches);
  return n;
}

std::size_t Server::serve(std::uint64_t dead_after_ns,
                          std::uint32_t reap_every) {
  std::size_t total = 0;
  std::uint32_t since_reap = 0;
  while (!stop_requested()) {
    const std::size_t n = poll();
    total += n;
    if (++since_reap >= reap_every) {
      since_reap = 0;
      reap_dead_peers(dead_after_ns);
    }
    if (n == 0) yield_thread();
  }
  return total;
}

std::size_t Server::reap_dead_peers(std::uint64_t dead_after_ns) {
  const ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  const std::uint64_t now = now_ns();
  std::size_t reaped = 0;
  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    PeerSlot& slot = peers[p];
    if (slot.state.load(std::memory_order_acquire) != kPeerAttached) continue;
    const std::uint64_t hb = slot.heartbeat_ns.load(std::memory_order_acquire);
    if (now < hb + dead_after_ns) continue;
    counters_->inc(obs::Counter::kHeartbeatsMissed);
    // Staleness is suspicion; a vanished pid is confirmation. The 8x
    // backstop covers pid reuse: a recycled pid passes the kill(0) probe
    // forever, but a peer silent for 8 thresholds is dead either way.
    const std::uint32_t pid = slot.pid.load(std::memory_order_relaxed);
    if (pid_gone(pid) || now >= hb + 8 * dead_after_ns) {
      reap_lane(p);
      ++reaped;
    }
  }
  return reaped;
}

void Server::reap_lane(std::uint32_t peer_idx) {
  const ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  auto* lane = seg_.at<LaneHeader>(hdr->lanes_off) + peer_idx;
  auto* ring = seg_.at<ShmCell>(lane->ring_off);
  auto* waits = seg_.at<ShmWait>(lane->waits_off);
  auto* regions = seg_.at<RegionSlot>(hdr->regions_off);
  PeerSlot& slot = peers[peer_idx];
  constexpr std::uint64_t kMask = kShmRingCapacity - 1;

  slot.state.store(kPeerDead, std::memory_order_release);

  // Administrative drain: every PUBLISHED in-flight cell completes with
  // kCallAborted — nothing executes on behalf of a dead caller. A cell
  // the dying peer claimed but never published (SIGKILL mid-post) has no
  // readable payload; the wholesale ring reset below retires it.
  std::uint64_t pos = lane->dequeue_pos.load(std::memory_order_relaxed);
  const std::uint64_t end = lane->enqueue_pos.load(std::memory_order_acquire);
  for (; pos != end; ++pos) {
    ShmCell& cell = ring[pos & kMask];
    if (cell.seq.load(std::memory_order_acquire) != pos + 1) continue;
    if (cell.wait_off != kNullOff) {
      seg_.at<ShmWait>(cell.wait_off)->complete(Status::kCallAborted);
    }
  }

  // Re-arm the ring and rebuild the wait pool wholesale. Relinking all
  // kShmWaitsPerLane blocks is what makes pool conservation a
  // construction property rather than an accounting hope: whatever the
  // dead peer held, the free list is full-length again.
  for (std::uint64_t i = 0; i < kShmRingCapacity; ++i) {
    ring[i].seq.store(i, std::memory_order_relaxed);
  }
  lane->enqueue_pos.store(0, std::memory_order_relaxed);
  lane->dequeue_pos.store(0, std::memory_order_relaxed);
  // Relink only — done words stay as the administrative drain left them.
  // If the reap was spurious (8x backstop, peer merely wedged), the caller
  // is still spinning on its done word and must be able to observe the
  // kCallAborted completion; acquire_wait()+reset() clears the word when a
  // block is next handed out.
  for (std::uint32_t i = 0; i < kShmWaitsPerLane; ++i) {
    waits[i].next_off = i + 1 < kShmWaitsPerLane
                            ? seg_.offset_of(&waits[i + 1])
                            : kNullOff;
  }
  lane->wait_free_off = seg_.offset_of(&waits[0]);

  // Revoke the dead peer's grants: nothing may resolve against a region
  // whose owner is gone, and the backing segments' names are reclaimed.
  for (std::uint32_t r = 0; r < hdr->max_regions; ++r) {
    RegionSlot& rs = regions[r];
    if (rs.state.load(std::memory_order_acquire) != kRegionGranted ||
        rs.owner_peer != peer_idx) {
      continue;
    }
    const std::uint32_t gen = rs.generation.load(std::memory_order_relaxed);
    rs.state.store(kRegionFree, std::memory_order_release);
    rs.generation.store(gen + 1, std::memory_order_release);
    copy_.invalidate(r);
    Segment dead = Segment::try_open(region_name(seg_.name(), r, gen));
    dead.unlink();
  }
  copy_.invalidate_peer(peer_idx);

  slot.pid.store(0, std::memory_order_relaxed);
  slot.heartbeat_ns.store(0, std::memory_order_relaxed);
  slot.program = 0;
  slot.generation.fetch_add(1, std::memory_order_release);
  slot.state.store(kPeerFree, std::memory_order_release);
  counters_->inc(obs::Counter::kPeerDeaths);
}

void Server::request_stop() {
  header()->stop.store(1, std::memory_order_release);
}

bool Server::stop_requested() const {
  return header()->stop.load(std::memory_order_acquire) != 0;
}

void Server::adopt_cancel_pool_into(rt::Runtime& rt) {
  rt.adopt_cancel_pool(cancel_flags_of(seg_), cancel_cursor_of(seg_));
}

std::uint32_t Server::attached_peers() const {
  const ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  std::uint32_t n = 0;
  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    if (peers[p].state.load(std::memory_order_acquire) == kPeerAttached) ++n;
  }
  return n;
}

// -- Peer -------------------------------------------------------------------

Peer::Peer(const std::string& name, ProgramId program, ServerOptions opts)
    : seg_(Segment::open(name)),
      counters_(opts.counters != nullptr ? opts.counters : &own_counters_),
      program_(program) {
  ShmHeader* hdr = header();
  if (hdr->magic.load(std::memory_order_acquire) != kShmMagic ||
      hdr->version != kShmVersion) {
    throw std::runtime_error("shm::Peer: segment '" + name +
                             "' is not a published v" +
                             std::to_string(kShmVersion) + " transport");
  }
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  std::uint32_t claimed = hdr->max_peers;
  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    std::uint32_t expect = kPeerFree;
    if (peers[p].state.compare_exchange_strong(expect, kPeerAttaching,
                                               std::memory_order_acq_rel)) {
      claimed = p;
      break;
    }
  }
  if (claimed == hdr->max_peers) {
    throw std::runtime_error("shm::Peer: no free peer slot in '" + name + "'");
  }
  idx_ = claimed;
  lane_ = seg_.at<LaneHeader>(hdr->lanes_off) + idx_;
  ring_ = seg_.at<ShmCell>(lane_->ring_off);
  waits_ = seg_.at<ShmWait>(lane_->waits_off);

  PeerSlot& slot = peers[idx_];
  slot.pid.store(self_pid(), std::memory_order_relaxed);
  slot.program = program_;
  slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
  generation_ = slot.generation.load(std::memory_order_relaxed);
  slot.state.store(kPeerAttached, std::memory_order_release);
  counters_->inc(obs::Counter::kShmSegmentsMapped);
}

Peer::~Peer() {
  if (!seg_.mapped()) return;
  // Cooperative detach: return every grant, then free the slot so the
  // server stops draining the lane. (Uncooperative exit is the reaper's.)
  for (std::uint32_t r = 0; r < kMaxShmRegions; ++r) {
    if (regions_[r].mapped()) revoke_region(r);
  }
  ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  PeerSlot& slot = peers[idx_];
  slot.pid.store(0, std::memory_order_relaxed);
  slot.generation.fetch_add(1, std::memory_order_release);
  slot.state.store(kPeerFree, std::memory_order_release);
}

ShmWait* Peer::acquire_wait() {
  const std::uint64_t off = lane_->wait_free_off;
  if (off == kNullOff) return nullptr;
  ShmWait* w = seg_.at<ShmWait>(off);
  lane_->wait_free_off = w->next_off;
  return w;
}

void Peer::release_wait(ShmWait* w) {
  w->next_off = lane_->wait_free_off;
  lane_->wait_free_off = seg_.offset_of(w);
}

Status Peer::call(ShmEp ep, ppc::RegSet& regs, std::uint32_t token) {
  ShmWait* w = acquire_wait();
  if (w == nullptr) return Status::kOutOfResources;
  w->reset();

  // Producer side of the lane ring: the MPSC claim protocol of the
  // in-process layer (one CAS on the cursor, one release publish of the
  // cell), kept even though a lane has a single producer — it costs one
  // uncontended CAS and keeps the two implementations line-for-line
  // comparable.
  constexpr std::uint64_t kMask = kShmRingCapacity - 1;
  std::uint64_t pos = lane_->enqueue_pos.load(std::memory_order_relaxed);
  ShmCell* cell;
  for (;;) {
    cell = &ring_[pos & kMask];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    if (seq == pos) {
      if (lane_->enqueue_pos.compare_exchange_weak(
              pos, pos + 1, std::memory_order_relaxed)) {
        break;
      }
    } else if (seq < pos) {
      release_wait(w);
      return Status::kOverloaded;  // lane ring full
    } else {
      pos = lane_->enqueue_pos.load(std::memory_order_relaxed);
    }
  }
  cell->ep = rt::cell_pack_ep(ep, token & rt::kCellTokenLaneMask, false);
  cell->caller = static_cast<std::uint32_t>(program_);
  cell->wait_off = seg_.offset_of(w);
  cell->aux = 0;
  cell->regs = regs;
  cell->seq.store(pos + 1, std::memory_order_release);

  // Every call refreshes liveness; long waits below refresh it again so
  // a caller stuck behind a slow handler is not declared dead.
  ShmHeader* hdr = header();
  auto* peers = seg_.at<PeerSlot>(hdr->peers_off);
  PeerSlot& slot = peers[idx_];
  slot.heartbeat_ns.store(now_ns(), std::memory_order_release);

  // Spin-then-yield on the done word. NEVER park: the done word lives in
  // the segment and futex wakeups do not cross address spaces here.
  std::uint32_t done;
  std::uint32_t spins = 0;
  while (((done = w->done.load(std::memory_order_acquire)) &
          ShmWait::kDoneBit) == 0) {
    if (++spins < 128) {
      cpu_relax();
    } else {
      yield_thread();
      if ((spins & 0x3FFF) == 0) {
        slot.heartbeat_ns.store(now_ns(), std::memory_order_release);
      }
    }
  }
  regs = w->reply;
  release_wait(w);
  counters_->inc(obs::Counter::kCallsRemote);
  return static_cast<Status>(done & 0xFF);
}

std::uint32_t Peer::cancel_token_create() {
  return shm_cancel_token_create(seg_);
}

void Peer::cancel(std::uint32_t token) { shm_cancel(seg_, token); }

std::uint32_t Peer::grant_region(std::size_t bytes, std::uint32_t rights) {
  ShmHeader* hdr = header();
  auto* regions = seg_.at<RegionSlot>(hdr->regions_off);
  for (std::uint32_t r = 0; r < hdr->max_regions; ++r) {
    RegionSlot& rs = regions[r];
    std::uint32_t expect = kRegionFree;
    if (!rs.state.compare_exchange_strong(expect, kRegionGranting,
                                          std::memory_order_acq_rel)) {
      continue;
    }
    const std::uint32_t gen =
        rs.generation.fetch_add(1, std::memory_order_relaxed) + 1;
    try {
      regions_[r] = Segment::create(region_name(seg_.name(), r, gen), bytes);
    } catch (const std::exception&) {
      rs.state.store(kRegionFree, std::memory_order_release);
      return kMaxShmRegions;
    }
    rs.owner_peer = idx_;
    rs.rights = rights;
    rs.bytes = bytes;
    rs.state.store(kRegionGranted, std::memory_order_release);
    counters_->inc(obs::Counter::kShmSegmentsMapped);
    return r;
  }
  return kMaxShmRegions;
}

void Peer::revoke_region(std::uint32_t region) {
  if (region >= kMaxShmRegions || !regions_[region].mapped()) return;
  ShmHeader* hdr = header();
  auto* regions = seg_.at<RegionSlot>(hdr->regions_off);
  RegionSlot& rs = regions[region];
  rs.state.store(kRegionFree, std::memory_order_release);
  rs.generation.fetch_add(1, std::memory_order_release);
  regions_[region].unlink();
  regions_[region] = Segment{};
}

std::byte* Peer::region_base(std::uint32_t region) {
  return region < kMaxShmRegions && regions_[region].mapped()
             ? regions_[region].base()
             : nullptr;
}

void Peer::heartbeat() {
  auto* peers = seg_.at<PeerSlot>(header()->peers_off);
  peers[idx_].heartbeat_ns.store(now_ns(), std::memory_order_release);
}

bool Peer::stop_requested() const {
  return header()->stop.load(std::memory_order_acquire) != 0;
}

void Peer::request_stop() {
  header()->stop.store(1, std::memory_order_release);
}

void Peer::adopt_cancel_pool_into(rt::Runtime& rt) {
  rt.adopt_cancel_pool(cancel_flags_of(seg_), cancel_cursor_of(seg_));
}

}  // namespace hppc::shm
