// The PPC call interface: 8 words in, the same 8 words out (§4.5.1).
//
// "We therefore use a C macro ... that allows us to pass the values of
//  eight variables in a PPC call, and use those same variables to return
//  eight values. ... The return value is placed in the last parameter (by
//  convention)."  — §4.5.1, Figure 4.
//
// The last word carries opcode+flags on entry and opcode+flags+return-code
// on exit, mirroring PPC_OP_FLAGS / PPC_RC of Figure 4. The first seven
// words are entirely the application's.
#pragma once

#include <array>
#include <cstdint>

#include "common/status.h"
#include "common/types.h"

namespace hppc::ppc {

/// The register file exchanged across the call. regs[7] is the opflags
/// word by convention; regs[0..6] are free-form arguments/results.
struct RegSet {
  std::array<Word, kPpcWords> w{};

  Word& operator[](std::size_t i) { return w[i]; }
  const Word& operator[](std::size_t i) const { return w[i]; }

  bool operator==(const RegSet&) const = default;
};

/// Index of the opflags/return-code word.
inline constexpr std::size_t kOpWord = kPpcWords - 1;

// Layout of the opflags word:
//   [31:16] opcode   — service-defined operation number
//   [15: 8] flags    — service-defined modifier bits
//   [ 7: 0] rc       — return code (Status), written by the facility/server
constexpr Word op_flags(Word opcode, Word flags = 0) {
  return ((opcode & 0xFFFFu) << 16) | ((flags & 0xFFu) << 8);
}

constexpr Word opcode_of(Word opflags) { return (opflags >> 16) & 0xFFFFu; }
constexpr Word flags_of(Word opflags) { return (opflags >> 8) & 0xFFu; }
constexpr Status rc_of(Word opflags) {
  return static_cast<Status>(opflags & 0xFFu);
}
constexpr Word with_rc(Word opflags, Status rc) {
  return (opflags & ~Word{0xFFu}) | static_cast<Word>(rc);
}

/// Convenience accessors on a RegSet.
inline void set_op(RegSet& r, Word opcode, Word flags = 0) {
  r[kOpWord] = op_flags(opcode, flags);
}
inline Word opcode_of(const RegSet& r) { return opcode_of(r[kOpWord]); }
inline Word flags_of(const RegSet& r) { return flags_of(r[kOpWord]); }
inline Status rc_of(const RegSet& r) { return rc_of(r[kOpWord]); }
inline void set_rc(RegSet& r, Status rc) {
  r[kOpWord] = with_rc(r[kOpWord], rc);
}

/// Pack/unpack a 64-bit value across two words (e.g. file lengths).
inline void set_u64(RegSet& r, std::size_t lo_index, std::uint64_t v) {
  r[lo_index] = static_cast<Word>(v);
  r[lo_index + 1] = static_cast<Word>(v >> 32);
}
inline std::uint64_t get_u64(const RegSet& r, std::size_t lo_index) {
  return static_cast<std::uint64_t>(r[lo_index]) |
         (static_cast<std::uint64_t>(r[lo_index + 1]) << 32);
}

}  // namespace hppc::ppc
