// Call descriptors (§2).
//
// "The call descriptors serve two purposes: they store return information
//  during a call, and they point to physical memory used for the stack of a
//  worker process during a call."
//
// CDs live in per-processor pools shared among all the servers on that
// processor, which is why successive calls to *different* servers reuse the
// same descriptor and — more importantly — the same physical stack page,
// shrinking the combined cache footprint (§2, "serial sharing of stacks").
#pragma once

#include <functional>

#include "common/free_stack.h"
#include "common/types.h"
#include "ppc/regs.h"

namespace hppc::kernel {
class Process;
}

namespace hppc::ppc {

class CallDescriptor {
 public:
  CallDescriptor(SimAddr saddr, SimAddr stack_page, CpuId home_cpu)
      : saddr_(saddr), stack_page_(stack_page), home_cpu_(home_cpu) {}

  /// Simulated address of the descriptor itself (node-local kernel data).
  SimAddr saddr() const { return saddr_; }

  /// Physical page used as the worker's stack while this CD is in use.
  SimAddr stack_page() const { return stack_page_; }

  /// The processor whose pool owns this CD. CDs never migrate (§2: pools
  /// are "accessed exclusively by the local processor").
  CpuId home_cpu() const { return home_cpu_; }

  // --- return information, valid while in_use ---

  /// Synchronous caller to return to; nullptr for async/interrupt/upcall
  /// variants ("the fact that there is no caller waiting is discovered",
  /// §4.4).
  kernel::Process* caller() const { return caller_; }
  void set_caller(kernel::Process* p) { caller_ = p; }

  /// Caller identity snapshot (survives blocking; §4.1 authentication).
  ProgramId caller_program() const { return caller_program_; }
  Pid caller_pid() const { return caller_pid_; }
  void set_caller_identity(ProgramId prog, Pid pid) {
    caller_program_ = prog;
    caller_pid_ = pid;
  }

  /// Continuation to run at completion when the call was made through
  /// call_blocking (the caller's "return address" when the return cannot be
  /// a host-stack return).
  std::function<void(Status, RegSet&)>& completion() { return completion_; }

  /// Register set stashed while the call is in flight (needed only when the
  /// worker blocks; synchronous calls keep the registers on the host stack
  /// the way the hardware keeps them in the register file).
  RegSet& regs() { return regs_; }

  bool in_use() const { return in_use_; }
  void set_in_use(bool b) { in_use_ = b; }

  /// Free-list linkage within the per-CPU pool.
  StackLink pool_link;

 private:
  SimAddr saddr_;
  SimAddr stack_page_;
  CpuId home_cpu_;
  kernel::Process* caller_ = nullptr;
  ProgramId caller_program_ = 0;
  Pid caller_pid_ = kInvalidPid;
  std::function<void(Status, RegSet&)> completion_;
  RegSet regs_;
  bool in_use_ = false;
};

}  // namespace hppc::ppc
