#include "ppc/facility.h"

#include <algorithm>

#include "common/log.h"
#include "fault/failpoints.h"
#include "kernel/address_space.h"
#include "obs/trace.h"
#include "kernel/cpu.h"

namespace hppc::ppc {

using kernel::AddressSpace;
using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using kernel::ProcessState;
using sim::CostCategory;
using sim::TlbContext;

namespace {

/// Virtual region where worker stacks are mapped in server spaces. Chosen
/// outside any node's physical identity range so virtual stack pages never
/// alias server text/data translations.
constexpr SimAddr kStackVaBase = SimAddr{0xF0} << 40;
constexpr SimAddr kStackVaStride = kPageSize * 64;  // room for 64-page stacks

TlbContext user_ctx_of(const AddressSpace& as) { return as.tlb_context(); }

}  // namespace

// ---------------------------------------------------------------------------
// ServerCtx out-of-line methods (need the facility/kernel definitions).
// ---------------------------------------------------------------------------

kernel::Machine& ServerCtx::machine() { return cpu_.machine(); }

EntryPoint& ServerCtx::entry_point() { return *worker_.entry_point(); }

void ServerCtx::work(Cycles cycles) {
  cpu_.mem().charge(CostCategory::kServerTime, cycles);
}

void ServerCtx::touch(SimAddr addr, std::size_t bytes, bool is_store) {
  cpu_.mem().access(addr, bytes, is_store,
                    entry_point().address_space()->tlb_context(),
                    CostCategory::kServerTime);
}

void ServerCtx::touch_stack(std::size_t off, std::size_t bytes,
                            bool is_store) {
  EntryPoint& ep = entry_point();
  CallDescriptor* cd = worker_.active_cd();
  HPPC_ASSERT_MSG(cd != nullptr, "touch_stack outside a call");
  const std::uint32_t page_idx = static_cast<std::uint32_t>(off / kPageSize);
  HPPC_ASSERT_MSG(off % kPageSize + bytes <= kPageSize,
                  "stack access may not straddle a page");

  if (page_idx >= worker_.mapped_stack_pages()) {
    HPPC_ASSERT_MSG(ep.config().stack_strategy == StackStrategy::kLazyFault,
                    "stack overflow: access beyond mapped stack pages");
    HPPC_ASSERT_MSG(page_idx < ep.config().stack_pages,
                    "stack overflow: beyond the service's virtual stack");
    // Page fault path (§4.5.4): trap, grab a page, map it. "This would keep
    // the common case fast and only penalize those servers that require the
    // extra space."
    auto& mem = cpu_.mem();
    auto& epcpu = ep.per_cpu(cpu_.id());
    while (worker_.mapped_stack_pages() <= page_idx) {
      mem.trap_roundtrip();
      SimAddr page;
      if (!epcpu.extra_stack_pages.empty()) {
        page = epcpu.extra_stack_pages.back();
        epcpu.extra_stack_pages.pop_back();
        mem.charge(CostCategory::kCdManipulation, 12);  // list pop
      } else {
        page = machine().frames().alloc(cpu_.node());
        mem.charge(CostCategory::kCdManipulation,
                   ppc_.calibration().cd_create_cycles);
      }
      const SimAddr va = worker_.stack_vaddr() +
                         SimAddr{worker_.mapped_stack_pages()} * kPageSize;
      ep.address_space()->map_page(va, page);
      mem.tlb_map_one(va, ep.address_space()->tlb_context());
      worker_.active_extra_pages.push_back(page);
      worker_.set_mapped_stack_pages(worker_.mapped_stack_pages() + 1);
    }
  }

  const SimAddr paddr = page_idx == 0
                            ? cd->stack_page()
                            : worker_.active_extra_pages[page_idx - 1];
  const SimAddr va = worker_.stack_vaddr() + off;
  cpu_.mem().access_mapped(paddr + off % kPageSize, va, bytes, is_store,
                           ep.address_space()->tlb_context(),
                           CostCategory::kServerTime);
}

void ServerCtx::set_worker_handler(
    std::function<void(ServerCtx&, RegSet&)> h) {
  // One store to the worker's descriptor (§4.5.3).
  HPPC_TRACE_EVENT(cpu_.trace_ring(), cpu_.now(), cpu_.id(),
                   obs::TraceEvent::kWorkerInit,
                   worker_.entry_point()->id());
  cpu_.mem().store(worker_.context_save_area(), 4, TlbContext::kSupervisor,
                   CostCategory::kServerTime);
  worker_.set_call_handler(std::move(h));
}

Status ServerCtx::call(EntryPointId ep, RegSet& regs) {
  cpu_.counters().inc(obs::Counter::kNestedCalls);
  return ppc_.call(cpu_, worker_, ep, regs);
}

void ServerCtx::block_call(std::function<void(ServerCtx&, RegSet&)> resume) {
  HPPC_ASSERT_MSG(!worker_.blocked_in_call(), "already blocked");
  worker_.resume_fn() = std::move(resume);
}

// ---------------------------------------------------------------------------
// Construction / binding
// ---------------------------------------------------------------------------

PpcFacility::PpcFacility(Machine& machine, PpcCalibration cal)
    : machine_(machine), cal_(cal) {
  auto& alloc = machine_.allocator();
  const auto& cfg = machine_.config();

  text_.reserve(cfg.num_nodes());
  for (NodeId n = 0; n < cfg.num_nodes(); ++n) {
    text_.push_back(PpcKernelText::layout(alloc, n, cal_));
  }

  cpu_state_.reserve(machine_.num_cpus());
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    auto st = std::make_unique<CpuPpcState>();
    const NodeId node = cfg.node_of_cpu(c);
    st->table_saddr = alloc.alloc(node, kMaxEntryPoints * 4, kPageSize);
    st->cd_pools.push_back(CdPool{0, {}, alloc.alloc(node, 32, 16)});
    st->hashed_table_saddr = alloc.alloc(node, 1024, 64);
    machine_.cpu(c).set_ppc_state(st.get());
    cpu_state_.push_back(std::move(st));
  }

  eps_.resize(kMaxEntryPoints);

  // Bootstrap Frank (§4.5.6): a kernel-space server at a well-known id,
  // with all resources preallocated, that may not block or be preempted.
  frank_as_ = &machine_.kernel_as();
  EntryPointConfig frank_cfg;
  frank_cfg.name = "frank";
  frank_cfg.kernel_space = true;
  frank_cfg.hold_cd = true;  // preallocated resources: never on a pool miss
  do_bind(kFrankEp, frank_cfg, frank_as_, /*program=*/0,
          [this](ServerCtx& ctx, RegSet& regs) { frank_handler(ctx, regs); },
          ServiceCode{.handler_instructions = 60, .home_node = 0});
}

PpcFacility::~PpcFacility() {
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    machine_.cpu(c).set_ppc_state(nullptr);
  }
}

CpuPpcState& PpcFacility::state(Cpu& cpu) {
  return *static_cast<CpuPpcState*>(cpu.ppc_state());
}

const UserStubText& PpcFacility::user_stub(AddressSpace& as) {
  auto it = user_stubs_.find(as.id());
  if (it != user_stubs_.end()) return it->second;
  auto& alloc = machine_.allocator();
  const NodeId n = as.home_node();
  // Save and restore stubs live on separate text pages (library layout):
  // after a user->user crossing flushes the user TLB context, each costs
  // its own reload — part of Figure 2's TLB-miss bar.
  UserStubText t;
  t.save = {alloc.alloc(n, std::size_t{cal_.user_save_instr} * 4, kPageSize),
            cal_.user_save_instr, user_ctx_of(as)};
  t.restore = {alloc.alloc(n, std::size_t{cal_.user_restore_instr} * 4,
                           kPageSize),
               cal_.user_restore_instr, user_ctx_of(as)};
  return user_stubs_.emplace(as.id(), t).first->second;
}

EntryPointId PpcFacility::do_bind(EntryPointId id, EntryPointConfig cfg,
                                  AddressSpace* as, ProgramId program,
                                  Worker::CallHandler initial_handler,
                                  ServiceCode code) {
  const bool hashed = id >= kMaxEntryPoints;
  if (hashed) {
    auto it = hashed_eps_.find(id);
    HPPC_ASSERT_MSG(it == hashed_eps_.end() ||
                        it->second->state() == EpState::kDead,
                    "entry point id in use");
  } else {
    HPPC_ASSERT_MSG(!eps_[id] || eps_[id]->state() == EpState::kDead,
                    "entry point id in use");
  }
  if (as == nullptr) as = &machine_.kernel_as();
  if (as->supervisor()) cfg.kernel_space = true;
  HPPC_ASSERT_MSG(as->supervisor() == cfg.kernel_space,
                  "kernel_space flag must match the address space");
  if (cfg.stack_strategy == StackStrategy::kSinglePage) cfg.stack_pages = 1;
  HPPC_ASSERT(cfg.stack_pages >= 1 && cfg.stack_pages <= 64);

  auto ep = std::make_unique<EntryPoint>(id, cfg, as, program,
                                         std::move(initial_handler),
                                         machine_.num_cpus());

  auto& alloc = machine_.allocator();
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    ep->per_cpu(c).saddr = alloc.alloc(machine_.config().node_of_cpu(c), 32, 16);
  }

  ServiceText stext;
  stext.handler_code = {
      alloc.alloc(code.home_node, std::size_t{code.handler_instructions} * 4, 16),
      code.handler_instructions, as->tlb_context()};
  service_text_[id] = stext;

  EntryPoint* raw = ep.get();
  // Replicate into every processor's table copy (functional part; the
  // traffic is charged when binding goes through Frank's handler).
  if (hashed) {
    hashed_eps_[id] = std::move(ep);
    for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
      state(machine_.cpu(c)).hashed_table[id] = raw;
    }
  } else {
    eps_[id] = std::move(ep);
    for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
      state(machine_.cpu(c)).service_table[id] = raw;
    }
  }
  return id;
}

EntryPointId PpcFacility::bind(EntryPointConfig cfg, AddressSpace* as,
                               ProgramId program,
                               Worker::CallHandler initial_handler,
                               ServiceCode code) {
  while (next_ep_ < kMaxEntryPoints && eps_[next_ep_] &&
         eps_[next_ep_]->state() != EpState::kDead) {
    ++next_ep_;
  }
  // Services that opt out of fast lookup — or arrive once the fixed table
  // is full — get ids in the hashed overflow space (§4.5.5).
  if (!cfg.fast_lookup || next_ep_ >= kMaxEntryPoints) {
    return do_bind(next_hashed_ep_++, std::move(cfg), as, program,
                   std::move(initial_handler), code);
  }
  return do_bind(next_ep_++, std::move(cfg), as, program,
                 std::move(initial_handler), code);
}

EntryPointId PpcFacility::bind_well_known(EntryPointId id,
                                          EntryPointConfig cfg,
                                          AddressSpace* as, ProgramId program,
                                          Worker::CallHandler initial_handler,
                                          ServiceCode code) {
  HPPC_ASSERT(id > 0 && id < kFirstDynamicEp);
  return do_bind(id, std::move(cfg), as, program, std::move(initial_handler),
                 code);
}

std::uint32_t PpcFacility::prepare_bind(EntryPointConfig cfg,
                                        AddressSpace* as, ProgramId program,
                                        Worker::CallHandler initial_handler,
                                        ServiceCode code) {
  const std::uint32_t token = next_bind_token_++;
  staged_binds_.emplace(
      token, StagedBind{std::move(cfg), as, program, std::move(initial_handler),
                        code});
  return token;
}

EntryPoint* PpcFacility::entry_point(EntryPointId id) {
  if (id < kMaxEntryPoints) return eps_[id].get();
  auto it = hashed_eps_.find(id);
  return it == hashed_eps_.end() ? nullptr : it->second.get();
}

std::size_t PpcFacility::pooled_workers(CpuId cpu, EntryPointId id) {
  EntryPoint* ep = entry_point(id);
  if (!ep) return 0;
  return ep->per_cpu(cpu).pool.size();
}

// ---------------------------------------------------------------------------
// Fast-path pieces
// ---------------------------------------------------------------------------

EntryPoint* PpcFacility::lookup(Cpu& cpu, EntryPointId id,
                                Status* out_status) {
  auto& mem = cpu.mem();
  auto& st = state(cpu);
  const auto& text = text_[cpu.node()];

  mem.exec(text.entry, CostCategory::kPpcKernel);
  EntryPoint* ep = nullptr;
  if (id < kMaxEntryPoints) {
    // One local load from this CPU's table copy (§4.5.5).
    mem.load(st.table_saddr + SimAddr{id} * 4, 4, TlbContext::kSupervisor,
             CostCategory::kPpcKernel);
    ep = st.service_table[id];
  } else {
    // Overflow services: hash-table lookup with chained buckets — more
    // loads and instructions than the direct index (§4.5.5's extension).
    cpu.counters().inc(obs::Counter::kHashedLookups);
    mem.charge(CostCategory::kPpcKernel, 10);  // hash + compare chain
    mem.load(st.hashed_table_saddr + (id % 32) * 32, 16,
             TlbContext::kSupervisor, CostCategory::kPpcKernel);
    auto it = st.hashed_table.find(id);
    ep = it == st.hashed_table.end() ? nullptr : it->second;
  }
  if (ep == nullptr || ep->state() == EpState::kDead) {
    *out_status = Status::kNoSuchEntryPoint;
    return nullptr;
  }
  if (ep->state() == EpState::kDraining) {
    *out_status = Status::kEntryPointDraining;
    return nullptr;
  }
  *out_status = Status::kOk;
  return ep;
}

Worker* PpcFacility::acquire_worker(Cpu& cpu, EntryPoint& ep) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  auto& epcpu = ep.per_cpu(cpu.id());

  mem.exec(text.worker_alloc, CostCategory::kPpcKernel);
  mem.access(epcpu.saddr, 8, /*is_store=*/true, TlbContext::kSupervisor,
             CostCategory::kPpcKernel);
  Worker* w = epcpu.pool.pop();
  if (w != nullptr) {
    cpu.counters().inc(obs::Counter::kWorkerPoolHits);
  } else {
    // Redirect to Frank (§4.5.6): create a worker, then continue the call.
    cpu.counters().inc(obs::Counter::kFrankWorkerRefills);
    cpu.counters().inc(obs::Counter::kSlowPathEntries);
    HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                     obs::TraceEvent::kFrankWorkerRefill, ep.id());
    w = frank_create_worker(cpu, ep);
  }
  return w;
}

CdPool& PpcFacility::cd_pool_of(Cpu& cpu, std::uint32_t group) {
  auto& st = state(cpu);
  for (auto& p : st.cd_pools) {
    if (p.group == group) return p;
  }
  // First use of this trust group on this processor: set up its pool
  // (a slow path, like any resource creation).
  cpu.mem().charge(CostCategory::kCdManipulation, 40);
  st.cd_pools.push_back(
      CdPool{group, {}, machine_.allocator().alloc(cpu.node(), 32, 16)});
  return st.cd_pools.back();
}

CallDescriptor* PpcFacility::acquire_cd(Cpu& cpu, Worker& w) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];

  CallDescriptor* cd;
  if (w.held_cd() != nullptr) {
    // Hold-CD mode: no free-list traffic; still record return info.
    cpu.counters().inc(obs::Counter::kHoldCdHits);
    cd = w.held_cd();
    mem.charge(CostCategory::kCdManipulation, cal_.cd_fill_instr);
  } else {
    // Stacks are shared only within the service's trust group (§2).
    CdPool& pool = cd_pool_of(cpu, w.entry_point()->config().trust_group);
    mem.exec(text.cd_alloc, CostCategory::kCdManipulation);
    mem.access(pool.saddr, 8, /*is_store=*/true, TlbContext::kSupervisor,
               CostCategory::kCdManipulation);
    cd = pool.pool.pop();
    if (cd != nullptr) {
      cpu.counters().inc(obs::Counter::kCdRecycles);
    } else {
      cpu.counters().inc(obs::Counter::kFrankCdRefills);
      cpu.counters().inc(obs::Counter::kSlowPathEntries);
      HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                       obs::TraceEvent::kFrankCdRefill,
                       w.entry_point()->config().trust_group);
      cd = frank_create_cd(cpu);
    }
  }
  mem.store(cd->saddr(), cal_.cd_bytes, TlbContext::kSupervisor,
            CostCategory::kCdManipulation);
  cd->set_in_use(true);
  w.set_active_cd(cd);
  // The worker's "user stack" for nested calls is the CD's stack page.
  w.set_user_stack(cd->stack_page() + kPageSize - 256);
  return cd;
}

void PpcFacility::release_cd(Cpu& cpu, Worker& w, CallDescriptor* cd) {
  auto& mem = cpu.mem();
  auto& st = state(cpu);
  const auto& text = text_[cpu.node()];

  cd->set_caller(nullptr);
  cd->completion() = nullptr;
  cd->set_in_use(false);
  if (w.held_cd() == cd) return;  // stays with the worker
  (void)st;
  CdPool& pool = cd_pool_of(cpu, w.entry_point()->config().trust_group);
  mem.exec(text.cd_free, CostCategory::kCdManipulation);
  mem.access(pool.saddr, 8, /*is_store=*/true, TlbContext::kSupervisor,
             CostCategory::kCdManipulation);
  pool.pool.push(cd);
}

void PpcFacility::map_worker_stack(Cpu& cpu, EntryPoint& ep, Worker& w,
                                   CallDescriptor* cd) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  AddressSpace* sas = ep.address_space();

  if (w.held_cd() == cd && w.mapped_stack_pages() > 0) {
    return;  // permanently mapped
  }

  mem.exec(text.map_stack, CostCategory::kTlbSetup);
  sas->map_page(w.stack_vaddr(), cd->stack_page());
  mem.tlb_map_one(w.stack_vaddr(), sas->tlb_context());
  std::uint32_t pages = 1;

  if (ep.config().stack_strategy == StackStrategy::kFixedMultiple) {
    // "It simply requires keeping an independent list of stack pages ...
    //  and mapping as many as required. For speed, this would be treated as
    //  an exceptional case." (§4.5.4)
    auto& epcpu = ep.per_cpu(cpu.id());
    for (std::uint32_t i = 1; i < ep.config().stack_pages; ++i) {
      SimAddr page;
      if (!epcpu.extra_stack_pages.empty()) {
        page = epcpu.extra_stack_pages.back();
        epcpu.extra_stack_pages.pop_back();
        mem.charge(CostCategory::kCdManipulation, 10);
      } else {
        page = machine_.frames().alloc(cpu.node());
        mem.charge(CostCategory::kCdManipulation, cal_.cd_create_cycles);
      }
      const SimAddr va = w.stack_vaddr() + SimAddr{i} * kPageSize;
      sas->map_page(va, page);
      mem.tlb_map_one(va, sas->tlb_context());
      w.active_extra_pages.push_back(page);
      ++pages;
    }
  }
  w.set_mapped_stack_pages(pages);
}

void PpcFacility::unmap_worker_stack(Cpu& cpu, EntryPoint& ep, Worker& w,
                                     CallDescriptor* cd) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  AddressSpace* sas = ep.address_space();

  if (w.held_cd() == cd) {
    // Held stacks stay mapped; lazily faulted extra pages still come off.
    while (w.mapped_stack_pages() > 1) {
      const SimAddr va =
          w.stack_vaddr() + SimAddr{w.mapped_stack_pages() - 1} * kPageSize;
      sas->unmap_page(va);
      mem.tlb_unmap_one(va, sas->tlb_context());
      ep.per_cpu(cpu.id()).extra_stack_pages.push_back(
          w.active_extra_pages.back());
      w.active_extra_pages.pop_back();
      w.set_mapped_stack_pages(w.mapped_stack_pages() - 1);
    }
    return;
  }

  mem.exec(text.unmap_stack, CostCategory::kTlbSetup);
  while (w.mapped_stack_pages() > 1) {
    const SimAddr va =
        w.stack_vaddr() + SimAddr{w.mapped_stack_pages() - 1} * kPageSize;
    sas->unmap_page(va);
    mem.tlb_unmap_one(va, sas->tlb_context());
    ep.per_cpu(cpu.id()).extra_stack_pages.push_back(
        w.active_extra_pages.back());
    w.active_extra_pages.pop_back();
    w.set_mapped_stack_pages(w.mapped_stack_pages() - 1);
  }
  sas->unmap_page(w.stack_vaddr());
  mem.tlb_unmap_one(w.stack_vaddr(), sas->tlb_context());
  w.set_mapped_stack_pages(0);
}

void PpcFacility::enter_server_space(Cpu& cpu, Process& from, EntryPoint& ep) {
  AddressSpace* sas = ep.address_space();
  if (!sas->supervisor() && sas != from.address_space()) {
    // User->user crossing: the user TLB context must be flushed (Figure 2:
    // "A call to a service in the supervisor address space does not require
    // a TLB flush and thus incurs fewer TLB misses").
    cpu.mem().tlb_flush_user();
  }
}

void PpcFacility::leave_server_space(Cpu& cpu, Process& to, EntryPoint& ep) {
  AddressSpace* sas = ep.address_space();
  if (!sas->supervisor() && sas != to.address_space()) {
    cpu.mem().tlb_flush_user();
  }
}

void PpcFacility::run_handler(Cpu& cpu, EntryPoint& ep, Worker& w,
                              ProgramId caller_prog, Pid caller_pid,
                              RegSet& regs) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  CallDescriptor* cd = w.active_cd();

  // Upcall into the server: identity switch + worker (re)initialization to
  // the service's call-handling code (§2).
  mem.exec(text.upcall, CostCategory::kPpcKernel);
  mem.load(w.context_save_area(), cal_.worker_ctx_bytes,
           TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);

  Process* prev = cpu.current();
  w.set_state(ProcessState::kRunning);
  cpu.set_current(&w);

  // Server prologue: frame setup on the (freshly mapped) stack.
  mem.access_mapped(cd->stack_page() + kPageSize - 64,
                    w.stack_vaddr() + kPageSize - 64,
                    cal_.server_prologue_bytes, /*is_store=*/true,
                    ep.address_space()->tlb_context(),
                    CostCategory::kServerTime);
  mem.exec(service_text_[ep.id()].handler_code, CostCategory::kServerTime);

  ServerCtx ctx(*this, cpu, w, caller_prog, caller_pid);
  // Invoke through a copy: the handler may replace itself mid-call via
  // set_worker_handler (the worker-initialization protocol, §4.5.3).
  Worker::CallHandler handler = w.call_handler();
  handler(ctx, regs);

  if (!w.blocked_in_call()) {
    // Server epilogue: restore saved registers from the stack frame.
    mem.access_mapped(cd->stack_page() + kPageSize - 64,
                      w.stack_vaddr() + kPageSize - 64,
                      cal_.server_prologue_bytes, /*is_store=*/false,
                      ep.address_space()->tlb_context(),
                      CostCategory::kServerTime);
  }
  cpu.set_current(prev);
}

void PpcFacility::finish_drain_if_idle(EntryPoint& ep) {
  if (ep.state() != EpState::kDraining) return;
  if (ep.total_in_progress() != 0) return;
  ep.set_state(EpState::kDead);
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    auto& st = state(machine_.cpu(c));
    if (ep.id() < kMaxEntryPoints) {
      st.service_table[ep.id()] = nullptr;
    } else {
      st.hashed_table.erase(ep.id());
    }
  }
}

void PpcFacility::complete_call(Cpu& cpu, EntryPoint& ep, Worker& w,
                                RegSet& regs) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  CallDescriptor* cd = w.active_cd();
  Process* caller = cd->caller();

  // Return trap out of the server and the PPC return path.
  mem.trap_roundtrip();
  mem.exec(text.ret_entry, CostCategory::kPpcKernel);

  unmap_worker_stack(cpu, ep, w, cd);
  if (caller != nullptr) {
    leave_server_space(cpu, *caller, ep);
  } else if (!ep.address_space()->supervisor()) {
    // No caller to return to: leaving a user-space server still flushes.
    mem.tlb_flush_user();
  }

  auto completion = std::move(cd->completion());
  release_cd(cpu, w, cd);
  w.set_active_cd(nullptr);

  // Return the worker to its per-CPU pool.
  auto& epcpu = ep.per_cpu(cpu.id());
  mem.exec(text.worker_free, CostCategory::kPpcKernel);
  mem.access(epcpu.saddr, 8, /*is_store=*/true, TlbContext::kSupervisor,
             CostCategory::kPpcKernel);
  w.set_state(ProcessState::kBlocked);
  epcpu.pool.push(&w);
  auto& actives = epcpu.active_workers;
  actives.erase(std::remove(actives.begin(), actives.end(), &w),
                actives.end());
  HPPC_ASSERT(epcpu.in_progress > 0);
  --epcpu.in_progress;

  if (caller != nullptr) {
    // Hand control straight back to the caller (handoff, no scheduler).
    mem.exec(text.kernel_restore, CostCategory::kKernelSaveRestore);
    mem.load(caller->context_save_area(), cal_.kernel_ctx_bytes,
             TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
    caller->set_state(ProcessState::kRunning);
    cpu.set_current(caller);
  } else {
    // Async/interrupt/upcall: "the fact that there is no caller waiting is
    // discovered, and another process is selected for execution" (§4.4).
    // The engine's dispatcher performs that selection; here we only pay
    // the discovery branch.
    mem.charge(CostCategory::kPpcKernel, 4);
    cpu.set_current(nullptr);
  }

  mem.charge(CostCategory::kUnaccounted,
             machine_.config().unaccounted_stall_cycles_per_call);
  finish_drain_if_idle(ep);

  if (completion) completion(rc_of(regs), regs);
}

// ---------------------------------------------------------------------------
// Call variants
// ---------------------------------------------------------------------------

Status PpcFacility::call(Cpu& cpu, Process& caller, EntryPointId id,
                         RegSet& regs) {
  auto& mem = cpu.mem();
  const Cycles call_t0 = cpu.now();
  const bool user_caller = !caller.address_space()->supervisor();
  const UserStubText* stub = nullptr;

  if (user_caller) {
    stub = &user_stub(*caller.address_space());
    mem.exec(stub->save, CostCategory::kUserSaveRestore);
    mem.store(caller.user_stack(), cal_.user_reg_bytes,
              user_ctx_of(*caller.address_space()),
              CostCategory::kUserSaveRestore);
  }
  mem.trap_roundtrip();

  Status s;
  EntryPoint* ep = lookup(cpu, id, &s);
  if (ep == nullptr) {
    set_rc(regs, s);
    if (user_caller) {
      mem.exec(stub->restore, CostCategory::kUserSaveRestore);
      mem.load(caller.user_stack(), cal_.user_reg_bytes,
               user_ctx_of(*caller.address_space()),
               CostCategory::kUserSaveRestore);
    }
    return s;
  }

  auto& epcpu = ep->per_cpu(cpu.id());
  cpu.counters().inc(obs::Counter::kCallsSync);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kCallEnter, id);
  // Fault seam: pretend Frank's redirect could not produce a worker or CD
  // (§4.5.6 exhaustion) — the sim analogue of rt.worker.exhausted. Must
  // unwind exactly like the lookup-failure path above.
  if (HPPC_FAULT_POINT("ppc.call.frank_exhausted")) {
    cpu.counters().inc(obs::Counter::kFaultsInjected);
    HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                     obs::TraceEvent::kFaultInject, id);
    set_rc(regs, Status::kOutOfResources);
    if (user_caller) {
      mem.exec(stub->restore, CostCategory::kUserSaveRestore);
      mem.load(caller.user_stack(), cal_.user_reg_bytes,
               user_ctx_of(*caller.address_space()),
               CostCategory::kUserSaveRestore);
    }
    return Status::kOutOfResources;
  }
  Worker* w = acquire_worker(cpu, *ep);
  CallDescriptor* cd = acquire_cd(cpu, *w);
  cd->set_caller(&caller);
  cd->set_caller_identity(caller.program(), caller.pid());

  // Save the minimum caller state for the switch into the worker.
  const auto& text = text_[cpu.node()];
  mem.exec(text.kernel_save, CostCategory::kKernelSaveRestore);
  mem.store(caller.context_save_area(), cal_.kernel_ctx_bytes,
            TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  const ProcessState caller_prev_state = caller.state();
  caller.set_state(ProcessState::kBlocked);

  epcpu.in_progress++;
  epcpu.active_workers.push_back(w);

  map_worker_stack(cpu, *ep, *w, cd);
  enter_server_space(cpu, caller, *ep);
  run_handler(cpu, *ep, *w, caller.program(), caller.pid(), regs);

  HPPC_ASSERT_MSG(!w->blocked_in_call(),
                  "handler blocked inside synchronous call(); the service "
                  "needs call_blocking");

  complete_call(cpu, *ep, *w, regs);
  caller.set_state(caller_prev_state);

  if (user_caller) {
    mem.exec(stub->restore, CostCategory::kUserSaveRestore);
    mem.load(caller.user_stack(), cal_.user_reg_bytes,
             user_ctx_of(*caller.address_space()),
             CostCategory::kUserSaveRestore);
  }
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kCallExit,
                   static_cast<Word>(rc_of(regs)));
  // Whole-call latency in simulated cycles — deterministic per schedule, so
  // the distribution doubles as a regression oracle for the cost model.
  cpu.histograms().record(obs::Hist::kRttSync, cpu.now() - call_t0);
  return rc_of(regs);
}

Status PpcFacility::call_blocking(
    Cpu& cpu, Process& caller, EntryPointId id, RegSet regs,
    std::function<void(Status, RegSet&)> on_complete) {
  auto& mem = cpu.mem();
  const bool user_caller = !caller.address_space()->supervisor();
  if (user_caller) {
    const UserStubText& stub = user_stub(*caller.address_space());
    mem.exec(stub.save, CostCategory::kUserSaveRestore);
    mem.store(caller.user_stack(), cal_.user_reg_bytes,
              user_ctx_of(*caller.address_space()),
              CostCategory::kUserSaveRestore);
  }
  mem.trap_roundtrip();

  Status s;
  EntryPoint* ep = lookup(cpu, id, &s);
  if (ep == nullptr) {
    set_rc(regs, s);
    on_complete(s, regs);
    return s;
  }

  auto& epcpu = ep->per_cpu(cpu.id());
  cpu.counters().inc(obs::Counter::kCallsSync);
  cpu.counters().inc(obs::Counter::kCallsBlocking);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kCallEnter, id);
  Worker* w = acquire_worker(cpu, *ep);
  CallDescriptor* cd = acquire_cd(cpu, *w);
  cd->set_caller(&caller);
  cd->set_caller_identity(caller.program(), caller.pid());
  cd->completion() = std::move(on_complete);

  const auto& text = text_[cpu.node()];
  mem.exec(text.kernel_save, CostCategory::kKernelSaveRestore);
  mem.store(caller.context_save_area(), cal_.kernel_ctx_bytes,
            TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  machine_.block(caller);

  epcpu.in_progress++;
  epcpu.active_workers.push_back(w);

  map_worker_stack(cpu, *ep, *w, cd);
  enter_server_space(cpu, caller, *ep);
  run_handler(cpu, *ep, *w, caller.program(), caller.pid(), regs);

  if (w->blocked_in_call()) {
    // Stash the registers in the CD; the call completes on resume_worker.
    cd->regs() = regs;
    return Status::kOk;
  }
  complete_call(cpu, *ep, *w, regs);
  return rc_of(regs);
}

Status PpcFacility::call_async(Cpu& cpu, Process& caller, EntryPointId id,
                               RegSet regs) {
  auto& mem = cpu.mem();
  const bool user_caller = !caller.address_space()->supervisor();
  if (user_caller) {
    const UserStubText& stub = user_stub(*caller.address_space());
    mem.exec(stub.save, CostCategory::kUserSaveRestore);
    mem.store(caller.user_stack(), cal_.user_reg_bytes,
              user_ctx_of(*caller.address_space()),
              CostCategory::kUserSaveRestore);
  }
  mem.trap_roundtrip();

  Status s;
  EntryPoint* ep = lookup(cpu, id, &s);
  if (ep == nullptr) return s;

  cpu.counters().inc(obs::Counter::kCallsAsync);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kAsyncEnqueue, id);

  // "Asynchronous requests are implemented ... by putting the calling
  //  process onto the processor ready-queue rather than linking it into the
  //  call descriptor of the worker." (§4.4)
  const auto& text = text_[cpu.node()];
  mem.exec(text.async_enqueue, CostCategory::kPpcKernel);
  mem.exec(text.kernel_save, CostCategory::kKernelSaveRestore);
  mem.store(caller.context_save_area(), cal_.kernel_ctx_bytes,
            TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  machine_.ready(cpu, caller);

  auto& epcpu = ep->per_cpu(cpu.id());
  Worker* w = acquire_worker(cpu, *ep);
  CallDescriptor* cd = acquire_cd(cpu, *w);
  cd->set_caller(nullptr);
  cd->set_caller_identity(caller.program(), caller.pid());

  epcpu.in_progress++;
  epcpu.active_workers.push_back(w);

  map_worker_stack(cpu, *ep, *w, cd);
  enter_server_space(cpu, caller, *ep);
  run_handler(cpu, *ep, *w, caller.program(), caller.pid(), regs);

  if (w->blocked_in_call()) {
    cd->regs() = regs;
    return Status::kOk;
  }
  complete_call(cpu, *ep, *w, regs);
  return Status::kOk;
}

Status PpcFacility::dispatch_no_caller(Cpu& cpu, EntryPointId id, RegSet regs,
                                       bool charge_trap,
                                       kernel::Process* caller_to_ready) {
  auto& mem = cpu.mem();
  if (charge_trap) mem.trap_roundtrip();
  if (caller_to_ready != nullptr) machine_.ready(cpu, *caller_to_ready);

  Status s;
  EntryPoint* ep = lookup(cpu, id, &s);
  if (ep == nullptr) return s;

  auto& epcpu = ep->per_cpu(cpu.id());
  Worker* w = acquire_worker(cpu, *ep);
  CallDescriptor* cd = acquire_cd(cpu, *w);
  cd->set_caller(nullptr);
  cd->set_caller_identity(/*kernel*/ 0, kInvalidPid);

  epcpu.in_progress++;
  epcpu.active_workers.push_back(w);

  map_worker_stack(cpu, *ep, *w, cd);
  if (!ep->address_space()->supervisor()) mem.tlb_flush_user();
  run_handler(cpu, *ep, *w, /*caller_prog=*/0, kInvalidPid, regs);

  if (w->blocked_in_call()) {
    cd->regs() = regs;
    return Status::kOk;
  }
  complete_call(cpu, *ep, *w, regs);
  return Status::kOk;
}

Status PpcFacility::upcall(Cpu& cpu, EntryPointId id, RegSet regs) {
  cpu.counters().inc(obs::Counter::kCallsUpcall);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kUpcall, id);
  return dispatch_no_caller(cpu, id, std::move(regs), /*charge_trap=*/true,
                            nullptr);
}

void PpcFacility::raise_interrupt(CpuId target, Cycles time, EntryPointId id,
                                  RegSet regs) {
  // "An asynchronous request from the kernel to the device server is
  //  manufactured by the interrupt handler and dispatched as for a normal
  //  call." (§4.4) The trap cost is charged by the machine's interrupt
  //  delivery; the dispatch path is the normal no-caller PPC path.
  machine_.post_event(target, time, [this, id, regs](Cpu& cpu) mutable {
    cpu.counters().inc(obs::Counter::kCallsInterrupt);
    HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                     obs::TraceEvent::kInterrupt, id);
    dispatch_no_caller(cpu, id, regs, /*charge_trap=*/false, nullptr);
  });
}

void PpcFacility::resume_worker(Cpu& cpu, Worker& worker) {
  HPPC_ASSERT_MSG(worker.blocked_in_call(), "worker is not blocked");
  HPPC_ASSERT_MSG(worker.home_cpu() == cpu.id(),
                  "workers never migrate; resume via an event on their CPU");
  auto& mem = cpu.mem();
  EntryPoint& ep = *worker.entry_point();
  CallDescriptor* cd = worker.active_cd();

  // Re-dispatch the worker: reload its context.
  mem.exec(machine_.text(cpu.node()).dispatch, CostCategory::kPpcKernel);
  mem.load(worker.context_save_area(), cal_.worker_ctx_bytes,
           TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);

  Process* prev = cpu.current();
  worker.set_state(ProcessState::kRunning);
  cpu.set_current(&worker);

  auto resume = std::move(worker.resume_fn());
  worker.resume_fn() = nullptr;
  ServerCtx ctx(*this, cpu, worker, cd->caller_program(), cd->caller_pid());
  resume(ctx, cd->regs());

  cpu.set_current(prev);
  if (worker.blocked_in_call()) return;  // blocked again

  // Epilogue that run_handler skipped when the call first blocked.
  mem.access_mapped(cd->stack_page() + kPageSize - 64,
                    worker.stack_vaddr() + kPageSize - 64,
                    cal_.server_prologue_bytes, /*is_store=*/false,
                    ep.address_space()->tlb_context(),
                    CostCategory::kServerTime);

  RegSet regs = cd->regs();
  Process* caller = cd->caller();
  complete_call(cpu, ep, worker, regs);
  if (caller != nullptr) {
    // The synchronous-style caller becomes runnable again.
    machine_.ready(cpu, *caller);
    caller->set_state(ProcessState::kReady);
  }
}

Status PpcFacility::call_remote(
    Cpu& cpu, Process& caller, CpuId target, EntryPointId id, RegSet regs,
    std::function<void(Status, RegSet&)> on_complete) {
  if (target == cpu.id()) {
    return call_blocking(cpu, caller, id, std::move(regs),
                         std::move(on_complete));
  }
  HPPC_ASSERT(target < machine_.num_cpus());
  auto& mem = cpu.mem();
  cpu.counters().inc(obs::Counter::kCallsRemote);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kRemoteCall, target);

  // Origin side: save state, block the caller, ship the request as an
  // interrupt to the target processor (§4.3: cross-processor operations
  // travel as remote interrupts).
  const bool user_caller = !caller.address_space()->supervisor();
  if (user_caller) {
    const UserStubText& stub = user_stub(*caller.address_space());
    mem.exec(stub.save, CostCategory::kUserSaveRestore);
    mem.store(caller.user_stack(), cal_.user_reg_bytes,
              user_ctx_of(*caller.address_space()),
              CostCategory::kUserSaveRestore);
  }
  mem.trap_roundtrip();
  const auto& text = text_[cpu.node()];
  mem.exec(text.kernel_save, CostCategory::kKernelSaveRestore);
  mem.store(caller.context_save_area(), cal_.kernel_ctx_bytes,
            TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
  machine_.block(caller);

  const CpuId origin = cpu.id();
  Process* caller_ptr = &caller;

  // The target executes the call with *its own* resources; the completion
  // posts an IPI back to the origin, which restores and readies the caller.
  machine_.post_ipi(
      cpu, target,
      [this, id, regs, origin, caller_ptr, target,
       done = std::move(on_complete)](Cpu& tcpu) mutable {
        dispatch_no_caller_with_completion(
            tcpu, id, std::move(regs),
            [this, origin, caller_ptr, target,
             done = std::move(done)](Status s, RegSet& out) mutable {
              RegSet result = out;
              machine_.post_ipi(
                  machine_.cpu(target), origin,
                  [this, caller_ptr, done = std::move(done), result,
                   s](Cpu& ocpu) mutable {
                    auto& omem = ocpu.mem();
                    omem.exec(text_[ocpu.node()].kernel_restore,
                              CostCategory::kKernelSaveRestore);
                    omem.load(caller_ptr->context_save_area(),
                              cal_.kernel_ctx_bytes, TlbContext::kSupervisor,
                              CostCategory::kKernelSaveRestore);
                    machine_.ready(ocpu, *caller_ptr);
                    if (done) done(s, result);
                  });
            });
      });
  return Status::kOk;
}

Status PpcFacility::dispatch_no_caller_with_completion(
    Cpu& cpu, EntryPointId id, RegSet regs,
    std::function<void(Status, RegSet&)> completion) {
  Status s;
  EntryPoint* ep = lookup(cpu, id, &s);
  if (ep == nullptr) {
    set_rc(regs, s);
    if (completion) completion(s, regs);
    return s;
  }
  auto& epcpu = ep->per_cpu(cpu.id());
  Worker* w = acquire_worker(cpu, *ep);
  CallDescriptor* cd = acquire_cd(cpu, *w);
  cd->set_caller(nullptr);
  cd->set_caller_identity(/*kernel*/ 0, kInvalidPid);
  cd->completion() = std::move(completion);

  epcpu.in_progress++;
  epcpu.active_workers.push_back(w);

  map_worker_stack(cpu, *ep, *w, cd);
  if (!ep->address_space()->supervisor()) cpu.mem().tlb_flush_user();
  run_handler(cpu, *ep, *w, /*caller_prog=*/0, kInvalidPid, regs);

  if (w->blocked_in_call()) {
    cd->regs() = regs;
    return Status::kOk;
  }
  complete_call(cpu, *ep, *w, regs);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Frank: resource creation slow paths and the PPC-visible interface
// ---------------------------------------------------------------------------

Worker* PpcFacility::frank_create_worker(Cpu& cpu, EntryPoint& ep) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];

  // Redirect cost + creation/initialization of the worker process (§4.5.6:
  // "the call is redirected to Frank, who creates a new worker process,
  // initializes it for the particular target entry point, and forwards the
  // call to the original target entry point").
  mem.exec(text.frank_redirect, CostCategory::kPpcKernel);
  mem.charge(CostCategory::kPpcKernel, cal_.worker_create_cycles);

  auto& alloc = machine_.allocator();
  auto w = std::make_unique<Worker>(
      machine_.allocate_pid(), ep.program(), ep.address_space(),
      ep.config().name + "-worker", &ep, cpu.id());
  w->set_context_save_area(alloc.alloc(cpu.node(), 64, 16));
  // Each worker owns a disjoint stack window in the server's space so that
  // concurrent calls never collide on the mapping.
  w->set_stack_vaddr(kStackVaBase +
                     SimAddr{++worker_slot_counter_} * kStackVaStride);
  w->set_call_handler(ep.initial_handler());

  if (ep.config().hold_cd) {
    // The worker permanently acquires a CD and stack (§2's security
    // compromise); it is charged as part of worker creation.
    CdPool& pool = cd_pool_of(cpu, ep.config().trust_group);
    CallDescriptor* cd = pool.pool.pop();
    if (cd == nullptr) cd = frank_create_cd(cpu);
    w->set_held_cd(cd);
    // Map the held stack permanently.
    ep.address_space()->map_page(w->stack_vaddr(), cd->stack_page());
    mem.tlb_map_one(w->stack_vaddr(), ep.address_space()->tlb_context());
    w->set_mapped_stack_pages(1);
  }

  ep.per_cpu(cpu.id()).workers_created++;
  cpu.counters().inc(obs::Counter::kWorkersCreated);
  HPPC_TRACE_EVENT(cpu.trace_ring(), cpu.now(), cpu.id(),
                   obs::TraceEvent::kWorkerCreate, ep.id());
  Worker* raw = w.get();
  workers_.push_back(std::move(w));
  return raw;
}

CallDescriptor* PpcFacility::frank_create_cd(Cpu& cpu) {
  auto& mem = cpu.mem();
  const auto& text = text_[cpu.node()];
  mem.exec(text.frank_redirect, CostCategory::kCdManipulation);
  mem.charge(CostCategory::kCdManipulation, cal_.cd_create_cycles);

  auto& alloc = machine_.allocator();
  const NodeId n = cpu.node();
  auto cd = std::make_unique<CallDescriptor>(
      alloc.alloc(n, 32, 32), machine_.frames().alloc(n), cpu.id());
  cpu.counters().inc(obs::Counter::kCdsCreated);
  CallDescriptor* raw = cd.get();
  cds_.push_back(std::move(cd));
  return raw;
}

void PpcFacility::frank_handler(ServerCtx& ctx, RegSet& regs) {
  switch (opcode_of(regs)) {
    case kFrankAllocEp: {
      auto it = staged_binds_.find(regs[0]);
      if (it == staged_binds_.end()) {
        set_rc(regs, Status::kInvalidArgument);
        return;
      }
      StagedBind sb = std::move(it->second);
      staged_binds_.erase(it);
      // Only the program that staged the request may complete it (§4.1:
      // servers authenticate callers by program id themselves).
      if (sb.program != ctx.caller_program() && ctx.caller_program() != 0) {
        set_rc(regs, Status::kPermissionDenied);
        return;
      }
      ctx.work(220);  // table updates on every processor
      const EntryPointId id = bind(std::move(sb.cfg), sb.as, sb.program,
                                   std::move(sb.handler), sb.code);
      ctx.cpu().counters().inc(obs::Counter::kBinds);
      HPPC_TRACE_EVENT(ctx.cpu().trace_ring(), ctx.cpu().now(),
                       ctx.cpu().id(), obs::TraceEvent::kBind, id);
      regs[0] = id;
      set_rc(regs, Status::kOk);
      return;
    }
    case kFrankSoftKill: {
      ctx.work(80);
      set_rc(regs, soft_kill(ctx.cpu(), regs[0]));
      return;
    }
    case kFrankHardKill: {
      ctx.work(120);
      set_rc(regs, hard_kill(ctx.cpu(), regs[0]));
      return;
    }
    case kFrankTrimPools: {
      trim_pools(ctx.cpu());
      set_rc(regs, Status::kOk);
      return;
    }
    case kFrankStats: {
      EntryPoint* ep = entry_point(regs[0]);
      if (ep == nullptr) {
        set_rc(regs, Status::kNoSuchEntryPoint);
        return;
      }
      ctx.work(40);
      regs[0] = ep->total_workers_created();
      regs[1] = ep->total_in_progress();
      // Per-CPU observability counters of the *calling* processor, so a
      // server can audit the zero-contention claim through the same Frank
      // interface it uses for everything else (truncated to Word).
      const obs::SlotCounters& c = ctx.cpu().counters();
      regs[2] = static_cast<Word>(c.get(obs::Counter::kCallsSync));
      regs[3] = static_cast<Word>(c.get(obs::Counter::kFrankWorkerRefills));
      regs[4] = static_cast<Word>(c.get(obs::Counter::kFrankCdRefills));
      regs[5] = static_cast<Word>(c.get(obs::Counter::kLocksTaken));
      regs[6] = static_cast<Word>(c.get(obs::Counter::kSharedLinesTouched));
      set_rc(regs, Status::kOk);
      return;
    }
    default:
      set_rc(regs, Status::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Death and destruction (§4.5.2)
// ---------------------------------------------------------------------------

Status PpcFacility::soft_kill(Cpu& from, EntryPointId id) {
  from.counters().inc(obs::Counter::kSoftKills);
  HPPC_TRACE_EVENT(from.trace_ring(), from.now(), from.id(),
                   obs::TraceEvent::kSoftKill, id);
  EntryPoint* ep = entry_point(id);
  if (ep == nullptr || ep->state() == EpState::kDead) {
    return Status::kNoSuchEntryPoint;
  }
  if (ep->state() == EpState::kDraining) return Status::kOk;
  // "a soft-kill removes the entry point and all associated data structures
  //  immediately, but allows calls in progress to complete"
  ep->set_state(EpState::kDraining);
  finish_drain_if_idle(*ep);
  return Status::kOk;
}

void PpcFacility::hard_kill_on_cpu(Cpu& cpu, EntryPoint& ep) {
  auto& mem = cpu.mem();
  auto& epcpu = ep.per_cpu(cpu.id());

  // Abort calls in progress on this CPU (only blocked workers can be
  // mid-call when the IPI arrives; a running call occupies the CPU).
  std::vector<Worker*> actives = epcpu.active_workers;
  for (Worker* w : actives) {
    HPPC_ASSERT(w->blocked_in_call());
    w->resume_fn() = nullptr;
    CallDescriptor* cd = w->active_cd();
    set_rc(cd->regs(), Status::kCallAborted);
    RegSet regs = cd->regs();
    Process* caller = cd->caller();
    auto completion = std::move(cd->completion());
    cd->completion() = nullptr;

    unmap_worker_stack(cpu, ep, *w, cd);
    release_cd(cpu, *w, cd);
    w->set_active_cd(nullptr);
    w->set_state(ProcessState::kDead);
    --epcpu.in_progress;

    if (caller != nullptr) {
      mem.load(caller->context_save_area(), cal_.kernel_ctx_bytes,
               TlbContext::kSupervisor, CostCategory::kKernelSaveRestore);
      machine_.ready(cpu, *caller);
    }
    if (completion) completion(Status::kCallAborted, regs);
  }
  epcpu.active_workers.clear();

  // Destroy pooled workers and return held resources.
  while (Worker* w = epcpu.pool.pop()) {
    reclaim_worker(cpu, w);
  }
  // Clear this CPU's table entry.
  auto& st = state(cpu);
  if (ep.id() < kMaxEntryPoints) {
    mem.store(st.table_saddr + SimAddr{ep.id()} * 4, 4,
              TlbContext::kSupervisor, CostCategory::kPpcKernel);
    st.service_table[ep.id()] = nullptr;
  } else {
    mem.store(st.hashed_table_saddr + (ep.id() % 32) * 32, 16,
              TlbContext::kSupervisor, CostCategory::kPpcKernel);
    st.hashed_table.erase(ep.id());
  }
}

void PpcFacility::reclaim_worker(Cpu& cpu, Worker* w) {
  auto& mem = cpu.mem();
  cpu.counters().inc(obs::Counter::kWorkersReclaimed);
  mem.charge(CostCategory::kPpcKernel, 60);  // teardown
  if (CallDescriptor* cd = w->held_cd()) {
    EntryPoint& ep = *w->entry_point();
    if (w->mapped_stack_pages() > 0) {
      ep.address_space()->unmap_page(w->stack_vaddr());
      mem.tlb_unmap_one(w->stack_vaddr(), ep.address_space()->tlb_context());
      w->set_mapped_stack_pages(0);
    }
    w->set_held_cd(nullptr);
    cd->set_in_use(false);
    cd_pool_of(machine_.cpu(cd->home_cpu()),
               w->entry_point()->config().trust_group)
        .pool.push(cd);
  }
  w->set_state(ProcessState::kDead);
}

Status PpcFacility::hard_kill(Cpu& from, EntryPointId id) {
  from.counters().inc(obs::Counter::kHardKills);
  HPPC_TRACE_EVENT(from.trace_ring(), from.now(), from.id(),
                   obs::TraceEvent::kHardKill, id);
  EntryPoint* ep = entry_point(id);
  if (ep == nullptr || ep->state() == EpState::kDead) {
    return Status::kNoSuchEntryPoint;
  }
  // "The hard-kill frees all resources and aborts any calls in progress."
  // Per-processor resources may only be touched by their owner (§4.5.2:
  // "some cleanup operations [are] performed by interrupting the
  // appropriate processor", like TLB shootdown).
  ep->set_state(EpState::kDead);
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    if (c == from.id()) {
      hard_kill_on_cpu(from, *ep);
    } else {
      EntryPoint* raw = ep;
      machine_.post_ipi(from, c, [this, raw](Cpu& target) {
        hard_kill_on_cpu(target, *raw);
      });
    }
  }
  return Status::kOk;
}

Status PpcFacility::exchange(Cpu& from, EntryPointId id,
                             Worker::CallHandler new_handler) {
  (void)from;
  EntryPoint* ep = entry_point(id);
  if (ep == nullptr || ep->state() != EpState::kActive) {
    return Status::kNoSuchEntryPoint;
  }
  // On-line replacement (§4.5.2): new workers get the new handler; workers
  // already initialized keep the old code until reclaimed. Drain pooled
  // workers so subsequent calls pick up the replacement immediately.
  ep->set_initial_handler(std::move(new_handler));
  for (CpuId c = 0; c < machine_.num_cpus(); ++c) {
    auto& pool = ep->per_cpu(c).pool;
    while (Worker* w = pool.pop()) {
      reclaim_worker(machine_.cpu(c), w);
    }
  }
  return Status::kOk;
}

void PpcFacility::trim_pools(Cpu& cpu) {
  // "extra stacks created during peak call activity can easily be
  //  reclaimed" (§2).
  cpu.counters().inc(obs::Counter::kPoolTrims);
  auto& st = state(cpu);
  constexpr std::size_t kCdTarget = 2;
  for (auto& pool : st.cd_pools) {
    while (pool.pool.size() > kCdTarget) {
      CallDescriptor* cd = pool.pool.pop();
      cpu.mem().charge(CostCategory::kCdManipulation, 24);
      // The descriptor's stack page goes back to the frame allocator for
      // reuse; the CD object itself is retired.
      machine_.frames().free(cd->stack_page());
    }
  }
  auto trim_ep = [&](EntryPoint* ep) {
    if (ep == nullptr || ep->state() != EpState::kActive) return;
    auto& epcpu = ep->per_cpu(cpu.id());
    while (epcpu.pool.size() > ep->config().pool_target) {
      Worker* w = epcpu.pool.pop();
      reclaim_worker(cpu, w);
    }
  };
  for (auto& ep : eps_) trim_ep(ep.get());
  for (auto& [id, ep] : hashed_eps_) trim_ep(ep.get());
}

}  // namespace hppc::ppc
