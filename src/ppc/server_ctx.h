// The environment a server's call-handling routine runs in.
//
// The handler executes on the caller's processor inside a worker process
// (§2). Through this context it can: identify the caller (program id — the
// separated authentication of §4.1), charge its own computation and memory
// traffic to the "server time" category, use its stack, swap its worker's
// call-handling routine (§4.5.3), make nested PPC calls, and block
// mid-call awaiting an event (device servers).
#pragma once

#include <functional>

#include "common/types.h"
#include "ppc/regs.h"
#include "sim/cost.h"
#include "sim/memctx.h"

namespace hppc::kernel {
class Cpu;
class Machine;
}

namespace hppc::ppc {

class PpcFacility;
class Worker;
class EntryPoint;

class ServerCtx {
 public:
  ServerCtx(PpcFacility& ppc, kernel::Cpu& cpu, Worker& worker,
            ProgramId caller_program, Pid caller_pid)
      : ppc_(ppc),
        cpu_(cpu),
        worker_(worker),
        caller_program_(caller_program),
        caller_pid_(caller_pid) {}

  kernel::Cpu& cpu() { return cpu_; }
  kernel::Machine& machine();
  PpcFacility& ppc() { return ppc_; }
  Worker& worker() { return worker_; }
  EntryPoint& entry_point();

  /// Identity of the caller, for server-side authentication (§4.1:
  /// "Callers are identified to servers by their program ID").
  ProgramId caller_program() const { return caller_program_; }
  Pid caller_pid() const { return caller_pid_; }

  // --- cost charging (all booked to kServerTime) ---

  /// Pure computation.
  void work(Cycles cycles);

  /// Server data access (its own structures, in its own address space).
  void touch(SimAddr addr, std::size_t bytes, bool is_store);

  /// Stack access at byte offset `off` from the top of the worker's stack.
  /// Offsets beyond the mapped pages fault under the kLazyFault strategy
  /// (§4.5.4) — the fault cost is charged and the page mapped for the rest
  /// of the call.
  void touch_stack(std::size_t off, std::size_t bytes, bool is_store);

  // --- worker-initialization protocol (§4.5.3) ---

  /// Replace this worker's call-handling routine; typically called by an
  /// init routine on the first call so later calls skip the one-time setup.
  void set_worker_handler(std::function<void(ServerCtx&, RegSet&)> h);

  // --- nested calls ---

  /// Make a synchronous PPC call from inside the handler (servers are
  /// clients of other servers, e.g. CopyTo/CopyFrom are "normal PPC
  /// requests made to the CopyServer", §4.2).
  Status call(EntryPointId ep, RegSet& regs);

  // --- blocking (engine mode) ---

  /// Block the call: the handler returns after this, the worker stays bound
  /// to the call, and `resume` runs when PpcFacility::resume_worker is
  /// invoked (e.g. from a device-interrupt PPC). Only valid for calls made
  /// through call_blocking / async / interrupt variants.
  void block_call(std::function<void(ServerCtx&, RegSet&)> resume);

 private:
  friend class PpcFacility;
  PpcFacility& ppc_;
  kernel::Cpu& cpu_;
  Worker& worker_;
  ProgramId caller_program_;
  Pid caller_pid_;
};

}  // namespace hppc::ppc
