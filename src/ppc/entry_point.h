// Service entry points (§4.5.5) and their per-processor resources (Figure 1).
//
// An entry point binds a small-integer id to a server address space and a
// call-handling routine. Every processor holds its own pool of workers for
// the entry point; the pools "most commonly contain only a single worker,
// but can grow and shrink dynamically as needed" (§2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/free_stack.h"
#include "common/types.h"
#include "ppc/worker.h"

namespace hppc::kernel {
class AddressSpace;
}

namespace hppc::ppc {

/// §4.5.2: soft-kill drains, hard-kill aborts.
enum class EpState : std::uint8_t {
  kActive = 0,
  kDraining,  // soft-killed: in-progress calls complete, new calls rejected
  kDead,      // fully deallocated (slot may be reused)
};

/// §4.5.4 stack strategies.
enum class StackStrategy : std::uint8_t {
  kSinglePage = 0,   // default: the CD's one page
  kFixedMultiple,    // N pages mapped up front, per service (exceptional path)
  kLazyFault,        // 1 page mapped; growth through page faults
};

struct EntryPointConfig {
  std::string name = "service";
  /// Kernel-space service: the worker runs in the supervisor address space,
  /// so no TLB flush is needed on the way in or out (Figure 2's
  /// "User to Kernel" bars).
  bool kernel_space = false;
  /// Hold-CD mode (§2): workers permanently keep a CD+stack. Faster per
  /// call by 2-3 us, but defeats the serial stack sharing.
  bool hold_cd = false;
  StackStrategy stack_strategy = StackStrategy::kSinglePage;
  /// Pages for kFixedMultiple; max pages reachable for kLazyFault.
  std::uint32_t stack_pages = 1;
  /// Pool trim level: extra workers beyond this may be reclaimed.
  std::uint32_t pool_target = 1;
  /// Trust group for stack sharing (§2's compromise): CDs/stacks are only
  /// serially shared among services in the same group. Group 0 is the
  /// default shared pool.
  std::uint32_t trust_group = 0;
  /// Request a direct-indexed id (fast lookup). Services that opt out — or
  /// that arrive after the fixed table is full — live in the per-processor
  /// overflow hash table and pay extra loads on lookup (§4.5.5).
  bool fast_lookup = true;
};

class EntryPoint {
 public:
  EntryPoint(EntryPointId id, EntryPointConfig cfg,
             kernel::AddressSpace* as, ProgramId program,
             Worker::CallHandler initial_handler, std::size_t num_cpus)
      : id_(id),
        cfg_(std::move(cfg)),
        as_(as),
        program_(program),
        initial_handler_(std::move(initial_handler)),
        per_cpu_(num_cpus) {}

  EntryPointId id() const { return id_; }
  const EntryPointConfig& config() const { return cfg_; }
  kernel::AddressSpace* address_space() const { return as_; }
  ProgramId program() const { return program_; }

  EpState state() const { return state_; }
  void set_state(EpState s) { state_ = s; }

  /// The routine installed into each newly created worker — for services
  /// with one-time setup this is the *initialization* routine (§4.5.3).
  const Worker::CallHandler& initial_handler() const {
    return initial_handler_;
  }
  void set_initial_handler(Worker::CallHandler h) {
    initial_handler_ = std::move(h);
  }

  struct PerCpu {
    FreeStack<Worker, &Worker::pool_link> pool;
    /// Extra stack pages for the kFixedMultiple / kLazyFault strategies,
    /// kept on an independent per-CPU list as §4.5.4 prescribes.
    std::vector<SimAddr> extra_stack_pages;
    /// Workers currently servicing a call on this CPU (needed by hard-kill
    /// to abort in-flight calls, §4.5.2).
    std::vector<Worker*> active_workers;
    std::uint32_t in_progress = 0;    // calls being serviced on this CPU
    std::uint32_t workers_created = 0;
    SimAddr saddr = kInvalidAddr;     // pool header, node-local
  };

  PerCpu& per_cpu(CpuId cpu) {
    HPPC_ASSERT(cpu < per_cpu_.size());
    return per_cpu_[cpu];
  }

  std::size_t num_cpus() const { return per_cpu_.size(); }

  /// Total calls in progress across processors (drain detection, §4.5.2).
  std::uint32_t total_in_progress() const {
    std::uint32_t n = 0;
    for (const auto& pc : per_cpu_) n += pc.in_progress;
    return n;
  }

  std::uint32_t total_workers_created() const {
    std::uint32_t n = 0;
    for (const auto& pc : per_cpu_) n += pc.workers_created;
    return n;
  }

 private:
  EntryPointId id_;
  EntryPointConfig cfg_;
  kernel::AddressSpace* as_;
  ProgramId program_;
  Worker::CallHandler initial_handler_;
  std::vector<PerCpu> per_cpu_;
  EpState state_ = EpState::kActive;
};

}  // namespace hppc::ppc
