// The PPC facility: the paper's primary contribution.
//
// Fast-path property (§1, §2): a call in the common case touches only
// resources owned by the local processor — its service-table copy, its CD
// pool, the target service's local worker pool, and a node-local stack
// page — so it accesses no shared data and takes no lock. The only global
// synchronization in this implementation lives on the slow paths (binding,
// kills, Frank refills), exactly as in the paper.
//
// Variants (§4.4): synchronous calls, asynchronous calls (caller goes to
// the ready queue instead of being linked into the CD), interrupt
// dispatching (an async PPC manufactured by the interrupt handler), and
// upcalls (the same mechanism triggered by software).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kernel/machine.h"
#include "ppc/code_layout.h"
#include "ppc/cpu_state.h"
#include "ppc/entry_point.h"
#include "ppc/regs.h"
#include "ppc/server_ctx.h"
#include "ppc/worker.h"

namespace hppc::ppc {

/// Well-known entry points (§4.5.5, §4.5.6).
inline constexpr EntryPointId kFrankEp = 1;       // resource manager
inline constexpr EntryPointId kNameServerEp = 2;  // name service
inline constexpr EntryPointId kCopyServerEp = 3;  // bulk data (§4.2)
inline constexpr EntryPointId kFirstDynamicEp = 8;

/// Extra cost/shape knobs for a service beyond EntryPointConfig: the
/// simulated footprint of its handler code and where its text/data live.
struct ServiceCode {
  std::uint32_t handler_instructions = 20;  // null server: a few saves
  NodeId home_node = 0;  // where the server's text and data live
};

/// Frank's PPC interface (§4.5.6): opcodes in the opflags word.
enum FrankOp : Word {
  kFrankAllocEp = 1,    // w[0]=bind token      -> w[0]=new EP id
  kFrankSoftKill = 2,   // w[0]=EP id
  kFrankHardKill = 3,   // w[0]=EP id
  kFrankTrimPools = 4,  // reclaim surplus workers/CDs on this CPU
  kFrankStats = 5,      // w[0]=EP id -> w[0]=workers created, w[1]=in flight
};

class PpcFacility {
 public:
  explicit PpcFacility(kernel::Machine& machine, PpcCalibration cal = {});
  ~PpcFacility();

  PpcFacility(const PpcFacility&) = delete;
  PpcFacility& operator=(const PpcFacility&) = delete;

  kernel::Machine& machine() { return machine_; }
  const PpcCalibration& calibration() const { return cal_; }

  // ------------------------------------------------------------------
  // Binding and destruction
  // ------------------------------------------------------------------

  /// Bind a service directly (the in-kernel path Frank itself uses).
  /// `as == nullptr` binds into the kernel address space (kernel_space
  /// services). Returns the new entry point id.
  EntryPointId bind(EntryPointConfig cfg, kernel::AddressSpace* as,
                    ProgramId program, Worker::CallHandler initial_handler,
                    ServiceCode code = {});

  /// Bind at a fixed, well-known id (name server, copy server; §4.5.5:
  /// "the Name Server (which has a well-known entry point ID)").
  EntryPointId bind_well_known(EntryPointId id, EntryPointConfig cfg,
                               kernel::AddressSpace* as, ProgramId program,
                               Worker::CallHandler initial_handler,
                               ServiceCode code = {});

  /// Stage a bind request for Frank: returns a token a client passes in
  /// w[0] of a kFrankAllocEp call. (In the real system the token is the
  /// handler's address inside the caller's space; here it indexes a staged
  /// request since host function objects cannot travel through registers.)
  std::uint32_t prepare_bind(EntryPointConfig cfg, kernel::AddressSpace* as,
                             ProgramId program,
                             Worker::CallHandler initial_handler,
                             ServiceCode code = {});

  /// §4.5.2. soft_kill lets in-progress calls complete; hard_kill aborts
  /// them and reclaims per-CPU resources by interrupting each processor.
  Status soft_kill(kernel::Cpu& from, EntryPointId id);
  Status hard_kill(kernel::Cpu& from, EntryPointId id);

  /// §4.5.2 mentions Exchange for on-line replacement: atomically rebind
  /// the id to a new handler; in-flight calls finish against the old one.
  Status exchange(kernel::Cpu& from, EntryPointId id,
                  Worker::CallHandler new_handler);

  EntryPoint* entry_point(EntryPointId id);

  // ------------------------------------------------------------------
  // Call variants
  // ------------------------------------------------------------------

  /// Synchronous PPC: the common case. The handler must not block (use
  /// call_blocking for services that may). regs[kOpWord] carries
  /// opcode+flags in, rc out; all 8 words travel both ways in registers.
  Status call(kernel::Cpu& cpu, kernel::Process& caller, EntryPointId id,
              RegSet& regs);

  /// Synchronous semantics with a continuation-style return so the server
  /// may block mid-call (engine mode). `on_complete` runs on the caller's
  /// CPU when the call finishes; the caller process is blocked meanwhile.
  Status call_blocking(kernel::Cpu& cpu, kernel::Process& caller,
                       EntryPointId id, RegSet regs,
                       std::function<void(Status, RegSet&)> on_complete);

  /// Asynchronous PPC (§4.4): the caller is placed on the ready queue
  /// rather than linked into the CD, and continues independently.
  Status call_async(kernel::Cpu& cpu, kernel::Process& caller,
                    EntryPointId id, RegSet regs);

  /// Upcall (§4.4): a software interrupt — an async PPC with no caller.
  Status upcall(kernel::Cpu& cpu, EntryPointId id, RegSet regs);

  /// Interrupt dispatching (§4.4): schedule delivery of a device interrupt
  /// on `target` at `time`; the interrupt handler manufactures an async
  /// PPC to entry point `id`.
  void raise_interrupt(CpuId target, Cycles time, EntryPointId id,
                       RegSet regs);

  /// Cross-processor PPC (§4.3's "cross-process PPC variant", listed as
  /// future work in the paper): execute the call on `target` using that
  /// processor's resources; results return by IPI and `on_complete` runs on
  /// the caller's CPU. For devices and low-level OS functions only — the
  /// local case is the one worth optimizing.
  Status call_remote(kernel::Cpu& cpu, kernel::Process& caller, CpuId target,
                     EntryPointId id, RegSet regs,
                     std::function<void(Status, RegSet&)> on_complete);

  /// Resume a worker previously blocked via ServerCtx::block_call.
  /// Must run on the worker's home CPU (cross-CPU wakeups arrive as
  /// events/IPIs, like every cross-processor operation).
  void resume_worker(kernel::Cpu& cpu, Worker& worker);

  // ------------------------------------------------------------------
  // Maintenance / introspection
  // ------------------------------------------------------------------

  /// Reclaim surplus pool entries on this CPU down to each service's
  /// pool_target ("extra stacks created during peak call activity can
  /// easily be reclaimed", §2).
  void trim_pools(kernel::Cpu& cpu);

  CpuPpcState& state(kernel::Cpu& cpu);
  CpuPpcState& state(CpuId id) { return state(machine_.cpu(id)); }

  /// Client-side stub text for an address space (created on first use).
  const UserStubText& user_stub(kernel::AddressSpace& as);

  /// Total workers currently pooled for an EP on a CPU (tests).
  std::size_t pooled_workers(CpuId cpu, EntryPointId id);

 private:
  friend class ServerCtx;

  struct StagedBind {
    EntryPointConfig cfg;
    kernel::AddressSpace* as;
    ProgramId program;
    Worker::CallHandler handler;
    ServiceCode code;
  };

  struct ServiceText {
    sim::CodeRegion handler_code;
  };

  // Fast-path helpers (all charge costs on `cpu`).
  EntryPoint* lookup(kernel::Cpu& cpu, EntryPointId id, Status* out_status);
  Worker* acquire_worker(kernel::Cpu& cpu, EntryPoint& ep);
  CallDescriptor* acquire_cd(kernel::Cpu& cpu, Worker& w);
  void release_cd(kernel::Cpu& cpu, Worker& w, CallDescriptor* cd);
  void map_worker_stack(kernel::Cpu& cpu, EntryPoint& ep, Worker& w,
                        CallDescriptor* cd);
  void unmap_worker_stack(kernel::Cpu& cpu, EntryPoint& ep, Worker& w,
                          CallDescriptor* cd);
  void enter_server_space(kernel::Cpu& cpu, kernel::Process& from,
                          EntryPoint& ep);
  void leave_server_space(kernel::Cpu& cpu, kernel::Process& to,
                          EntryPoint& ep);
  void run_handler(kernel::Cpu& cpu, EntryPoint& ep, Worker& w,
                   ProgramId caller_prog, Pid caller_pid, RegSet& regs);
  void complete_call(kernel::Cpu& cpu, EntryPoint& ep, Worker& w,
                     RegSet& regs);
  void finish_drain_if_idle(EntryPoint& ep);

  // Slow paths (Frank, §4.5.6).
  Worker* frank_create_worker(kernel::Cpu& cpu, EntryPoint& ep);
  CallDescriptor* frank_create_cd(kernel::Cpu& cpu);
  void frank_handler(ServerCtx& ctx, RegSet& regs);

  EntryPointId do_bind(EntryPointId id, EntryPointConfig cfg,
                       kernel::AddressSpace* as, ProgramId program,
                       Worker::CallHandler initial_handler, ServiceCode code);
  void reclaim_worker(kernel::Cpu& cpu, Worker* w);
  void hard_kill_on_cpu(kernel::Cpu& cpu, EntryPoint& ep);

  // Internal dispatch shared by async/upcall/interrupt.
  Status dispatch_no_caller(kernel::Cpu& cpu, EntryPointId id, RegSet regs,
                            bool charge_user_side,
                            kernel::Process* caller_to_ready);
  Status dispatch_no_caller_with_completion(
      kernel::Cpu& cpu, EntryPointId id, RegSet regs,
      std::function<void(Status, RegSet&)> completion);
  CdPool& cd_pool_of(kernel::Cpu& cpu, std::uint32_t group);

  kernel::Machine& machine_;
  PpcCalibration cal_;
  std::vector<PpcKernelText> text_;  // per node
  std::vector<std::unique_ptr<CpuPpcState>> cpu_state_;
  std::vector<std::unique_ptr<EntryPoint>> eps_;
  std::unordered_map<EntryPointId, std::unique_ptr<EntryPoint>> hashed_eps_;
  std::vector<std::unique_ptr<CallDescriptor>> cds_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<AsId, UserStubText> user_stubs_;
  std::unordered_map<EntryPointId, ServiceText> service_text_;
  std::unordered_map<std::uint32_t, StagedBind> staged_binds_;
  std::uint32_t next_bind_token_ = 1;
  std::uint64_t worker_slot_counter_ = 0;
  EntryPointId next_ep_ = kFirstDynamicEp;
  EntryPointId next_hashed_ep_ = kMaxEntryPoints;
  kernel::AddressSpace* frank_as_ = nullptr;  // kernel AS alias
};

}  // namespace hppc::ppc
