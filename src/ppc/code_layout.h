// Code layout and calibration of the PPC kernel path.
//
// The paper reports "approximately 2000 lines of commented code, of which
// only 200 instructions and 6 cache lines are required to complete most
// calls" (§5), and Figure 2 decomposes the round trip into categories. The
// instruction counts below distribute those ~200 instructions over the
// logical steps of the call; each step is a CodeRegion with real simulated
// addresses (replicated per NUMA node like the rest of the kernel text) so
// the I-cache model sees genuine fetch traffic.
//
// These counts are *calibration constants*: they were fitted so that the
// emergent totals land on the paper's Figure 2 numbers, and every one of
// them is sweepable by the ablation benches.
#pragma once

#include <cstdint>

#include "sim/addr.h"
#include "sim/memctx.h"

namespace hppc::ppc {

struct PpcCalibration {
  // Kernel-side steps (supervisor text).
  std::uint32_t entry_instr = 34;         // trap vector -> PPC entry + EP lookup
  std::uint32_t worker_alloc_instr = 10;  // pop per-CPU worker pool
  std::uint32_t cd_alloc_instr = 12;      // pop per-CPU CD free list
  std::uint32_t cd_fill_instr = 8;        // store return info into the CD
  std::uint32_t kernel_save_instr = 20;   // minimum state for process switch
  std::uint32_t map_stack_instr = 6;     // map CD stack page into server AS
  std::uint32_t upcall_instr = 18;        // identity switch + enter server
  std::uint32_t ret_entry_instr = 22;     // server return trap handling
  std::uint32_t unmap_stack_instr = 5;
  std::uint32_t cd_free_instr = 8;
  std::uint32_t worker_free_instr = 8;
  std::uint32_t kernel_restore_instr = 20;
  std::uint32_t async_enqueue_instr = 12;  // async variant: ready the caller

  // User-side stub (Figure 4): save/restore of user registers around the
  // trap, executing in the client's address space.
  std::uint32_t user_save_instr = 20;
  std::uint32_t user_restore_instr = 18;

  // Byte sizes of the data the steps touch.
  std::uint32_t user_reg_bytes = 56;    // registers spilled to the user stack
  std::uint32_t kernel_ctx_bytes = 32;  // caller context save area
  std::uint32_t worker_ctx_bytes = 16;  // worker (re)initialization state
  std::uint32_t cd_bytes = 16;          // return info stored in the CD
  std::uint32_t server_prologue_bytes = 32;  // server frame setup on stack

  // Frank's slow paths (§4.5.6): redirect cost plus resource creation.
  std::uint32_t frank_redirect_instr = 90;
  Cycles worker_create_cycles = 900;  // create + initialize a worker process
  Cycles cd_create_cycles = 350;      // allocate a CD + stack page

  std::uint32_t total_fast_path_instructions() const {
    return entry_instr + worker_alloc_instr + cd_alloc_instr + cd_fill_instr +
           kernel_save_instr + map_stack_instr + upcall_instr +
           ret_entry_instr + unmap_stack_instr + cd_free_instr +
           worker_free_instr + kernel_restore_instr + user_save_instr +
           user_restore_instr;
  }
};

/// Kernel-side PPC text, one replica per NUMA node.
struct PpcKernelText {
  sim::CodeRegion entry;
  sim::CodeRegion worker_alloc;
  sim::CodeRegion cd_alloc;
  sim::CodeRegion kernel_save;
  sim::CodeRegion map_stack;
  sim::CodeRegion upcall;
  sim::CodeRegion ret_entry;
  sim::CodeRegion unmap_stack;
  sim::CodeRegion cd_free;
  sim::CodeRegion worker_free;
  sim::CodeRegion kernel_restore;
  sim::CodeRegion async_enqueue;
  sim::CodeRegion frank_redirect;

  static PpcKernelText layout(sim::SimAllocator& alloc, NodeId node,
                              const PpcCalibration& cal) {
    auto region = [&](std::uint32_t instr) {
      return sim::CodeRegion{alloc.alloc(node, std::size_t{instr} * 4, 16),
                             instr, sim::TlbContext::kSupervisor};
    };
    PpcKernelText t;
    t.entry = region(cal.entry_instr);
    t.worker_alloc = region(cal.worker_alloc_instr);
    t.cd_alloc = region(cal.cd_alloc_instr + cal.cd_fill_instr);
    t.kernel_save = region(cal.kernel_save_instr);
    t.map_stack = region(cal.map_stack_instr);
    t.upcall = region(cal.upcall_instr);
    t.ret_entry = region(cal.ret_entry_instr);
    t.unmap_stack = region(cal.unmap_stack_instr);
    t.cd_free = region(cal.cd_free_instr);
    t.worker_free = region(cal.worker_free_instr);
    t.kernel_restore = region(cal.kernel_restore_instr);
    t.async_enqueue = region(cal.async_enqueue_instr);
    t.frank_redirect = region(cal.frank_redirect_instr);
    return t;
  }
};

/// Client-side stub text, allocated once per client address space.
struct UserStubText {
  sim::CodeRegion save;
  sim::CodeRegion restore;
};

}  // namespace hppc::ppc
