// Worker processes (§2).
//
// "Our implementation uses separate worker processes in the server to
//  service client calls. Worker processes are created dynamically as needed
//  and (re)initialized to the server's call handling code on each call."
//
// A worker belongs to one entry point's per-processor pool and never leaves
// its processor. Its call-handling routine is per-worker state so the
// worker-initialization protocol of §4.5.3 works: a fresh worker's routine
// is the service's *init* routine, which replaces itself on first call.
#pragma once

#include <functional>
#include <vector>

#include "common/free_stack.h"
#include "kernel/process.h"
#include "ppc/call_descriptor.h"
#include "ppc/regs.h"

namespace hppc::ppc {

class EntryPoint;
class ServerCtx;

class Worker : public kernel::Process {
 public:
  using CallHandler = std::function<void(ServerCtx&, RegSet&)>;

  Worker(Pid pid, ProgramId program, kernel::AddressSpace* as,
         std::string name, EntryPoint* ep, CpuId home_cpu)
      : Process(pid, program, as, std::move(name)),
        ep_(ep),
        home_cpu_(home_cpu) {}

  EntryPoint* entry_point() const { return ep_; }
  CpuId home_cpu() const { return home_cpu_; }

  /// The worker's current call-handling routine. Entry at creation is the
  /// service's initial routine; §4.5.3 lets the worker swap it at any time.
  const CallHandler& call_handler() const { return handler_; }
  void set_call_handler(CallHandler h) { handler_ = std::move(h); }

  /// Virtual address where this worker's stack is mapped in the server's
  /// space. Per-worker: concurrent calls (several workers active in one
  /// server, §2's "as many threads of control in the server as client
  /// requests") need disjoint stack windows.
  SimAddr stack_vaddr() const { return stack_vaddr_; }
  void set_stack_vaddr(SimAddr a) { stack_vaddr_ = a; }

  /// Hold-CD mode (§2): the worker permanently owns a CD (and so a stack).
  CallDescriptor* held_cd() const { return held_cd_; }
  void set_held_cd(CallDescriptor* cd) { held_cd_ = cd; }

  /// The CD of the call currently being serviced (the held CD, or one
  /// borrowed from the per-CPU pool for the duration of the call).
  CallDescriptor* active_cd() const { return active_cd_; }
  void set_active_cd(CallDescriptor* cd) { active_cd_ = cd; }

  /// Set while the handler has blocked mid-call awaiting an event; the
  /// facility resumes through this (see ServerCtx::block_call). Same
  /// signature as a call handler: it gets the stashed register set back.
  CallHandler& resume_fn() { return resume_; }
  bool blocked_in_call() const { return static_cast<bool>(resume_); }

  /// Number of stack pages currently mapped for the active call (1 for the
  /// CD page; more under the kFixedMultiple / kLazyFault strategies).
  std::uint32_t mapped_stack_pages() const { return mapped_stack_pages_; }
  void set_mapped_stack_pages(std::uint32_t n) { mapped_stack_pages_ = n; }

  /// Pool linkage within EntryPoint's per-CPU worker pool.
  StackLink pool_link;

  /// Physical pages mapped beyond the CD's page for the active call
  /// (kFixedMultiple / kLazyFault stack strategies, §4.5.4).
  std::vector<SimAddr> active_extra_pages;

 private:
  EntryPoint* ep_;
  CpuId home_cpu_;
  SimAddr stack_vaddr_ = kInvalidAddr;
  CallHandler handler_;
  CallDescriptor* held_cd_ = nullptr;
  CallDescriptor* active_cd_ = nullptr;
  CallHandler resume_;
  std::uint32_t mapped_stack_pages_ = 0;
};

}  // namespace hppc::ppc
