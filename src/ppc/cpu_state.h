// Per-processor PPC state (Figure 1).
//
// "each processor independently maintains a local collection of all the
//  resources required to complete a PPC call ... a pool of worker processes
//  for each server, and a pool of call descriptors (CDs) shared among all
//  the servers for use on that processor. These pools are accessed
//  exclusively by the local processor."
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/free_stack.h"
#include "common/types.h"
#include "ppc/call_descriptor.h"

namespace hppc::ppc {

class EntryPoint;

/// One CD pool. The default configuration has a single pool (group 0)
/// shared by every service on the processor; §2's trust-group compromise
/// ("collect servers that trust each other into groups and only share
/// stacks between servers in the same group") gives each group its own.
struct CdPool {
  std::uint32_t group = 0;
  FreeStack<CallDescriptor, &CallDescriptor::pool_link> pool;
  SimAddr saddr = kInvalidAddr;  // pool header, node-local
};

struct CpuPpcState {
  /// This processor's copy of the service table: a simple array indexed by
  /// entry-point id (§4.5.5: "a simple array with direct indexing can be
  /// used with each processor having its own copy").
  std::array<EntryPoint*, kMaxEntryPoints> service_table{};

  /// Simulated address of the table copy (node-local; one pointer per
  /// entry, so lookups are a single local load).
  SimAddr table_saddr = kInvalidAddr;

  /// Overflow services beyond the fixed table (§4.5.5's extension: "a more
  /// complex data structure (e.g. hash table with overflow buckets) to
  /// locate service entry points for the rest"). Lookups through here pay
  /// extra loads per probed bucket.
  std::unordered_map<EntryPointId, EntryPoint*> hashed_table;
  SimAddr hashed_table_saddr = kInvalidAddr;

  /// CD pools, one per trust group that has been used on this processor
  /// (group 0 first; linear scan is fine, groups are few).
  std::vector<CdPool> cd_pools;

  CdPool& cd_pool_for(std::uint32_t group) {
    for (auto& p : cd_pools) {
      if (p.group == group) return p;
    }
    HPPC_ASSERT_MSG(false, "cd pool for group not initialized");
    __builtin_unreachable();
  }

  // Statistics moved to the fixed-id observability block on kernel::Cpu
  // (cpu.counters(), src/obs/counters.h): same per-processor ownership
  // discipline, but uniform ids shared with the host runtime, mergeable
  // snapshots, and reachable through Frank's kFrankStats interface.
};

}  // namespace hppc::ppc
