// Client-stub helpers: the library-level equivalent of Figure 4's PPC_CALL
// macro.
//
// "Ideally we would like to preserve the procedure call interface as much
//  as possible ... To the user of the macro, it appears like a normal
//  procedure call that happens to modify the arguments for the caller."
//  (§4.5.1)
//
// ClientStub binds a (facility, cpu, caller, entry point) once; thereafter
// a call looks like a procedure call: up to seven in/out words by
// reference, the opcode supplied per call, the return code as the result.
// Like the macro, the stub adds nothing beyond loading the opflags word —
// no marshalling, no allocation.
#pragma once

#include <type_traits>

#include "ppc/facility.h"

namespace hppc::ppc {

class ClientStub {
 public:
  ClientStub(PpcFacility& ppc, kernel::Cpu& cpu, kernel::Process& self,
             EntryPointId ep)
      : ppc_(ppc), cpu_(cpu), self_(self), ep_(ep) {}

  EntryPointId entry_point() const { return ep_; }
  void retarget(EntryPointId ep) { ep_ = ep; }

  /// Procedure-call style: each argument is a Word lvalue that both passes
  /// a value in and receives a value out (the "same variables return eight
  /// values" convention). Unused positions are implicit dummies.
  template <typename... Args>
  Status operator()(Word opcode, Args&... args) {
    static_assert(sizeof...(Args) <= kPpcWords - 1,
                  "at most 7 argument words plus the opflags word");
    static_assert((std::is_same_v<Args, Word> && ...),
                  "PPC arguments are machine words");
    RegSet regs;
    std::size_t i = 0;
    ((regs[i++] = args), ...);
    set_op(regs, opcode);
    const Status s = ppc_.call(cpu_, self_, ep_, regs);
    i = 0;
    ((args = regs[i++]), ...);
    return s;
  }

  /// Raw variant when the caller wants the whole register set.
  Status call(RegSet& regs) { return ppc_.call(cpu_, self_, ep_, regs); }

 private:
  PpcFacility& ppc_;
  kernel::Cpu& cpu_;
  kernel::Process& self_;
  EntryPointId ep_;
};

}  // namespace hppc::ppc
