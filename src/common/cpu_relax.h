// Busy-wait hint shared by the host-side spin loops (the xcall completion
// spinner, the seqlock read retry in repl/). Lives in common/ so layers
// below rt/ can spin without pulling in the runtime headers.
#pragma once

namespace hppc {

/// Compiler-friendly busy-wait hint (PAUSE on x86, YIELD on arm64).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace hppc
