// Host cache-line utilities for the real-thread runtime (rt/).
//
// The paper's whole point is that per-processor state must not share cache
// lines with other processors' state; on the host we enforce that with
// alignment rather than with the NUMA placement the Hector kernel used.
#pragma once

#include <cstddef>
#include <new>

namespace hppc {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kHostCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kHostCacheLine = 64;
#endif

/// Wrap per-CPU-slot state so adjacent slots never false-share.
template <typename T>
struct alignas(kHostCacheLine) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace hppc
