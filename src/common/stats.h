// Streaming statistics and fixed-bucket histograms for benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace hppc {

/// Welford streaming mean/variance; numerically stable, O(1) per sample.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * (static_cast<double>(n_) *
                                    static_cast<double>(o.n_) / total);
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile latency recorder: stores samples, sorts on demand.
/// Intended for benchmark harnesses where sample counts are bounded.
///
/// Quantile queries are const: the sorted view lives in a lazily filled
/// cache, so a metrics sink can snapshot a recorder it only holds by
/// const reference without mutating shared state. The cache is sorted at
/// most once per batch of add() calls.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// q in [0,1]; nearest-rank.
  double quantile(double q) const {
    HPPC_ASSERT(!samples_.empty());
    HPPC_ASSERT(q >= 0.0 && q <= 1.0);
    if (!sorted_) {
      sorted_cache_ = samples_;
      std::sort(sorted_cache_.begin(), sorted_cache_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_cache_.size() - 1) + 0.5);
    return sorted_cache_[std::min(idx, sorted_cache_.size() - 1)];
  }

  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_ = false;
};

}  // namespace hppc
