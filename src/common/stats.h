// Streaming statistics and fixed-bucket histograms for benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace hppc {

/// Welford streaming mean/variance; numerically stable, O(1) per sample.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * (static_cast<double>(n_) *
                                    static_cast<double>(o.n_) / total);
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile latency recorder: stores samples, sorts on demand.
/// Intended for benchmark harnesses where sample counts are bounded.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// q in [0,1]; nearest-rank.
  double quantile(double q) {
    HPPC_ASSERT(!samples_.empty());
    HPPC_ASSERT(q >= 0.0 && q <= 1.0);
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  double median() { return quantile(0.5); }
  double p99() { return quantile(0.99); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace hppc
