// Always-on assertion macro.
//
// The simulator's correctness is the foundation of every reproduced number,
// so invariant checks stay enabled in release builds; the cost is noise next
// to the cache/TLB bookkeeping they guard.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hppc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HPPC_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace hppc::detail

#define HPPC_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) ::hppc::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HPPC_ASSERT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::hppc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
  } while (0)
