// Fundamental identifier and quantity types shared by every subsystem.
//
// The simulated machine (sim/, kernel/, ppc/) measures time in cycles of the
// modelled processor clock; the real-thread runtime (rt/) uses wall-clock
// nanoseconds. Keeping both as strong-ish aliases here avoids accidental
// mixing of host and simulated quantities.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hppc {

/// Identifier of a (simulated or host) processor. Dense, starting at 0.
using CpuId = std::uint32_t;

/// Identifier of a NUMA memory node (a Hector "station" in the paper).
using NodeId = std::uint32_t;

/// Simulated processor cycles (16.67 MHz M88100 in the default config).
using Cycles = std::uint64_t;

/// Simulated virtual/physical addresses. The machine model only needs
/// addresses for cache/TLB indexing, never for host dereferencing.
using SimAddr = std::uint64_t;

/// Process identifier within the simulated OS.
using Pid = std::uint32_t;

/// Program identifier: the unit of authentication in the paper (§4.1).
/// Several processes (e.g. all workers of one server) share a ProgramId.
using ProgramId = std::uint32_t;

/// Service entry-point identifier. Small integers usable as direct indexes
/// into the per-processor service table (§4.5.5).
using EntryPointId = std::uint32_t;

/// Address-space identifier.
using AsId = std::uint32_t;

/// One machine word of the modelled architecture (M88100: 32 bits).
/// PPC passes 8 words in each direction (§4.5.1).
using Word = std::uint32_t;

inline constexpr std::size_t kPpcWords = 8;

/// Page size of the modelled machine; PPC stacks are one page (§4.5.4).
inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageShift = 12;

/// Maximum number of service entry points (§4.5.5: "currently 1024").
inline constexpr std::size_t kMaxEntryPoints = 1024;

/// An invalid/reserved value for each id domain.
inline constexpr CpuId kInvalidCpu = ~CpuId{0};
inline constexpr Pid kInvalidPid = ~Pid{0};
inline constexpr EntryPointId kInvalidEntryPoint = ~EntryPointId{0};
inline constexpr AsId kInvalidAs = ~AsId{0};
inline constexpr SimAddr kInvalidAddr = ~SimAddr{0};

}  // namespace hppc
