// Minimal leveled logging. Off by default: the fast path being measured must
// not hide I/O in it. Enable per-binary with hppc::log_set_level().
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace hppc {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

namespace detail {
// Read from every slot thread on each log call; relaxed is sufficient — the
// level is a filter, not a synchronization point.
inline std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
}

inline void log_set_level(LogLevel level) {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
inline LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_level.load(std::memory_order_relaxed));
}

inline void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) >
      detail::g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] ", tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace hppc

#define HPPC_LOG_ERROR(...) ::hppc::logf(::hppc::LogLevel::kError, "error", __VA_ARGS__)
#define HPPC_LOG_INFO(...) ::hppc::logf(::hppc::LogLevel::kInfo, "info", __VA_ARGS__)
#define HPPC_LOG_DEBUG(...) ::hppc::logf(::hppc::LogLevel::kDebug, "debug", __VA_ARGS__)
