// Intrusive LIFO free list.
//
// Per-processor pools in the paper (call descriptors §2, workers §2) are
// plain free lists accessed only by the owning processor; LIFO order is
// deliberate — the most recently freed descriptor and stack page are the
// ones still resident in the cache ("effectively recycled on each call").
#pragma once

#include <cstddef>

#include "common/assert.h"

namespace hppc {

struct StackLink {
  StackLink* next = nullptr;
};

template <typename T, StackLink T::* LinkField>
class FreeStack {
 public:
  FreeStack() = default;
  FreeStack(const FreeStack&) = delete;
  FreeStack& operator=(const FreeStack&) = delete;

  FreeStack(FreeStack&& o) noexcept : top_(o.top_), count_(o.count_) {
    o.top_ = nullptr;
    o.count_ = 0;
  }
  FreeStack& operator=(FreeStack&& o) noexcept {
    top_ = o.top_;
    count_ = o.count_;
    o.top_ = nullptr;
    o.count_ = 0;
    return *this;
  }

  bool empty() const { return top_ == nullptr; }
  std::size_t size() const { return count_; }

  void push(T* obj) {
    StackLink* link = &(obj->*LinkField);
    link->next = top_;
    top_ = link;
    ++count_;
  }

  T* pop() {
    if (top_ == nullptr) return nullptr;
    StackLink* link = top_;
    top_ = link->next;
    link->next = nullptr;
    --count_;
    return owner(link);
  }

  T* peek() const { return top_ ? owner(top_) : nullptr; }

 private:
  static T* owner(StackLink* link) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(link) -
                                offset_of_link());
  }
  static std::size_t offset_of_link() {
    alignas(T) static char storage[sizeof(T)];
    const T* obj = reinterpret_cast<const T*>(storage);
    return static_cast<std::size_t>(
        reinterpret_cast<const char*>(&(obj->*LinkField)) -
        reinterpret_cast<const char*>(obj));
  }

  StackLink* top_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace hppc
