// Intrusive doubly-linked list.
//
// The kernel substrate keeps processes on ready queues and pools on free
// lists exactly the way the paper's kernel does: by linking nodes through
// fields embedded in the objects themselves, so that queue manipulation is a
// handful of stores with no allocation. The simulator charges those stores
// to the cost ledger; an allocating container would distort the model.
#pragma once

#include <cstddef>

#include "common/assert.h"

namespace hppc {

/// Embed one of these per list the object can be on.
struct ListLink {
  ListLink* prev = nullptr;
  ListLink* next = nullptr;

  bool linked() const { return next != nullptr; }

  /// Unlink from whatever list this node is on. Safe on an unlinked node.
  void unlink() {
    if (!linked()) return;
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

/// Intrusive list of T, linked through the member `LinkField`.
/// Does not own its elements; destroying the list leaves elements intact
/// but unlinks nothing (the list must be empty or abandoned wholesale).
template <typename T, ListLink T::* LinkField>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.next = &head_;
    head_.prev = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const ListLink* p = head_.next; p != &head_; p = p->next) ++n;
    return n;
  }

  void push_back(T* obj) {
    ListLink* link = &(obj->*LinkField);
    HPPC_ASSERT_MSG(!link->linked(), "node already on a list");
    link->prev = head_.prev;
    link->next = &head_;
    head_.prev->next = link;
    head_.prev = link;
  }

  void push_front(T* obj) {
    ListLink* link = &(obj->*LinkField);
    HPPC_ASSERT_MSG(!link->linked(), "node already on a list");
    link->next = head_.next;
    link->prev = &head_;
    head_.next->prev = link;
    head_.next = link;
  }

  T* front() { return empty() ? nullptr : owner(head_.next); }
  T* back() { return empty() ? nullptr : owner(head_.prev); }

  T* pop_front() {
    if (empty()) return nullptr;
    ListLink* link = head_.next;
    T* obj = owner(link);
    link->unlink();
    return obj;
  }

  T* pop_back() {
    if (empty()) return nullptr;
    ListLink* link = head_.prev;
    T* obj = owner(link);
    link->unlink();
    return obj;
  }

  /// Remove a specific element (must be on this list; not checked beyond
  /// being linked somewhere).
  void erase(T* obj) { (obj->*LinkField).unlink(); }

  bool contains(const T* obj) const {
    const ListLink* target = &(obj->*LinkField);
    for (const ListLink* p = head_.next; p != &head_; p = p->next) {
      if (p == target) return true;
    }
    return false;
  }

  /// Minimal forward iterator, enough for range-for in tests and draining
  /// loops in the kernel (element removal invalidates only its iterator).
  class iterator {
   public:
    iterator(ListLink* node, const ListLink* head) : node_(node), head_(head) {}
    T& operator*() const { return *owner(node_); }
    T* operator->() const { return owner(node_); }
    iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator==(const iterator& o) const { return node_ == o.node_; }
    bool operator!=(const iterator& o) const { return node_ != o.node_; }

   private:
    ListLink* node_;
    const ListLink* head_;
  };

  iterator begin() { return iterator(head_.next, &head_); }
  iterator end() { return iterator(&head_, &head_); }

 private:
  static T* owner(ListLink* link) {
    // Standard container_of: the link is a member of T at a fixed offset.
    return reinterpret_cast<T*>(reinterpret_cast<char*>(link) -
                                offset_of_link());
  }
  static const T* owner(const ListLink* link) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(link) -
                                      offset_of_link());
  }
  static std::size_t offset_of_link() {
    alignas(T) static char storage[sizeof(T)];
    const T* obj = reinterpret_cast<const T*>(storage);
    return static_cast<std::size_t>(
        reinterpret_cast<const char*>(&(obj->*LinkField)) -
        reinterpret_cast<const char*>(obj));
  }

  ListLink head_;  // sentinel
};

}  // namespace hppc
