// Deterministic PRNG (xoshiro256**) for workload generation.
//
// All simulated experiments must be exactly reproducible from a seed; we do
// not use std::mt19937 because its state size and iteration cost are
// noticeable in tight workload-generation loops, and its streams are awkward
// to split per simulated CPU.
#pragma once

#include <cstdint>

namespace hppc {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * 0x1.0p-53; }

  /// Derive an independent stream (e.g. one per simulated CPU).
  Prng split(std::uint64_t stream) {
    return Prng(next() ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hppc
