// Host cycle counter for deadlines and backoff budgets.
//
// The simulated machine has an exact clock (kernel::Cpu::now()); the host
// runtime needs a cheap monotonic-enough tick to express call deadlines in
// "cycles" without a syscall per check. On x86 this is rdtsc (constant-rate
// on every target this repo runs on), on arm64 the virtual counter; the
// fallback is steady_clock nanoseconds, which keeps deadline arithmetic
// meaningful (just at a different rate). Deadline consumers only compare
// two readings from the same thread, so none of rdtsc's cross-core
// ordering caveats apply.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace hppc {

inline std::uint64_t host_cycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

}  // namespace hppc
