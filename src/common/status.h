// Error codes for IPC operations.
//
// The paper's facility reports failures through the return-code word of the
// register set (§4.5.1, Figure 4: PPC_RC(opflags)). We mirror that: every
// failure mode of the PPC path maps onto a small-integer code that fits in
// the opflags word next to the opcode.
#pragma once

#include <cstdint>

namespace hppc {

enum class Status : std::uint8_t {
  kOk = 0,
  /// Entry point id out of range or not bound on this processor.
  kNoSuchEntryPoint,
  /// Entry point exists but was soft-killed: no new calls accepted (§4.5.2).
  kEntryPointDraining,
  /// Call aborted by a hard-kill while in progress (§4.5.2).
  kCallAborted,
  /// Caller's program id rejected by the server's own authentication (§4.1).
  kPermissionDenied,
  /// Resource exhaustion that even Frank could not satisfy (§4.5.6).
  kOutOfResources,
  /// CopyTo/CopyFrom outside a granted region (§4.2).
  kBadRegion,
  /// Server handler signalled an application-level error.
  kServerError,
  /// Request on a facility that has been shut down.
  kShutdown,
  /// Malformed request (bad opcode, bad arguments).
  kInvalidArgument,
  /// The caller's deadline expired before the call completed; the caller
  /// abandoned the wait (the in-flight cell is reclaimed safely, but the
  /// handler may or may not have executed — timed-out-RPC semantics).
  kDeadlineExceeded,
  /// Admission control shed the call (target queue over its watermark) or
  /// the bounded ring-full backoff budget ran out. The call never started;
  /// retrying later is safe.
  kOverloaded,
};

/// Human-readable code name, for logs and test diagnostics.
constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "Ok";
    case Status::kNoSuchEntryPoint: return "NoSuchEntryPoint";
    case Status::kEntryPointDraining: return "EntryPointDraining";
    case Status::kCallAborted: return "CallAborted";
    case Status::kPermissionDenied: return "PermissionDenied";
    case Status::kOutOfResources: return "OutOfResources";
    case Status::kBadRegion: return "BadRegion";
    case Status::kServerError: return "ServerError";
    case Status::kShutdown: return "Shutdown";
    case Status::kInvalidArgument: return "InvalidArgument";
    case Status::kDeadlineExceeded: return "DeadlineExceeded";
    case Status::kOverloaded: return "Overloaded";
  }
  return "?";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

}  // namespace hppc
