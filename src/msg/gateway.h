// PPC <-> message-passing gateway: the integration layer of §5.
//
// A legacy single-threaded server keeps its receive/reply loop untouched;
// the gateway binds a PPC entry point whose workers forward each call as a
// message and block until the reply. Clients see a normal PPC service;
// the server sees normal messages. (And the measured cost of keeping the
// old structure — every request funnels through one process on one
// processor — is exactly what bench/ablation_gateway quantifies.)
#pragma once

#include "msg/msg_facility.h"
#include "ppc/facility.h"

namespace hppc::msg {

class PpcMsgGateway {
 public:
  /// Bind a PPC entry point that forwards to legacy process `server_pid`.
  PpcMsgGateway(ppc::PpcFacility& ppc, MsgFacility& msgs, Pid server_pid,
                std::string name = "gateway");

  EntryPointId ep() const { return ep_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  void handler(ppc::ServerCtx& ctx, RegSet& regs);

  ppc::PpcFacility& ppc_;
  MsgFacility& msgs_;
  Pid server_pid_;
  EntryPointId ep_ = kInvalidEntryPoint;
  std::uint64_t forwarded_ = 0;
};

}  // namespace hppc::msg
