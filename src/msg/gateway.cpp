#include "msg/gateway.h"

#include "fault/failpoints.h"
#include "obs/trace.h"

namespace hppc::msg {

using ppc::RegSet;
using ppc::ServerCtx;

PpcMsgGateway::PpcMsgGateway(ppc::PpcFacility& ppc, MsgFacility& msgs,
                             Pid server_pid, std::string name)
    : ppc_(ppc), msgs_(msgs), server_pid_(server_pid) {
  ppc::EntryPointConfig cfg;
  cfg.name = std::move(name);
  cfg.kernel_space = true;  // the gateway shim lives in the kernel
  ppc::ServiceCode code;
  code.handler_instructions = 24;
  ep_ = ppc.bind(cfg, /*as=*/nullptr, /*program=*/0,
                 [this](ServerCtx& ctx, RegSet& regs) { handler(ctx, regs); },
                 code);
}

void PpcMsgGateway::handler(ServerCtx& ctx, RegSet& regs) {
  // Fault seam: the gateway refuses instead of forwarding — models a
  // legacy server whose message queue is full. The caller sees a clean
  // kOverloaded on the PPC side rather than a hang on the message side.
  if (HPPC_FAULT_POINT("msg.gateway.reject")) {
    ctx.cpu().counters().inc(obs::Counter::kFaultsInjected);
    set_rc(regs, Status::kOverloaded);
    return;
  }
  ++forwarded_;
  ctx.cpu().counters().inc(obs::Counter::kGatewayForwards);
  HPPC_TRACE_EVENT(ctx.cpu().trace_ring(), ctx.cpu().now(), ctx.cpu().id(),
                   obs::TraceEvent::kGatewayForward, server_pid_);
  // Forward the registers as a message from the worker (a real process, so
  // the legacy facility's sender bookkeeping just works), then block the
  // call until the legacy server replies.
  ppc::Worker* worker = &ctx.worker();
  const Status s = msgs_.send(
      ctx.cpu(), *worker, server_pid_, regs,
      [this, worker](Status, RegSet& reply) {
        // Runs on the worker's home CPU when the reply lands: stash the
        // reply into the in-flight call's registers and resume the worker;
        // its resume function completes the PPC call with them.
        worker->active_cd()->regs() = reply;
        ppc_.resume_worker(ppc_.machine().cpu(worker->home_cpu()), *worker);
      });
  if (s != Status::kOk) {
    set_rc(regs, s);
    return;
  }
  ctx.block_call([](ServerCtx&, RegSet& r) {
    // The reply was already copied into the CD's register set by the
    // on_reply hook; rc travels inside it.
    (void)r;
  });
}

}  // namespace hppc::msg
