// Hurricane's pre-existing message-passing IPC (V-style synchronous
// send / receive / reply between processes).
//
// The paper's facility did not arrive in a vacuum: "the vast majority of
// the code is needed to handle exceptions and to integrate the new facility
// with the pre-existing message passing facility" (§5). This module is that
// pre-existing facility: a per-receiver message queue (genuinely shared —
// senders on any processor lock it), a blocked-receiver rendezvous, and
// reply routing back to the sender's processor.
//
// Its performance characteristics are the paper's foil: a single-threaded
// server built on receive/reply serializes all its clients on one
// processor, and every request crosses processors twice. "Large changes
// are necessary only when adapting a single threaded server to now be
// multithreaded" — or the server keeps this model behind a PPC gateway
// (gateway.h) and keeps its old structure at its old speed.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "kernel/machine.h"
#include "ppc/regs.h"
#include "sim/spinlock.h"

namespace hppc::msg {

using ppc::RegSet;

class MsgFacility {
 public:
  explicit MsgFacility(kernel::Machine& machine) : machine_(machine) {}

  MsgFacility(const MsgFacility&) = delete;
  MsgFacility& operator=(const MsgFacility&) = delete;

  /// Synchronous send: `regs` goes to process `dest`; the sender blocks
  /// until the receiver replies, then `on_reply` runs on the sender's CPU.
  Status send(kernel::Cpu& cpu, kernel::Process& sender, Pid dest,
              RegSet regs, std::function<void(Status, RegSet&)> on_reply);

  /// Receive the next message addressed to `receiver`. If one is queued it
  /// is delivered immediately (`on_msg` runs before this returns, and the
  /// return value is true); otherwise the receiver blocks and the next
  /// send wakes it on its own processor. Typical servers loop by calling
  /// receive again from inside `on_msg`.
  bool receive(kernel::Cpu& cpu, kernel::Process& receiver,
               std::function<void(Pid, RegSet&)> on_msg);

  /// Reply to a sender previously delivered through receive.
  Status reply(kernel::Cpu& cpu, kernel::Process& replier, Pid sender,
               RegSet regs);

  std::uint64_t messages() const { return messages_; }
  std::uint64_t queue_lock_migrations() const;

 private:
  struct Pending {
    Pid from = kInvalidPid;
    CpuId from_cpu = kInvalidCpu;
    kernel::Process* sender = nullptr;
    RegSet regs;
    std::function<void(Status, RegSet&)> on_reply;
  };

  struct Endpoint {
    explicit Endpoint(SimAddr lock_home) : lock(lock_home) {}
    std::deque<Pending> queue;
    sim::SimSpinLock lock;  // senders from any CPU serialize here
    SimAddr saddr = kInvalidAddr;
    bool receiving = false;
    std::function<void(Pid, RegSet&)> on_msg;
    kernel::Process* receiver = nullptr;
    CpuId receiver_cpu = kInvalidCpu;
    std::unordered_map<Pid, Pending> awaiting_reply;
  };

  Endpoint& endpoint(Pid dest);
  void deliver(kernel::Cpu& cpu, Endpoint& ep);

  kernel::Machine& machine_;
  std::unordered_map<Pid, std::unique_ptr<Endpoint>> endpoints_;
  std::uint64_t messages_ = 0;
};

}  // namespace hppc::msg
