#include "msg/msg_facility.h"

namespace hppc::msg {

using kernel::Cpu;
using kernel::Process;
using kernel::ProcessState;
using sim::CostCategory;
using sim::TlbContext;

namespace {
// Message costs: a trap each way, a 32-byte message copy through the
// (shared) queue, and queue locking. The paper's predecessor facility was a
// conventional one; these are conventional costs.
constexpr std::size_t kMessageBytes = 32;
constexpr Cycles kMarshalCycles = 30;
}  // namespace

MsgFacility::Endpoint& MsgFacility::endpoint(Pid dest) {
  auto it = endpoints_.find(dest);
  if (it == endpoints_.end()) {
    // Endpoint state is homed on node 0 (the kernel's message tables were
    // not replicated — part of why this facility doesn't scale).
    auto ep = std::make_unique<Endpoint>(
        machine_.allocator().alloc(0, 64, 64));
    ep->saddr = machine_.allocator().alloc(0, 256, 64);
    it = endpoints_.emplace(dest, std::move(ep)).first;
  }
  return *it->second;
}

Status MsgFacility::send(Cpu& cpu, Process& sender, Pid dest, RegSet regs,
                         std::function<void(Status, RegSet&)> on_reply) {
  auto& mem = cpu.mem();
  Endpoint& ep = endpoint(dest);

  mem.trap_roundtrip();
  mem.charge(CostCategory::kUserSaveRestore, kMarshalCycles);

  // The queue is shared data: lock it, copy the message in.
  ep.lock.acquire(mem, CostCategory::kPpcKernel);
  mem.store(ep.saddr + (messages_ % 4) * kMessageBytes, kMessageBytes,
            TlbContext::kSupervisor, CostCategory::kPpcKernel);
  Pending p;
  p.from = sender.pid();
  p.from_cpu = cpu.id();
  p.sender = &sender;
  p.regs = regs;
  p.on_reply = std::move(on_reply);
  ep.queue.push_back(std::move(p));
  const bool receiver_waiting = ep.receiving;
  ep.lock.release(mem, CostCategory::kPpcKernel);
  ++messages_;

  machine_.block(sender);

  if (receiver_waiting) {
    // Wake the receiver on its own processor.
    Endpoint* epp = &ep;
    machine_.post_ipi(cpu, ep.receiver_cpu, [this, epp](Cpu& rcpu) {
      deliver(rcpu, *epp);
    });
  }
  return Status::kOk;
}

void MsgFacility::deliver(Cpu& cpu, Endpoint& ep) {
  auto& mem = cpu.mem();
  ep.lock.acquire(mem, CostCategory::kPpcKernel);
  if (ep.queue.empty() || !ep.receiving) {
    ep.lock.release(mem, CostCategory::kPpcKernel);
    return;
  }
  Pending p = std::move(ep.queue.front());
  ep.queue.pop_front();
  ep.receiving = false;
  auto on_msg = std::move(ep.on_msg);
  ep.on_msg = nullptr;
  ep.lock.release(mem, CostCategory::kPpcKernel);

  // Copy the message out and run the receiver.
  mem.load(ep.saddr, kMessageBytes, TlbContext::kSupervisor,
           CostCategory::kPpcKernel);
  mem.load(ep.receiver->context_save_area(), 32, TlbContext::kSupervisor,
           CostCategory::kKernelSaveRestore);
  ep.receiver->set_state(ProcessState::kRunning);
  Process* prev = cpu.current();
  cpu.set_current(ep.receiver);

  const Pid from = p.from;
  RegSet regs = p.regs;
  ep.awaiting_reply.emplace(from, std::move(p));
  on_msg(from, regs);

  cpu.set_current(prev);
  if (ep.receiver->state() == ProcessState::kRunning) {
    ep.receiver->set_state(ProcessState::kBlocked);
  }
}

bool MsgFacility::receive(Cpu& cpu, Process& receiver,
                          std::function<void(Pid, RegSet&)> on_msg) {
  auto& mem = cpu.mem();
  Endpoint& ep = endpoint(receiver.pid());
  HPPC_ASSERT_MSG(ep.receiver == nullptr || ep.receiver == &receiver,
                  "one receiver per pid");
  ep.receiver = &receiver;
  ep.receiver_cpu = cpu.id();

  mem.trap_roundtrip();
  ep.lock.acquire(mem, CostCategory::kPpcKernel);
  if (!ep.queue.empty()) {
    Pending p = std::move(ep.queue.front());
    ep.queue.pop_front();
    ep.lock.release(mem, CostCategory::kPpcKernel);
    mem.load(ep.saddr, kMessageBytes, TlbContext::kSupervisor,
             CostCategory::kPpcKernel);
    const Pid from = p.from;
    RegSet regs = p.regs;
    ep.awaiting_reply.emplace(from, std::move(p));
    on_msg(from, regs);
    return true;
  }
  ep.receiving = true;
  ep.on_msg = std::move(on_msg);
  ep.lock.release(mem, CostCategory::kPpcKernel);
  machine_.block(receiver);
  return false;
}

Status MsgFacility::reply(Cpu& cpu, Process& replier, Pid sender,
                          RegSet regs) {
  auto& mem = cpu.mem();
  Endpoint& ep = endpoint(replier.pid());
  auto it = ep.awaiting_reply.find(sender);
  if (it == ep.awaiting_reply.end()) return Status::kInvalidArgument;
  Pending p = std::move(it->second);
  ep.awaiting_reply.erase(it);

  mem.trap_roundtrip();
  mem.charge(CostCategory::kUserSaveRestore, kMarshalCycles);

  // Route the reply to the sender's processor and resume it there. When an
  // on_reply continuation was supplied it owns the resumption (the PPC
  // gateway resumes its blocked worker this way); otherwise the sender is
  // an ordinary process and is simply readied.
  Process* sender_proc = p.sender;
  auto on_reply = std::move(p.on_reply);
  auto wake = [this, sender_proc, on_reply = std::move(on_reply),
               regs](Cpu& scpu) mutable {
    scpu.mem().load(sender_proc->context_save_area(), 32,
                    TlbContext::kSupervisor,
                    CostCategory::kKernelSaveRestore);
    if (on_reply) {
      on_reply(ppc::rc_of(regs), regs);
    } else {
      machine_.ready(scpu, *sender_proc);
    }
  };
  if (p.from_cpu == cpu.id()) {
    wake(cpu);
  } else {
    machine_.post_ipi(cpu, p.from_cpu, std::move(wake));
  }
  return Status::kOk;
}

std::uint64_t MsgFacility::queue_lock_migrations() const {
  std::uint64_t n = 0;
  for (const auto& [pid, ep] : endpoints_) n += ep->lock.migrations();
  return n;
}

}  // namespace hppc::msg
