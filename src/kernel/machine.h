// The simulated multiprocessor plus the OS substrate state that is global:
// address spaces, processes, per-node kernel text, and the run loop that
// advances CPUs in global-time order.
//
// Determinism: all scheduling decisions depend only on simulated clocks and
// FIFO sequence numbers, never on host time or iteration order of hash
// containers, so a given program produces an identical trace on every run.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "kernel/address_space.h"
#include "kernel/frame.h"
#include "kernel/cpu.h"
#include "kernel/process.h"
#include "sim/addr.h"
#include "sim/config.h"

namespace hppc::kernel {

/// Kernel code regions, replicated per NUMA node the way Hurricane
/// replicates kernel text across stations (so that instruction fetch never
/// crosses the ring, one of the locality properties §3 relies on).
struct KernelText {
  sim::CodeRegion dispatch;         // scheduler dispatch path
  sim::CodeRegion interrupt_entry;  // interrupt prologue before PPC dispatch
};

class Machine {
 public:
  explicit Machine(sim::MachineConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const sim::MachineConfig& config() const { return cfg_; }
  sim::SimAllocator& allocator() { return alloc_; }
  FrameAllocator& frames() { return frames_; }

  std::size_t num_cpus() const { return cpus_.size(); }
  Cpu& cpu(CpuId id) {
    HPPC_ASSERT(id < cpus_.size());
    return *cpus_[id];
  }

  AddressSpace& kernel_as() { return *kernel_as_; }

  const KernelText& text(NodeId node) const {
    HPPC_ASSERT(node < text_.size());
    return text_[node];
  }

  /// Create a user address space for a program, homed on `home` (where the
  /// program's text was loaded; Hurricane places programs near their CPUs).
  AddressSpace& create_address_space(ProgramId program, NodeId home = 0);

  /// Hand out a process id (workers are created by the PPC facility, not
  /// through create_process, but share the pid space).
  Pid allocate_pid() { return next_pid_++; }

  /// Create a process homed on `home` (its context save area and user stack
  /// are allocated from that node's memory). The process starts blocked.
  Process& create_process(ProgramId program, AddressSpace* as,
                          std::string name, NodeId home);

  // --- scheduling primitives (all charge onto the acting CPU) ---

  /// Append `p` to `cpu`'s ready queue. Must be invoked from code running
  /// on `cpu`; enqueueing on a remote CPU goes through post_event (an IPI),
  /// like every cross-processor operation in the paper (§4.3, §4.5.2).
  void ready(Cpu& cpu, Process& p);

  /// Mark blocked; the process simply isn't on any queue afterwards.
  void block(Process& p);

  // --- events / interrupts ---

  /// Schedule `fn` to run on CPU `target` at simulated time >= `time`.
  void post_event(CpuId target, Cycles time, std::function<void(Cpu&)> fn);

  /// Cross-processor interrupt: like post_event but the delivery time is
  /// sender's now() + the configured IPI latency, and the interrupt entry
  /// cost is charged at the receiver.
  void post_ipi(Cpu& sender, CpuId target, std::function<void(Cpu&)> fn);

  // --- run loop ---

  /// Perform the single globally-earliest pending action (one event
  /// delivery or one process dispatch). Returns false if no CPU has work.
  bool step();

  /// Run until no CPU has a ready process or pending event.
  void run_until_idle();

  /// Run while work exists and the earliest pending action is < `t`.
  void run_until(Cycles t);

  /// Earliest simulated time across CPUs that still have work; ~0 if idle.
  Cycles horizon() const;

  // --- functional data memory ---
  //
  // The machine model needs addresses only for costs, but servers that move
  // data (CopyServer §4.2, the disk) need real bytes so tests can observe
  // that the right data arrived. Backing store is page-granular and sparse.

  void write_data(SimAddr addr, const void* bytes, std::size_t len);
  void read_data(SimAddr addr, void* bytes, std::size_t len);
  std::uint8_t read_byte(SimAddr addr);

 private:
  struct NextAction {
    Cpu* cpu = nullptr;
    Cycles time = 0;
    bool is_event = false;
  };
  NextAction next_action();
  void dispatch_one(Cpu& cpu);
  void deliver_event(Cpu& cpu);

  sim::MachineConfig cfg_;
  sim::SimAllocator alloc_;
  FrameAllocator frames_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::vector<KernelText> text_;
  std::unique_ptr<AddressSpace> kernel_as_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::uint64_t event_seq_ = 0;
  AsId next_as_ = 1;
  Pid next_pid_ = 1;
  std::unordered_map<SimAddr, std::unique_ptr<std::array<std::uint8_t,
                                                         kPageSize>>>
      data_pages_;
};

}  // namespace hppc::kernel
