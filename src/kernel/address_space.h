// Simulated address spaces and page tables.
//
// A PPC server is "passive": an address space plus registered entry points
// (§2). The page table here is functional — it records which physical page
// backs each virtual page so that stack mapping/unmapping (the CD's stack
// page mapped into the server's space for the duration of a call) is a real
// state change the tests can observe, while the *cost* of the mapping is
// charged separately through MemContext::tlb_map_one / tlb_flush_user.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/assert.h"
#include "common/types.h"
#include "sim/tlb.h"

namespace hppc::kernel {

class AddressSpace {
 public:
  AddressSpace(AsId id, bool supervisor, ProgramId program,
               NodeId home_node = 0)
      : id_(id),
        supervisor_(supervisor),
        program_(program),
        home_node_(home_node) {}

  AsId id() const { return id_; }
  bool supervisor() const { return supervisor_; }
  ProgramId program() const { return program_; }

  /// Station where the program's text and private data were placed.
  NodeId home_node() const { return home_node_; }

  sim::TlbContext tlb_context() const {
    return supervisor_ ? sim::TlbContext::kSupervisor
                       : sim::TlbContext::kUser;
  }

  /// Map the physical page `paddr` at virtual page `vaddr` (both
  /// page-aligned). Remapping an already-mapped vaddr is a bug.
  void map_page(SimAddr vaddr, SimAddr paddr) {
    HPPC_ASSERT((vaddr & (kPageSize - 1)) == 0);
    HPPC_ASSERT((paddr & (kPageSize - 1)) == 0);
    auto [it, inserted] = pages_.emplace(vaddr, paddr);
    HPPC_ASSERT_MSG(inserted, "vaddr already mapped");
    (void)it;
  }

  /// Unmap; returns the physical page that was mapped there.
  SimAddr unmap_page(SimAddr vaddr) {
    auto it = pages_.find(vaddr);
    HPPC_ASSERT_MSG(it != pages_.end(), "unmap of unmapped page");
    const SimAddr paddr = it->second;
    pages_.erase(it);
    return paddr;
  }

  std::optional<SimAddr> translate_page(SimAddr vaddr) const {
    auto it = pages_.find(vaddr & ~static_cast<SimAddr>(kPageSize - 1));
    if (it == pages_.end()) return std::nullopt;
    return it->second;
  }

  /// Translate an arbitrary virtual address to physical.
  std::optional<SimAddr> translate(SimAddr vaddr) const {
    auto page = translate_page(vaddr);
    if (!page) return std::nullopt;
    return *page + (vaddr & (kPageSize - 1));
  }

  bool mapped(SimAddr vaddr) const { return translate_page(vaddr).has_value(); }

  std::size_t page_count() const { return pages_.size(); }

 private:
  AsId id_;
  bool supervisor_;
  ProgramId program_;
  NodeId home_node_;
  std::unordered_map<SimAddr, SimAddr> pages_;
};

}  // namespace hppc::kernel
