// Processes of the simulated OS.
//
// The paper's facility lives in a traditional process-model kernel (§2:
// "having a separate worker process to service PPC calls fits more
// naturally with the traditional process model upon which our operating
// system is based"). A process here carries identity (pid, program id for
// the authentication scheme of §4.1), an address space, a kernel context
// save area (whose saves/restores the cost model charges), and a behaviour:
// a `body` callback invoked when the scheduler dispatches it.
//
// Multi-segment behaviour (block, then continue) is expressed by replacing
// `body` before blocking — the same mechanism the PPC worker-initialization
// protocol uses to swap its call-handling routine after the first call
// (§4.5.3).
#pragma once

#include <functional>
#include <string>

#include "common/intrusive_list.h"
#include "common/types.h"

namespace hppc::kernel {

class AddressSpace;
class Cpu;

enum class ProcessState : std::uint8_t {
  kReady,    // on some CPU's ready queue
  kRunning,  // currently dispatched
  kBlocked,  // waiting for an event (off all queues)
  kDead,     // terminated
};

class Process {
 public:
  using Body = std::function<void(Cpu&, Process&)>;

  Process(Pid pid, ProgramId program, AddressSpace* as, std::string name)
      : pid_(pid), program_(program), as_(as), name_(std::move(name)) {}

  virtual ~Process() = default;

  Pid pid() const { return pid_; }
  ProgramId program() const { return program_; }
  AddressSpace* address_space() const { return as_; }
  const std::string& name() const { return name_; }

  ProcessState state() const { return state_; }
  void set_state(ProcessState s) { state_ = s; }

  /// Kernel save area for this process's context (registers, PSW). The
  /// scheduler stores/loads here on every switch and the ledger books it as
  /// kernel save/restore (Figure 2).
  SimAddr context_save_area() const { return ctx_save_; }
  void set_context_save_area(SimAddr a) { ctx_save_ = a; }

  /// User-level stack (for the user-register save/restore of Figure 2).
  SimAddr user_stack() const { return user_stack_; }
  void set_user_stack(SimAddr a) { user_stack_ = a; }

  const Body& body() const { return body_; }
  void set_body(Body b) { body_ = std::move(b); }

  /// Ready-queue linkage (exactly one queue at a time).
  ListLink rq_link;

 private:
  Pid pid_;
  ProgramId program_;
  AddressSpace* as_;
  std::string name_;
  ProcessState state_ = ProcessState::kBlocked;
  SimAddr ctx_save_ = kInvalidAddr;
  SimAddr user_stack_ = kInvalidAddr;
  Body body_;
};

}  // namespace hppc::kernel
