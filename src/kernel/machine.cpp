#include "kernel/machine.h"

#include "fault/failpoints.h"
#include "sim/cost.h"

namespace hppc::kernel {

namespace {
// Instruction counts for the generic kernel paths (not PPC-specific; the
// PPC facility has its own, separately calibrated code layout).
constexpr std::uint32_t kDispatchInstructions = 24;
constexpr std::uint32_t kInterruptEntryInstructions = 18;
}  // namespace

Machine::Machine(sim::MachineConfig cfg)
    : cfg_(cfg), alloc_(cfg.num_nodes()), frames_(alloc_, cfg.num_nodes()) {
  kernel_as_ = std::make_unique<AddressSpace>(/*id=*/0, /*supervisor=*/true,
                                              /*program=*/0);

  // Replicated kernel text, one copy per station.
  text_.reserve(cfg_.num_nodes());
  for (NodeId n = 0; n < cfg_.num_nodes(); ++n) {
    KernelText t;
    t.dispatch = {alloc_.alloc(n, kDispatchInstructions * 4, 16),
                  kDispatchInstructions, sim::TlbContext::kSupervisor};
    t.interrupt_entry = {alloc_.alloc(n, kInterruptEntryInstructions * 4, 16),
                         kInterruptEntryInstructions,
                         sim::TlbContext::kSupervisor};
    text_.push_back(t);
  }

  cpus_.reserve(cfg_.num_cpus);
  for (CpuId id = 0; id < cfg_.num_cpus; ++id) {
    auto c = std::make_unique<Cpu>(*this, cfg_, id);
    // Ready-queue header in node-local kernel memory.
    c->set_rq_addr(alloc_.alloc(c->node(), 32, 16));
    cpus_.push_back(std::move(c));
  }
}

Machine::~Machine() = default;

AddressSpace& Machine::create_address_space(ProgramId program, NodeId home) {
  HPPC_ASSERT(home < cfg_.num_nodes());
  spaces_.push_back(std::make_unique<AddressSpace>(next_as_++,
                                                   /*supervisor=*/false,
                                                   program, home));
  return *spaces_.back();
}

Process& Machine::create_process(ProgramId program, AddressSpace* as,
                                 std::string name, NodeId home) {
  HPPC_ASSERT(home < cfg_.num_nodes());
  auto p = std::make_unique<Process>(next_pid_++, program, as,
                                     std::move(name));
  // 64-byte kernel context save area (the "minimum processor state required
  // for a process switch", Figure 2 caption) and a one-page user stack.
  p->set_context_save_area(alloc_.alloc(home, 64, 16));
  p->set_user_stack(alloc_.alloc_page(home));
  processes_.push_back(std::move(p));
  return *processes_.back();
}

void Machine::ready(Cpu& cpu, Process& p) {
  HPPC_ASSERT(p.state() != ProcessState::kReady);
  HPPC_ASSERT(p.state() != ProcessState::kDead);
  p.set_state(ProcessState::kReady);
  cpu.ready_queue().push_back(&p);
  // Queue-header update: a couple of stores to node-local kernel data.
  cpu.mem().store(cpu.rq_addr(), 16, sim::TlbContext::kSupervisor,
                  sim::CostCategory::kPpcKernel);
}

void Machine::block(Process& p) {
  HPPC_ASSERT(p.state() != ProcessState::kDead);
  if (p.rq_link.linked()) p.rq_link.unlink();
  p.set_state(ProcessState::kBlocked);
}

void Machine::post_event(CpuId target, Cycles time,
                         std::function<void(Cpu&)> fn) {
  HPPC_ASSERT(target < cpus_.size());
  Event e;
  e.time = time;
  e.seq = ++event_seq_;
  e.fn = std::move(fn);
  cpus_[target]->push_event(std::move(e));
}

void Machine::post_ipi(Cpu& sender, CpuId target,
                       std::function<void(Cpu&)> fn) {
  // The sender pays a store to the target's interrupt register — a write
  // to another processor's state, so it books as shared traffic too.
  sender.counters().inc(obs::Counter::kIpisSent);
  sender.counters().inc(obs::Counter::kSharedLinesTouched);
  sender.mem().access_uncached(sim::node_base(cfg_.node_of_cpu(target)),
                               sim::CostCategory::kPpcKernel);
  // Fault seam: a delayed interconnect delivery. Models a saturated or
  // misrouted IPI — the chaos soak uses it to stretch remote-dispatch
  // latency past deadlines without touching the PPC facility itself.
  Cycles extra = 0;
  if (HPPC_FAULT_POINT("kernel.ipi.delay")) {
    sender.counters().inc(obs::Counter::kFaultsInjected);
    extra = 10 * cfg_.ipi_latency_cycles;
  }
  post_event(target, sender.now() + cfg_.ipi_latency_cycles + extra,
             std::move(fn));
}

Machine::NextAction Machine::next_action() {
  NextAction best;
  bool found = false;
  for (auto& cp : cpus_) {
    Cpu& c = *cp;
    const bool has_ready = !c.ready_queue().empty();
    const bool has_event = c.has_event();
    if (!has_ready && !has_event) continue;

    Cycles t;
    bool is_event;
    if (has_event && (!has_ready || c.next_event_time() <= c.now())) {
      // Due (or only) events preempt; a future event on an otherwise idle
      // CPU fires after the idle gap.
      t = has_ready ? c.now() : std::max(c.now(), c.next_event_time());
      is_event = true;
      if (has_ready && c.next_event_time() > c.now()) {
        // Ready work exists and the event is in the future: run work first.
        is_event = false;
        t = c.now();
      }
    } else if (has_ready) {
      t = c.now();
      is_event = false;
    } else {
      t = std::max(c.now(), c.next_event_time());
      is_event = true;
    }

    if (!found || t < best.time ||
        (t == best.time && c.id() < best.cpu->id())) {
      best = {&c, t, is_event};
      found = true;
    }
  }
  if (!found) best.cpu = nullptr;
  return best;
}

void Machine::deliver_event(Cpu& cpu) {
  Event e = cpu.pop_event();
  cpu.mem().idle_until(e.time);
  // Interrupt entry: trap + prologue (charged before the handler body).
  cpu.mem().trap_roundtrip();
  cpu.mem().exec(text_[cpu.node()].interrupt_entry,
                 sim::CostCategory::kPpcKernel);
  e.fn(cpu);
}

void Machine::dispatch_one(Cpu& cpu) {
  Process* p = cpu.ready_queue().pop_front();
  HPPC_ASSERT(p != nullptr);
  p->set_state(ProcessState::kRunning);
  cpu.set_current(p);

  // Scheduler dispatch: pop the queue, reload the process context.
  cpu.mem().exec(text_[cpu.node()].dispatch, sim::CostCategory::kPpcKernel);
  cpu.mem().load(cpu.rq_addr(), 16, sim::TlbContext::kSupervisor,
                 sim::CostCategory::kPpcKernel);
  cpu.mem().load(p->context_save_area(), 64, sim::TlbContext::kSupervisor,
                 sim::CostCategory::kKernelSaveRestore);

  HPPC_ASSERT_MSG(static_cast<bool>(p->body()), "dispatch of bodyless process");
  p->body()(cpu, *p);

  // A body that neither re-readied, blocked, nor died is complete.
  if (p->state() == ProcessState::kRunning) p->set_state(ProcessState::kDead);
  cpu.set_current(nullptr);
}

bool Machine::step() {
  NextAction a = next_action();
  if (a.cpu == nullptr) return false;
  if (a.is_event) {
    deliver_event(*a.cpu);
  } else {
    dispatch_one(*a.cpu);
  }
  return true;
}

void Machine::run_until_idle() {
  while (step()) {
  }
}

void Machine::run_until(Cycles t) {
  for (;;) {
    NextAction a = next_action();
    if (a.cpu == nullptr || a.time >= t) return;
    if (a.is_event) {
      deliver_event(*a.cpu);
    } else {
      dispatch_one(*a.cpu);
    }
  }
}

void Machine::write_data(SimAddr addr, const void* bytes, std::size_t len) {
  const auto* src = static_cast<const std::uint8_t*>(bytes);
  while (len > 0) {
    const SimAddr page = addr & ~static_cast<SimAddr>(kPageSize - 1);
    const std::size_t off = static_cast<std::size_t>(addr - page);
    const std::size_t n = std::min(len, kPageSize - off);
    auto& p = data_pages_[page];
    if (!p) p = std::make_unique<std::array<std::uint8_t, kPageSize>>();
    std::copy(src, src + n, p->data() + off);
    addr += n;
    src += n;
    len -= n;
  }
}

void Machine::read_data(SimAddr addr, void* bytes, std::size_t len) {
  auto* dst = static_cast<std::uint8_t*>(bytes);
  while (len > 0) {
    const SimAddr page = addr & ~static_cast<SimAddr>(kPageSize - 1);
    const std::size_t off = static_cast<std::size_t>(addr - page);
    const std::size_t n = std::min(len, kPageSize - off);
    auto it = data_pages_.find(page);
    if (it == data_pages_.end()) {
      std::fill(dst, dst + n, 0);  // untouched memory reads as zero
    } else {
      std::copy(it->second->data() + off, it->second->data() + off + n, dst);
    }
    addr += n;
    dst += n;
    len -= n;
  }
}

std::uint8_t Machine::read_byte(SimAddr addr) {
  std::uint8_t b = 0;
  read_data(addr, &b, 1);
  return b;
}

Cycles Machine::horizon() const {
  Cycles h = ~Cycles{0};
  for (const auto& cp : cpus_) {
    const Cpu& c = *cp;
    if (!const_cast<Cpu&>(c).ready_queue().empty()) {
      h = std::min(h, c.now());
    } else if (c.has_event()) {
      h = std::min(h, std::max(c.now(), c.next_event_time()));
    }
  }
  return h == ~Cycles{0} ? 0 : h;
}

}  // namespace hppc::kernel
