// One simulated processor: its memory context (caches/TLB/clock/ledger),
// its ready queue, and its pending event (interrupt) queue.
//
// Everything a PPC call needs lives in per-CPU state reachable from here —
// the paper's Figure 1 structure. The PPC facility attaches its own
// per-processor block (service table copy, CD pool, worker pools) via
// `ppc_state`, owned by the facility.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/intrusive_list.h"
#include "common/types.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "sim/memctx.h"
#include "kernel/process.h"

namespace hppc::kernel {

class Machine;

/// A deferred action on a CPU: delivery of a device interrupt, an IPI from
/// another processor (hard-kill cleanup, §4.5.2), or a modelled device
/// completion. Runs on the target CPU at >= `time`.
struct Event {
  Cycles time = 0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  std::function<void(Cpu&)> fn;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class Cpu {
 public:
  Cpu(Machine& machine, const sim::MachineConfig& cfg, CpuId id)
      : machine_(machine), id_(id), mem_(cfg, id) {
    // Let primitives that only see the MemContext (SimSpinLock) attribute
    // lock/shared-line traffic to this CPU's counter block.
    mem_.set_obs(&counters_);
  }

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  CpuId id() const { return id_; }
  NodeId node() const { return mem_.node(); }
  Machine& machine() { return machine_; }

  sim::MemContext& mem() { return mem_; }
  const sim::MemContext& mem() const { return mem_; }
  Cycles now() const { return mem_.now(); }

  /// The process currently executing on this CPU (nullptr between
  /// dispatches). PPC handoff switches this without a scheduler pass.
  Process* current() const { return current_; }
  void set_current(Process* p) { current_ = p; }

  IntrusiveList<Process, &Process::rq_link>& ready_queue() {
    return ready_queue_;
  }

  /// Simulated address of this CPU's ready-queue header (node-local), so
  /// queue manipulation costs real, NUMA-correct memory traffic.
  SimAddr rq_addr() const { return rq_addr_; }
  void set_rq_addr(SimAddr a) { rq_addr_ = a; }

  /// Per-CPU PPC state (ppc::CpuPpcState), owned by the PPC facility.
  void* ppc_state() const { return ppc_state_; }
  void set_ppc_state(void* s) { ppc_state_ = s; }

  /// Observability block (Figure 1 discipline applied to metrics): owned
  /// and written by this CPU only, merged by observers at snapshot time.
  /// Host-side bookkeeping — increments charge no simulated cycles.
  obs::SlotCounters& counters() { return counters_; }
  const obs::SlotCounters& counters() const { return counters_; }

  /// Per-CPU latency histograms, same single-writer discipline as the
  /// counter block. Values are SIMULATED cycles (cpu.now() deltas), so the
  /// distributions are deterministic for a given schedule.
  obs::SlotHistograms& histograms() { return hists_; }
  const obs::SlotHistograms& histograms() const { return hists_; }

  /// Bounded event-trace ring for this CPU (written only under HPPC_TRACE).
  obs::TraceRing& trace_ring() { return trace_ring_; }
  const obs::TraceRing& trace_ring() const { return trace_ring_; }

  // --- pending events (interrupts / IPIs) ---

  void push_event(Event e) { events_.push(std::move(e)); }
  bool has_event() const { return !events_.empty(); }
  Cycles next_event_time() const { return events_.top().time; }
  Event pop_event() {
    Event e = events_.top();
    events_.pop();
    return e;
  }

 private:
  Machine& machine_;
  CpuId id_;
  sim::MemContext mem_;
  Process* current_ = nullptr;
  IntrusiveList<Process, &Process::rq_link> ready_queue_;
  SimAddr rq_addr_ = kInvalidAddr;
  void* ppc_state_ = nullptr;
  obs::SlotCounters counters_;
  obs::SlotHistograms hists_;
  obs::TraceRing trace_ring_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

}  // namespace hppc::kernel
