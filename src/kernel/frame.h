// Physical frame allocator with per-node free lists.
//
// Stack pages and call descriptors are recycled aggressively in the paper
// ("extra stacks created during peak call activity can easily be
// reclaimed", §2). The bump allocator hands out fresh simulated frames;
// freed frames go onto their home node's free list and are reused first, so
// long-running simulations don't grow without bound and reclaimed stacks
// really do come back.
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/addr.h"

namespace hppc::kernel {

class FrameAllocator {
 public:
  FrameAllocator(sim::SimAllocator& backing, std::size_t num_nodes)
      : backing_(backing), free_(num_nodes) {}

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  /// One page frame homed on `node`; reuses a freed frame when available.
  SimAddr alloc(NodeId node) {
    HPPC_ASSERT(node < free_.size());
    auto& list = free_[node];
    if (!list.empty()) {
      const SimAddr frame = list.back();
      list.pop_back();
      ++reused_;
      return frame;
    }
    ++fresh_;
    return backing_.alloc_page(node);
  }

  /// Return a frame to its home node's free list.
  void free(SimAddr frame) {
    HPPC_ASSERT((frame & (kPageSize - 1)) == 0);
    const NodeId node = sim::node_of_addr(frame);
    HPPC_ASSERT(node < free_.size());
    free_[node].push_back(frame);
  }

  std::size_t free_count(NodeId node) const {
    HPPC_ASSERT(node < free_.size());
    return free_[node].size();
  }
  std::uint64_t fresh_allocations() const { return fresh_; }
  std::uint64_t reuses() const { return reused_; }

 private:
  sim::SimAllocator& backing_;
  std::vector<std::vector<SimAddr>> free_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace hppc::kernel
