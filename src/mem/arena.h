// Node-local hugepage-first memory arena for the runtime's hot structures.
//
// The paper places every per-processor PPC structure in the processor's own
// station memory so the warm path never crosses the interconnect (§4.5).
// This arena is the host-runtime analogue: one bump pool per NUMA node,
// backed by anonymous mmap chunks that are requested as explicit hugepages
// (MAP_HUGETLB) first and fall back to 4 K pages (plus a best-effort
// MADV_HUGEPAGE) when the system has no hugetlbfs reservation — CI
// containers are the common case of that. Chunks are bound to their node
// with mbind() *before* they are faulted in, then pre-faulted, so placement
// is decided here once and never by first-touch accident on the warm path.
//
// The arena never runs destructors and never unmaps individual objects:
// callers may only place trivially-destructible types (rings, replica
// blocks, wait/CD pools, histogram blocks all qualify), and the whole
// mapping is released when the arena itself is destroyed. Allocation takes
// a per-node mutex, which is fine because every allocation happens at
// runtime construction or pool-growth time — never on the call path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace hppc::mem {

/// Gauges describing everything the arena has mapped so far. Snapshot is
/// internally consistent enough for telemetry (individual relaxed loads).
struct ArenaStats {
  std::uint64_t bytes_reserved = 0;   ///< total bytes mmap'd into pools
  std::uint64_t bytes_allocated = 0;  ///< bytes handed out to callers
  std::uint64_t hugepages = 0;        ///< explicit hugepages backing chunks
  std::uint64_t hugepage_bytes = 0;   ///< bytes backed by MAP_HUGETLB
  std::uint64_t hugepage_fallbacks = 0;  ///< chunks that fell back to 4 K
  std::uint64_t node_mismatches = 0;  ///< pages found resident off-node
  std::uint64_t mbind_failures = 0;   ///< mbind/get_mempolicy not honoured
  std::uint64_t chunks = 0;           ///< mapped chunks across all nodes
};

struct ArenaConfig {
  /// Granularity of pool growth. Rounded up to the hugepage size when a
  /// chunk is hugepage-backed.
  std::size_t chunk_bytes = 2u << 20;
  /// Expected explicit hugepage size (x86-64 default 2 MiB).
  std::size_t hugepage_bytes = 2u << 20;
  /// Try MAP_HUGETLB first. The 4 K fallback is always available.
  bool use_hugepages = true;
  /// Sample resident pages with get_mempolicy(MPOL_F_NODE|MPOL_F_ADDR)
  /// after binding, counting off-node pages into node_mismatches.
  bool verify_placement = true;
  /// Number of node pools; 0 means detect from /sys/devices/system/node.
  std::uint32_t nodes = 0;
};

class Arena {
 public:
  explicit Arena(ArenaConfig cfg = {});

  /// Segment-backed mode: bump-allocate out of caller-provided storage —
  /// an shm_open/mmap segment being laid out by its creating process is the
  /// intended use (src/shm/ places ring banks, wait pools and peer tables
  /// through this). One pool, no node striping, no growth: allocation past
  /// `bytes` throws std::bad_alloc, and the destructor does NOT unmap the
  /// region — its lifetime belongs to whoever mapped it. Everything else
  /// (alignment, trivially-destructible-only create/create_array, stats)
  /// behaves exactly like the anonymous-mapping mode.
  Arena(std::byte* base, std::size_t bytes);

  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Number of node pools (>= 1; clamped detection result).
  std::uint32_t nodes() const { return static_cast<std::uint32_t>(pools_.size()); }

  /// Bump-allocate `bytes` on `node` (clamped into range) with `align`
  /// alignment. Never returns nullptr: grows the pool or terminates via
  /// std::bad_alloc if the system refuses even 4 K mappings.
  void* allocate(NodeId node, std::size_t bytes, std::size_t align);

  /// Placement-construct one T on `node`. T must be trivially destructible:
  /// the arena releases storage wholesale and never runs ~T().
  template <class T, class... Args>
  T* create(NodeId node, Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    void* p = allocate(node, sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Placement-construct a value-initialised T[n] on `node`.
  template <class T>
  T* create_array(NodeId node, std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    void* p = allocate(node, sizeof(T) * n, alignof(T));
    T* first = static_cast<T*>(p);
    for (std::size_t i = 0; i < n; ++i) ::new (first + i) T();
    return first;
  }

  ArenaStats stats() const;

  /// NUMA nodes visible in /sys/devices/system/node (>= 1). Used both for
  /// pool sizing and by the runtime's slot->node map.
  static std::uint32_t detect_nodes();

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;
    bool huge = false;
    bool owned = true;      // segment-backed chunks are never unmapped here
    Chunk* next = nullptr;  // intrusive list; heads live in NodePool
  };

  struct NodePool {
    std::mutex mu;
    std::byte* cur = nullptr;
    std::size_t left = 0;
    Chunk* chunks = nullptr;
  };

  /// Map, bind, pre-fault and verify one chunk for `node`.
  Chunk* map_chunk(NodeId node, std::size_t min_bytes);

  ArenaConfig cfg_;
  bool external_ = false;  // segment-backed: fixed capacity, no growth
  std::vector<NodePool> pools_;

  std::atomic<std::uint64_t> bytes_reserved_{0};
  std::atomic<std::uint64_t> bytes_allocated_{0};
  std::atomic<std::uint64_t> hugepages_{0};
  std::atomic<std::uint64_t> hugepage_bytes_{0};
  std::atomic<std::uint64_t> hugepage_fallbacks_{0};
  std::atomic<std::uint64_t> node_mismatches_{0};
  std::atomic<std::uint64_t> mbind_failures_{0};
  std::atomic<std::uint64_t> chunks_{0};
};

}  // namespace hppc::mem
