#include "mem/arena.h"

#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <cstdlib>
#endif

namespace hppc::mem {
namespace {

constexpr std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

#ifdef __linux__
// numaif.h is not guaranteed present (libnuma-dev is optional), so the two
// mempolicy syscalls are issued raw with locally defined constants. Every
// failure mode (ENOSYS, seccomp EPERM, single-node kernels) degrades to
// "no placement guarantee", never to an allocation failure.
constexpr int kMpolBind = 2;
constexpr unsigned kMpolFNode = 1u << 0;
constexpr unsigned kMpolFAddr = 1u << 1;

long sys_mbind(void* addr, unsigned long len, int mode,
               const unsigned long* nodemask, unsigned long maxnode,
               unsigned flags) {
#ifdef SYS_mbind
  return ::syscall(SYS_mbind, addr, len, mode, nodemask, maxnode, flags);
#else
  (void)addr; (void)len; (void)mode; (void)nodemask; (void)maxnode; (void)flags;
  return -1;
#endif
}

long sys_get_mempolicy(int* mode, unsigned long* nodemask,
                       unsigned long maxnode, void* addr, unsigned flags) {
#ifdef SYS_get_mempolicy
  return ::syscall(SYS_get_mempolicy, mode, nodemask, maxnode, addr, flags);
#else
  (void)mode; (void)nodemask; (void)maxnode; (void)addr; (void)flags;
  return -1;
#endif
}
#endif  // __linux__

}  // namespace

std::uint32_t Arena::detect_nodes() {
#ifdef __linux__
  std::uint32_t n = 0;
  char path[64];
  for (;;) {
    std::snprintf(path, sizeof path, "/sys/devices/system/node/node%u", n);
    struct stat st;
    if (::stat(path, &st) != 0) break;
    ++n;
    if (n >= 1024) break;  // sanity bound
  }
  return n == 0 ? 1 : n;
#else
  return 1;
#endif
}

Arena::Arena(ArenaConfig cfg) : cfg_(cfg) {
  std::uint32_t n = cfg_.nodes == 0 ? detect_nodes() : cfg_.nodes;
  if (n == 0) n = 1;
  pools_ = std::vector<NodePool>(n);
}

Arena::Arena(std::byte* base, std::size_t bytes) {
  // Segment-backed mode: one pool, pre-seeded with the caller's region as
  // its only — unowned — chunk. cfg_ defaults are irrelevant here because
  // map_chunk() is never reached (growth refuses below).
  external_ = true;
  pools_ = std::vector<NodePool>(1);
  auto* chunk = new Chunk{};
  chunk->base = base;
  chunk->size = bytes;
  chunk->owned = false;
  NodePool& pool = pools_[0];
  pool.chunks = chunk;
  pool.cur = base;
  pool.left = bytes;
  bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
  chunks_.fetch_add(1, std::memory_order_relaxed);
}

Arena::~Arena() {
  for (NodePool& pool : pools_) {
    Chunk* c = pool.chunks;
    while (c != nullptr) {
      Chunk* next = c->next;
      if (c->owned) {
#ifdef __linux__
        ::munmap(c->base, c->size);
#else
        std::free(c->base);
#endif
      }
      delete c;
      c = next;
    }
  }
}

Arena::Chunk* Arena::map_chunk(NodeId node, std::size_t min_bytes) {
  // A segment-backed arena has exactly the storage it was constructed
  // over: the segment's cross-process layout is fixed at creation, so
  // growing past it can only produce private memory the other side will
  // never see. Refuse instead.
  if (external_) throw std::bad_alloc{};

  std::size_t want = min_bytes > cfg_.chunk_bytes ? min_bytes : cfg_.chunk_bytes;

#ifdef __linux__
  void* base = MAP_FAILED;
  bool huge = false;
  std::size_t size = 0;
  if (cfg_.use_hugepages) {
    size = round_up(want, cfg_.hugepage_bytes);
    base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (base != MAP_FAILED) {
      huge = true;
    } else {
      hugepage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (base == MAP_FAILED) {
    size = round_up(want, kPageSize);
    base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) throw std::bad_alloc{};
#ifdef MADV_HUGEPAGE
    // Best effort: let THP coalesce the fallback mapping.
    ::madvise(base, size, MADV_HUGEPAGE);
#endif
  }

  // Bind before faulting: placement must come from policy, not from
  // whichever CPU happens to touch the chunk first.
  if (nodes() > 1 || cfg_.verify_placement) {
    unsigned long mask = 1ul << (node % (sizeof(unsigned long) * 8));
    if (sys_mbind(base, size, kMpolBind, &mask,
                  sizeof(unsigned long) * 8, 0) != 0) {
      mbind_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Pre-fault every page so the warm path never takes a minor fault, and
  // so get_mempolicy below reports where pages actually landed.
  const std::size_t step = huge ? cfg_.hugepage_bytes : kPageSize;
  auto* bytes = static_cast<std::byte*>(base);
  for (std::size_t off = 0; off < size; off += step) {
    bytes[off] = std::byte{0};
  }

  if (cfg_.verify_placement) {
    std::uint64_t mismatches = 0;
    bool policy_readable = true;
    for (std::size_t off = 0; off < size && policy_readable; off += step) {
      int where = -1;
      if (sys_get_mempolicy(&where, nullptr, 0, bytes + off,
                            kMpolFNode | kMpolFAddr) != 0) {
        // Syscall filtered or unsupported: placement is unknown, which is
        // not the same as wrong — count nothing.
        policy_readable = false;
        break;
      }
      if (where >= 0 && static_cast<NodeId>(where) != node) ++mismatches;
    }
    if (mismatches != 0) {
      node_mismatches_.fetch_add(mismatches, std::memory_order_relaxed);
    }
  }
#else
  bool huge = false;
  std::size_t size = round_up(want, kPageSize);
  void* base = std::aligned_alloc(kPageSize, size);
  if (base == nullptr) throw std::bad_alloc{};
  std::memset(base, 0, size);
#endif

  auto* chunk = new Chunk{};
  chunk->base = static_cast<std::byte*>(base);
  chunk->size = size;
  chunk->huge = huge;

  bytes_reserved_.fetch_add(size, std::memory_order_relaxed);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  if (huge) {
    hugepage_bytes_.fetch_add(size, std::memory_order_relaxed);
    hugepages_.fetch_add(size / cfg_.hugepage_bytes,
                         std::memory_order_relaxed);
  }
  return chunk;
}

void* Arena::allocate(NodeId node, std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  NodePool& pool = pools_[node % pools_.size()];

  std::lock_guard<std::mutex> lk(pool.mu);
  auto aligned = [&](std::byte* p) {
    auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::byte*>(round_up(v, align));
  };

  std::byte* p = pool.cur != nullptr ? aligned(pool.cur) : nullptr;
  if (p == nullptr ||
      static_cast<std::size_t>(p - pool.cur) + bytes > pool.left) {
    Chunk* chunk = map_chunk(node % pools_.size(), bytes + align);
    chunk->next = pool.chunks;
    pool.chunks = chunk;
    pool.cur = chunk->base;
    pool.left = chunk->size;
    p = aligned(pool.cur);
  }

  const std::size_t consumed = static_cast<std::size_t>(p - pool.cur) + bytes;
  pool.cur += consumed;
  pool.left -= consumed;
  bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
  return p;
}

ArenaStats Arena::stats() const {
  ArenaStats s;
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  s.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  s.hugepages = hugepages_.load(std::memory_order_relaxed);
  s.hugepage_bytes = hugepage_bytes_.load(std::memory_order_relaxed);
  s.hugepage_fallbacks =
      hugepage_fallbacks_.load(std::memory_order_relaxed);
  s.node_mismatches = node_mismatches_.load(std::memory_order_relaxed);
  s.mbind_failures = mbind_failures_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hppc::mem
