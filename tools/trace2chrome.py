#!/usr/bin/env python3
"""Convert an hppc raw trace dump to Chrome/Perfetto trace-event JSON.

Input is the `obs::trace_to_json` format::

    {"rings": {"<label>": {"total_recorded": N,
                           "records": [{"ts":..., "slot":..., "event":"...",
                                        "arg":..., "trace_id":..., "span":...,
                                        "parent":...}, ...]}, ...}}

Output is a `{"traceEvents": [...]}` document: span_begin/span_end records
become nestable async "b"/"e" pairs keyed by the hex trace id (one stacked
track per request, flowing across slot tids); every other record becomes a
thread-scoped instant, tagged with its trace id when it carried one.

Usage:
    trace2chrome.py [--check] [--ts-per-us N] [input.json [output.json]]

With --check the tool validates the span graph instead of (as well as)
converting: for every trace id, each span_begin must have exactly one
matching span_end at a later-or-equal timestamp, parent links must resolve
to a span seen in the same trace (or 0 = root), and the parent graph must
be acyclic. Exit status 1 on any violation, with one line per problem.
Dropped spans (id 0) never appear in the dump, so they cannot trip the
checker — degradation is invisible here by design and booked in the
`trace_drops` counter instead.
"""

import argparse
import json
import sys

SPAN_KINDS = [
    "root", "local_call", "remote_call", "remote_direct", "batch",
    "server_exec", "async_exec",
]


def span_kind_name(arg):
    return SPAN_KINDS[arg] if 0 <= arg < len(SPAN_KINDS) else f"kind{arg}"


def iter_records(doc):
    for label, ring in doc.get("rings", {}).items():
        for rec in ring.get("records", []):
            yield label, rec


def convert(doc, ts_per_us):
    events = []
    for label, r in iter_records(doc):
        ts = r["ts"] / ts_per_us
        if r["event"] in ("span_begin", "span_end"):
            begin = r["event"] == "span_begin"
            args = {"span": r["span"], "parent": r["parent"], "ring": label}
            if not begin:
                args["status"] = r["arg"]
            events.append({
                "name": span_kind_name(r["arg"]) if begin else "span",
                "cat": "hppc",
                "ph": "b" if begin else "e",
                "id": f"0x{r['trace_id']:x}",
                "pid": 0,
                "tid": r["slot"],
                "ts": ts,
                "args": args,
            })
            continue
        args = {"arg": r["arg"], "ring": label}
        if r.get("trace_id", 0):
            args["trace_id"] = f"0x{r['trace_id']:x}"
            args["span"] = r["span"]
        events.append({
            "name": r["event"],
            "ph": "i",
            "s": "t",
            "pid": 0,
            "tid": r["slot"],
            "ts": ts,
            "args": args,
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events}


def check(doc):
    """Validate span begin/end pairing and parent-link structure.

    Returns a list of problem strings (empty = clean).
    """
    problems = []
    # trace_id -> span -> record info
    begins = {}
    ends = {}
    for label, r in iter_records(doc):
        if r["event"] == "span_begin":
            per = begins.setdefault(r["trace_id"], {})
            if r["span"] in per:
                problems.append(
                    f"trace 0x{r['trace_id']:x}: span {r['span']} begun twice")
            per[r["span"]] = r
        elif r["event"] == "span_end":
            per = ends.setdefault(r["trace_id"], {})
            if r["span"] in per:
                problems.append(
                    f"trace 0x{r['trace_id']:x}: span {r['span']} ended twice")
            per[r["span"]] = r

    traced = sorted(set(begins) | set(ends))
    if not traced:
        problems.append("no spans found in trace dump")
    for tid in traced:
        b = begins.get(tid, {})
        e = ends.get(tid, {})
        for span, rec in b.items():
            if span == 0:
                problems.append(f"trace 0x{tid:x}: span id 0 recorded")
            if span not in e:
                problems.append(
                    f"trace 0x{tid:x}: span {span} "
                    f"({span_kind_name(rec['arg'])}) never ended")
            elif e[span]["ts"] < rec["ts"]:
                problems.append(
                    f"trace 0x{tid:x}: span {span} ends before it begins")
        for span in e:
            if span not in b:
                problems.append(
                    f"trace 0x{tid:x}: span {span} ended but never begun")
        # Parent completeness: every non-root parent must be a begun span of
        # the same trace.
        for span, rec in b.items():
            parent = rec["parent"]
            if parent != 0 and parent not in b:
                problems.append(
                    f"trace 0x{tid:x}: span {span} parent {parent} "
                    "not present in trace")
        # Acyclicity: walk each span's parent chain; a chain longer than the
        # span population means a cycle.
        for span in b:
            seen = set()
            cur = span
            while cur != 0 and cur in b:
                if cur in seen:
                    problems.append(
                        f"trace 0x{tid:x}: parent cycle through span {cur}")
                    break
                seen.add(cur)
                cur = b[cur]["parent"]
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", nargs="?", default="-",
                    help="raw trace JSON (default: stdin)")
    ap.add_argument("output", nargs="?", default="-",
                    help="chrome trace JSON (default: stdout)")
    ap.add_argument("--check", action="store_true",
                    help="validate span pairing and parent links")
    ap.add_argument("--ts-per-us", type=float, default=1000.0,
                    help="raw timestamp ticks per microsecond "
                         "(default 1000: host nanosecond stamps)")
    args = ap.parse_args()

    if args.input == "-":
        doc = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            doc = json.load(f)

    if args.check:
        problems = check(doc)
        for p in problems:
            print(f"trace2chrome: {p}", file=sys.stderr)
        if problems:
            return 1
        spans = sum(1 for _, r in iter_records(doc)
                    if r["event"] == "span_begin")
        traces = len({r["trace_id"] for _, r in iter_records(doc)
                      if r["event"] == "span_begin"})
        print(f"trace2chrome: OK ({spans} spans across {traces} traces)")
        return 0

    out = convert(doc, args.ts_per_us)
    if args.output == "-":
        json.dump(out, sys.stdout, indent=1)
        print()
    else:
        with open(args.output, "w") as f:
            json.dump(out, f, indent=1)
    return 0


if __name__ == "__main__":
    sys.exit(main())
