# CMake generated Testfile for 
# Source directory: /root/repo/tests/ppc
# Build directory: /root/repo/build/tests/ppc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ppc/ppc_regs_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_facility_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_variants_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_kills_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_frank_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_stack_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_extensions_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_property_tests[1]_include.cmake")
include("/root/repo/build/tests/ppc/ppc_callpath_golden_tests[1]_include.cmake")
