file(REMOVE_RECURSE
  "CMakeFiles/ppc_regs_tests.dir/regs_test.cpp.o"
  "CMakeFiles/ppc_regs_tests.dir/regs_test.cpp.o.d"
  "ppc_regs_tests"
  "ppc_regs_tests.pdb"
  "ppc_regs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_regs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
