# Empty compiler generated dependencies file for ppc_regs_tests.
# This may be replaced when dependencies are built.
