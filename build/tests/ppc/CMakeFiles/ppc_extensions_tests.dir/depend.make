# Empty dependencies file for ppc_extensions_tests.
# This may be replaced when dependencies are built.
