file(REMOVE_RECURSE
  "CMakeFiles/ppc_extensions_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/ppc_extensions_tests.dir/extensions_test.cpp.o.d"
  "ppc_extensions_tests"
  "ppc_extensions_tests.pdb"
  "ppc_extensions_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_extensions_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
