# Empty dependencies file for ppc_frank_tests.
# This may be replaced when dependencies are built.
