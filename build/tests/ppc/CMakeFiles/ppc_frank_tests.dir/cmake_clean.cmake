file(REMOVE_RECURSE
  "CMakeFiles/ppc_frank_tests.dir/frank_test.cpp.o"
  "CMakeFiles/ppc_frank_tests.dir/frank_test.cpp.o.d"
  "ppc_frank_tests"
  "ppc_frank_tests.pdb"
  "ppc_frank_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_frank_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
