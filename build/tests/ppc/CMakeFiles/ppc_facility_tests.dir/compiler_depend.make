# Empty compiler generated dependencies file for ppc_facility_tests.
# This may be replaced when dependencies are built.
