file(REMOVE_RECURSE
  "CMakeFiles/ppc_facility_tests.dir/facility_test.cpp.o"
  "CMakeFiles/ppc_facility_tests.dir/facility_test.cpp.o.d"
  "ppc_facility_tests"
  "ppc_facility_tests.pdb"
  "ppc_facility_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_facility_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
