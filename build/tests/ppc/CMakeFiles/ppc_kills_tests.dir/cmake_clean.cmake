file(REMOVE_RECURSE
  "CMakeFiles/ppc_kills_tests.dir/kills_test.cpp.o"
  "CMakeFiles/ppc_kills_tests.dir/kills_test.cpp.o.d"
  "ppc_kills_tests"
  "ppc_kills_tests.pdb"
  "ppc_kills_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_kills_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
