# Empty compiler generated dependencies file for ppc_kills_tests.
# This may be replaced when dependencies are built.
