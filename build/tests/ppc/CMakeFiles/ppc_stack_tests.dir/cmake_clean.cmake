file(REMOVE_RECURSE
  "CMakeFiles/ppc_stack_tests.dir/stack_test.cpp.o"
  "CMakeFiles/ppc_stack_tests.dir/stack_test.cpp.o.d"
  "ppc_stack_tests"
  "ppc_stack_tests.pdb"
  "ppc_stack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_stack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
