# Empty compiler generated dependencies file for ppc_stack_tests.
# This may be replaced when dependencies are built.
