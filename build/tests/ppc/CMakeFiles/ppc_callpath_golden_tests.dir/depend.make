# Empty dependencies file for ppc_callpath_golden_tests.
# This may be replaced when dependencies are built.
