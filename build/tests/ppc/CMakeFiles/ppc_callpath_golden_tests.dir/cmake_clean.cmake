file(REMOVE_RECURSE
  "CMakeFiles/ppc_callpath_golden_tests.dir/callpath_golden_test.cpp.o"
  "CMakeFiles/ppc_callpath_golden_tests.dir/callpath_golden_test.cpp.o.d"
  "ppc_callpath_golden_tests"
  "ppc_callpath_golden_tests.pdb"
  "ppc_callpath_golden_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_callpath_golden_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
