# Empty compiler generated dependencies file for ppc_property_tests.
# This may be replaced when dependencies are built.
