file(REMOVE_RECURSE
  "CMakeFiles/ppc_property_tests.dir/property_test.cpp.o"
  "CMakeFiles/ppc_property_tests.dir/property_test.cpp.o.d"
  "ppc_property_tests"
  "ppc_property_tests.pdb"
  "ppc_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
