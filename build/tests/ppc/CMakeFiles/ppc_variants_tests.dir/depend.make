# Empty dependencies file for ppc_variants_tests.
# This may be replaced when dependencies are built.
