file(REMOVE_RECURSE
  "CMakeFiles/ppc_variants_tests.dir/variants_test.cpp.o"
  "CMakeFiles/ppc_variants_tests.dir/variants_test.cpp.o.d"
  "ppc_variants_tests"
  "ppc_variants_tests.pdb"
  "ppc_variants_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_variants_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
