file(REMOVE_RECURSE
  "CMakeFiles/experiments_fig3_tests.dir/fig3_test.cpp.o"
  "CMakeFiles/experiments_fig3_tests.dir/fig3_test.cpp.o.d"
  "experiments_fig3_tests"
  "experiments_fig3_tests.pdb"
  "experiments_fig3_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_fig3_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
