# Empty dependencies file for experiments_fig3_tests.
# This may be replaced when dependencies are built.
