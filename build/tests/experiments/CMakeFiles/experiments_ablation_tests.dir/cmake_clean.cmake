file(REMOVE_RECURSE
  "CMakeFiles/experiments_ablation_tests.dir/ablation_test.cpp.o"
  "CMakeFiles/experiments_ablation_tests.dir/ablation_test.cpp.o.d"
  "experiments_ablation_tests"
  "experiments_ablation_tests.pdb"
  "experiments_ablation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_ablation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
