# Empty dependencies file for experiments_ablation_tests.
# This may be replaced when dependencies are built.
