file(REMOVE_RECURSE
  "CMakeFiles/experiments_workload_tests.dir/workload_test.cpp.o"
  "CMakeFiles/experiments_workload_tests.dir/workload_test.cpp.o.d"
  "experiments_workload_tests"
  "experiments_workload_tests.pdb"
  "experiments_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
