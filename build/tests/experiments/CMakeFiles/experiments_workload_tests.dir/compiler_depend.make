# Empty compiler generated dependencies file for experiments_workload_tests.
# This may be replaced when dependencies are built.
