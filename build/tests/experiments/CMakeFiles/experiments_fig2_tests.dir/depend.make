# Empty dependencies file for experiments_fig2_tests.
# This may be replaced when dependencies are built.
