file(REMOVE_RECURSE
  "CMakeFiles/kernel_tests.dir/address_space_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/address_space_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/data_memory_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/data_memory_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/frame_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/frame_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/machine_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/machine_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/timesharing_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/timesharing_test.cpp.o.d"
  "kernel_tests"
  "kernel_tests.pdb"
  "kernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
