file(REMOVE_RECURSE
  "CMakeFiles/rt_tests.dir/baselines_test.cpp.o"
  "CMakeFiles/rt_tests.dir/baselines_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/dispatch_test.cpp.o"
  "CMakeFiles/rt_tests.dir/dispatch_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/kv_service_test.cpp.o"
  "CMakeFiles/rt_tests.dir/kv_service_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/percpu_test.cpp.o"
  "CMakeFiles/rt_tests.dir/percpu_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/runtime_test.cpp.o"
  "CMakeFiles/rt_tests.dir/runtime_test.cpp.o.d"
  "rt_tests"
  "rt_tests.pdb"
  "rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
