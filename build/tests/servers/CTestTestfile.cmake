# CMake generated Testfile for 
# Source directory: /root/repo/tests/servers
# Build directory: /root/repo/build/tests/servers
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/servers/servers_file_tests[1]_include.cmake")
include("/root/repo/build/tests/servers/servers_copy_tests[1]_include.cmake")
include("/root/repo/build/tests/servers/servers_disk_tests[1]_include.cmake")
include("/root/repo/build/tests/servers/servers_exception_tests[1]_include.cmake")
