# Empty compiler generated dependencies file for servers_exception_tests.
# This may be replaced when dependencies are built.
