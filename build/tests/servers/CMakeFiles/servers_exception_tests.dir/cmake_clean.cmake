file(REMOVE_RECURSE
  "CMakeFiles/servers_exception_tests.dir/exception_server_test.cpp.o"
  "CMakeFiles/servers_exception_tests.dir/exception_server_test.cpp.o.d"
  "servers_exception_tests"
  "servers_exception_tests.pdb"
  "servers_exception_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servers_exception_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
