# Empty dependencies file for servers_file_tests.
# This may be replaced when dependencies are built.
