file(REMOVE_RECURSE
  "CMakeFiles/servers_file_tests.dir/file_server_test.cpp.o"
  "CMakeFiles/servers_file_tests.dir/file_server_test.cpp.o.d"
  "servers_file_tests"
  "servers_file_tests.pdb"
  "servers_file_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servers_file_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
