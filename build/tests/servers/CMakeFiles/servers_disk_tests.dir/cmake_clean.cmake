file(REMOVE_RECURSE
  "CMakeFiles/servers_disk_tests.dir/disk_server_test.cpp.o"
  "CMakeFiles/servers_disk_tests.dir/disk_server_test.cpp.o.d"
  "servers_disk_tests"
  "servers_disk_tests.pdb"
  "servers_disk_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servers_disk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
