# Empty dependencies file for servers_disk_tests.
# This may be replaced when dependencies are built.
