file(REMOVE_RECURSE
  "CMakeFiles/servers_copy_tests.dir/copy_server_test.cpp.o"
  "CMakeFiles/servers_copy_tests.dir/copy_server_test.cpp.o.d"
  "servers_copy_tests"
  "servers_copy_tests.pdb"
  "servers_copy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servers_copy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
