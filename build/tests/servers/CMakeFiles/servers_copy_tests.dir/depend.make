# Empty dependencies file for servers_copy_tests.
# This may be replaced when dependencies are built.
