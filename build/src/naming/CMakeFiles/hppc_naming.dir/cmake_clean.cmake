file(REMOVE_RECURSE
  "CMakeFiles/hppc_naming.dir/name_server.cpp.o"
  "CMakeFiles/hppc_naming.dir/name_server.cpp.o.d"
  "libhppc_naming.a"
  "libhppc_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
