# Empty compiler generated dependencies file for hppc_naming.
# This may be replaced when dependencies are built.
