file(REMOVE_RECURSE
  "libhppc_naming.a"
)
