# Empty compiler generated dependencies file for hppc_servers.
# This may be replaced when dependencies are built.
