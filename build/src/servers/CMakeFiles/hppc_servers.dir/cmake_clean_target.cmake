file(REMOVE_RECURSE
  "libhppc_servers.a"
)
