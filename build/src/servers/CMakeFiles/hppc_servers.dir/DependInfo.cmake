
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/servers/copy_server.cpp" "src/servers/CMakeFiles/hppc_servers.dir/copy_server.cpp.o" "gcc" "src/servers/CMakeFiles/hppc_servers.dir/copy_server.cpp.o.d"
  "/root/repo/src/servers/disk_server.cpp" "src/servers/CMakeFiles/hppc_servers.dir/disk_server.cpp.o" "gcc" "src/servers/CMakeFiles/hppc_servers.dir/disk_server.cpp.o.d"
  "/root/repo/src/servers/exception_server.cpp" "src/servers/CMakeFiles/hppc_servers.dir/exception_server.cpp.o" "gcc" "src/servers/CMakeFiles/hppc_servers.dir/exception_server.cpp.o.d"
  "/root/repo/src/servers/file_server.cpp" "src/servers/CMakeFiles/hppc_servers.dir/file_server.cpp.o" "gcc" "src/servers/CMakeFiles/hppc_servers.dir/file_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppc/CMakeFiles/hppc_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/hppc_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hppc_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
