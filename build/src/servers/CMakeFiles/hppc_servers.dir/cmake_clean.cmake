file(REMOVE_RECURSE
  "CMakeFiles/hppc_servers.dir/copy_server.cpp.o"
  "CMakeFiles/hppc_servers.dir/copy_server.cpp.o.d"
  "CMakeFiles/hppc_servers.dir/disk_server.cpp.o"
  "CMakeFiles/hppc_servers.dir/disk_server.cpp.o.d"
  "CMakeFiles/hppc_servers.dir/exception_server.cpp.o"
  "CMakeFiles/hppc_servers.dir/exception_server.cpp.o.d"
  "CMakeFiles/hppc_servers.dir/file_server.cpp.o"
  "CMakeFiles/hppc_servers.dir/file_server.cpp.o.d"
  "libhppc_servers.a"
  "libhppc_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
