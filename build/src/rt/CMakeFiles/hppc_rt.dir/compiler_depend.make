# Empty compiler generated dependencies file for hppc_rt.
# This may be replaced when dependencies are built.
