file(REMOVE_RECURSE
  "libhppc_rt.a"
)
