file(REMOVE_RECURSE
  "CMakeFiles/hppc_rt.dir/runtime.cpp.o"
  "CMakeFiles/hppc_rt.dir/runtime.cpp.o.d"
  "libhppc_rt.a"
  "libhppc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
