
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/gateway.cpp" "src/msg/CMakeFiles/hppc_msg.dir/gateway.cpp.o" "gcc" "src/msg/CMakeFiles/hppc_msg.dir/gateway.cpp.o.d"
  "/root/repo/src/msg/msg_facility.cpp" "src/msg/CMakeFiles/hppc_msg.dir/msg_facility.cpp.o" "gcc" "src/msg/CMakeFiles/hppc_msg.dir/msg_facility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppc/CMakeFiles/hppc_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hppc_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
