file(REMOVE_RECURSE
  "libhppc_msg.a"
)
