# Empty compiler generated dependencies file for hppc_msg.
# This may be replaced when dependencies are built.
