file(REMOVE_RECURSE
  "CMakeFiles/hppc_msg.dir/gateway.cpp.o"
  "CMakeFiles/hppc_msg.dir/gateway.cpp.o.d"
  "CMakeFiles/hppc_msg.dir/msg_facility.cpp.o"
  "CMakeFiles/hppc_msg.dir/msg_facility.cpp.o.d"
  "libhppc_msg.a"
  "libhppc_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
