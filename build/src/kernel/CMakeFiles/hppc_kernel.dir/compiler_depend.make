# Empty compiler generated dependencies file for hppc_kernel.
# This may be replaced when dependencies are built.
