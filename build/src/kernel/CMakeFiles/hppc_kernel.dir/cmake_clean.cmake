file(REMOVE_RECURSE
  "CMakeFiles/hppc_kernel.dir/machine.cpp.o"
  "CMakeFiles/hppc_kernel.dir/machine.cpp.o.d"
  "libhppc_kernel.a"
  "libhppc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
