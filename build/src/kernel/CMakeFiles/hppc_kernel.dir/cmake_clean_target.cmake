file(REMOVE_RECURSE
  "libhppc_kernel.a"
)
