file(REMOVE_RECURSE
  "CMakeFiles/hppc_baseline.dir/lrpc.cpp.o"
  "CMakeFiles/hppc_baseline.dir/lrpc.cpp.o.d"
  "CMakeFiles/hppc_baseline.dir/msgq.cpp.o"
  "CMakeFiles/hppc_baseline.dir/msgq.cpp.o.d"
  "libhppc_baseline.a"
  "libhppc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
