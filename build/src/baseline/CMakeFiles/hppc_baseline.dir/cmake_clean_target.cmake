file(REMOVE_RECURSE
  "libhppc_baseline.a"
)
