# Empty compiler generated dependencies file for hppc_baseline.
# This may be replaced when dependencies are built.
