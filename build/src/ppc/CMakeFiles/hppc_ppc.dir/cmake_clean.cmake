file(REMOVE_RECURSE
  "CMakeFiles/hppc_ppc.dir/facility.cpp.o"
  "CMakeFiles/hppc_ppc.dir/facility.cpp.o.d"
  "libhppc_ppc.a"
  "libhppc_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
