# Empty compiler generated dependencies file for hppc_ppc.
# This may be replaced when dependencies are built.
