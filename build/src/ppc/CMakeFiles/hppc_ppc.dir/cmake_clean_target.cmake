file(REMOVE_RECURSE
  "libhppc_ppc.a"
)
