file(REMOVE_RECURSE
  "libhppc_experiments.a"
)
