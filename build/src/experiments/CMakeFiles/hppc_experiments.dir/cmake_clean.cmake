file(REMOVE_RECURSE
  "CMakeFiles/hppc_experiments.dir/experiments.cpp.o"
  "CMakeFiles/hppc_experiments.dir/experiments.cpp.o.d"
  "CMakeFiles/hppc_experiments.dir/workload.cpp.o"
  "CMakeFiles/hppc_experiments.dir/workload.cpp.o.d"
  "libhppc_experiments.a"
  "libhppc_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hppc_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
