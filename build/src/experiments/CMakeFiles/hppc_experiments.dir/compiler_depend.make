# Empty compiler generated dependencies file for hppc_experiments.
# This may be replaced when dependencies are built.
