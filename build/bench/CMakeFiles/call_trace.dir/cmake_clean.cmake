file(REMOVE_RECURSE
  "CMakeFiles/call_trace.dir/call_trace.cpp.o"
  "CMakeFiles/call_trace.dir/call_trace.cpp.o.d"
  "call_trace"
  "call_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
