# Empty compiler generated dependencies file for call_trace.
# This may be replaced when dependencies are built.
