# Empty compiler generated dependencies file for ablation_holdcd.
# This may be replaced when dependencies are built.
