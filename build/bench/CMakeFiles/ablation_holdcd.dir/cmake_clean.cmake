file(REMOVE_RECURSE
  "CMakeFiles/ablation_holdcd.dir/ablation_holdcd.cpp.o"
  "CMakeFiles/ablation_holdcd.dir/ablation_holdcd.cpp.o.d"
  "ablation_holdcd"
  "ablation_holdcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_holdcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
