file(REMOVE_RECURSE
  "CMakeFiles/ablation_gateway.dir/ablation_gateway.cpp.o"
  "CMakeFiles/ablation_gateway.dir/ablation_gateway.cpp.o.d"
  "ablation_gateway"
  "ablation_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
