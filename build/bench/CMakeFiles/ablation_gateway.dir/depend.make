# Empty dependencies file for ablation_gateway.
# This may be replaced when dependencies are built.
