file(REMOVE_RECURSE
  "CMakeFiles/ablation_frank.dir/ablation_frank.cpp.o"
  "CMakeFiles/ablation_frank.dir/ablation_frank.cpp.o.d"
  "ablation_frank"
  "ablation_frank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
