# Empty dependencies file for ablation_frank.
# This may be replaced when dependencies are built.
