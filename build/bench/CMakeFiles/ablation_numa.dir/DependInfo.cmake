
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_numa.cpp" "bench/CMakeFiles/ablation_numa.dir/ablation_numa.cpp.o" "gcc" "bench/CMakeFiles/ablation_numa.dir/ablation_numa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/hppc_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/hppc_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/hppc_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/ppc/CMakeFiles/hppc_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hppc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hppc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hppc_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/hppc_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
