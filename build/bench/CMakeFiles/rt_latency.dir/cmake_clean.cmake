file(REMOVE_RECURSE
  "CMakeFiles/rt_latency.dir/rt_latency.cpp.o"
  "CMakeFiles/rt_latency.dir/rt_latency.cpp.o.d"
  "rt_latency"
  "rt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
