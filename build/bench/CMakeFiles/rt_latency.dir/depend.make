# Empty dependencies file for rt_latency.
# This may be replaced when dependencies are built.
