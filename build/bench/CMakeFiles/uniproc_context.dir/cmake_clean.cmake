file(REMOVE_RECURSE
  "CMakeFiles/uniproc_context.dir/uniproc_context.cpp.o"
  "CMakeFiles/uniproc_context.dir/uniproc_context.cpp.o.d"
  "uniproc_context"
  "uniproc_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniproc_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
