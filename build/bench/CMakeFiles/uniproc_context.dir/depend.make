# Empty dependencies file for uniproc_context.
# This may be replaced when dependencies are built.
