file(REMOVE_RECURSE
  "CMakeFiles/fig3_throughput.dir/fig3_throughput.cpp.o"
  "CMakeFiles/fig3_throughput.dir/fig3_throughput.cpp.o.d"
  "fig3_throughput"
  "fig3_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
