file(REMOVE_RECURSE
  "CMakeFiles/ablation_critsec.dir/ablation_critsec.cpp.o"
  "CMakeFiles/ablation_critsec.dir/ablation_critsec.cpp.o.d"
  "ablation_critsec"
  "ablation_critsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_critsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
