# Empty dependencies file for ablation_critsec.
# This may be replaced when dependencies are built.
