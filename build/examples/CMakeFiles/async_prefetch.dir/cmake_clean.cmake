file(REMOVE_RECURSE
  "CMakeFiles/async_prefetch.dir/async_prefetch.cpp.o"
  "CMakeFiles/async_prefetch.dir/async_prefetch.cpp.o.d"
  "async_prefetch"
  "async_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
