# Empty compiler generated dependencies file for async_prefetch.
# This may be replaced when dependencies are built.
