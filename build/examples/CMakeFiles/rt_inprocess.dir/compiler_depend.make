# Empty compiler generated dependencies file for rt_inprocess.
# This may be replaced when dependencies are built.
