file(REMOVE_RECURSE
  "CMakeFiles/rt_inprocess.dir/rt_inprocess.cpp.o"
  "CMakeFiles/rt_inprocess.dir/rt_inprocess.cpp.o.d"
  "rt_inprocess"
  "rt_inprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_inprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
