# Empty dependencies file for interrupt_dispatch.
# This may be replaced when dependencies are built.
