file(REMOVE_RECURSE
  "CMakeFiles/interrupt_dispatch.dir/interrupt_dispatch.cpp.o"
  "CMakeFiles/interrupt_dispatch.dir/interrupt_dispatch.cpp.o.d"
  "interrupt_dispatch"
  "interrupt_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
