file(REMOVE_RECURSE
  "CMakeFiles/figure4_stub.dir/figure4_stub.cpp.o"
  "CMakeFiles/figure4_stub.dir/figure4_stub.cpp.o.d"
  "figure4_stub"
  "figure4_stub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
