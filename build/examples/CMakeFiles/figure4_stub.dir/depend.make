# Empty dependencies file for figure4_stub.
# This may be replaced when dependencies are built.
