// The PPC pattern as a host library: per-thread-slot pools, handler runs on
// the calling thread, one atomic load on the fast path. Compare against a
// global-mutex pool and a classic message-queue server.
//
//   $ ./examples/rt_inprocess
#include <chrono>
#include <cstdio>

#include "rt/global_pool.h"
#include "rt/msgq.h"
#include "rt/runtime.h"

using namespace hppc;
using Clock = std::chrono::steady_clock;

namespace {

double ns_per_call(std::uint64_t calls, Clock::duration d) {
  return std::chrono::duration<double, std::nano>(d).count() /
         static_cast<double>(calls);
}

}  // namespace

int main() {
  constexpr std::uint64_t kCalls = 400000;

  // --- the PPC-pattern runtime ---
  rt::Runtime ppc_rt(2);
  const rt::SlotId slot = ppc_rt.register_thread();
  const EntryPointId svc = ppc_rt.bind(
      {.name = "counter"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });

  ppc::RegSet regs;
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    regs[0] = static_cast<Word>(i);
    ppc::set_op(regs, 1);
    ppc_rt.call(slot, 1, svc, regs);
  }
  const double rt_ns = ns_per_call(kCalls, Clock::now() - t0);

  // --- global locked pool (LRPC-ish) ---
  rt::GlobalPoolRuntime global;
  const EntryPointId gsvc = global.bind([](ProgramId, ppc::RegSet& r) {
    r[1] = r[0] + 1;
    ppc::set_rc(r, Status::kOk);
  });
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    regs[0] = static_cast<Word>(i);
    ppc::set_op(regs, 1);
    global.call(1, gsvc, regs);
  }
  const double global_ns = ns_per_call(kCalls, Clock::now() - t0);

  // --- message-queue server (cross-thread round trip) ---
  rt::MsgQueueServer msgq(1, [](ppc::RegSet& r) {
    r[1] = r[0] + 1;
    ppc::set_rc(r, Status::kOk);
  });
  constexpr std::uint64_t kMsgCalls = 20000;  // two context switches each
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kMsgCalls; ++i) {
    regs[0] = static_cast<Word>(i);
    ppc::set_op(regs, 1);
    msgq.call(regs);
  }
  const double msgq_ns = ns_per_call(kMsgCalls, Clock::now() - t0);

  std::printf("in-process IPC, one thread, ns/call:\n");
  std::printf("  PPC pattern (per-slot pools):   %8.1f\n", rt_ns);
  std::printf("  global mutex pool (LRPC-ish):   %8.1f\n", global_ns);
  std::printf("  message queue (thread handoff): %8.1f\n", msgq_ns);
  std::printf("\nper-slot stats: calls=%llu workers=%llu cds=%llu\n",
              static_cast<unsigned long long>(ppc_rt.stats(slot).calls),
              static_cast<unsigned long long>(
                  ppc_rt.stats(slot).worker_creations),
              static_cast<unsigned long long>(ppc_rt.stats(slot).cd_creations));
  return 0;
}
