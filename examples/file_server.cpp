// The Figure-3 workload in miniature: Bob the file server, registered with
// the name server, handling GetLength from several clients — first against
// different files (scales), then against one common file (the per-file lock
// saturates).
//
//   $ ./examples/file_server
#include <cstdio>

#include "kernel/machine.h"
#include "naming/name_server.h"
#include "ppc/facility.h"
#include "servers/file_server.h"

using namespace hppc;

int main() {
  kernel::Machine machine(sim::hector_config(8));
  ppc::PpcFacility ppc(machine);
  naming::NameServer names(ppc);
  servers::FileServer bob(ppc, {});

  // Bob registers himself under a well-known name...
  kernel::AddressSpace& bob_as = machine.create_address_space(901, 0);
  kernel::Process& bob_prog =
      machine.create_process(bob.program(), &bob_as, "bob-main", 0);
  naming::NameServer::register_name(ppc, machine.cpu(0), bob_prog, "bob",
                                    bob.ep());

  // ...and clients find him by name (§4.5.5).
  const std::uint32_t shared = bob.create_file(0, 4096);
  std::vector<std::uint32_t> own_files;
  std::vector<kernel::Process*> clients;
  for (CpuId c = 0; c < 8; ++c) {
    auto& as = machine.create_address_space(100 + c,
                                            machine.config().node_of_cpu(c));
    clients.push_back(&machine.create_process(
        100 + c, &as, "client", machine.config().node_of_cpu(c)));
    own_files.push_back(
        bob.create_file(machine.config().node_of_cpu(c), 1000 + c));
  }
  EntryPointId bob_ep = 0;
  naming::NameServer::lookup(ppc, machine.cpu(0), *clients[0], "bob",
                             &bob_ep);
  std::printf("name server resolved \"bob\" -> entry point %u\n\n", bob_ep);

  auto run = [&](bool single_file, const char* label) {
    // Fresh measurement: count calls in a 2 ms simulated window per client.
    std::vector<std::uint64_t> counts(8, 0);
    std::vector<Cycles> deadline(8);
    for (CpuId c = 0; c < 8; ++c) {
      kernel::Cpu& cpu = machine.cpu(c);
      deadline[c] =
          cpu.now() + machine.config().cycles_from_us(2000.0);
      const std::uint32_t fid = single_file ? shared : own_files[c];
      clients[c]->set_body([&, c, fid, bob_ep](kernel::Cpu& cpu2,
                                               kernel::Process& self) {
        if (cpu2.now() >= deadline[c]) return;
        std::uint64_t len = 0;
        servers::FileServer::get_length(ppc, cpu2, self, bob_ep, fid, &len);
        ++counts[c];
        machine.ready(cpu2, self);
      });
      // Re-arm the process for this measurement round (it ended the
      // previous round by running to completion).
      clients[c]->set_state(kernel::ProcessState::kBlocked);
      machine.ready(cpu, *clients[c]);
    }
    machine.run_until_idle();
    std::uint64_t total = 0;
    for (auto n : counts) total += n;
    std::printf("%-16s %6llu calls in 2 ms/client  (%.0f calls/s)\n", label,
                static_cast<unsigned long long>(total), total / 0.002 / 8);
    return total;
  };

  const auto diff = run(false, "different files:");
  const auto single = run(true, "single file:");
  std::printf("\nshared-file throughput is %.1f%% of the independent case —\n"
              "the per-file lock serializes the common file (Figure 3).\n",
              100.0 * single / diff);
  return 0;
}
