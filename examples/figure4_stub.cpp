// Figure 4, reproduced: "Example PPC library call, and compiler output."
//
// The paper shows a client stub (DoStuff) that loads an opcode into the
// opflags word, passes its three real arguments plus dummies straight
// through the eight registers, traps, and returns PPC_RC(opflags) — no
// marshalling code at all. This example is our API's equivalent stub and a
// demonstration that the arguments really do pass through untouched.
//
//   $ ./examples/figure4_stub
#include <cstdio>

#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

namespace {

constexpr Word kDoStuffOp = 0x7;
constexpr EntryPointId kSomeEpSlot = 0;  // filled in at bind time
EntryPointId g_some_ep = 0;
ppc::PpcFacility* g_ppc = nullptr;
kernel::Cpu* g_cpu = nullptr;
kernel::Process* g_self = nullptr;

// The paper's stub, transliterated:
//
//   int DoStuff(unsigned arg1, char *arg2, void *arg3) {
//     register int t4,t5,t6,t7,opflags;
//     opflags = PPC_OP_FLAGS(PPC_DO_STUFF, 0);
//     PPC_CALL(SOME_EP, arg1, arg2, arg3, t4, t5, t6, t7, opflags);
//     return PPC_RC(opflags);
//   }
//
// Exactly eight words travel; unused positions are dummies; the return
// code comes back in the last word. Our Word is 32-bit (M88100), so the
// "pointer" arguments are word-sized tokens as they would be there.
Status DoStuff(Word arg1, Word arg2, Word arg3) {
  ppc::RegSet r;
  r[0] = arg1;
  r[1] = arg2;
  r[2] = arg3;
  // r[3..6] are the dummy registers t4..t7 of Figure 4.
  set_op(r, kDoStuffOp, /*flags=*/0);          // PPC_OP_FLAGS(PPC_DO_STUFF,0)
  g_ppc->call(*g_cpu, *g_self, g_some_ep, r);  // PPC_CALL(SOME_EP, ...)
  return rc_of(r);                             // PPC_RC(opflags)
}

}  // namespace

int main() {
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc(machine);
  (void)kSomeEpSlot;

  // The server sees the three arguments exactly as passed.
  auto& server_as = machine.create_address_space(700, 0);
  Word seen[3] = {0, 0, 0};
  Word seen_opcode = 0;
  g_some_ep = ppc.bind({.name = "stuff"}, &server_as, 700,
                       [&](ppc::ServerCtx&, ppc::RegSet& regs) {
                         seen[0] = regs[0];
                         seen[1] = regs[1];
                         seen[2] = regs[2];
                         seen_opcode = opcode_of(regs);
                         set_rc(regs, Status::kOk);
                       });

  auto& client_as = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &client_as, "c", 0);
  g_ppc = &ppc;
  g_cpu = &machine.cpu(0);
  g_self = &client;

  const Status rc = DoStuff(0xAAAA0001, 0xBBBB0002, 0xCCCC0003);

  std::printf("DoStuff returned: %s\n", to_string(rc));
  std::printf("server saw: arg1=%#x arg2=%#x arg3=%#x opcode=%#x\n", seen[0],
              seen[1], seen[2], seen_opcode);
  std::printf("\nProperties of the Figure-4 interface demonstrated:\n"
              "  - all 8 words pass through registers, no marshalling\n"
              "  - opcode+flags packed in the last word (PPC_OP_FLAGS)\n"
              "  - the return code comes back in the same word (PPC_RC)\n");
  return rc == Status::kOk && seen[0] == 0xAAAA0001 ? 0 : 1;
}
