// Legacy interoperation (§5): a single-threaded receive/reply server keeps
// its old structure; PPC clients reach it through the gateway. Then the
// same handler body is rebound as a native PPC service — "not much effort
// is required" — and scales.
//
//   $ ./examples/legacy_interop
#include <cstdio>
#include <functional>

#include "kernel/machine.h"
#include "msg/gateway.h"
#include "ppc/facility.h"

using namespace hppc;

int main() {
  kernel::Machine machine(sim::hector_config(8));
  ppc::PpcFacility ppc(machine);
  msg::MsgFacility msgs(machine);

  // --- the legacy server: one process, one CPU, receive/reply loop ---
  auto& las = machine.create_address_space(800, 1);
  kernel::Process& legacy = machine.create_process(800, &las, "legacy", 1);
  const CpuId server_cpu = 7;
  std::function<void(Pid, ppc::RegSet&)> loop;
  loop = [&](Pid from, ppc::RegSet& m) {
    kernel::Cpu& scpu = machine.cpu(server_cpu);
    ppc::RegSet reply = m;
    reply[1] = m[0] * m[0];  // the "service": squaring
    set_rc(reply, Status::kOk);
    msgs.reply(scpu, legacy, from, reply);
    msgs.receive(scpu, legacy, loop);
  };
  legacy.set_body([&](kernel::Cpu& cpu, kernel::Process& self) {
    msgs.receive(cpu, self, loop);
  });
  machine.ready(machine.cpu(server_cpu), legacy);
  machine.run_until_idle();
  std::printf("legacy server parked in receive() on cpu %u\n", server_cpu);

  // --- the gateway makes it a PPC service without touching it ---
  msg::PpcMsgGateway gateway(ppc, msgs, legacy.pid(), "square-legacy");

  auto& cas = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &cas, "client", 0);
  int remaining = 3;
  std::function<void(kernel::Cpu&, kernel::Process&)> body =
      [&](kernel::Cpu& cpu, kernel::Process& self) {
        if (remaining == 0) return;
        const Word x = static_cast<Word>(10 + remaining);
        --remaining;
        ppc::RegSet regs;
        regs[0] = x;
        set_op(regs, 1);
        ppc.call_blocking(cpu, self, gateway.ep(), regs,
                          [x](Status s, ppc::RegSet& out) {
                            std::printf(
                                "  via gateway: %u^2 = %u (status=%s)\n", x,
                                out[1], to_string(s));
                          });
      };
  client.set_body(body);
  machine.ready(machine.cpu(0), client);
  machine.run_until_idle();
  std::printf("gateway forwarded %llu calls as messages\n\n",
              static_cast<unsigned long long>(gateway.forwarded()));

  // --- the adapted server: the same body as a native PPC handler ---
  auto& nas = machine.create_address_space(801, 0);
  const EntryPointId native = ppc.bind(
      {.name = "square-native"}, &nas, 801,
      [](ppc::ServerCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] * regs[0];  // the very same service body
        set_rc(regs, Status::kOk);
      });
  ppc::RegSet regs;
  regs[0] = 9;
  set_op(regs, 1);
  ppc.call(machine.cpu(0), client, native, regs);
  std::printf("natively adapted: 9^2 = %u — handled on the caller's own\n"
              "cpu with the caller's own resources; no gateway, no queue,\n"
              "no dedicated server processor.\n",
              regs[1]);
  return 0;
}
