// Interrupt dispatching and the disk (§4.3, §4.4): clients issue blocking
// reads; the disk's shared request queue is the only shared data; transfer
// completions arrive as device interrupts that are dispatched as PPC
// requests to the very same device-server entry point.
//
//   $ ./examples/interrupt_dispatch
#include <cstdio>

#include "kernel/machine.h"
#include "ppc/facility.h"
#include "servers/disk_server.h"

using namespace hppc;

int main() {
  kernel::Machine machine(sim::hector_config(8));
  ppc::PpcFacility ppc(machine);

  servers::DiskServer::Config cfg;
  cfg.interrupt_cpu = 0;  // the disk interrupts processor 0
  servers::DiskServer disk(ppc, cfg);

  // Put recognizable content on a few blocks.
  for (int b = 0; b < 4; ++b) {
    char content[32];
    std::snprintf(content, sizeof(content), "content of block %d", b);
    disk.load_block(b, content, sizeof(content));
  }

  // Four clients on four different processors read four blocks.
  std::vector<SimAddr> buffers;
  std::vector<bool> issued(4, false);
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    buffers.push_back(machine.allocator().alloc(
        machine.config().node_of_cpu(i), 512, 16));
  }
  for (CpuId c = 0; c < 4; ++c) {
    auto& as = machine.create_address_space(100 + c,
                                            machine.config().node_of_cpu(c));
    kernel::Process& client = machine.create_process(
        100 + c, &as, "reader", machine.config().node_of_cpu(c));
    client.set_body([&, c](kernel::Cpu& cpu, kernel::Process& self) {
      if (issued[c]) return;
      issued[c] = true;
      servers::DiskServer::read_block(
          ppc, cpu, self, disk.ep(), c, buffers[c],
          [&, c](Status s, ppc::RegSet& regs) {
            char got[32] = {};
            machine.read_data(buffers[c], got, sizeof(got));
            std::printf("cpu %u: read block %u -> status=%s, %u bytes: "
                        "\"%s\"\n",
                        c, c, to_string(s), regs[3], got);
            ++completions;
          });
    });
    machine.ready(machine.cpu(c), client);
  }
  machine.run_until_idle();

  std::printf("\ncompletions: %d; interrupt-dispatched PPCs on cpu %u: %llu\n",
              completions, cfg.interrupt_cpu,
              static_cast<unsigned long long>(
                  machine.cpu(cfg.interrupt_cpu)
                      .counters()
                      .get(obs::Counter::kCallsInterrupt)));
  std::printf("disk serviced %llu transfers through its shared queue\n",
              static_cast<unsigned long long>(disk.completed()));
  return 0;
}
