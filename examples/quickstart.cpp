// Quickstart: boot a simulated Hector machine, bind a service, call it,
// and read the per-category cost ledger (the Figure-2 machinery).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

int main() {
  // A 4-processor machine with the paper's Hector/M88100 parameters.
  kernel::Machine machine(sim::hector_config(4));
  ppc::PpcFacility ppc(machine);

  // A server is a passive address space plus a call-handling routine.
  kernel::AddressSpace& server_as = machine.create_address_space(
      /*program=*/700, /*home_node=*/0);
  const EntryPointId adder = ppc.bind(
      {.name = "adder"}, &server_as, /*program=*/700,
      [](ppc::ServerCtx& ctx, ppc::RegSet& regs) {
        // Handlers see the caller's program id (§4.1) and all 8 words.
        std::printf("  [adder] serving program %u on cpu %u\n",
                    ctx.caller_program(), ctx.cpu().id());
        regs[2] = regs[0] + regs[1];
        set_rc(regs, Status::kOk);
      });

  // A client is a process in its own address space.
  kernel::AddressSpace& client_as = machine.create_address_space(100, 0);
  kernel::Process& client =
      machine.create_process(100, &client_as, "client", 0);

  // Make a few calls: 8 words in, 8 words out, rc in the last word.
  kernel::Cpu& cpu = machine.cpu(0);
  for (int i = 0; i < 3; ++i) {
    ppc::RegSet regs;
    regs[0] = 40;
    regs[1] = static_cast<Word>(2 + i);
    set_op(regs, /*opcode=*/1);
    const Status s = ppc.call(cpu, client, adder, regs);
    std::printf("call %d: status=%s, %u + %u = %u\n", i, to_string(s),
                40u, 2 + i, regs[2]);
  }

  // The cost ledger: every cycle of every call, by Figure-2 category.
  std::printf("\nCost ledger for cpu 0 (cycles @ %.2f MHz):\n",
              machine.config().clock_mhz);
  const auto& ledger = cpu.mem().ledger();
  for (std::size_t c = 0; c < sim::kNumCostCategories; ++c) {
    const auto cat = static_cast<sim::CostCategory>(c);
    if (ledger.get(cat) == 0) continue;
    std::printf("  %-20s %8llu cycles (%.1f us)\n", to_string(cat),
                static_cast<unsigned long long>(ledger.get(cat)),
                machine.config().us(ledger.get(cat)));
  }
  std::printf("  %-20s %8llu cycles (%.1f us total)\n", "TOTAL",
              static_cast<unsigned long long>(ledger.total()),
              machine.config().us(ledger.total()));
  return 0;
}
