// Asynchronous PPC (§4.4): "Asynchronous PPC requests are used, for
// example, to initiate a file block prefetch request."
//
// A client reads blocks sequentially. Before processing block N it fires an
// async PPC asking Bob to prefetch block N+1: the caller goes straight back
// to the ready queue while the prefetch is serviced, and the next read hits
// warm state.
//
//   $ ./examples/async_prefetch
#include <cstdio>

#include "kernel/machine.h"
#include "ppc/facility.h"
#include "servers/file_server.h"

using namespace hppc;

int main() {
  kernel::Machine machine(sim::hector_config(4));
  ppc::PpcFacility ppc(machine);
  servers::FileServer bob(ppc, {});
  const std::uint32_t fid = bob.create_file(0, 64 * 1024);

  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &as, "reader", 0);
  kernel::Cpu& cpu = machine.cpu(0);

  constexpr int kBlocks = 8;
  int next_block = 0;
  std::uint64_t prefetches = 0;

  client.set_body([&](kernel::Cpu& cpu2, kernel::Process& self) {
    if (next_block >= kBlocks) return;  // done
    const int block = next_block++;

    // Fire-and-forget prefetch of the next block (async PPC: we are placed
    // on the ready queue, the worker runs, then we continue).
    if (block + 1 < kBlocks) {
      ppc::RegSet pre;
      pre[0] = fid;
      pre[1] = static_cast<Word>((block + 1) * 512);
      pre[2] = 512;
      set_op(pre, servers::kFileRead);
      if (ppc.call_async(cpu2, self, bob.ep(), pre) == Status::kOk) {
        ++prefetches;
      }
      // NOTE: call_async must be the last action of this body segment; the
      // process is already on the ready queue and will be re-dispatched.
      return;
    }
    machine.ready(cpu2, self);
  });

  // Interleave: after each async prefetch the engine runs the worker, then
  // re-dispatches the client, which issues the synchronous read.
  machine.ready(cpu, client);
  machine.run_until_idle();

  // Synchronous reads of all blocks, now that everything is prefetched.
  std::uint64_t read_bytes = 0;
  for (int block = 0; block < kBlocks; ++block) {
    std::uint32_t got = 0;
    servers::FileServer::read(ppc, cpu, client, bob.ep(), fid,
                              static_cast<std::uint32_t>(block) * 512, 512,
                              &got);
    read_bytes += got;
  }

  std::printf("prefetched %llu blocks asynchronously, then read %llu bytes\n",
              static_cast<unsigned long long>(prefetches),
              static_cast<unsigned long long>(read_bytes));
  std::printf("async calls recorded on cpu 0: %llu\n",
              static_cast<unsigned long long>(
                  machine.cpu(0).counters().get(obs::Counter::kCallsAsync)));
  std::printf("total simulated time: %.1f us\n",
              machine.config().us(cpu.now()));
  return 0;
}
