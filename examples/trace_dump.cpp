// End-to-end call tracing demo: run a traced request against a busy server
// slot and dump the raw span records as JSON on stdout.
//
//   $ ./examples/trace_dump > trace.json
//   $ python3 tools/trace2chrome.py --check trace.json
//   $ python3 tools/trace2chrome.py trace.json chrome.json   # load in ui.perfetto.dev
//
// The request is one root span on the caller's slot containing a nested
// local call, a couple of remote calls, and a batched submission — so the
// dump shows the whole parent-linked chain crossing caller slot -> ring ->
// server slot. Requires a -DHPPC_TRACE=ON build; on a shipping build the
// rings are empty and the tool prints a note instead.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "rt/runtime.h"

using namespace hppc;

int main() {
#if !defined(HPPC_TRACE) || !HPPC_TRACE
  std::fprintf(stderr,
               "trace_dump: built without HPPC_TRACE; rebuild with "
               "-DHPPC_TRACE=ON to record spans\n");
  std::printf("{\"rings\":{}}\n");
  return 0;
#else
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();

  const EntryPointId echo = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });
  // A service that itself makes a nested call, so the trace shows a
  // local_call span under the server_exec span that ran it.
  const EntryPointId nested = rt.bind(
      {.name = "nested"}, 700, [echo](rt::RtCtx& ctx, ppc::RegSet& regs) {
        ppc::RegSet inner;
        inner[0] = regs[0];
        ppc::set_op(inner, 1);
        ctx.call(echo, inner);
        regs[1] = inner[1];
        ppc::set_rc(regs, Status::kOk);
      });

  // Busy server slot: a thread that polls its ring keeps its gate owned, so
  // remote calls take the xcall ring (post -> drain -> complete) rather
  // than the idle-owner direct-steal shortcut.
  std::atomic<bool> stop{false};
  std::atomic<rt::SlotId> server_slot{0};
  std::atomic<bool> server_up{false};
  std::thread server([&] {
    const rt::SlotId s = rt.register_thread();
    server_slot.store(s, std::memory_order_release);
    server_up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
  });
  while (!server_up.load(std::memory_order_acquire)) std::this_thread::yield();
  const rt::SlotId other = server_slot.load(std::memory_order_acquire);

  // --- one traced request ---
  const obs::TraceCtx root = rt.trace_begin(me);
  ppc::RegSet regs;

  regs[0] = 1;
  ppc::set_op(regs, 1);
  rt.call(me, 1, echo, regs);  // local_call span

  regs[0] = 10;
  ppc::set_op(regs, 1);
  rt.call_remote(me, other, 1, nested, regs);  // remote_call -> server_exec
                                               //   -> nested local_call

  ppc::RegSet batch[4];
  for (int i = 0; i < 4; ++i) {
    batch[i] = ppc::RegSet{};
    batch[i][0] = static_cast<Word>(100 + i);
    ppc::set_op(batch[i], 1);
  }
  rt.call_remote_batch(me, other, 1, echo,
                       std::span<ppc::RegSet>(batch, 4));  // batch span over
                                                           // 4 server_execs
  rt.trace_end(me);

  stop.store(true, std::memory_order_release);
  server.join();

  std::fprintf(stderr, "trace_dump: traced request 0x%llx across %u slots\n",
               static_cast<unsigned long long>(root.trace_id), rt.slots());

  std::vector<obs::NamedRing> rings;
  for (rt::SlotId s = 0; s < rt.slots(); ++s) {
    rings.push_back({"slot" + std::to_string(s), &rt.trace_ring(s)});
  }
  const std::string json = obs::trace_to_json(rings);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::printf("\n");
  return 0;
#endif
}
