#include "common/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hppc {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, BelowStaysInRange) {
  Prng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Prng, BelowOneIsAlwaysZero) {
  Prng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(11);
  double sum = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Prng, BelowIsRoughlyUniform) {
  Prng rng(13);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kN = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kN; ++i) ++hist[rng.below(kBuckets)];
  for (auto h : hist) {
    EXPECT_NEAR(h, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng base(42);
  Prng s1 = base.split(1);
  Prng s2 = base.split(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(s1.next());
    seen.insert(s2.next());
  }
  EXPECT_EQ(seen.size(), 128u);  // no collisions across streams
}

}  // namespace
}  // namespace hppc
