#include "common/free_stack.h"

#include <gtest/gtest.h>

namespace hppc {
namespace {

struct Item {
  int id = 0;
  StackLink link;
};

using Pool = FreeStack<Item, &Item::link>;

TEST(FreeStack, StartsEmpty) {
  Pool pool;
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pop(), nullptr);
  EXPECT_EQ(pool.peek(), nullptr);
}

TEST(FreeStack, LifoOrder) {
  // LIFO is load-bearing: the most recently freed CD/stack is the cache-hot
  // one, which is the paper's "effectively recycled on each call" effect.
  Pool pool;
  Item items[4];
  for (int i = 0; i < 4; ++i) {
    items[i].id = i;
    pool.push(&items[i]);
  }
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 3; i >= 0; --i) {
    Item* it = pool.pop();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->id, i);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(FreeStack, PeekDoesNotRemove) {
  Pool pool;
  Item a{7, {}};
  pool.push(&a);
  EXPECT_EQ(pool.peek(), &a);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.pop(), &a);
}

TEST(FreeStack, PushPopInterleaved) {
  Pool pool;
  Item items[3];
  pool.push(&items[0]);
  pool.push(&items[1]);
  EXPECT_EQ(pool.pop(), &items[1]);
  pool.push(&items[2]);
  EXPECT_EQ(pool.pop(), &items[2]);
  EXPECT_EQ(pool.pop(), &items[0]);
  EXPECT_EQ(pool.pop(), nullptr);
}

TEST(FreeStack, ReuseAfterPop) {
  Pool pool;
  Item a{};
  pool.push(&a);
  Item* got = pool.pop();
  ASSERT_EQ(got, &a);
  pool.push(got);  // link must be clean for re-push
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.pop(), &a);
}

}  // namespace
}  // namespace hppc
