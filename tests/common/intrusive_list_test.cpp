#include "common/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace hppc {
namespace {

struct Node {
  int value = 0;
  ListLink link;
  ListLink other_link;  // a node can be on two different lists
};

using NodeList = IntrusiveList<Node, &Node::link>;

TEST(IntrusiveList, StartsEmpty) {
  NodeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
  EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, PushBackPopFrontIsFifo) {
  NodeList list;
  Node nodes[4];
  for (int i = 0; i < 4; ++i) {
    nodes[i].value = i;
    list.push_back(&nodes[i]);
  }
  EXPECT_EQ(list.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    Node* n = list.pop_front();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
    EXPECT_FALSE(n->link.linked());
  }
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PushFrontPopFrontIsLifo) {
  NodeList list;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].value = i;
    list.push_front(&nodes[i]);
  }
  for (int i = 2; i >= 0; --i) {
    EXPECT_EQ(list.pop_front()->value, i);
  }
}

TEST(IntrusiveList, PopBack) {
  NodeList list;
  Node a{1, {}, {}}, b{2, {}, {}};
  list.push_back(&a);
  list.push_back(&b);
  EXPECT_EQ(list.pop_back()->value, 2);
  EXPECT_EQ(list.pop_back()->value, 1);
}

TEST(IntrusiveList, EraseFromMiddle) {
  NodeList list;
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].value = i;
    list.push_back(&nodes[i]);
  }
  list.erase(&nodes[2]);
  EXPECT_EQ(list.size(), 4u);
  EXPECT_FALSE(list.contains(&nodes[2]));
  std::vector<int> got;
  while (Node* n = list.pop_front()) got.push_back(n->value);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 3, 4}));
}

TEST(IntrusiveList, ContainsFindsOnlyMembers) {
  NodeList list;
  Node in{}, out{};
  list.push_back(&in);
  EXPECT_TRUE(list.contains(&in));
  EXPECT_FALSE(list.contains(&out));
}

TEST(IntrusiveList, UnlinkIsIdempotent) {
  NodeList list;
  Node n{};
  list.push_back(&n);
  n.link.unlink();
  EXPECT_FALSE(n.link.linked());
  n.link.unlink();  // safe second time
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, TwoListsThroughDifferentLinks) {
  NodeList primary;
  IntrusiveList<Node, &Node::other_link> secondary;
  Node n{42, {}, {}};
  primary.push_back(&n);
  secondary.push_back(&n);
  EXPECT_TRUE(primary.contains(&n));
  EXPECT_TRUE(secondary.contains(&n));
  EXPECT_EQ(primary.pop_front(), &n);
  EXPECT_EQ(secondary.pop_front(), &n);
}

TEST(IntrusiveList, IterationVisitsInOrder) {
  NodeList list;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].value = i * 10;
    list.push_back(&nodes[i]);
  }
  int expect = 0;
  for (Node& n : list) {
    EXPECT_EQ(n.value, expect);
    expect += 10;
  }
  EXPECT_EQ(expect, 30);
}

TEST(IntrusiveListDeathTest, DoubleInsertAsserts) {
  NodeList list;
  Node n{};
  list.push_back(&n);
  EXPECT_DEATH(list.push_back(&n), "already on a list");
}

}  // namespace
}  // namespace hppc
