#include "common/stats.h"

#include <gtest/gtest.h>

namespace hppc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentiles, MedianAndTail) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.count(), 100u);
  EXPECT_NEAR(p.median(), 50.0, 1.0);
  EXPECT_NEAR(p.p99(), 99.0, 1.0);
  EXPECT_EQ(p.quantile(0.0), 1.0);
  EXPECT_EQ(p.quantile(1.0), 100.0);
}

TEST(Percentiles, UnsortedInput) {
  Percentiles p;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) p.add(x);
  EXPECT_EQ(p.median(), 5.0);
}

}  // namespace
}  // namespace hppc
