#include "common/stats.h"

#include <gtest/gtest.h>

namespace hppc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentiles, MedianAndTail) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.count(), 100u);
  EXPECT_NEAR(p.median(), 50.0, 1.0);
  EXPECT_NEAR(p.p99(), 99.0, 1.0);
  EXPECT_EQ(p.quantile(0.0), 1.0);
  EXPECT_EQ(p.quantile(1.0), 100.0);
}

TEST(Percentiles, UnsortedInput) {
  Percentiles p;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) p.add(x);
  EXPECT_EQ(p.median(), 5.0);
}

TEST(RunningStats, MergeIsAssociative) {
  // (a . b) . c == a . (b . c): per-slot blocks may be folded in any order
  // at snapshot time, so the merge must not depend on grouping.
  RunningStats a1, b1, c1, a2, b2, c2;
  int i = 0;
  for (double x : {0.1, 2.7, 3.9, 1.1, 8.2, 5.5, 0.4, 9.6, 4.2}) {
    RunningStats* dst1 = i % 3 == 0 ? &a1 : (i % 3 == 1 ? &b1 : &c1);
    RunningStats* dst2 = i % 3 == 0 ? &a2 : (i % 3 == 1 ? &b2 : &c2);
    dst1->add(x);
    dst2->add(x);
    ++i;
  }
  a1.merge(b1);
  a1.merge(c1);  // (a . b) . c
  b2.merge(c2);
  a2.merge(b2);  // a . (b . c)
  EXPECT_EQ(a1.count(), a2.count());
  EXPECT_NEAR(a1.mean(), a2.mean(), 1e-12);
  EXPECT_NEAR(a1.variance(), a2.variance(), 1e-12);
  EXPECT_EQ(a1.min(), a2.min());
  EXPECT_EQ(a1.max(), a2.max());
}

TEST(Percentiles, P95AndP999NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 1000; ++i) p.add(i);
  EXPECT_NEAR(p.p95(), 950.0, 1.0);
  EXPECT_NEAR(p.p999(), 999.0, 1.0);
  EXPECT_LE(p.p95(), p.p99());
  EXPECT_LE(p.p99(), p.p999());
  EXPECT_LE(p.p999(), p.max());
}

TEST(Percentiles, QuantileIsConstAndCachedAcrossAdds) {
  Percentiles p;
  p.add(2.0);
  p.add(1.0);
  const Percentiles& view = p;  // metrics sinks hold const references
  EXPECT_EQ(view.median(), 2.0);
  p.add(100.0);  // must invalidate the sorted cache
  EXPECT_EQ(view.max(), 100.0);
  EXPECT_EQ(view.median(), 2.0);
}

}  // namespace
}  // namespace hppc
