// Whole-system chaos: the composed scenario runner. Where chaos_soak_test
// sweeps the host runtime's seams one layer deep, this file (a) exercises
// the failpoints grown past the host runtime — the sim kernel's IPI and
// memory interconnect, the message gateway, the name server — and (b) runs
// the composed storm: overload (per-class watermarks) + hard-kill/rebind
// churn + a randomized fault schedule + cancellation storms, all at once,
// under live multi-slot traffic. The invariants are the sharp ones:
//   - no call ever hangs (every caller carries a deadline);
//   - no call ever returns a status outside the documented failure set;
//   - payloads of successful calls are intact;
//   - the pools conserve (shutdown's internal accounting asserts);
//   - after disarming, the system is fully healthy again.
// Run under TSan in the fault-tsan CI job; a gated Release run lives in the
// fault-injection job.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "common/prng.h"
#include "fault/failpoints.h"
#include "kernel/machine.h"
#include "msg/gateway.h"
#include "msg/msg_facility.h"
#include "naming/name_server.h"
#include "obs/counters.h"
#include "ppc/facility.h"
#include "rt/request_ctx.h"
#include "rt/runtime.h"
#include "sim/memctx.h"

namespace hppc {
namespace {

#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION

// ---------------------------------------------------------------------------
// The seams past the host runtime, each proven injectable in isolation.
// ---------------------------------------------------------------------------

class SeamFaults : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(SeamFaults, KernelIpiDelayStretchesDelivery) {
  kernel::Machine m(sim::hector_config(4));
  kernel::Cpu& sender = m.cpu(0);
  ASSERT_TRUE(fault::arm("kernel.ipi.delay", "always"));
  Cycles arrival = 0;
  m.post_ipi(sender, 3, [&](kernel::Cpu& target) { arrival = target.now(); });
  m.run_until_idle();
  // Delivery pays the base latency plus the injected 10x interconnect stall.
  EXPECT_GE(arrival, 11 * m.config().ipi_latency_cycles);
  EXPECT_GT(fault::injected("kernel.ipi.delay"), 0u);
  EXPECT_GT(sender.counters().get(obs::Counter::kFaultsInjected), 0u);
}

TEST_F(SeamFaults, SimMemRemoteDelayChargesInterconnectStall) {
  const sim::MachineConfig mc = sim::hector_config(8);
  sim::MemContext mem(mc, /*cpu=*/0);  // node 0
  const SimAddr remote = sim::node_base(1) + 64;
  const Cycles base_start = mem.now();
  mem.access_uncached(remote, sim::CostCategory::kPpcKernel);
  const Cycles unfaulted = mem.now() - base_start;

  ASSERT_TRUE(fault::arm("sim.mem.remote_delay", "always"));
  const Cycles t0 = mem.now();
  mem.access_uncached(remote, sim::CostCategory::kPpcKernel);
  EXPECT_EQ(mem.now() - t0, unfaulted + 100 * mc.numa_hop_cycles);
  EXPECT_GT(fault::injected("sim.mem.remote_delay"), 0u);

  // A node-local access never crosses the interconnect: the seam must not
  // fire (and must not charge) even while armed.
  const std::uint64_t injected_before = fault::injected("sim.mem.remote_delay");
  const Cycles t1 = mem.now();
  mem.access_uncached(sim::node_base(0) + 64, sim::CostCategory::kPpcKernel);
  EXPECT_EQ(mem.now() - t1, Cycles{mc.uncached_local_cycles});
  EXPECT_EQ(fault::injected("sim.mem.remote_delay"), injected_before);
}

TEST_F(SeamFaults, NameServerRegisterExhaustedAndLookupMiss) {
  kernel::Machine machine(sim::hector_config(4));
  ppc::PpcFacility ppc(machine);
  naming::NameServer names(ppc);
  auto& as = machine.create_address_space(700, 0);
  kernel::Process& client =
      machine.create_process(700, &as, "client", 0);
  const EntryPointId svc = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, ppc::RegSet& regs) { set_rc(regs, Status::kOk); });

  ASSERT_TRUE(fault::arm("naming.register.exhausted", "oneshot"));
  EXPECT_EQ(naming::NameServer::register_name(ppc, machine.cpu(0), client,
                                              "bob", svc),
            Status::kOutOfResources);
  EXPECT_GT(fault::injected("naming.register.exhausted"), 0u);
  // Budget spent: the retry goes through.
  ASSERT_EQ(naming::NameServer::register_name(ppc, machine.cpu(0), client,
                                              "bob", svc),
            Status::kOk);

  // A forced miss on a name that IS bound: models a stale client racing an
  // unregister without touching the table.
  ASSERT_TRUE(fault::arm("naming.lookup.miss", "oneshot"));
  EntryPointId found = 0;
  EXPECT_EQ(
      naming::NameServer::lookup(ppc, machine.cpu(0), client, "bob", &found),
      Status::kNoSuchEntryPoint);
  EXPECT_GT(fault::injected("naming.lookup.miss"), 0u);
  ASSERT_EQ(
      naming::NameServer::lookup(ppc, machine.cpu(0), client, "bob", &found),
      Status::kOk);
  EXPECT_EQ(found, svc);
}

TEST_F(SeamFaults, GatewayRejectSurfacesOverloadedToPpcCaller) {
  kernel::Machine machine(sim::hector_config(8));
  ppc::PpcFacility ppc(machine);
  msg::MsgFacility msgs(machine);
  auto& legacy_as = machine.create_address_space(800, 1);
  kernel::Process& legacy =
      machine.create_process(800, &legacy_as, "legacy", 1);
  msg::PpcMsgGateway gateway(ppc, msgs, legacy.pid(), "legacy-svc");
  std::function<void(Pid, ppc::RegSet&)> loop =
      [&](Pid from, ppc::RegSet& m) {
        kernel::Cpu& scpu = machine.cpu(4);
        ppc::RegSet reply = m;
        reply[0] = m[0] + 1;
        set_rc(reply, Status::kOk);
        msgs.reply(scpu, legacy, from, reply);
        msgs.receive(scpu, legacy, loop);
      };
  legacy.set_body([&](kernel::Cpu& cpu, kernel::Process& self) {
    msgs.receive(cpu, self, loop);
  });
  machine.ready(machine.cpu(4), legacy);
  machine.run_until_idle();

  auto& client_as = machine.create_address_space(100, 0);
  kernel::Process& client =
      machine.create_process(100, &client_as, "client", 0);

  ASSERT_TRUE(fault::arm("msg.gateway.reject", "oneshot"));
  Status rejected = Status::kOk;
  Status retried = Status::kServerError;
  Word result = 0;
  bool issued = false;
  client.set_body([&](kernel::Cpu& cpu, kernel::Process& self) {
    if (issued) return;
    issued = true;
    ppc::RegSet regs;
    regs[0] = 41;
    ppc::set_op(regs, 1);
    // The gateway blocks mid-call when it forwards, so both probes ride
    // call_blocking. The armed refusal completes without ever reaching the
    // legacy server; the retry forwards as if nothing happened.
    ppc.call_blocking(cpu, self, gateway.ep(), regs,
                      [&](Status s, ppc::RegSet&) { rejected = s; });
  });
  machine.ready(machine.cpu(0), client);
  machine.run_until_idle();

  bool retry_issued = false;
  kernel::Process& retry_client =
      machine.create_process(101, &client_as, "retry-client", 0);
  retry_client.set_body([&](kernel::Cpu& cpu, kernel::Process& self) {
    if (retry_issued) return;
    retry_issued = true;
    ppc::RegSet regs;
    regs[0] = 41;
    ppc::set_op(regs, 1);
    ppc.call_blocking(cpu, self, gateway.ep(), regs,
                      [&](Status s, ppc::RegSet& out) {
                        retried = s;
                        result = out[0];
                      });
  });
  machine.ready(machine.cpu(0), retry_client);
  machine.run_until_idle();

  EXPECT_EQ(rejected, Status::kOverloaded);
  EXPECT_EQ(retried, Status::kOk);
  EXPECT_EQ(result, 42u);
  EXPECT_GT(fault::injected("msg.gateway.reject"), 0u);
  EXPECT_EQ(gateway.forwarded(), 1u);
}

// ---------------------------------------------------------------------------
// The composed storm.
// ---------------------------------------------------------------------------

struct ChaosPoint {
  const char* name;
  const char* spec;
};
// The host-runtime schedule the controller re-rolls, plus the cancel-sweep
// seam the storm thread drives on every cancel().
constexpr ChaosPoint kStormSchedule[] = {
    {"rt.xcall.ring_full", "prob=0.2"},
    {"rt.xcall.post", "delay=200"},
    {"rt.xcall.batch.post", "prob=0.3,delay=300"},
    {"rt.xcall.complete.delay", "prob=0.3,delay=2000"},
    {"rt.xcall.complete.drop", "prob=0.02"},
    {"rt.worker.exhausted", "prob=0.05"},
    {"rt.handler.abort", "prob=0.05"},
    {"rt.call.delay", "prob=0.1,delay=500"},
    {"rt.cancel.sweep", "prob=0.5"},
};

bool storm_status_ok(Status s) {
  switch (s) {
    case Status::kOk:
    case Status::kDeadlineExceeded:   // deadline beat a delayed/dropped reply
    case Status::kOverloaded:         // shed (per-class watermark) or backoff
    case Status::kOutOfResources:     // injected pool exhaustion
    case Status::kCallAborted:        // injected abort, cancel, or kill race
    case Status::kNoSuchEntryPoint:   // victim ep between kill and rebind
    case Status::kEntryPointDraining: // victim ep mid-soft-kill
      return true;
    default:
      return false;
  }
}

TEST(WholeSystemChaos, ComposedOverloadKillFaultAndCancellationStorm) {
  rt::Runtime rt(7);
  const auto adder = [](rt::RtCtx&, rt::RegSet& regs) {
    regs[1] = regs[0] + 1;
    ppc::set_rc(regs, Status::kOk);
  };
  const EntryPointId stable = rt.bind({.name = "storm-stable"}, 0, adder);
  std::atomic<EntryPointId> victim{rt.bind({.name = "storm-victim"}, 0, adder)};

  // Per-class overload posture for the whole storm: bulk sheds shallow,
  // interactive rides a deep queue.
  rt.set_shed_watermark(rt::TrafficClass::kBulk, 4);
  rt.set_shed_watermark(rt::TrafficClass::kInteractive, 48);

  // Two busy-polling servers (slots 0 and 1) keep the ring seams hot.
  std::atomic<bool> stop_servers{false};
  std::atomic<int> servers_up{0};
  std::vector<std::thread> servers;
  for (int i = 0; i < 2; ++i) {
    servers.emplace_back([&] {
      const rt::SlotId s = rt.register_thread();
      servers_up.fetch_add(1, std::memory_order_release);
      while (!stop_servers.load(std::memory_order_acquire)) {
        if (rt.poll(s) == 0) std::this_thread::yield();
      }
      while (rt.poll(s) > 0) {
      }
      rt.enter_idle(s);
    });
  }
  while (servers_up.load(std::memory_order_acquire) < 2) {
    std::this_thread::yield();
  }
  const rt::SlotId me = rt.register_thread();  // slot 2: orchestrator

  for (const ChaosPoint& p : kStormSchedule) {
    ASSERT_TRUE(fault::arm(p.name, p.spec)) << p.name;
  }

  // Fault-schedule controller: re-rolls the armed set. Seeded, replayable.
  std::atomic<bool> stop_chaos{false};
  std::thread chaos([&] {
    Prng rng(0x57082ULL);
    while (!stop_chaos.load(std::memory_order_acquire)) {
      for (const ChaosPoint& p : kStormSchedule) {
        if (rng.below(2) == 0) {
          EXPECT_TRUE(fault::arm(p.name, p.spec)) << p.name;
        } else {
          fault::disarm(p.name);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  // Cancellation storm: a rolling shared token. Callers attach the current
  // token to a slice of their traffic; the storm cancels it (sweeping the
  // rings via the cancel() steal-drain protocol) and mints a successor.
  std::atomic<rt::CancelToken> storm_token{rt.cancel_token_create()};
  std::atomic<bool> stop_cancel{false};
  std::thread canceller([&] {
    while (!stop_cancel.load(std::memory_order_acquire)) {
      const rt::CancelToken t = storm_token.load(std::memory_order_acquire);
      storm_token.store(rt.cancel_token_create(), std::memory_order_release);
      rt.cancel(t);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Kill/rebind churn: the victim service dies hard mid-traffic and is
  // reborn under a fresh id. Callers racing the gap see only the
  // documented kill statuses.
  std::atomic<bool> stop_kill{false};
  std::thread killer([&] {
    while (!stop_kill.load(std::memory_order_acquire)) {
      const EntryPointId old = victim.load(std::memory_order_acquire);
      const Status ks = rt.hard_kill(old);
      EXPECT_TRUE(ks == Status::kOk || ks == Status::kNoSuchEntryPoint)
          << static_cast<int>(ks);
      victim.store(rt.bind({.name = "storm-victim"}, 0, adder),
                   std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(800));
    }
  });

  std::atomic<int> bad_status{0};
  std::atomic<int> bad_payload{0};
  constexpr int kCallers = 3;
  constexpr Word kCallsEach = 300;
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      const rt::SlotId my = rt.register_thread();
      rt.trace_begin(my);
      for (Word i = 0; i < kCallsEach; ++i) {
        rt::CallOptions opts;
        opts.deadline_cycles = 50'000'000;  // generous, but bounded
        opts.retry = rt::RetryPolicy::kBackoff;
        opts.backoff_rounds = 12;
        // Mixed-class traffic: odd iterations ride the bulk lane.
        if (i % 2 == 1) opts.traffic_class = rt::TrafficClass::kBulk;
        // A slice of every caller's traffic joins the cancellation storm.
        if (i % 8 == static_cast<Word>(c)) {
          opts.cancel_token = storm_token.load(std::memory_order_acquire);
        }
        const rt::SlotId tgt = (i + static_cast<Word>(c)) % 2;
        const EntryPointId ep =
            (i % 4 == 3) ? victim.load(std::memory_order_acquire) : stable;
        rt::RegSet r{};
        r[0] = i;
        const Status s = rt.call_remote(my, tgt, my, ep, r, opts);
        if (!storm_status_ok(s)) bad_status.fetch_add(1);
        if (s == Status::kOk && r[1] != i + 1) bad_payload.fetch_add(1);
        if (i % 16 == 0) {
          std::array<rt::RegSet, 4> b{};
          for (Word k = 0; k < b.size(); ++k) b[k][0] = i + k;
          const Status bs = rt.call_remote_batch(
              my, tgt, my, stable, std::span<rt::RegSet>(b), opts);
          if (!storm_status_ok(bs)) bad_status.fetch_add(1);
          for (Word k = 0; k < b.size(); ++k) {
            const Status cs = ppc::rc_of(b[k]);
            if (!storm_status_ok(cs)) bad_status.fetch_add(1);
            if (cs == Status::kOk && b[k][1] != i + k + 1) {
              bad_payload.fetch_add(1);
            }
          }
        }
        if (i % 32 == static_cast<Word>(c)) {
          const Status as = rt.call_remote_async(my, tgt, my, stable, r, opts);
          if (as != Status::kOk && !storm_status_ok(as)) bad_status.fetch_add(1);
        }
      }
      rt.trace_end(my);
    });
  }
  for (auto& t : callers) t.join();

  stop_kill.store(true, std::memory_order_release);
  stop_cancel.store(true, std::memory_order_release);
  stop_chaos.store(true, std::memory_order_release);
  killer.join();
  canceller.join();
  chaos.join();
  fault::disarm_all();

  // Deterministic per-class overload probe, post-storm: park a held slot so
  // depth is controlled, then show bulk sheds at depth 1 while interactive
  // still flows (the storm's own sheds are load-dependent; this is not).
  {
    std::atomic<bool> held_up{false};
    std::atomic<bool> held_release{false};
    std::thread held([&] {
      const rt::SlotId s = rt.register_thread();  // slot 6
      held_up.store(true, std::memory_order_release);
      while (!held_release.load(std::memory_order_acquire)) {
        std::this_thread::yield();  // holds the gate, never polls
      }
      while (rt.poll(s) > 0) {
      }
      rt.enter_idle(s);
    });
    while (!held_up.load(std::memory_order_acquire)) std::this_thread::yield();
    rt.set_shed_watermark(rt::TrafficClass::kBulk, 1);
    rt::RegSet r{};
    ASSERT_EQ(rt.call_remote_async(me, 6, me, stable, r), Status::kOk);
    ASSERT_GE(rt.xcall_depth(6), 1u);
    rt::CallOptions bulk;
    bulk.traffic_class = rt::TrafficClass::kBulk;
    EXPECT_EQ(rt.call_remote_async(me, 6, me, stable, r, bulk),
              Status::kOverloaded);
    EXPECT_EQ(rt.call_remote_async(me, 6, me, stable, r), Status::kOk);
    held_release.store(true, std::memory_order_release);
    held.join();
    rt.set_shed_watermark(rt::TrafficClass::kBulk, 4);
  }

  // Deterministic cancellation invariant, post-storm.
  {
    const rt::CancelToken t = rt.cancel_token_create();
    rt.cancel(t);
    rt::CallOptions opts;
    opts.cancel_token = t;
    rt::RegSet r{};
    EXPECT_EQ(rt.call_remote(me, 0, me, stable, r, opts),
              Status::kCallAborted);
  }

  // Quiesce: with every seam disarmed the system must be fully healthy.
  for (Word i = 0; i < 16; ++i) {
    rt::RegSet r{};
    r[0] = i;
    ASSERT_EQ(rt.call_remote(me, i % 2, me, stable, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  stop_servers.store(true, std::memory_order_release);
  for (auto& t : servers) t.join();

  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_EQ(bad_payload.load(), 0);
  const obs::CounterSnapshot total = rt.snapshot();
  EXPECT_GT(total.get(obs::Counter::kFaultsInjected), 0u);
  EXPECT_GT(total.get(obs::Counter::kCancelRequests), 0u);
  EXPECT_GT(total.get(obs::Counter::kCallsCancelled), 0u);
  EXPECT_GT(total.get(obs::Counter::kCallsBulk), 0u);
  EXPECT_GT(total.get(obs::Counter::kCallsShedBulk), 0u);
  EXPECT_GT(fault::injected("rt.cancel.sweep"), 0u);
  // Pool conservation: shutdown's internal accounting asserts that every
  // wait block, worker and CD came home (abandoned blocks reaped here).
  rt.shutdown();
}

#else

TEST(WholeSystemChaos, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "build with -DHPPC_FAULT_INJECTION=ON to run the storm";
}

#endif  // HPPC_FAULT_INJECTION

}  // namespace
}  // namespace hppc
