// The failpoint framework itself (spec parsing, triggers, registry), then
// the compiled-in sites: armed failpoints must surface at the runtime's
// seams as the documented Status codes and counters, and a disarmed build
// must behave as if the framework did not exist.
#include "fault/failpoints.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel/machine.h"
#include "obs/counters.h"
#include "ppc/facility.h"
#include "ppc/regs.h"
#include "rt/runtime.h"

namespace hppc {
namespace {

// Every test arms points in the process-wide registry; clean up so tests
// compose in one binary regardless of order.
class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FailPointTest, DisarmedPointNeverFires) {
  fault::FailPoint& p = fault::registry().point("test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.check());
  EXPECT_EQ(p.injected(), 0u);
}

TEST_F(FailPointTest, AlwaysFiresEveryTime) {
  fault::FailPoint& p = fault::registry().point("test.always");
  ASSERT_TRUE(p.arm("always"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(p.check());
  EXPECT_EQ(p.injected(), 10u);
  p.disarm();
  EXPECT_FALSE(p.check());
}

TEST_F(FailPointTest, OneshotFiresExactlyOnceThenDisarms) {
  fault::FailPoint& p = fault::registry().point("test.oneshot");
  ASSERT_TRUE(p.arm("oneshot"));
  EXPECT_TRUE(p.check());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(p.check());
  EXPECT_EQ(p.injected(), 1u);
  EXPECT_FALSE(p.armed());  // budget spent -> self-disarmed
}

TEST_F(FailPointTest, CountBudgetIsExact) {
  fault::FailPoint& p = fault::registry().point("test.count");
  ASSERT_TRUE(p.arm("count=3"));
  int fired = 0;
  for (int i = 0; i < 20; ++i) fired += p.check() ? 1 : 0;
  EXPECT_EQ(fired, 3);
}

TEST_F(FailPointTest, SkipDefersTheTrigger) {
  fault::FailPoint& p = fault::registry().point("test.skip");
  ASSERT_TRUE(p.arm("count=2,skip=5"));
  int fired_early = 0;
  for (int i = 0; i < 5; ++i) fired_early += p.check() ? 1 : 0;
  EXPECT_EQ(fired_early, 0);  // the skip window passes untouched
  EXPECT_TRUE(p.check());
  EXPECT_TRUE(p.check());
  EXPECT_FALSE(p.check());
}

TEST_F(FailPointTest, ProbabilityZeroAndOne) {
  fault::FailPoint& never = fault::registry().point("test.prob0");
  ASSERT_TRUE(never.arm("prob=0.0"));
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(never.check());

  fault::FailPoint& coin = fault::registry().point("test.prob");
  ASSERT_TRUE(coin.arm("prob=0.5"));
  int fired = 0;
  for (int i = 0; i < 2000; ++i) fired += coin.check() ? 1 : 0;
  // Deterministic splitmix64 stream: comfortably inside [600, 1400].
  EXPECT_GT(fired, 600);
  EXPECT_LT(fired, 1400);
}

TEST_F(FailPointTest, BareDelaySpecFiresAlways) {
  fault::FailPoint& p = fault::registry().point("test.delay");
  ASSERT_TRUE(p.arm("delay=64"));
  EXPECT_TRUE(p.check());  // the spin happened inside check()
  EXPECT_EQ(p.injected(), 1u);
}

TEST_F(FailPointTest, MalformedSpecsRejectedAndLeaveDisarmed) {
  fault::FailPoint& p = fault::registry().point("test.malformed");
  EXPECT_FALSE(p.arm(""));
  EXPECT_FALSE(p.arm("bogus"));
  EXPECT_FALSE(p.arm("count=abc"));
  EXPECT_FALSE(p.arm("prob=1.5"));
  EXPECT_FALSE(p.arm("skip=3"));  // modifier without a trigger
  EXPECT_FALSE(p.armed());
}

TEST_F(FailPointTest, RegistryHandsOutStableReferences) {
  fault::FailPoint& a = fault::registry().point("test.stable");
  fault::FailPoint& b = fault::registry().point("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST_F(FailPointTest, SpecListParsesLikeTheEnvVariable) {
  EXPECT_EQ(fault::registry().arm_from_spec_list(
                "test.list.a=oneshot;test.list.b=prob=0.25,delay=100"),
            2);
  EXPECT_TRUE(fault::registry().point("test.list.a").armed());
  EXPECT_TRUE(fault::registry().point("test.list.b").armed());
  EXPECT_EQ(fault::registry().arm_from_spec_list("no-equals-sign"), -1);
  EXPECT_EQ(fault::registry().arm_from_spec_list("test.list.c=garbage"), -1);
}

TEST_F(FailPointTest, ConcurrentCountBudgetNeverOverfires) {
  fault::FailPoint& p = fault::registry().point("test.mt.count");
  ASSERT_TRUE(p.arm("count=100"));
  std::atomic<int> fired{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (p.check()) fired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(fired.load(), 100);
}

#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION

// ---------------------------------------------------------------------------
// Compiled-in sites: the runtime seams (only meaningful in a fault build).
// ---------------------------------------------------------------------------

rt::RegSet make_regs(Word w0) {
  rt::RegSet r{};
  r[0] = w0;
  return r;
}

EntryPointId bind_adder(rt::Runtime& rt) {
  return rt.bind({.name = "adder"}, 0, [](rt::RtCtx&, rt::RegSet& regs) {
    regs[1] = regs[0] + 1;
    ppc::set_rc(regs, Status::kOk);
  });
}

TEST_F(FailPointTest, WorkerExhaustionSurfacesAsOutOfResources) {
  rt::Runtime rt(1);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  ASSERT_TRUE(fault::arm("rt.worker.exhausted", "oneshot"));
  rt::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call(me, 1, ep, r), Status::kOutOfResources);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kFaultsInjected), 1u);
  // The oneshot spent itself: the very next call succeeds.
  r = make_regs(1);
  EXPECT_EQ(rt.call(me, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 2u);
}

TEST_F(FailPointTest, HandlerAbortReleasesResourcesAndReportsAborted) {
  rt::Runtime rt(1);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  rt::RegSet r = make_regs(1);
  ASSERT_EQ(rt.call(me, 1, ep, r), Status::kOk);  // warm the pools
  ASSERT_TRUE(fault::arm("rt.handler.abort", "oneshot"));
  r = make_regs(1);
  EXPECT_EQ(rt.call(me, 1, ep, r), Status::kCallAborted);
  // The worker and CD went back to their pools despite the abort.
  EXPECT_EQ(rt.pooled_workers(me, ep), 1u);
  r = make_regs(5);
  EXPECT_EQ(rt.call(me, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 6u);
}

TEST_F(FailPointTest, ForcedRingFullStillCompletesUnderBlockPolicy) {
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread owner([&] {
    const rt::SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
  ASSERT_TRUE(fault::arm("rt.xcall.ring_full", "oneshot"));
  rt::RegSet r = make_regs(7);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 8u);
  // The forced overflow was booked exactly like a real one.
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallRingFull), 1u);
  EXPECT_GE(rt.counters(me).get(obs::Counter::kFaultsInjected), 1u);
  stop.store(true, std::memory_order_release);
  owner.join();
}

TEST_F(FailPointTest, DroppedCompletionIsRescuedByTheDeadline) {
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread owner([&] {
    const rt::SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
  ASSERT_TRUE(fault::arm("rt.xcall.complete.drop", "oneshot"));
  rt::CallOptions opts;
  opts.deadline_cycles = 20'000'000;  // ~ms-scale on any host clock
  rt::RegSet r = make_regs(3);
  // The server executes but the completion never lands; without the
  // deadline this would hang forever. kOk is also acceptable: the oneshot
  // may be consumed by an unrelated drain racing this call.
  const Status s = rt.call_remote(me, 1, 1, ep, r, opts);
  EXPECT_TRUE(s == Status::kDeadlineExceeded || s == Status::kOk)
      << to_string(s);
  // If the caller abandoned before the server drained, the oneshot is
  // still pending — disarm so the deadline-less probe below cannot hang.
  fault::disarm("rt.xcall.complete.drop");
  // Whatever happened, the runtime is still live:
  r = make_regs(9);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 10u);
  stop.store(true, std::memory_order_release);
  owner.join();
}

TEST_F(FailPointTest, SimFacilityFrankExhaustionUnwindsCleanly) {
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, ppc::RegSet& regs) { set_rc(regs, Status::kOk); });
  auto& cas = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &cas, "client", 0);

  ppc::RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(ppc.call(machine.cpu(0), client, ep, regs), Status::kOk);

  ASSERT_TRUE(fault::arm("ppc.call.frank_exhausted", "oneshot"));
  set_op(regs, 1);
  EXPECT_EQ(ppc.call(machine.cpu(0), client, ep, regs),
            Status::kOutOfResources);
  EXPECT_EQ(machine.cpu(0).counters().get(obs::Counter::kFaultsInjected), 1u);
  // Clean unwind: the same client can call again immediately.
  set_op(regs, 1);
  EXPECT_EQ(ppc.call(machine.cpu(0), client, ep, regs), Status::kOk);
}

#endif  // HPPC_FAULT_INJECTION

}  // namespace
}  // namespace hppc
