// Chaos soak: a randomized failpoint schedule flips fault triggers on and
// off underneath live multi-slot traffic. Every caller carries a deadline
// and a bounded retry policy, so the invariant under test is sharp: no
// call ever hangs and no call ever returns a status outside the documented
// failure set — no matter which seams are failing at the moment. Run it
// under TSan in CI (the fault-injection jobs) to sweep the failure
// branches for races the happy path never executes.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <iterator>
#include <span>
#include <thread>
#include <vector>

#include "common/prng.h"
#include "fault/failpoints.h"
#include "obs/counters.h"
#include "obs/telemetry.h"
#include "ppc/regs.h"
#include "rt/runtime.h"

namespace hppc {
namespace {

#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION

// The schedule the chaos thread draws from: every compiled-in rt seam,
// each with a spec that keeps the system lossy but live. The drop rate is
// deliberately the smallest — each drop parks one pooled wait block until
// its cell drains, and it relies on the caller's deadline for rescue.
struct ChaosPoint {
  const char* name;
  const char* spec;
};
constexpr ChaosPoint kSchedule[] = {
    {"rt.xcall.ring_full", "prob=0.2"},
    {"rt.xcall.post", "delay=200"},
    {"rt.xcall.batch.post", "prob=0.3,delay=300"},
    {"rt.xcall.complete.delay", "prob=0.3,delay=2000"},
    {"rt.xcall.complete.drop", "prob=0.02"},
    {"rt.worker.exhausted", "prob=0.05"},
    {"rt.handler.abort", "prob=0.05"},
    {"rt.call.delay", "prob=0.1,delay=500"},
    // Telemetry export failure: a scrape that fires this must degrade to an
    // empty snapshot, never block or corrupt the windowed state.
    {"obs.export", "prob=0.5"},
#if defined(HPPC_TRACE) && HPPC_TRACE
    // Span-drop seam: a trace that cannot record degrades by dropping the
    // span (booked in trace_drops) — calls never fail on tracing's behalf.
    {"rt.trace.drop", "prob=0.3"},
#endif
};
constexpr std::size_t kSchedulePoints = std::size(kSchedule);

// The park seams sit on the NO-deadline wait ladder, which the randomized
// phase never walks (every soak call carries a deadline so injected drops
// cannot hang it). They get their own deterministic phase after the chaos
// stops: force every wait to park, against a still-live server, where a
// lost kick would hang the test.
constexpr ChaosPoint kParkSchedule[] = {
    {"rt.xcall.park.now", "always"},
    {"rt.xcall.park", "always,delay=200"},
};

bool allowed_status(Status s) {
  switch (s) {
    case Status::kOk:
    case Status::kDeadlineExceeded:  // deadline beat a delayed/dropped reply
    case Status::kOverloaded:        // backoff budget ran out on a full ring
    case Status::kOutOfResources:    // injected pool exhaustion
    case Status::kCallAborted:       // injected handler abort
      return true;
    default:
      return false;
  }
}

TEST(ChaosSoak, RandomFailpointScheduleUnderTrafficNeverHangsOrCorrupts) {
  static_assert(kSchedulePoints >= 5, "soak must arm at least 5 failpoints");
  rt::Runtime rt(4);
  const EntryPointId ep =
      rt.bind({.name = "soak-adder"}, 0, [](rt::RtCtx&, rt::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });

  std::atomic<bool> stop_server{false};
  std::atomic<bool> server_up{false};
  std::thread server([&] {
    const rt::SlotId s = rt.register_thread();
    EXPECT_EQ(s, 0u);
    server_up.store(true, std::memory_order_release);
    // Busy-poll instead of serve(): a parked slot lets every caller
    // direct-execute through the gate, which would leave the ring seams
    // (post/ring_full/complete.*) unevaluated. Holding the gate forces the
    // §4.4 queued path the soak is built to stress.
    while (!stop_server.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
    rt.poll(s);
    rt.enter_idle(s);
  });
  while (!server_up.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  rt::CallOptions opts;
  opts.deadline_cycles = 50'000'000;  // generous, but bounded
  opts.retry = rt::RetryPolicy::kBackoff;
  opts.backoff_rounds = 12;
  std::atomic<int> bad_status{0};
  std::atomic<int> bad_payload{0};

  // Deterministic warmup: arm every point and push traffic through both
  // the remote and the local call paths, so each seam is provably
  // evaluated at least once even when the randomized phase below finishes
  // inside a single chaos epoch (single-CPU runners timeslice coarsely).
  for (const ChaosPoint& p : kSchedule) {
    ASSERT_TRUE(fault::arm(p.name, p.spec)) << p.name;
  }
  {
    const rt::SlotId my = rt.register_thread();
    rt.trace_begin(my);  // trace builds: every call below mints spans, so
                         // the rt.trace.drop seam is provably evaluated
    for (Word i = 0; i < 64; ++i) {
      rt::RegSet r{};
      r[0] = i;
      const Status s = rt.call_remote(my, 0, /*caller=*/my, ep, r, opts);
      if (!allowed_status(s)) bad_status.fetch_add(1);
      if (s == Status::kOk && r[1] != i + 1) bad_payload.fetch_add(1);
      r[0] = i;
      const Status ls = rt.call(my, my, ep, r, opts);  // rt.call.delay seam
      if (!allowed_status(ls)) bad_status.fetch_add(1);
      if (ls == Status::kOk && r[1] != i + 1) bad_payload.fetch_add(1);
      // Telemetry scrape with obs.export armed: either a real snapshot
      // (one series per slot) or the degraded empty one — nothing else.
      const obs::Telemetry t = rt.telemetry();
      if (!t.slots.empty() && t.slots.size() != rt.slots()) {
        bad_payload.fetch_add(1);
      }
    }
    rt.trace_end(my);
  }

  // The chaos controller: every few hundred microseconds, re-roll which
  // points are armed. Seeded Prng, so a failing schedule replays.
  std::atomic<bool> stop_chaos{false};
  std::thread chaos([&] {
    Prng rng(0xC4405ULL);
    while (!stop_chaos.load(std::memory_order_acquire)) {
      for (const ChaosPoint& p : kSchedule) {
        if (rng.below(2) == 0) {
          EXPECT_TRUE(fault::arm(p.name, p.spec)) << p.name;
        } else {
          fault::disarm(p.name);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  constexpr int kCallers = 2;
  constexpr Word kCallsEach = 400;
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      const rt::SlotId my = rt.register_thread();
      rt.trace_begin(my);
      for (Word i = 0; i < kCallsEach; ++i) {
        if (i % 64 == 0) {
          // Telemetry under live chaos: the scrape must never hang or
          // produce a malformed snapshot, whatever the armed seams do.
          const obs::Telemetry t = rt.telemetry();
          if (!t.slots.empty() && t.slots.size() != rt.slots()) {
            bad_payload.fetch_add(1);
          }
        }
        rt::RegSet r{};
        r[0] = i;
        const Status s = rt.call_remote(my, 0, /*caller=*/my, ep, r, opts);
        if (!allowed_status(s)) bad_status.fetch_add(1);
        if (s == Status::kOk && r[1] != i + 1) bad_payload.fetch_add(1);
        if (i % 32 == static_cast<Word>(c)) {
          // Async flank: also only allowed to fail in documented ways.
          const Status as = rt.call_remote_async(my, 0, my, ep, r);
          if (as != Status::kOk && !allowed_status(as)) bad_status.fetch_add(1);
        }
        if (i % 16 == 0) {
          // Batched flank: the vectored-post seam (rt.xcall.batch.post)
          // under the same deadline umbrella — per-cell rc must stay inside
          // the documented set and payloads must stay intact.
          std::array<rt::RegSet, 4> b{};
          for (Word k = 0; k < b.size(); ++k) b[k][0] = i + k;
          const Status bs = rt.call_remote_batch(
              my, 0, my, ep, std::span<rt::RegSet>(b), opts);
          if (!allowed_status(bs)) bad_status.fetch_add(1);
          for (Word k = 0; k < b.size(); ++k) {
            const Status cs = ppc::rc_of(b[k]);
            if (!allowed_status(cs)) bad_status.fetch_add(1);
            if (cs == Status::kOk && b[k][1] != i + k + 1) {
              bad_payload.fetch_add(1);
            }
          }
        }
      }
      rt.trace_end(my);
    });
  }
  for (auto& t : callers) t.join();

  stop_chaos.store(true, std::memory_order_release);
  chaos.join();
  fault::disarm_all();

  // Deterministic park phase: only the park seams armed, server still
  // polling. Every call must post, park, and be kicked awake with the
  // right answer — a lost kick hangs right here.
  const rt::SlotId me = rt.register_thread();
  for (const ChaosPoint& p : kParkSchedule) {
    ASSERT_TRUE(fault::arm(p.name, p.spec)) << p.name;
  }
  for (Word i = 0; i < 16; ++i) {
    rt::RegSet r{};
    r[0] = i;
    ASSERT_EQ(rt.call_remote(me, 0, /*caller=*/me, ep, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  fault::disarm_all();

  // Quiesce: with every point disarmed the system must be fully healthy.
  for (int i = 0; i < 16; ++i) {
    rt::RegSet r{};
    r[0] = 100;
    ASSERT_EQ(rt.call_remote(me, 0, 3, ep, r), Status::kOk);
    ASSERT_EQ(r[1], 101u);
  }
  stop_server.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_EQ(bad_payload.load(), 0);
  // The soak only proves something if faults actually fired.
  EXPECT_GT(rt.snapshot().get(obs::Counter::kFaultsInjected), 0u);
  std::size_t points_evaluated = 0;
  for (const ChaosPoint& p : kSchedule) {
    const fault::FailPoint& fp = fault::registry().point(p.name);
    SCOPED_TRACE(p.name);
    EXPECT_GT(fp.evaluations(), 0u)
        << p.name << " was never evaluated (injected=" << fp.injected() << ")";
    if (fp.evaluations() > 0) ++points_evaluated;
  }
  EXPECT_GE(points_evaluated, 5u);
  // The park phase must have actually walked the ladder's parked branch.
  for (const ChaosPoint& p : kParkSchedule) {
    SCOPED_TRACE(p.name);
    EXPECT_GT(fault::injected(p.name), 0u);
  }
  EXPECT_GT(rt.snapshot().get(obs::Counter::kWaiterParks), 0u);
  EXPECT_GT(rt.snapshot().get(obs::Counter::kWaiterKicks), 0u);
#if defined(HPPC_TRACE) && HPPC_TRACE
  // The drop seam really dropped spans, the drops were booked, and the
  // traced traffic still completed (checked by bad_status above): tracing
  // degrades by losing spans, never by failing calls.
  EXPECT_GT(rt.snapshot().get(obs::Counter::kTraceDrops), 0u);
#endif
  // obs.export degraded at least one scrape, and no scrape ever blocked
  // (the callers would have counted a malformed snapshot or hung).
  EXPECT_GT(fault::injected("obs.export"), 0u);
}

#else

TEST(ChaosSoak, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "build with -DHPPC_FAULT_INJECTION=ON to run the soak";
}

#endif  // HPPC_FAULT_INJECTION

}  // namespace
}  // namespace hppc
