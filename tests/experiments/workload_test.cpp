#include "experiments/workload.h"

#include <gtest/gtest.h>

namespace hppc::experiments {
namespace {

WorkloadConfig quick() {
  WorkloadConfig cfg;
  cfg.measure_ms = 3.0;
  cfg.clients = 8;
  cfg.num_files = 16;
  return cfg;
}

TEST(Workload, RunsAndCounts) {
  WorkloadConfig cfg = quick();
  WorkloadResult r = run_workload(cfg);
  EXPECT_GT(r.total_calls, 100u);
  EXPECT_EQ(r.total_calls, r.reads + r.writes + r.name_lookups);
  EXPECT_GT(r.reads, r.writes);  // 10% writes
  EXPECT_GT(r.calls_per_sec, 0.0);
}

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig cfg = quick();
  WorkloadResult a = run_workload(cfg);
  WorkloadResult b = run_workload(cfg);
  EXPECT_EQ(a.total_calls, b.total_calls);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.lock_migrations, b.lock_migrations);
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig a = quick(), b = quick();
  b.seed = 777;
  // Same workload shape, different interleavings.
  EXPECT_NE(run_workload(a).reads, run_workload(b).reads);
}

TEST(Workload, SkewIncreasesIdleTime) {
  WorkloadConfig uniform = quick();
  uniform.zipf_s = 0.0;
  WorkloadConfig skewed = quick();
  skewed.zipf_s = 1.5;
  const WorkloadResult u = run_workload(uniform);
  const WorkloadResult s = run_workload(skewed);
  EXPECT_GT(s.idle_fraction, u.idle_fraction);
  EXPECT_LT(s.calls_per_sec, u.calls_per_sec);
  EXPECT_GT(s.lock_migrations, u.lock_migrations / 2);
}

TEST(Workload, CategorySharesSumToOne) {
  WorkloadResult r = run_workload(quick());
  double sum = 0;
  for (double x : r.category_share) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Workload, NameLookupFractionHonored) {
  WorkloadConfig cfg = quick();
  cfg.name_lookup_fraction = 0.5;
  WorkloadResult r = run_workload(cfg);
  const double frac =
      static_cast<double>(r.name_lookups) / static_cast<double>(r.total_calls);
  EXPECT_NEAR(frac, 0.5, 0.1);
}

}  // namespace
}  // namespace hppc::experiments
