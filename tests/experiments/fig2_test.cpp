// Regression guards for the Figure 2 reproduction: the emergent totals must
// stay near the paper's numbers and the structural relations must hold.
#include <gtest/gtest.h>

#include "experiments/experiments.h"
#include "ppc/code_layout.h"

namespace hppc::experiments {
namespace {

using sim::CostCategory;

class Fig2All : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::vector<Fig2Result>(run_fig2_all(/*measured=*/256));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  static const Fig2Result& r(int i) { return (*results_)[i]; }
  // Order: U2U prim {noCD, hold}, U2U flush {noCD, hold},
  //        U2K prim {noCD, hold}, U2K flush {noCD, hold}.
  static std::vector<Fig2Result>* results_;
};

std::vector<Fig2Result>* Fig2All::results_ = nullptr;

constexpr double kPaper[8] = {32.4, 30.0, 52.2, 48.9, 22.2, 19.2, 42.0, 39.6};

TEST_F(Fig2All, TotalsWithinTolerance) {
  // The model is calibrated, not fitted per bar: require every bar within
  // 12% of the paper's reading.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(r(i).total_us, kPaper[i], kPaper[i] * 0.12)
        << "bar " << i << " (" << r(i).label << ")";
  }
}

TEST_F(Fig2All, HoldCdSaves2To3Us) {
  const double saving_u2u = r(0).total_us - r(1).total_us;
  const double saving_u2k = r(4).total_us - r(5).total_us;
  EXPECT_GT(saving_u2u, 1.5);
  EXPECT_LT(saving_u2u, 4.5);
  EXPECT_GT(saving_u2k, 1.5);
  EXPECT_LT(saving_u2k, 5.5);
}

TEST_F(Fig2All, KernelServerAvoidsTlbFlushCosts) {
  // "A call to a service in the supervisor address space does not require a
  // TLB flush and thus incurs fewer TLB misses."
  EXPECT_LT(r(4).us(CostCategory::kTlbMiss),
            r(0).us(CostCategory::kTlbMiss) / 2.0);
  EXPECT_LT(r(4).us(CostCategory::kTlbSetup),
            r(0).us(CostCategory::kTlbSetup));
  EXPECT_LT(r(4).total_us, r(0).total_us - 5.0);
}

TEST_F(Fig2All, FlushAddsAbout20UsSplitUserKernel) {
  // §3: "times increase consistently by about 20 usec, about half of which
  // is due to the cost of saving registers at user level ... and half due
  // to cache misses while manipulating the call data structures inside the
  // kernel."
  const double delta = r(2).total_us - r(0).total_us;
  EXPECT_GT(delta, 15.0);
  EXPECT_LT(delta, 28.0);
  const double user_part =
      r(2).us(CostCategory::kUserSaveRestore) -
      r(0).us(CostCategory::kUserSaveRestore);
  EXPECT_GT(user_part, delta * 0.2);
  EXPECT_LT(user_part, delta * 0.6);
}

TEST_F(Fig2All, TrapOverheadMatches2Traps) {
  // Two traps + two returns at ~1.7 us each pair.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(r(i).us(CostCategory::kTrapOverhead), 3.4, 0.2);
  }
}

TEST_F(Fig2All, ServerTimeIndependentOfTargetSpace) {
  EXPECT_NEAR(r(0).us(CostCategory::kServerTime),
              r(4).us(CostCategory::kServerTime), 0.3);
}

TEST_F(Fig2All, CategoriesSumToTotal) {
  for (int i = 0; i < 8; ++i) {
    double sum = 0;
    for (std::size_t c = 0; c < sim::kNumCostCategories; ++c) {
      sum += r(i).cycles[c];
    }
    EXPECT_NEAR(sum, r(i).total_cycles, 1e-9) << "bar " << i;
  }
}

TEST_F(Fig2All, HoldCdReducesCdManipulation) {
  EXPECT_LT(r(1).us(CostCategory::kCdManipulation),
            r(0).us(CostCategory::kCdManipulation));
  EXPECT_LT(r(5).us(CostCategory::kCdManipulation),
            r(4).us(CostCategory::kCdManipulation));
}

TEST(Fig2Extra, DirtyAndIcacheFlushAdds20To30Us) {
  Fig2Config flushed;
  flushed.flush_dcache = true;
  flushed.measured_calls = 128;
  const double base = run_fig2(flushed).total_us;

  Fig2Config dirty = flushed;
  dirty.dirty_and_flush_icache = true;
  const double with_dirty = run_fig2(dirty).total_us;
  EXPECT_GT(with_dirty - base, 15.0);
  EXPECT_LT(with_dirty - base, 35.0);
}

TEST(Fig2Extra, DeterministicAcrossRuns) {
  Fig2Config cfg;
  cfg.measured_calls = 64;
  const Fig2Result a = run_fig2(cfg);
  const Fig2Result b = run_fig2(cfg);
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
  for (std::size_t c = 0; c < sim::kNumCostCategories; ++c) {
    EXPECT_DOUBLE_EQ(a.cycles[c], b.cycles[c]);
  }
}

TEST(Fig2Extra, RoughlyTwoHundredInstructionsPerCall) {
  // §5: "only 200 instructions ... are required to complete most calls".
  hppc::ppc::PpcCalibration cal;
  EXPECT_GT(cal.total_fast_path_instructions(), 150u);
  EXPECT_LT(cal.total_fast_path_instructions(), 260u);
}

}  // namespace
}  // namespace hppc::experiments
