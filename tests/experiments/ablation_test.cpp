// Regression guards for the ablation claims: NUMA flatness of the warm PPC
// path, lock saturation of the LRPC-style baseline, and PPC's linear
// scaling against it. These pin the *shapes* the benches print.
#include <gtest/gtest.h>

#include "baseline/lrpc.h"
#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

Cycles warm_ppc_cost(CpuId client_cpu, Cycles hop_cycles) {
  sim::MachineConfig mc = sim::hector_config(16);
  mc.numa_hop_cycles = hop_cycles;
  Machine machine(mc);
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  auto& cas = machine.create_address_space(
      100, machine.config().node_of_cpu(client_cpu));
  Process& client = machine.create_process(
      100, &cas, "c", machine.config().node_of_cpu(client_cpu));
  Cpu& cpu = machine.cpu(client_cpu);
  RegSet regs;
  for (int i = 0; i < 8; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }
  const Cycles t0 = cpu.now();
  for (int i = 0; i < 8; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }
  return cpu.now() - t0;
}

TEST(NumaAblation, WarmPpcPathIsExactlyFlat) {
  // "the non-uniform memory access times had no measurable impact" — in
  // the model the warm path is *bit-for-bit* independent of distance.
  const Cycles local = warm_ppc_cost(0, 12);
  EXPECT_EQ(warm_ppc_cost(4, 12), local);   // 1 hop away
  EXPECT_EQ(warm_ppc_cost(8, 12), local);   // 2 hops away
  EXPECT_EQ(warm_ppc_cost(8, 200), local);  // even with huge hop costs
}

TEST(NumaAblation, LrpcPathIsNot) {
  auto lrpc_cost = [](CpuId client_cpu) {
    Machine machine(sim::hector_config(16));
    baseline::LrpcFacility lrpc(machine);
    const auto id = lrpc.bind([](baseline::LrpcCtx&, RegSet& regs) {
      set_rc(regs, Status::kOk);
    });
    auto& cas = machine.create_address_space(
        100, machine.config().node_of_cpu(client_cpu));
    Process& client = machine.create_process(
        100, &cas, "c", machine.config().node_of_cpu(client_cpu));
    Cpu& cpu = machine.cpu(client_cpu);
    RegSet regs;
    for (int i = 0; i < 8; ++i) {
      set_op(regs, 1);
      lrpc.call(cpu, client, id, regs);
    }
    const Cycles t0 = cpu.now();
    for (int i = 0; i < 8; ++i) {
      set_op(regs, 1);
      lrpc.call(cpu, client, id, regs);
    }
    return cpu.now() - t0;
  };
  EXPECT_GT(lrpc_cost(8), lrpc_cost(0));
}

// Throughput helper: P clients in closed loops for a fixed window.
template <typename CallFn>
double throughput(Machine& machine, std::uint32_t clients, CallFn&& fn) {
  std::vector<Process*> procs;
  for (CpuId c = 0; c < clients; ++c) {
    auto& as = machine.create_address_space(100 + c,
                                            machine.config().node_of_cpu(c));
    procs.push_back(&machine.create_process(
        100 + c, &as, "client", machine.config().node_of_cpu(c)));
    fn(machine.cpu(c), *procs[c]);  // warm
  }
  const Cycles window = machine.config().cycles_from_us(2000.0);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<Cycles> deadline(clients);
  for (CpuId c = 0; c < clients; ++c) {
    deadline[c] = machine.cpu(c).now() + window;
    procs[c]->set_body([&, c](Cpu& cpu, Process& self) {
      if (cpu.now() >= deadline[c]) return;
      fn(cpu, self);
      ++counts[c];
      machine.ready(cpu, self);
    });
    machine.ready(machine.cpu(c), *procs[c]);
  }
  machine.run_until_idle();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) / 0.002;
}

TEST(BaselineAblation, PpcScalesLinearlyLrpcSaturates) {
  auto ppc_tput = [](std::uint32_t p) {
    Machine machine(sim::hector_config(16));
    PpcFacility ppc(machine);
    auto& as = machine.create_address_space(700, 0);
    const EntryPointId ep = ppc.bind(
        {}, &as, 700,
        [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
    return throughput(machine, p, [&](Cpu& cpu, Process& self) {
      RegSet regs;
      set_op(regs, 1);
      ppc.call(cpu, self, ep, regs);
    });
  };
  auto lrpc_tput = [](std::uint32_t p) {
    Machine machine(sim::hector_config(16));
    baseline::LrpcFacility lrpc(machine);
    const auto id = lrpc.bind([](baseline::LrpcCtx&, RegSet& regs) {
      set_rc(regs, Status::kOk);
    });
    return throughput(machine, p, [&](Cpu& cpu, Process& self) {
      RegSet regs;
      set_op(regs, 1);
      lrpc.call(cpu, self, id, regs);
    });
  };

  const double ppc1 = ppc_tput(1), ppc8 = ppc_tput(8), ppc16 = ppc_tput(16);
  EXPECT_NEAR(ppc8 / ppc1, 8.0, 0.15);
  EXPECT_NEAR(ppc16 / ppc1, 16.0, 0.3);

  const double lrpc1 = lrpc_tput(1), lrpc8 = lrpc_tput(8),
               lrpc16 = lrpc_tput(16);
  EXPECT_LT(lrpc8 / lrpc1, 2.5);            // saturated on its lock
  EXPECT_LT(lrpc16, lrpc8 * 1.2);           // no further scaling
  EXPECT_GT(ppc16 / lrpc16, 8.0);           // PPC wins by a wide margin
}

}  // namespace
}  // namespace hppc
