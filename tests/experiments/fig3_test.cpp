// Regression guards for the Figure 3 reproduction: linear scaling for
// independent files, saturation at ~4 processors for a shared file.
#include <gtest/gtest.h>

#include "experiments/experiments.h"

namespace hppc::experiments {
namespace {

Fig3Config quick(std::uint32_t clients, bool single) {
  Fig3Config cfg;
  cfg.clients = clients;
  cfg.single_file = single;
  cfg.measure_ms = 8.0;  // short windows keep the suite fast
  return cfg;
}

TEST(Fig3, SequentialBaseNear66Us) {
  Fig3Config cfg = quick(1, false);
  cfg.measure_ms = 20.0;
  const Fig3Result r = run_fig3(cfg);
  EXPECT_NEAR(r.sequential_us, 66.0, 6.0);
}

TEST(Fig3, DifferentFilesScaleLinearly) {
  const double base = run_fig3(quick(1, false)).calls_per_sec;
  for (std::uint32_t p : {2u, 4u, 8u, 16u}) {
    const Fig3Result r = run_fig3(quick(p, false));
    EXPECT_NEAR(r.calls_per_sec, base * p, base * p * 0.03)
        << "at " << p << " processors";
  }
}

TEST(Fig3, SingleFileSaturatesAroundFourProcessors) {
  const double base = run_fig3(quick(1, true)).calls_per_sec;
  const double at4 = run_fig3(quick(4, true)).calls_per_sec;
  const double at8 = run_fig3(quick(8, true)).calls_per_sec;
  const double at16 = run_fig3(quick(16, true)).calls_per_sec;

  // Near-linear to 4...
  EXPECT_GT(at4 / base, 3.3);
  // ...then flat: no further meaningful speedup.
  EXPECT_LT(at8 / base, 4.6);
  EXPECT_LT(at16 / base, 4.6);
  EXPECT_GT(at16 / base, 2.5);
  // 8 -> 16 adds essentially nothing.
  EXPECT_LT(std::abs(at16 - at8) / at8, 0.25);
}

TEST(Fig3, LatencyStatsTrackSaturation) {
  const Fig3Result solo = run_fig3(quick(1, true));
  EXPECT_NEAR(solo.mean_call_us, 64.0, 6.0);
  EXPECT_NEAR(solo.p99_call_us, solo.mean_call_us, 5.0);  // no queueing
  const Fig3Result hot = run_fig3(quick(8, true));
  // Past the knee the mean call time is dominated by lock waiting.
  EXPECT_GT(hot.mean_call_us, solo.mean_call_us * 1.5);
}

TEST(Fig3, SingleFileLockMigratesBetweenProcessors) {
  const Fig3Result r = run_fig3(quick(4, true));
  EXPECT_GT(r.lock_migrations, 100u);
  const Fig3Result solo = run_fig3(quick(1, true));
  EXPECT_EQ(solo.lock_migrations, 0u);
}

TEST(Fig3, Deterministic) {
  const Fig3Result a = run_fig3(quick(3, true));
  const Fig3Result b = run_fig3(quick(3, true));
  EXPECT_EQ(a.total_calls, b.total_calls);
  EXPECT_EQ(a.lock_migrations, b.lock_migrations);
}

Fig3Config quick_repl(std::uint32_t clients) {
  Fig3Config cfg = quick(clients, /*single=*/true);
  cfg.replicate_read_path = true;
  return cfg;
}

TEST(Fig3, ReplicatedSingleFileScalesLikeDifferentFiles) {
  // The tentpole claim: replicating the read-mostly record block removes
  // the per-file lock from the hot path, so one shared file scales like
  // sixteen independent ones instead of saturating at four processors.
  const Fig3Result diff = run_fig3(quick(16, false));
  const Fig3Result locked = run_fig3(quick(16, true));
  const Fig3Result repl = run_fig3(quick_repl(16));

  EXPECT_GE(repl.calls_per_sec, 0.8 * diff.calls_per_sec);
  EXPECT_GT(repl.calls_per_sec, 3.0 * locked.calls_per_sec);
  // No lock is ever taken in the measured (warm) read phase, and no reader
  // ever fell back to the master.
  EXPECT_EQ(repl.warm_counters.get(obs::Counter::kLocksTaken), 0u);
  EXPECT_EQ(repl.warm_counters.get(obs::Counter::kReplFallbackLocked), 0u);
  // The Figure-3 workload never writes, so no read lands in a publish
  // window: retries stay bounded at exactly zero.
  EXPECT_EQ(repl.warm_counters.get(obs::Counter::kReplSeqRetries), 0u);
  EXPECT_EQ(repl.lock_migrations, 0u);
  EXPECT_GT(repl.warm_counters.get(obs::Counter::kReplReads),
            repl.total_calls / 2);
}

TEST(Fig3, ReplicatedFlagOffReproducesPublishedCurve) {
  // The flag must be a pure ablation: off is byte-for-byte the published
  // saturating behavior, with the per-file lock taken on every call.
  const Fig3Result locked = run_fig3(quick(8, true));
  EXPECT_GT(locked.warm_counters.get(obs::Counter::kLocksTaken), 0u);
  EXPECT_EQ(locked.warm_counters.get(obs::Counter::kReplReads), 0u);
  EXPECT_EQ(locked.counters.get(obs::Counter::kLocksTaken),
            locked.counters.get(obs::Counter::kCallsSync));
}

TEST(Fig3, ReplicatedSequentialCallIsCheaper) {
  // Dropping the locked section from the call shortens even the
  // uncontended path (the seqlock validation is cheaper than the lock plus
  // its uncached record accesses).
  Fig3Config solo_locked = quick(1, true);
  solo_locked.measure_ms = 20.0;
  Fig3Config solo_repl = quick_repl(1);
  solo_repl.measure_ms = 20.0;
  const Fig3Result locked = run_fig3(solo_locked);
  const Fig3Result repl = run_fig3(solo_repl);
  EXPECT_LT(repl.sequential_us, locked.sequential_us);
  EXPECT_GT(repl.sequential_us, 0.5 * locked.sequential_us);
}

TEST(Fig3, ReplicatedDeterministic) {
  const Fig3Result a = run_fig3(quick_repl(3));
  const Fig3Result b = run_fig3(quick_repl(3));
  EXPECT_EQ(a.total_calls, b.total_calls);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(Fig3, CritsecScaleMovesTheKnee) {
  // Ablation hook: halving the critical section moves saturation higher.
  Fig3Config heavy = quick(8, true);
  Fig3Config light = quick(8, true);
  light.critsec_scale = 0.25;
  const double heavy_tput = run_fig3(heavy).calls_per_sec;
  const double light_tput = run_fig3(light).calls_per_sec;
  EXPECT_GT(light_tput, heavy_tput * 1.3);
}

}  // namespace
}  // namespace hppc::experiments
