// Regression guards for the Figure 3 reproduction: linear scaling for
// independent files, saturation at ~4 processors for a shared file.
#include <gtest/gtest.h>

#include "experiments/experiments.h"

namespace hppc::experiments {
namespace {

Fig3Config quick(std::uint32_t clients, bool single) {
  Fig3Config cfg;
  cfg.clients = clients;
  cfg.single_file = single;
  cfg.measure_ms = 8.0;  // short windows keep the suite fast
  return cfg;
}

TEST(Fig3, SequentialBaseNear66Us) {
  Fig3Config cfg = quick(1, false);
  cfg.measure_ms = 20.0;
  const Fig3Result r = run_fig3(cfg);
  EXPECT_NEAR(r.sequential_us, 66.0, 6.0);
}

TEST(Fig3, DifferentFilesScaleLinearly) {
  const double base = run_fig3(quick(1, false)).calls_per_sec;
  for (std::uint32_t p : {2u, 4u, 8u, 16u}) {
    const Fig3Result r = run_fig3(quick(p, false));
    EXPECT_NEAR(r.calls_per_sec, base * p, base * p * 0.03)
        << "at " << p << " processors";
  }
}

TEST(Fig3, SingleFileSaturatesAroundFourProcessors) {
  const double base = run_fig3(quick(1, true)).calls_per_sec;
  const double at4 = run_fig3(quick(4, true)).calls_per_sec;
  const double at8 = run_fig3(quick(8, true)).calls_per_sec;
  const double at16 = run_fig3(quick(16, true)).calls_per_sec;

  // Near-linear to 4...
  EXPECT_GT(at4 / base, 3.3);
  // ...then flat: no further meaningful speedup.
  EXPECT_LT(at8 / base, 4.6);
  EXPECT_LT(at16 / base, 4.6);
  EXPECT_GT(at16 / base, 2.5);
  // 8 -> 16 adds essentially nothing.
  EXPECT_LT(std::abs(at16 - at8) / at8, 0.25);
}

TEST(Fig3, LatencyStatsTrackSaturation) {
  const Fig3Result solo = run_fig3(quick(1, true));
  EXPECT_NEAR(solo.mean_call_us, 64.0, 6.0);
  EXPECT_NEAR(solo.p99_call_us, solo.mean_call_us, 5.0);  // no queueing
  const Fig3Result hot = run_fig3(quick(8, true));
  // Past the knee the mean call time is dominated by lock waiting.
  EXPECT_GT(hot.mean_call_us, solo.mean_call_us * 1.5);
}

TEST(Fig3, SingleFileLockMigratesBetweenProcessors) {
  const Fig3Result r = run_fig3(quick(4, true));
  EXPECT_GT(r.lock_migrations, 100u);
  const Fig3Result solo = run_fig3(quick(1, true));
  EXPECT_EQ(solo.lock_migrations, 0u);
}

TEST(Fig3, Deterministic) {
  const Fig3Result a = run_fig3(quick(3, true));
  const Fig3Result b = run_fig3(quick(3, true));
  EXPECT_EQ(a.total_calls, b.total_calls);
  EXPECT_EQ(a.lock_migrations, b.lock_migrations);
}

TEST(Fig3, CritsecScaleMovesTheKnee) {
  // Ablation hook: halving the critical section moves saturation higher.
  Fig3Config heavy = quick(8, true);
  Fig3Config light = quick(8, true);
  light.critsec_scale = 0.25;
  const double heavy_tput = run_fig3(heavy).calls_per_sec;
  const double light_tput = run_fig3(light).calls_per_sec;
  EXPECT_GT(light_tput, heavy_tput * 1.3);
}

}  // namespace
}  // namespace hppc::experiments
