// Exception server: upcall delivery (§4.4) and the worker-initialization
// protocol in its natural habitat (§4.5.3).
#include "servers/exception_server.h"

#include <gtest/gtest.h>

#include "kernel/machine.h"

namespace hppc::servers {
namespace {

using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

struct Fixture {
  Fixture() : machine(sim::hector_config(4)), ppc(machine), exc(ppc) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  ExceptionServer exc;
};

TEST(ExceptionServer, DeliverViaUpcall) {
  Fixture f;
  ASSERT_EQ(ExceptionServer::deliver(f.ppc, f.machine.cpu(0), f.exc.ep(),
                                     /*victim=*/123, /*code=*/7),
            Status::kOk);
  EXPECT_EQ(f.exc.exceptions_for(123), 1u);
  EXPECT_EQ(f.exc.exceptions_for(999), 0u);
}

TEST(ExceptionServer, QueryThroughPpc) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    ExceptionServer::deliver(f.ppc, f.machine.cpu(0), f.exc.ep(), 55, 1);
  }
  Process& client = f.make_client(100, 1);
  RegSet regs;
  regs[0] = 55;
  set_op(regs, kExceptionQuery);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(1), client, f.exc.ep(), regs),
            Status::kOk);
  EXPECT_EQ(regs[1], 3u);
}

TEST(ExceptionServer, WorkerInitRunsOncePerCpuWorker) {
  Fixture f;
  // Deliveries on the same CPU reuse the initialized worker.
  for (int i = 0; i < 5; ++i) {
    ExceptionServer::deliver(f.ppc, f.machine.cpu(0), f.exc.ep(), 1, 1);
  }
  EXPECT_EQ(f.exc.registered_workers(), 1u);
  // A delivery on another CPU creates (and initializes) that CPU's worker.
  ExceptionServer::deliver(f.ppc, f.machine.cpu(2), f.exc.ep(), 1, 1);
  EXPECT_EQ(f.exc.registered_workers(), 2u);
  EXPECT_EQ(f.exc.exceptions_for(1), 6u);
}

TEST(ExceptionServer, InitCostPaidOnlyOnFirstCall) {
  Fixture f;
  auto& cpu = f.machine.cpu(0);
  const Cycles t0 = cpu.now();
  ExceptionServer::deliver(f.ppc, cpu, f.exc.ep(), 9, 1);
  const Cycles first = cpu.now() - t0;
  const Cycles t1 = cpu.now();
  ExceptionServer::deliver(f.ppc, cpu, f.exc.ep(), 9, 1);
  const Cycles later = cpu.now() - t1;
  // First call pays worker creation + init registration; later calls don't.
  EXPECT_GT(first, later + 150);
}

TEST(ExceptionServer, UnknownOpcode) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 0x66);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, f.exc.ep(), regs),
            Status::kInvalidArgument);
}

}  // namespace
}  // namespace hppc::servers
