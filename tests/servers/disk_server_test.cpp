// Disk device server: shared-queue cross-processor pattern (§4.3),
// interrupt-manufactured completions (§4.4), blocking reads.
#include "servers/disk_server.h"

#include <gtest/gtest.h>

#include <cstring>

#include "kernel/machine.h"

namespace hppc::servers {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

struct Fixture {
  Fixture() : machine(sim::hector_config(4)), ppc(machine), disk(ppc, {}) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  DiskServer disk;
};

TEST(DiskServer, ReadBlockDeliversData) {
  Fixture f;
  const char content[] = "block 7 content";
  f.disk.load_block(7, content, sizeof(content));
  const SimAddr dst = f.machine.allocator().alloc(0, 512, 16);

  Process& client = f.make_client(100, 1);
  Status done_status = Status::kServerError;
  Word bytes = 0;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    DiskServer::read_block(f.ppc, cpu, self, f.disk.ep(), 7, dst,
                           [&](Status s, RegSet& r) {
                             done_status = s;
                             bytes = r[3];
                           });
  });
  f.machine.ready(f.machine.cpu(1), client);
  f.machine.run_until_idle();

  EXPECT_EQ(done_status, Status::kOk);
  EXPECT_EQ(bytes, 512u);
  char got[sizeof(content)] = {};
  f.machine.read_data(dst, got, sizeof(got));
  EXPECT_STREQ(got, content);
  EXPECT_EQ(f.disk.completed(), 1u);
  EXPECT_EQ(f.disk.queue_depth(), 0u);
}

TEST(DiskServer, CompletionTakesServiceTime) {
  Fixture f;
  const SimAddr dst = f.machine.allocator().alloc(0, 512, 16);
  Process& client = f.make_client(100, 0);
  Cycles completed_at = 0;
  Cycles issued_at = 0;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    issued_at = cpu.now();
    DiskServer::read_block(f.ppc, cpu, self, f.disk.ep(), 0, dst,
                           [&](Status, RegSet&) {
                             completed_at = f.machine.cpu(0).now();
                           });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_GE(completed_at - issued_at, 4000u);  // the configured service time
}

TEST(DiskServer, RequestsFromManyCpusSerializeOnTheQueue) {
  // The queue is the one genuinely shared structure (§4.3); requests from
  // all processors are serviced one at a time in arrival order.
  Fixture f;
  std::vector<SimAddr> dsts;
  std::vector<Status> done(3, Status::kServerError);
  for (int i = 0; i < 3; ++i) {
    char content[16];
    std::snprintf(content, sizeof(content), "blk%d", i);
    f.disk.load_block(i, content, sizeof(content));
    dsts.push_back(f.machine.allocator().alloc(0, 512, 16));
  }
  std::vector<Process*> clients;
  std::vector<bool> issued(3, false);
  for (int i = 0; i < 3; ++i) {
    Process& c = f.make_client(100 + i, i);
    clients.push_back(&c);
    c.set_body([&, i](Cpu& cpu, Process& self) {
      if (issued[i]) return;
      issued[i] = true;
      DiskServer::read_block(f.ppc, cpu, self, f.disk.ep(), i, dsts[i],
                             [&, i](Status s, RegSet&) { done[i] = s; });
    });
    f.machine.ready(f.machine.cpu(i), c);
  }
  f.machine.run_until_idle();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(done[i], Status::kOk) << "request " << i;
    char got[8] = {};
    f.machine.read_data(dsts[i], got, 5);
    char want[8];
    std::snprintf(want, sizeof(want), "blk%d", i);
    EXPECT_STREQ(got, want);
  }
  EXPECT_EQ(f.disk.completed(), 3u);
}

TEST(DiskServer, InvalidBlockRejectedImmediately) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  Status s = Status::kOk;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    DiskServer::read_block(f.ppc, cpu, self, f.disk.ep(), 99999, 0x1000,
                           [&](Status st, RegSet&) { s = st; });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_EQ(s, Status::kInvalidArgument);
  EXPECT_EQ(f.disk.completed(), 0u);
}

TEST(DiskServer, StatsOp) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  const SimAddr dst = f.machine.allocator().alloc(0, 512, 16);
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    DiskServer::read_block(f.ppc, cpu, self, f.disk.ep(), 1, dst,
                           [](Status, RegSet&) {});
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();

  RegSet regs;
  set_op(regs, kDiskStats);
  Process& probe = f.make_client(101, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(1), probe, f.disk.ep(), regs),
            Status::kOk);
  EXPECT_EQ(regs[0], 1u);  // completed
  EXPECT_GE(regs[1], 1u);  // peak queue depth
}

}  // namespace
}  // namespace hppc::servers
