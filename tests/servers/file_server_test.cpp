// Bob, the file server: GetLength/SetLength/Read/Write/Create semantics,
// per-file locking, owner authentication, and the contention instrumentation
// Figure 3 relies on.
#include "servers/file_server.h"

#include "servers/copy_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "kernel/machine.h"
#include "obs/counters.h"

namespace hppc::servers {
namespace {

using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

struct Fixture {
  Fixture() : machine(sim::hector_config(8)), ppc(machine), bob(ppc, {}) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  FileServer bob;
};

TEST(FileServer, GetLength) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 12345);
  Process& client = f.make_client(100, 0);
  std::uint64_t len = 0;
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                   f.bob.ep(), fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 12345u);
}

TEST(FileServer, GetLength64Bit) {
  Fixture f;
  const std::uint64_t big = 0x1234567890ull;
  const auto fid = f.bob.create_file(1, big);
  Process& client = f.make_client(100, 0);
  std::uint64_t len = 0;
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                   f.bob.ep(), fid, &len),
            Status::kOk);
  EXPECT_EQ(len, big);
}

TEST(FileServer, InvalidFileId) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  std::uint64_t len;
  EXPECT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                   f.bob.ep(), 999, &len),
            Status::kInvalidArgument);
}

TEST(FileServer, SetLengthRequiresOwner) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 100, /*owner=*/700);
  Process& owner = f.make_client(700, 0);
  Process& other = f.make_client(999, 1);

  EXPECT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(1), other,
                                   f.bob.ep(), fid, 5),
            Status::kPermissionDenied);
  EXPECT_EQ(f.bob.length_of(fid), 100u);

  ASSERT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(0), owner,
                                   f.bob.ep(), fid, 555),
            Status::kOk);
  EXPECT_EQ(f.bob.length_of(fid), 555u);
}

TEST(FileServer, UnownedFileWritableByAnyone) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 10, /*owner=*/0);
  Process& anyone = f.make_client(321, 0);
  EXPECT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(0), anyone,
                                   f.bob.ep(), fid, 42),
            Status::kOk);
}

TEST(FileServer, ReadClampsToEof) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 100);
  Process& client = f.make_client(100, 0);
  std::uint32_t got = 0;
  ASSERT_EQ(FileServer::read(f.ppc, f.machine.cpu(0), client, f.bob.ep(),
                             fid, 80, 50, &got),
            Status::kOk);
  EXPECT_EQ(got, 20u);  // clamped at EOF
  ASSERT_EQ(FileServer::read(f.ppc, f.machine.cpu(0), client, f.bob.ep(),
                             fid, 100, 10, &got),
            Status::kOk);
  EXPECT_EQ(got, 0u);  // at EOF
}

TEST(FileServer, WriteExtendsFile) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 10, 0);
  Process& client = f.make_client(100, 0);
  RegSet regs;
  regs[0] = fid;
  regs[1] = 50;   // offset
  regs[2] = 30;   // bytes
  set_op(regs, kFileWrite);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, f.bob.ep(), regs),
            Status::kOk);
  EXPECT_EQ(f.bob.length_of(fid), 80u);
}

TEST(FileServer, CreateThroughPpc) {
  Fixture f;
  Process& client = f.make_client(123, 0);
  RegSet regs;
  regs[0] = 1;  // home node
  ppc::set_u64(regs, 1, 4096);
  set_op(regs, kFileCreate);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, f.bob.ep(), regs),
            Status::kOk);
  const std::uint32_t fid = regs[0];
  EXPECT_EQ(f.bob.length_of(fid), 4096u);

  // The creating program owns it.
  Process& other = f.make_client(999, 1);
  EXPECT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(1), other,
                                   f.bob.ep(), fid, 1),
            Status::kPermissionDenied);
}

TEST(FileServer, UnknownOpcode) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 0x77);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, f.bob.ep(), regs),
            Status::kInvalidArgument);
}

TEST(FileServer, LockMigrationsCountContention) {
  Fixture f;
  const auto fid = f.bob.create_file(0, 100);
  Process& a = f.make_client(100, 0);
  Process& b = f.make_client(101, 1);
  std::uint64_t len;
  FileServer::get_length(f.ppc, f.machine.cpu(0), a, f.bob.ep(), fid, &len);
  EXPECT_EQ(f.bob.lock_migrations(fid), 0u);
  FileServer::get_length(f.ppc, f.machine.cpu(1), b, f.bob.ep(), fid, &len);
  EXPECT_EQ(f.bob.lock_migrations(fid), 1u);
  FileServer::get_length(f.ppc, f.machine.cpu(1), b, f.bob.ep(), fid, &len);
  EXPECT_EQ(f.bob.lock_migrations(fid), 1u);  // same owner: no migration
}

TEST(FileServer, BulkWriteThroughCopyServer) {
  // The full §4.2 flow: grant -> PPC to Bob -> Bob's nested CopyFrom pulls
  // the caller's buffer -> bytes land in the file's data pages.
  Machine machine(sim::hector_config(8));
  PpcFacility ppc(machine);
  CopyServer copies(ppc);
  FileServer bob(ppc, {});
  const auto fid = bob.create_file(0, 0, /*owner=*/0);

  auto& as = machine.create_address_space(100, 0);
  Process& client = machine.create_process(100, &as, "client", 0);

  const SimAddr buf = machine.allocator().alloc(0, 256, 16);
  const char payload[] = "bulk payload via copy server";
  machine.write_data(buf, payload, sizeof(payload));

  // Without a grant, Bob's CopyFrom is refused and surfaces as the rc.
  EXPECT_EQ(FileServer::write_bulk(ppc, machine.cpu(0), client, bob.ep(),
                                   fid, 0, buf, sizeof(payload)),
            Status::kBadRegion);

  ASSERT_EQ(CopyServer::grant(ppc, machine.cpu(0), client, bob.program(),
                              buf, 256, kCopyRightRead),
            Status::kOk);
  ASSERT_EQ(FileServer::write_bulk(ppc, machine.cpu(0), client, bob.ep(),
                                   fid, 0, buf, sizeof(payload)),
            Status::kOk);
  EXPECT_EQ(bob.length_of(fid), sizeof(payload));
  char got[sizeof(payload)] = {};
  machine.read_data(bob.data_addr(fid), got, sizeof(got));
  EXPECT_STREQ(got, payload);
}

TEST(FileServer, BulkWriteRespectsFileOwnership) {
  Machine machine(sim::hector_config(4));
  PpcFacility ppc(machine);
  CopyServer copies(ppc);
  FileServer bob(ppc, {});
  const auto fid = bob.create_file(0, 0, /*owner=*/555);
  auto& as = machine.create_address_space(100, 0);
  Process& intruder = machine.create_process(100, &as, "i", 0);
  const SimAddr buf = machine.allocator().alloc(0, 64, 16);
  CopyServer::grant(ppc, machine.cpu(0), intruder, bob.program(), buf, 64,
                    kCopyRightRead);
  EXPECT_EQ(FileServer::write_bulk(ppc, machine.cpu(0), intruder, bob.ep(),
                                   fid, 0, buf, 16),
            Status::kPermissionDenied);
}

TEST(FileServer, KernelSpaceVariant) {
  Machine machine(sim::hector_config(4));
  PpcFacility ppc(machine);
  FileServer::Config cfg;
  cfg.user_space = false;
  FileServer bob(ppc, cfg);
  auto& as = machine.create_address_space(100, 0);
  Process& client = machine.create_process(100, &as, "c", 0);
  const auto fid = bob.create_file(0, 777);
  std::uint64_t len = 0;
  ASSERT_EQ(FileServer::get_length(ppc, machine.cpu(0), client, bob.ep(),
                                   fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 777u);
}

TEST(FileServer, ManyFilesAcrossNodes) {
  Fixture f;
  std::vector<std::uint32_t> fids;
  for (int i = 0; i < 32; ++i) {
    fids.push_back(f.bob.create_file(i % 2, 1000 + i));
  }
  Process& client = f.make_client(100, 0);
  for (int i = 0; i < 32; ++i) {
    std::uint64_t len = 0;
    ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                     f.bob.ep(), fids[i], &len),
              Status::kOk);
    EXPECT_EQ(len, 1000u + i);
  }
}

struct ReplFixture {
  ReplFixture() : machine(sim::hector_config(8)), ppc(machine) {
    FileServer::Config cfg;
    cfg.replicate_read_path = true;
    bob = std::make_unique<FileServer>(ppc, cfg);
  }

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  obs::CounterSnapshot snap(CpuId cpu) {
    return machine.cpu(cpu).counters().snapshot();
  }

  Machine machine;
  PpcFacility ppc;
  std::unique_ptr<FileServer> bob;
};

TEST(FileServerReplicated, GetLengthTakesNoLock) {
  ReplFixture f;
  const auto fid = f.bob->create_file(0, 12345);
  Process& client = f.make_client(100, 0);
  std::uint64_t len = 0;
  // Warm call (pools, caches), then measure the counter delta.
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                   f.bob->ep(), fid, &len),
            Status::kOk);
  const auto before = f.snap(0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(0), client,
                                     f.bob->ep(), fid, &len),
              Status::kOk);
    EXPECT_EQ(len, 12345u);
  }
  const auto delta = f.snap(0).delta(before);
  EXPECT_EQ(delta.get(obs::Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kReplReads), 10u);
  EXPECT_EQ(delta.get(obs::Counter::kReplSeqRetries), 0u);
  EXPECT_EQ(f.bob->lock_migrations(fid), 0u);
}

TEST(FileServerReplicated, WriteStillLocksAndPublishes) {
  ReplFixture f;
  const auto fid = f.bob->create_file(0, 100, /*owner=*/0);
  Process& client = f.make_client(100, 0);
  const auto before = f.snap(0);
  ASSERT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(0), client,
                                   f.bob->ep(), fid, 555),
            Status::kOk);
  const auto delta = f.snap(0).delta(before);
  EXPECT_GE(delta.get(obs::Counter::kLocksTaken), 1u);  // the per-file lock
  // The writer paid one publish per CPU's update queue.
  EXPECT_EQ(delta.get(obs::Counter::kReplInvalidations),
            static_cast<std::uint64_t>(f.machine.config().num_cpus));
  EXPECT_EQ(f.bob->length_of(fid), 555u);
}

TEST(FileServerReplicated, WriteBecomesVisibleAcrossCpus) {
  ReplFixture f;
  const auto fid = f.bob->create_file(0, 100, /*owner=*/0);
  Process& writer = f.make_client(100, 0);
  Process& reader = f.make_client(101, 1);
  std::uint64_t len = 0;

  // Prime CPU 1's replica, then park the writer far ahead in simulated
  // time so the publish windows land well past the reader's clock.
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(1), reader,
                                   f.bob->ep(), fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 100u);
  f.machine.cpu(0).mem().charge(sim::CostCategory::kServerTime, 100000);
  ASSERT_EQ(FileServer::set_length(f.ppc, f.machine.cpu(0), writer,
                                   f.bob->ep(), fid, 555),
            Status::kOk);

  // The reader's clock is still before the publish window: it sees the
  // previous generation — consistent, bounded-stale, deterministic.
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(1), reader,
                                   f.bob->ep(), fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 100u);

  // Once its clock passes the writer's publish, the update applies.
  f.machine.cpu(1).mem().idle_until(f.machine.cpu(0).now());
  ASSERT_EQ(FileServer::get_length(f.ppc, f.machine.cpu(1), reader,
                                   f.bob->ep(), fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 555u);
}

TEST(FileServerReplicated, ReadEofCheckUsesReplica) {
  ReplFixture f;
  const auto fid = f.bob->create_file(0, 100);
  Process& client = f.make_client(100, 0);
  std::uint32_t got = 0;
  ASSERT_EQ(FileServer::read(f.ppc, f.machine.cpu(0), client, f.bob->ep(),
                             fid, 80, 50, &got),
            Status::kOk);
  EXPECT_EQ(got, 20u);  // clamped at EOF, via the replica's length
  const auto before = f.snap(0);
  ASSERT_EQ(FileServer::read(f.ppc, f.machine.cpu(0), client, f.bob->ep(),
                             fid, 0, 10, &got),
            Status::kOk);
  EXPECT_EQ(got, 10u);
  EXPECT_EQ(f.snap(0).delta(before).get(obs::Counter::kLocksTaken), 0u);
}

}  // namespace
}  // namespace hppc::servers
