// CopyServer (§4.2): V-style region grants, CopyTo/CopyFrom as normal PPC
// requests, permission enforcement, and real byte movement.
#include "servers/copy_server.h"

#include <gtest/gtest.h>

#include <cstring>

#include "kernel/machine.h"

namespace hppc::servers {
namespace {

using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;

struct Fixture {
  Fixture() : machine(sim::hector_config(16)), ppc(machine), copy(ppc) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  CopyServer copy;
};

constexpr ProgramId kClientProg = 100;
constexpr ProgramId kServerProg = 200;

TEST(CopyServer, GrantThenCopyFromMovesBytes) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);

  const SimAddr src = f.machine.allocator().alloc(0, 256, 16);
  const SimAddr dst = f.machine.allocator().alloc(1, 256, 16);
  const char payload[] = "eight words are not enough for this";
  f.machine.write_data(src, payload, sizeof(payload));

  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              src, 256, kCopyRightRead),
            Status::kOk);
  ASSERT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, src, dst, sizeof(payload)),
            Status::kOk);

  char got[sizeof(payload)] = {};
  f.machine.read_data(dst, got, sizeof(got));
  EXPECT_STREQ(got, payload);
}

TEST(CopyServer, CopyToWritesIntoGrantedRegion) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);

  const SimAddr client_buf = f.machine.allocator().alloc(0, 128, 16);
  const SimAddr server_buf = f.machine.allocator().alloc(1, 128, 16);
  const char reply[] = "server reply data";
  f.machine.write_data(server_buf, reply, sizeof(reply));

  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              client_buf, 128, kCopyRightWrite),
            Status::kOk);
  ASSERT_EQ(CopyServer::copy_to(f.ppc, f.machine.cpu(1), server, kClientProg,
                                server_buf, client_buf, sizeof(reply)),
            Status::kOk);
  char got[sizeof(reply)] = {};
  f.machine.read_data(client_buf, got, sizeof(got));
  EXPECT_STREQ(got, reply);
}

TEST(CopyServer, CopyWithoutGrantRejected) {
  Fixture f;
  Process& server = f.make_client(kServerProg, 1);
  const SimAddr src = f.machine.allocator().alloc(0, 64, 16);
  const SimAddr dst = f.machine.allocator().alloc(1, 64, 16);
  EXPECT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, src, dst, 32),
            Status::kBadRegion);
}

TEST(CopyServer, ReadGrantDoesNotAllowWrite) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);
  const SimAddr buf = f.machine.allocator().alloc(0, 64, 16);
  const SimAddr sbuf = f.machine.allocator().alloc(1, 64, 16);
  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              buf, 64, kCopyRightRead),
            Status::kOk);
  EXPECT_EQ(CopyServer::copy_to(f.ppc, f.machine.cpu(1), server, kClientProg,
                                sbuf, buf, 32),
            Status::kBadRegion);
}

TEST(CopyServer, OutOfRangeCopyRejected) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);
  const SimAddr buf = f.machine.allocator().alloc(0, 64, 16);
  const SimAddr sbuf = f.machine.allocator().alloc(1, 128, 16);
  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              buf, 64, kCopyRightRead),
            Status::kOk);
  // Straddles the end of the granted region.
  EXPECT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, buf + 32, sbuf, 64),
            Status::kBadRegion);
}

TEST(CopyServer, GrantIsPerGrantee) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& other = f.make_client(999, 2);
  const SimAddr buf = f.machine.allocator().alloc(0, 64, 16);
  const SimAddr obuf = f.machine.allocator().alloc(2, 64, 16);
  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              buf, 64, kCopyRightRead),
            Status::kOk);
  EXPECT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(2), other,
                                  kClientProg, buf, obuf, 16),
            Status::kBadRegion);
}

TEST(CopyServer, RevokeRemovesAccess) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);
  const SimAddr buf = f.machine.allocator().alloc(0, 64, 16);
  const SimAddr sbuf = f.machine.allocator().alloc(1, 64, 16);
  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              buf, 64, kCopyRightRead),
            Status::kOk);
  ASSERT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, buf, sbuf, 16),
            Status::kOk);
  ASSERT_EQ(CopyServer::revoke(f.ppc, f.machine.cpu(0), client, kServerProg),
            Status::kOk);
  EXPECT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, buf, sbuf, 16),
            Status::kBadRegion);
  EXPECT_EQ(f.copy.grant_count(), 0u);
}

TEST(CopyServer, ZeroLengthGrantRejected) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  EXPECT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              0x1000, 0, kCopyRightRead),
            Status::kInvalidArgument);
  EXPECT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              0x1000, 64, /*rights=*/0),
            Status::kInvalidArgument);
}

TEST(CopyServer, LargeCopyChargesStreamingTraffic) {
  Fixture f;
  Process& client = f.make_client(kClientProg, 0);
  Process& server = f.make_client(kServerProg, 1);
  const SimAddr buf = f.machine.allocator().alloc(0, 8192, kPageSize);
  const SimAddr sbuf = f.machine.allocator().alloc(1, 8192, kPageSize);
  ASSERT_EQ(CopyServer::grant(f.ppc, f.machine.cpu(0), client, kServerProg,
                              buf, 8192, kCopyRightRead),
            Status::kOk);
  auto& cpu = f.machine.cpu(1);
  const Cycles t0 = cpu.now();
  ASSERT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, buf, sbuf, 64),
            Status::kOk);
  const Cycles small = cpu.now() - t0;
  const Cycles t1 = cpu.now();
  ASSERT_EQ(CopyServer::copy_from(f.ppc, f.machine.cpu(1), server,
                                  kClientProg, buf, sbuf, 4096),
            Status::kOk);
  const Cycles large = cpu.now() - t1;
  EXPECT_GT(large, small + 1000);  // 4 KB streams hundreds of lines
}

}  // namespace
}  // namespace hppc::servers
