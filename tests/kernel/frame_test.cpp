#include "kernel/frame.h"

#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "sim/addr.h"

namespace hppc::kernel {
namespace {

TEST(FrameAllocator, FreshFramesAreNodeLocalAndAligned) {
  sim::SimAllocator backing(4);
  FrameAllocator frames(backing, 4);
  for (NodeId n = 0; n < 4; ++n) {
    const SimAddr f = frames.alloc(n);
    EXPECT_EQ(sim::node_of_addr(f), n);
    EXPECT_EQ(f & (kPageSize - 1), 0u);
  }
  EXPECT_EQ(frames.fresh_allocations(), 4u);
  EXPECT_EQ(frames.reuses(), 0u);
}

TEST(FrameAllocator, FreedFramesAreReusedFirst) {
  sim::SimAllocator backing(2);
  FrameAllocator frames(backing, 2);
  const SimAddr a = frames.alloc(0);
  frames.free(a);
  EXPECT_EQ(frames.free_count(0), 1u);
  const SimAddr b = frames.alloc(0);
  EXPECT_EQ(b, a);  // LIFO reuse
  EXPECT_EQ(frames.reuses(), 1u);
  EXPECT_EQ(frames.free_count(0), 0u);
}

TEST(FrameAllocator, FreeRoutesToHomeNode) {
  sim::SimAllocator backing(4);
  FrameAllocator frames(backing, 4);
  const SimAddr f2 = frames.alloc(2);
  frames.free(f2);
  EXPECT_EQ(frames.free_count(2), 1u);
  EXPECT_EQ(frames.free_count(0), 0u);
  // Allocation on another node does not steal it.
  frames.alloc(1);
  EXPECT_EQ(frames.free_count(2), 1u);
}

TEST(FrameAllocator, ChurnDoesNotGrowBacking) {
  sim::SimAllocator backing(1);
  FrameAllocator frames(backing, 1);
  const std::size_t used_before_churn = [&] {
    const SimAddr f = frames.alloc(0);
    frames.free(f);
    return backing.bytes_used(0);
  }();
  for (int i = 0; i < 1000; ++i) {
    const SimAddr f = frames.alloc(0);
    frames.free(f);
  }
  EXPECT_EQ(backing.bytes_used(0), used_before_churn);
  EXPECT_EQ(frames.reuses(), 1000u);
}

TEST(FrameAllocator, TrimReturnsStackPagesForReuse) {
  // End to end: PPC pool trimming feeds the frame allocator; the next CD
  // creation reuses the reclaimed stack page.
  Machine machine(sim::hector_config(1));
  EXPECT_EQ(machine.frames().free_count(0), 0u);
  // (Exercised in depth via ppc tests; here just the allocator contract.)
  machine.frames().free(machine.frames().alloc(0));
  EXPECT_EQ(machine.frames().free_count(0), 1u);
}

}  // namespace
}  // namespace hppc::kernel
