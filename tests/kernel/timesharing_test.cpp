// Multiprogramming on one processor: several client processes share a CPU
// through the ready queue in FIFO order, each making PPC calls — the
// "smaller number of large-scale parallel programs" end of §1's spectrum
// needs many processes per processor to behave.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

TEST(Timesharing, RoundRobinFairnessOnOneCpu) {
  Machine machine(sim::hector_config(1));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });

  constexpr int kProcs = 3;
  constexpr int kCallsEach = 5;
  std::vector<int> made(kProcs, 0);
  std::vector<int> order;
  for (int i = 0; i < kProcs; ++i) {
    auto& cas = machine.create_address_space(100 + i, 0);
    Process& p = machine.create_process(100 + i, &cas, "p", 0);
    p.set_body([&, i](Cpu& cpu, Process& self) {
      if (made[i] >= kCallsEach) return;
      RegSet regs;
      set_op(regs, 1);
      ASSERT_EQ(ppc.call(cpu, self, ep, regs), Status::kOk);
      order.push_back(i);
      if (++made[i] < kCallsEach) machine.ready(cpu, self);
    });
    machine.ready(machine.cpu(0), p);
  }
  machine.run_until_idle();

  for (int i = 0; i < kProcs; ++i) EXPECT_EQ(made[i], kCallsEach);
  // FIFO requeueing interleaves them 0,1,2,0,1,2,...
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kProcs * kCallsEach));
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], static_cast<int>(k % kProcs)) << "position " << k;
  }
}

TEST(Timesharing, SharedWorkerPoolAcrossProcessesOnOneCpu) {
  // Sequential callers on one CPU reuse the same pooled worker: process
  // count does not inflate per-CPU resources.
  Machine machine(sim::hector_config(1));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });

  for (int i = 0; i < 6; ++i) {
    auto& cas = machine.create_address_space(100 + i, 0);
    Process& p = machine.create_process(100 + i, &cas, "p", 0);
    RegSet regs;
    set_op(regs, 1);
    ASSERT_EQ(ppc.call(machine.cpu(0), p, ep, regs), Status::kOk);
  }
  EXPECT_EQ(ppc.entry_point(ep)->per_cpu(0).workers_created, 1u);
}

TEST(Timesharing, CacheInterferenceBetweenProcessesIsVisible) {
  // Two processes alternating on one CPU with large private working sets
  // evict each other: per-call cost is higher than a solo process's. The
  // cache model sees multiprogramming, which is what makes the Figure-2
  // "cache flushed" condition the realistic one for busy systems.
  Machine machine(sim::hector_config(1));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  Cpu& cpu = machine.cpu(0);

  auto& cas1 = machine.create_address_space(101, 0);
  Process& p1 = machine.create_process(101, &cas1, "p1", 0);
  auto& cas2 = machine.create_address_space(102, 0);
  Process& p2 = machine.create_process(102, &cas2, "p2", 0);

  const std::size_t cache_bytes = machine.config().dcache.size_bytes;
  const SimAddr ws1 = machine.allocator().alloc(0, cache_bytes, kPageSize);
  const SimAddr ws2 = machine.allocator().alloc(0, cache_bytes, kPageSize);

  auto one_iteration = [&](Process& p, SimAddr ws) {
    // The process touches its working set, then calls.
    cpu.mem().access(ws, cache_bytes, /*is_store=*/true,
                     sim::TlbContext::kUser, sim::CostCategory::kIdle);
    RegSet regs;
    set_op(regs, 1);
    ppc.call(cpu, p, ep, regs);
  };

  // Solo: p1 alone, steady state.
  for (int i = 0; i < 4; ++i) one_iteration(p1, ws1);
  const auto misses_solo_start = cpu.mem().dcache().misses();
  one_iteration(p1, ws1);
  // Working set fits exactly: the call still misses a little, but the
  // working-set re-touch is warm.
  const auto solo_misses = cpu.mem().dcache().misses() - misses_solo_start;

  // Alternating: each iteration faces the other's evictions.
  for (int i = 0; i < 2; ++i) {
    one_iteration(p1, ws1);
    one_iteration(p2, ws2);
  }
  const auto misses_alt_start = cpu.mem().dcache().misses();
  one_iteration(p1, ws1);
  const auto alternating_misses = cpu.mem().dcache().misses() -
                                  misses_alt_start;
  EXPECT_GT(alternating_misses, solo_misses * 4);
}

}  // namespace
}  // namespace hppc
