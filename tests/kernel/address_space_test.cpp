#include "kernel/address_space.h"

#include <gtest/gtest.h>

namespace hppc::kernel {
namespace {

TEST(AddressSpace, Identity) {
  AddressSpace as(3, /*supervisor=*/false, /*program=*/42, /*home=*/2);
  EXPECT_EQ(as.id(), 3u);
  EXPECT_FALSE(as.supervisor());
  EXPECT_EQ(as.program(), 42u);
  EXPECT_EQ(as.home_node(), 2u);
  EXPECT_EQ(as.tlb_context(), sim::TlbContext::kUser);

  AddressSpace k(0, /*supervisor=*/true, 0);
  EXPECT_EQ(k.tlb_context(), sim::TlbContext::kSupervisor);
}

TEST(AddressSpace, MapUnmapRoundTrip) {
  AddressSpace as(1, false, 7);
  const SimAddr va = 0x10000;
  const SimAddr pa = 0x555000;
  EXPECT_FALSE(as.mapped(va));
  as.map_page(va, pa);
  EXPECT_TRUE(as.mapped(va));
  EXPECT_EQ(as.page_count(), 1u);
  EXPECT_EQ(as.unmap_page(va), pa);
  EXPECT_FALSE(as.mapped(va));
  EXPECT_EQ(as.page_count(), 0u);
}

TEST(AddressSpace, TranslateWithinPage) {
  AddressSpace as(1, false, 7);
  as.map_page(0x10000, 0x555000);
  auto t = as.translate(0x10123);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x555123u);
  EXPECT_FALSE(as.translate(0x11000).has_value());
}

TEST(AddressSpace, TranslatePageIgnoresOffset) {
  AddressSpace as(1, false, 7);
  as.map_page(0x10000, 0x555000);
  auto t = as.translate_page(0x10FFF);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x555000u);
}

TEST(AddressSpace, MultiplePages) {
  AddressSpace as(1, false, 7);
  for (SimAddr i = 0; i < 8; ++i) {
    as.map_page(0x10000 + i * kPageSize, 0x800000 + i * kPageSize);
  }
  EXPECT_EQ(as.page_count(), 8u);
  EXPECT_EQ(*as.translate(0x10000 + 5 * kPageSize + 9),
            0x800000u + 5 * kPageSize + 9);
}

TEST(AddressSpaceDeathTest, DoubleMapAsserts) {
  AddressSpace as(1, false, 7);
  as.map_page(0x10000, 0x555000);
  EXPECT_DEATH(as.map_page(0x10000, 0x666000), "already mapped");
}

TEST(AddressSpaceDeathTest, UnmapUnmappedAsserts) {
  AddressSpace as(1, false, 7);
  EXPECT_DEATH(as.unmap_page(0x10000), "unmap of unmapped");
}

}  // namespace
}  // namespace hppc::kernel
