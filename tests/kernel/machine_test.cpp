#include "kernel/machine.h"

#include <gtest/gtest.h>

#include <vector>

namespace hppc::kernel {
namespace {

sim::MachineConfig cfg(std::uint32_t cpus = 4) {
  return sim::hector_config(cpus);
}

TEST(Machine, Boot) {
  Machine m(cfg(16));
  EXPECT_EQ(m.num_cpus(), 16u);
  EXPECT_TRUE(m.kernel_as().supervisor());
  for (CpuId c = 0; c < 16; ++c) {
    EXPECT_EQ(m.cpu(c).id(), c);
    EXPECT_EQ(m.cpu(c).node(), m.config().node_of_cpu(c));
    EXPECT_EQ(m.cpu(c).now(), 0u);
  }
}

TEST(Machine, KernelTextReplicatedPerNode) {
  Machine m(cfg(16));
  for (NodeId n = 0; n < m.config().num_nodes(); ++n) {
    EXPECT_EQ(sim::node_of_addr(m.text(n).dispatch.base), n);
    EXPECT_EQ(sim::node_of_addr(m.text(n).interrupt_entry.base), n);
  }
}

TEST(Machine, CreateProcessAllocatesNodeLocalState) {
  Machine m(cfg(8));
  AddressSpace& as = m.create_address_space(50, /*home=*/1);
  Process& p = m.create_process(50, &as, "proc", /*home=*/1);
  EXPECT_EQ(sim::node_of_addr(p.context_save_area()), 1u);
  EXPECT_EQ(sim::node_of_addr(p.user_stack()), 1u);
  EXPECT_EQ(p.state(), ProcessState::kBlocked);
  EXPECT_EQ(p.program(), 50u);
}

TEST(Machine, DispatchRunsBody) {
  Machine m(cfg());
  Process& p = m.create_process(1, &m.kernel_as(), "t", 0);
  int runs = 0;
  p.set_body([&](Cpu& cpu, Process&) {
    EXPECT_EQ(cpu.id(), 2u);
    ++runs;
  });
  m.ready(m.cpu(2), p);
  EXPECT_EQ(p.state(), ProcessState::kReady);
  EXPECT_TRUE(m.step());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(p.state(), ProcessState::kDead);  // body didn't re-ready
  EXPECT_FALSE(m.step());
}

TEST(Machine, SelfRescheduleLoops) {
  Machine m(cfg());
  Process& p = m.create_process(1, &m.kernel_as(), "loop", 0);
  int runs = 0;
  p.set_body([&](Cpu& cpu, Process& self) {
    if (++runs < 5) m.ready(cpu, self);
  });
  m.ready(m.cpu(0), p);
  m.run_until_idle();
  EXPECT_EQ(runs, 5);
}

TEST(Machine, StepPicksGloballyEarliestCpu) {
  Machine m(cfg(2));
  Process& a = m.create_process(1, &m.kernel_as(), "a", 0);
  Process& b = m.create_process(2, &m.kernel_as(), "b", 0);
  std::vector<int> order;
  a.set_body([&](Cpu&, Process&) { order.push_back(0); });
  b.set_body([&](Cpu&, Process&) { order.push_back(1); });
  // CPU 1's clock is behind CPU 0's.
  m.cpu(0).mem().charge(sim::CostCategory::kIdle, 1000);
  m.ready(m.cpu(0), a);
  m.ready(m.cpu(1), b);
  m.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Machine, EventDeliveredAtTime) {
  Machine m(cfg());
  bool fired = false;
  m.post_event(1, 500, [&](Cpu& cpu) {
    fired = true;
    EXPECT_GE(cpu.now(), 500u);
  });
  m.run_until_idle();
  EXPECT_TRUE(fired);
}

TEST(Machine, EventsInTimeOrder) {
  Machine m(cfg());
  std::vector<int> order;
  m.post_event(0, 900, [&](Cpu&) { order.push_back(2); });
  m.post_event(0, 100, [&](Cpu&) { order.push_back(1); });
  m.post_event(0, 900, [&](Cpu&) { order.push_back(3); });  // FIFO tie
  m.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Machine, RunUntilStopsAtHorizon) {
  Machine m(cfg());
  int fired = 0;
  m.post_event(0, 100, [&](Cpu&) { ++fired; });
  m.post_event(0, 10000, [&](Cpu&) { ++fired; });
  m.run_until(5000);
  EXPECT_EQ(fired, 1);
  m.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Machine, IpiArrivesAfterLatency) {
  Machine m(cfg(4));
  Cpu& sender = m.cpu(0);
  sender.mem().charge(sim::CostCategory::kPpcKernel, 200);
  Cycles arrival = 0;
  m.post_ipi(sender, 3, [&](Cpu& target) { arrival = target.now(); });
  m.run_until_idle();
  EXPECT_GE(arrival, 200u + m.config().ipi_latency_cycles);
}

TEST(Machine, BlockRemovesFromQueue) {
  Machine m(cfg());
  Process& p = m.create_process(1, &m.kernel_as(), "b", 0);
  p.set_body([](Cpu&, Process&) { FAIL() << "must not run"; });
  m.ready(m.cpu(0), p);
  m.block(p);
  EXPECT_EQ(p.state(), ProcessState::kBlocked);
  EXPECT_FALSE(m.step());
}

TEST(Machine, DispatchChargesCycles) {
  Machine m(cfg());
  Process& p = m.create_process(1, &m.kernel_as(), "c", 0);
  p.set_body([](Cpu&, Process&) {});
  m.ready(m.cpu(0), p);
  const Cycles before = m.cpu(0).now();
  m.step();
  EXPECT_GT(m.cpu(0).now(), before);
}

TEST(Machine, HorizonReflectsEarliestWork) {
  Machine m(cfg(2));
  EXPECT_EQ(m.horizon(), 0u);
  m.post_event(1, 777, [](Cpu&) {});
  EXPECT_EQ(m.horizon(), 777u);
}

}  // namespace
}  // namespace hppc::kernel
