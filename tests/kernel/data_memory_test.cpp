// Functional data memory: the byte store behind CopyServer/disk transfers.
#include <gtest/gtest.h>

#include <cstring>

#include "kernel/machine.h"

namespace hppc::kernel {
namespace {

TEST(DataMemory, WriteReadRoundTrip) {
  Machine m(sim::hector_config(4));
  const char msg[] = "hello hector";
  m.write_data(0x1234, msg, sizeof(msg));
  char got[sizeof(msg)] = {};
  m.read_data(0x1234, got, sizeof(got));
  EXPECT_STREQ(got, msg);
}

TEST(DataMemory, UntouchedReadsAsZero) {
  Machine m(sim::hector_config(4));
  char buf[16];
  std::memset(buf, 0xAB, sizeof(buf));
  m.read_data(0x99999, buf, sizeof(buf));
  for (char c : buf) EXPECT_EQ(c, 0);
  EXPECT_EQ(m.read_byte(0x55555), 0u);
}

TEST(DataMemory, CrossesPageBoundaries) {
  Machine m(sim::hector_config(4));
  std::vector<std::uint8_t> data(3 * kPageSize);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const SimAddr base = 5 * kPageSize - 100;  // straddles 4 pages
  m.write_data(base, data.data(), data.size());
  std::vector<std::uint8_t> got(data.size());
  m.read_data(base, got.data(), got.size());
  EXPECT_EQ(got, data);
}

TEST(DataMemory, OverwritePartial) {
  Machine m(sim::hector_config(4));
  m.write_data(0x100, "AAAAAAAA", 8);
  m.write_data(0x102, "bb", 2);
  char got[9] = {};
  m.read_data(0x100, got, 8);
  EXPECT_STREQ(got, "AAbbAAAA");
}

TEST(DataMemory, DistinctNodesDistinctContents) {
  Machine m(sim::hector_config(16));
  const SimAddr a0 = sim::node_base(0) + 0x40;
  const SimAddr a1 = sim::node_base(1) + 0x40;
  m.write_data(a0, "zero", 4);
  m.write_data(a1, "ones", 4);
  EXPECT_EQ(m.read_byte(a0), 'z');
  EXPECT_EQ(m.read_byte(a1), 'o');
}

}  // namespace
}  // namespace hppc::kernel
