// The node-local arena: allocation/alignment contracts, the hugepage-or-
// fallback policy (these tests MUST pass in CI containers with no
// hugetlbfs reservation — the fallback is the covered path, not an edge
// case), node clamping, and the gauge surface the runtime overlays into
// its counter snapshot.
#include "mem/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>
#include <set>

namespace hppc::mem {
namespace {

TEST(Arena, AllocationsAreAlignedAndWritable) {
  Arena arena;
  for (const std::size_t align : {8u, 64u, 256u, 4096u}) {
    void* p = arena.allocate(/*node=*/0, /*bytes=*/align * 2, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "requested alignment " << align;
    std::memset(p, 0xAB, align * 2);  // must be committed, not just mapped
  }
}

TEST(Arena, AllocationsAreDistinct) {
  Arena arena;
  std::set<void*> seen;
  for (int i = 0; i < 64; ++i) {
    void* p = arena.allocate(0, 128, 64);
    std::memset(p, i, 128);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(Arena, HugepageRequestAlwaysYieldsUsableMemory) {
  // The load-bearing fallback test: with use_hugepages on, the arena must
  // produce memory whether or not the system has a hugetlbfs reservation.
  // In the common CI container (nr_hugepages=0) MAP_HUGETLB fails and the
  // chunk falls back to 4 K pages; the stats must say which happened.
  ArenaConfig cfg;
  cfg.use_hugepages = true;
  Arena arena(cfg);
  void* p = arena.allocate(0, 1 << 16, 64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5C, 1 << 16);

  const ArenaStats s = arena.stats();
  EXPECT_GE(s.chunks, 1u);
  // Exactly one of the two outcomes, never neither: either the chunk is
  // hugepage-backed or the fallback was booked.
  if (s.hugepages == 0) {
    EXPECT_GT(s.hugepage_fallbacks, 0u)
        << "no hugepages and no booked fallback: the chunk came from nowhere";
    EXPECT_EQ(s.hugepage_bytes, 0u);
  } else {
    EXPECT_GT(s.hugepage_bytes, 0u);
  }
}

TEST(Arena, HugepagesOffNeverTriesOrBooks) {
  ArenaConfig cfg;
  cfg.use_hugepages = false;
  Arena arena(cfg);
  (void)arena.allocate(0, 4096, 64);
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.hugepages, 0u);
  EXPECT_EQ(s.hugepage_bytes, 0u);
  EXPECT_EQ(s.hugepage_fallbacks, 0u);  // off is not a fallback
}

TEST(Arena, StatsTrackReservationAndUse) {
  Arena arena;
  const ArenaStats before = arena.stats();
  (void)arena.allocate(0, 1000, 8);
  const ArenaStats after = arena.stats();
  EXPECT_GE(after.bytes_allocated, before.bytes_allocated + 1000);
  EXPECT_GE(after.bytes_reserved, after.bytes_allocated);
  EXPECT_GE(after.chunks, 1u);
}

TEST(Arena, GrowsBeyondOneChunk) {
  ArenaConfig cfg;
  cfg.chunk_bytes = 1 << 16;  // small chunks force growth
  cfg.use_hugepages = false;
  Arena arena(cfg);
  for (int i = 0; i < 8; ++i) {
    void* p = arena.allocate(0, 1 << 15, 64);
    std::memset(p, i, 1 << 15);
  }
  EXPECT_GE(arena.stats().chunks, 4u);
}

TEST(Arena, OutOfRangeNodeIsClamped) {
  Arena arena;
  // A node id past the detected pool count lands in a valid pool rather
  // than crashing — the runtime's slot striping may exceed the node count.
  void* p = arena.allocate(/*node=*/1000, 256, 64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, 256);
}

TEST(Arena, DetectNodesIsAtLeastOne) {
  EXPECT_GE(Arena::detect_nodes(), 1u);
  Arena arena;
  EXPECT_GE(arena.nodes(), 1u);
}

TEST(Arena, ExplicitNodeCountHonoured) {
  ArenaConfig cfg;
  cfg.nodes = 3;
  Arena arena(cfg);
  EXPECT_EQ(arena.nodes(), 3u);
  for (NodeId n = 0; n < 3; ++n) {
    void* p = arena.allocate(n, 64, 64);
    ASSERT_NE(p, nullptr);
    std::memset(p, n, 64);
  }
}

TEST(Arena, CreateConstructsInPlace) {
  struct Pod {
    std::uint64_t a;
    std::uint32_t b;
  };
  Arena arena;
  Pod* p = arena.create<Pod>(0, Pod{7, 9});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->a, 7u);
  EXPECT_EQ(p->b, 9u);

  Pod* arr = arena.create_array<Pod>(0, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(arr[i].a, 0u);  // value-initialised
    arr[i].a = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(arr[15].a, 15u);
}

TEST(Arena, ExternalModePlacesIntoCallerStorage) {
  // Segment-backed mode (what src/shm/ uses to lay out a mapped segment):
  // every allocation must land inside the caller's buffer, aligned, and
  // the destructor must not touch the storage.
  alignas(64) static std::byte storage[4096];
  std::memset(storage, 0, sizeof(storage));
  {
    Arena arena(storage, sizeof(storage));
    EXPECT_EQ(arena.nodes(), 1u);
    for (const std::size_t align : {8u, 64u, 256u}) {
      auto* p = static_cast<std::byte*>(arena.allocate(0, align, align));
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
      EXPECT_GE(p, storage);
      EXPECT_LE(p + align, storage + sizeof(storage));
      std::memset(p, 0xEE, align);
    }
    // Node ids are ignored (one pool): a wild node still lands in bounds.
    auto* q = static_cast<std::byte*>(arena.allocate(7, 64, 64));
    EXPECT_GE(q, storage);
    EXPECT_LT(q, storage + sizeof(storage));

    const ArenaStats s = arena.stats();
    EXPECT_EQ(s.bytes_reserved, sizeof(storage));
    EXPECT_EQ(s.chunks, 1u);
    EXPECT_EQ(s.hugepages, 0u);
  }
  // The arena is gone; the storage (and what was written) survives.
  EXPECT_EQ(storage[0], std::byte{0xEE});
}

TEST(Arena, ExternalModeRefusesGrowth) {
  alignas(64) std::byte storage[256];
  Arena arena(storage, sizeof(storage));
  (void)arena.allocate(0, 128, 64);
  // A fixed segment cannot grow: exhaustion throws instead of remapping.
  EXPECT_THROW((void)arena.allocate(0, 4096, 64), std::bad_alloc);
}

TEST(Arena, SingleNodeContainerReportsNoMismatches) {
  // Placement verification on the common CI box (one node, or no NUMA
  // syscalls at all) must report zero mismatches: an unverifiable page is
  // unknown, not wrong.
  Arena arena;
  (void)arena.allocate(0, 1 << 20, 64);
  EXPECT_EQ(arena.stats().node_mismatches, 0u);
}

}  // namespace
}  // namespace hppc::mem
