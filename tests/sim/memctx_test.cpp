#include "sim/memctx.h"

#include <gtest/gtest.h>

#include "sim/config.h"

namespace hppc::sim {
namespace {

MachineConfig cfg16() { return hector_config(16); }

TEST(MemContext, ChargeAdvancesClockAndLedger) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  m.charge(CostCategory::kPpcKernel, 100);
  EXPECT_EQ(m.now(), 100u);
  EXPECT_EQ(m.ledger().get(CostCategory::kPpcKernel), 100u);
  EXPECT_EQ(m.ledger().total(), 100u);
}

TEST(MemContext, LedgerConservation) {
  // Invariant: the sum of all categories equals the clock.
  MachineConfig mc = cfg16();
  MemContext m(mc, 3);
  m.load(node_base(0) + 0x100, 64, TlbContext::kSupervisor,
         CostCategory::kCdManipulation);
  m.store(node_base(1) + 0x200, 32, TlbContext::kUser,
          CostCategory::kServerTime);
  m.trap_roundtrip();
  m.tlb_flush_user();
  Cycles sum = 0;
  for (std::size_t c = 0; c < kNumCostCategories; ++c) {
    sum += m.ledger().get(static_cast<CostCategory>(c));
  }
  EXPECT_EQ(sum, m.now());
  EXPECT_EQ(sum, m.ledger().total());
}

TEST(MemContext, TlbMissesBookedSeparately) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  m.load(node_base(0) + kPageSize, 4, TlbContext::kUser,
         CostCategory::kServerTime);
  EXPECT_EQ(m.ledger().get(CostCategory::kTlbMiss), mc.tlb.miss_cycles);
  EXPECT_GT(m.ledger().get(CostCategory::kServerTime), 0u);
}

TEST(MemContext, RepeatAccessIsCheapHit) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  const SimAddr a = node_base(0) + 0x340;
  m.load(a, 4, TlbContext::kSupervisor, CostCategory::kPpcKernel);
  const Cycles after_first = m.now();
  m.load(a, 4, TlbContext::kSupervisor, CostCategory::kPpcKernel);
  EXPECT_EQ(m.now() - after_first, mc.dcache.costs.hit_cycles);
}

TEST(MemContext, MultiLineAccessTouchesEachLine) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  // 64 bytes spanning exactly 4 lines of 16 bytes.
  m.load(node_base(0) + 0x1000, 64, TlbContext::kSupervisor,
         CostCategory::kPpcKernel);
  EXPECT_EQ(m.dcache().misses(), 4u);
}

TEST(MemContext, NumaSurchargeScalesWithHops) {
  MachineConfig mc = cfg16();  // 4 stations on a ring
  MemContext m(mc, 0);         // node 0
  EXPECT_EQ(m.numa_surcharge(node_base(0)), 0u);
  EXPECT_EQ(m.numa_surcharge(node_base(1)), mc.numa_hop_cycles);
  EXPECT_EQ(m.numa_surcharge(node_base(2)), 2 * mc.numa_hop_cycles);
  EXPECT_EQ(m.numa_surcharge(node_base(3)), mc.numa_hop_cycles);  // ring
}

TEST(MemContext, RemoteMissPaysNuma) {
  MachineConfig mc = cfg16();
  MemContext local(mc, 0), remote(mc, 4);  // cpu4 = station 1
  const SimAddr a = node_base(0) + 0x500;
  local.load(a, 4, TlbContext::kSupervisor, CostCategory::kPpcKernel);
  remote.load(a, 4, TlbContext::kSupervisor, CostCategory::kPpcKernel);
  // Same access, remote pays one hop more (TLB misses are equal).
  const Cycles l = local.ledger().get(CostCategory::kPpcKernel);
  const Cycles r = remote.ledger().get(CostCategory::kPpcKernel);
  EXPECT_EQ(r - l, mc.numa_hop_cycles);
}

TEST(MemContext, UncachedAccessCost) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  m.access_uncached(node_base(0) + 8, CostCategory::kServerTime);
  EXPECT_EQ(m.now(), mc.uncached_local_cycles);
  m.access_uncached(node_base(1) + 8, CostCategory::kServerTime);
  EXPECT_EQ(m.now(),
            2 * mc.uncached_local_cycles + mc.numa_hop_cycles);
}

TEST(MemContext, ExecChargesInstructionsAndFills) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  CodeRegion code{node_base(0) + 0x2000, 16, TlbContext::kSupervisor};
  m.exec(code, CostCategory::kPpcKernel);
  const Cycles first = m.now();
  // 16 instructions = 64 bytes = 4 I-lines; cold cost > warm cost.
  m.exec(code, CostCategory::kPpcKernel);
  const Cycles second = m.now() - first;
  EXPECT_GT(first, second);
  EXPECT_EQ(second, 16u);  // warm: 1 cycle per instruction
}

TEST(MemContext, MappedAccessSplitsTlbAndCache) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  const SimAddr paddr = node_base(0) + 4 * kPageSize;
  const SimAddr vaddr = SimAddr{0xF0} << 40;
  m.access_mapped(paddr + 16, vaddr + 16, 8, true, TlbContext::kUser,
                  CostCategory::kServerTime);
  // Cache is physically indexed: the physical line is now resident.
  EXPECT_TRUE(m.dcache().resident(paddr + 16));
  // TLB is virtually indexed.
  EXPECT_TRUE(m.tlb().present(vaddr, TlbContext::kUser));
  EXPECT_FALSE(m.tlb().present(paddr, TlbContext::kUser));
}

TEST(MemContext, StackRecyclingKeepsPhysicalLinesHot) {
  // The paper's serial stack sharing: the same physical page mapped at a
  // different virtual address still hits in the (physical) cache.
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  const SimAddr page = node_base(0) + 64 * kPageSize;
  const SimAddr va1 = (SimAddr{0xF0} << 40);
  const SimAddr va2 = (SimAddr{0xF0} << 40) + 16 * kPageSize;
  m.access_mapped(page, va1, 32, true, TlbContext::kUser,
                  CostCategory::kServerTime);
  const auto misses_before = m.dcache().misses();
  m.access_mapped(page, va2, 32, true, TlbContext::kUser,
                  CostCategory::kServerTime);
  EXPECT_EQ(m.dcache().misses(), misses_before);  // all hits
}

TEST(MemContext, IdleUntilBooksIdleTime) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  m.charge(CostCategory::kPpcKernel, 50);
  m.idle_until(80);
  EXPECT_EQ(m.now(), 80u);
  EXPECT_EQ(m.ledger().get(CostCategory::kIdle), 30u);
  m.idle_until(10);  // no going backwards
  EXPECT_EQ(m.now(), 80u);
}

TEST(MemContext, TlbSetupOperations) {
  MachineConfig mc = cfg16();
  MemContext m(mc, 0);
  m.tlb_map_one(0x5000, TlbContext::kUser);
  EXPECT_EQ(m.ledger().get(CostCategory::kTlbSetup), mc.tlb_map_one_cycles);
  m.tlb().access(0x5000, TlbContext::kUser);
  m.tlb_unmap_one(0x5000, TlbContext::kUser);
  EXPECT_FALSE(m.tlb().present(0x5000, TlbContext::kUser));
}

}  // namespace
}  // namespace hppc::sim
