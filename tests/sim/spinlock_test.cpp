#include "sim/spinlock.h"

#include <gtest/gtest.h>

namespace hppc::sim {
namespace {

TEST(SimSpinLock, UncontendedAcquireIsCheap) {
  MachineConfig mc = hector_config(4);
  MemContext cpu(mc, 0);
  SimSpinLock lock(node_base(0) + 0x100);
  lock.acquire(cpu, CostCategory::kServerTime);
  EXPECT_EQ(cpu.ledger().get(CostCategory::kIdle), 0u);
  lock.release(cpu, CostCategory::kServerTime);
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.migrations(), 0u);
}

TEST(SimSpinLock, SameOwnerReacquireHasNoMigration) {
  MachineConfig mc = hector_config(4);
  MemContext cpu(mc, 0);
  SimSpinLock lock(node_base(0) + 0x100);
  for (int i = 0; i < 3; ++i) {
    lock.acquire(cpu, CostCategory::kServerTime);
    cpu.charge(CostCategory::kServerTime, 10);
    lock.release(cpu, CostCategory::kServerTime);
  }
  EXPECT_EQ(lock.migrations(), 0u);
}

TEST(SimSpinLock, ContenderSpinsUntilFree) {
  MachineConfig mc = hector_config(8);
  MemContext a(mc, 0), b(mc, 1);
  SimSpinLock lock(node_base(0) + 0x100);

  lock.acquire(a, CostCategory::kServerTime);
  a.charge(CostCategory::kServerTime, 500);  // long critical section
  lock.release(a, CostCategory::kServerTime);

  // b arrives earlier in time; must spin until a's release time.
  EXPECT_LT(b.now(), lock.free_at());
  lock.acquire(b, CostCategory::kServerTime);
  EXPECT_GE(b.now(), lock.free_at());
  EXPECT_GT(b.ledger().get(CostCategory::kIdle), 0u);
  EXPECT_EQ(lock.migrations(), 1u);
  EXPECT_EQ(lock.last_owner(), 1u);
}

TEST(SimSpinLock, NoSpinWhenArrivingAfterRelease) {
  MachineConfig mc = hector_config(8);
  MemContext a(mc, 0), b(mc, 1);
  SimSpinLock lock(node_base(0) + 0x100);

  lock.acquire(a, CostCategory::kServerTime);
  lock.release(a, CostCategory::kServerTime);

  b.charge(CostCategory::kServerTime, 10000);  // arrives much later
  lock.acquire(b, CostCategory::kServerTime);
  EXPECT_EQ(b.ledger().get(CostCategory::kIdle), 0u);
}

TEST(SimSpinLock, RemoteLockWordPaysNuma) {
  MachineConfig mc = hector_config(16);
  MemContext near(mc, 0), far(mc, 8);  // station 0 vs station 2
  SimSpinLock lock_near(node_base(0) + 0x100);
  SimSpinLock lock_far(node_base(0) + 0x200);

  lock_near.acquire(near, CostCategory::kServerTime);
  lock_far.acquire(far, CostCategory::kServerTime);
  // Far CPU pays hops on the uncached lock access.
  EXPECT_GT(far.now(), near.now());
}

TEST(SimSpinLock, TimelineIsMonotone) {
  MachineConfig mc = hector_config(4);
  MemContext cpus[4] = {MemContext(mc, 0), MemContext(mc, 1),
                        MemContext(mc, 2), MemContext(mc, 3)};
  SimSpinLock lock(node_base(0) + 0x40);
  Cycles last_free = 0;
  // Drive acquisitions in global-time order, like the engine does.
  for (int round = 0; round < 8; ++round) {
    int earliest = 0;
    for (int i = 1; i < 4; ++i) {
      if (cpus[i].now() < cpus[earliest].now()) earliest = i;
    }
    MemContext& c = cpus[earliest];
    lock.acquire(c, CostCategory::kServerTime);
    c.charge(CostCategory::kServerTime, 37);
    lock.release(c, CostCategory::kServerTime);
    EXPECT_GE(lock.free_at(), last_free);
    last_free = lock.free_at();
  }
  EXPECT_EQ(lock.acquisitions(), 8u);
}

}  // namespace
}  // namespace hppc::sim
