// TLB capacity behaviour: the 56-entry dual-context ATC thrashes when a
// working set exceeds it — a model-fidelity property the page-fault and
// stack-strategy costs depend on.
#include <gtest/gtest.h>

#include "sim/memctx.h"

namespace hppc::sim {
namespace {

TEST(TlbCapacity, WorkingSetWithinCapacityStopsMissing) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  // 40 pages < 56 entries: after one pass, all hits.
  for (int pass = 0; pass < 2; ++pass) {
    for (SimAddr p = 0; p < 40; ++p) {
      m.load(node_base(0) + (p + 1) * kPageSize, 4, TlbContext::kUser,
             CostCategory::kServerTime);
    }
  }
  const auto misses_after_warm = m.tlb().misses();
  for (SimAddr p = 0; p < 40; ++p) {
    m.load(node_base(0) + (p + 1) * kPageSize, 4, TlbContext::kUser,
           CostCategory::kServerTime);
  }
  EXPECT_EQ(m.tlb().misses(), misses_after_warm);
}

TEST(TlbCapacity, OversizedWorkingSetThrashes) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  // 80 pages > 56 entries with LRU and a sequential scan: every access
  // misses on every pass (the classic LRU worst case).
  const int kPages = 80;
  for (int pass = 0; pass < 3; ++pass) {
    for (SimAddr p = 0; p < kPages; ++p) {
      m.load(node_base(0) + (p + 1) * kPageSize, 4, TlbContext::kUser,
             CostCategory::kServerTime);
    }
  }
  EXPECT_EQ(m.tlb().misses(), 3u * kPages);
}

TEST(TlbCapacity, SupervisorEntriesCompeteForTheSameArray) {
  // One unified dual-context TLB: filling it from supervisor context also
  // evicts user entries (they share capacity, unlike the two *contexts*
  // which merely tag entries).
  MachineConfig mc = hector_config(1);
  mc.tlb.entries = 8;
  MemContext m(mc, 0);
  m.load(node_base(0) + kPageSize, 4, TlbContext::kUser,
         CostCategory::kServerTime);
  EXPECT_TRUE(m.tlb().present(node_base(0) + kPageSize, TlbContext::kUser));
  for (SimAddr p = 0; p < 8; ++p) {
    m.load(node_base(0) + (p + 10) * kPageSize, 4, TlbContext::kSupervisor,
           CostCategory::kPpcKernel);
  }
  EXPECT_FALSE(m.tlb().present(node_base(0) + kPageSize, TlbContext::kUser));
}

TEST(TlbCapacity, MissPenaltyChargedPerMiss) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  const int kPages = 10;
  for (SimAddr p = 0; p < kPages; ++p) {
    m.load(node_base(0) + (p + 1) * kPageSize, 4, TlbContext::kUser,
           CostCategory::kServerTime);
  }
  EXPECT_EQ(m.ledger().get(CostCategory::kTlbMiss),
            kPages * mc.tlb.miss_cycles);
}

}  // namespace
}  // namespace hppc::sim
