#include "sim/config.h"

#include <gtest/gtest.h>

#include "sim/addr.h"
#include "sim/cost.h"

namespace hppc::sim {
namespace {

TEST(MachineConfig, HectorDefaults) {
  MachineConfig mc = hector_config();
  EXPECT_EQ(mc.num_cpus, 16u);
  EXPECT_EQ(mc.cpus_per_station, 4u);
  EXPECT_EQ(mc.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(mc.clock_mhz, 16.67);
  EXPECT_EQ(mc.dcache.size_bytes, 16u * 1024);
  EXPECT_EQ(mc.dcache.line_bytes, 16u);
  EXPECT_EQ(mc.tlb.miss_cycles, 27u);
}

TEST(MachineConfig, CyclesMicrosecondConversion) {
  MachineConfig mc = hector_config();
  // The paper's 1.7 us trap is ~28 cycles at 16.67 MHz.
  EXPECT_NEAR(mc.us(mc.trap_roundtrip_cycles), 1.7, 0.05);
  EXPECT_EQ(mc.cycles_from_us(1.0), 17u);
  EXPECT_NEAR(mc.us(mc.cycles_from_us(10.0)), 10.0, 0.05);
}

TEST(MachineConfig, NodeOfCpu) {
  MachineConfig mc = hector_config();
  EXPECT_EQ(mc.node_of_cpu(0), 0u);
  EXPECT_EQ(mc.node_of_cpu(3), 0u);
  EXPECT_EQ(mc.node_of_cpu(4), 1u);
  EXPECT_EQ(mc.node_of_cpu(15), 3u);
}

TEST(MachineConfig, RingHops) {
  MachineConfig mc = hector_config();  // 4 stations
  EXPECT_EQ(mc.hops(0, 0), 0u);
  EXPECT_EQ(mc.hops(0, 1), 1u);
  EXPECT_EQ(mc.hops(0, 2), 2u);
  EXPECT_EQ(mc.hops(0, 3), 1u);  // shorter way round
  EXPECT_EQ(mc.hops(3, 0), 1u);
  EXPECT_EQ(mc.hops(1, 3), 2u);
}

TEST(MachineConfig, UnevenCpuCount) {
  MachineConfig mc = hector_config(6);
  EXPECT_EQ(mc.num_nodes(), 2u);
  EXPECT_EQ(mc.node_of_cpu(5), 1u);
}

TEST(SimAllocator, NodeLocalAllocation) {
  SimAllocator alloc(4);
  const SimAddr a0 = alloc.alloc(0, 64);
  const SimAddr a2 = alloc.alloc(2, 64);
  EXPECT_EQ(node_of_addr(a0), 0u);
  EXPECT_EQ(node_of_addr(a2), 2u);
}

TEST(SimAllocator, AlignmentHonored) {
  SimAllocator alloc(2);
  alloc.alloc(0, 7, 16);
  const SimAddr p = alloc.alloc_page(0);
  EXPECT_EQ(p & (kPageSize - 1), 0u);
  const SimAddr b = alloc.alloc(0, 10, 64);
  EXPECT_EQ(b & 63u, 0u);
}

TEST(SimAllocator, AllocationsDisjoint) {
  SimAllocator alloc(1);
  const SimAddr a = alloc.alloc(0, 100);
  const SimAddr b = alloc.alloc(0, 100);
  EXPECT_GE(b, a + 100);
}

TEST(SimAllocator, TracksUsage) {
  SimAllocator alloc(2);
  EXPECT_EQ(alloc.bytes_used(0), 0u);
  alloc.alloc(0, 256, 1);
  EXPECT_GE(alloc.bytes_used(0), 256u);
  EXPECT_EQ(alloc.bytes_used(1), 0u);
}

TEST(CostLedger, SinceComputesDelta) {
  CostLedger a;
  a.charge(CostCategory::kPpcKernel, 100);
  CostLedger snapshot = a;
  a.charge(CostCategory::kPpcKernel, 30);
  a.charge(CostCategory::kTlbMiss, 27);
  CostLedger d = a.since(snapshot);
  EXPECT_EQ(d.get(CostCategory::kPpcKernel), 30u);
  EXPECT_EQ(d.get(CostCategory::kTlbMiss), 27u);
  EXPECT_EQ(d.total(), 57u);
}

TEST(CostLedger, AccumulateAndReset) {
  CostLedger a, b;
  a.charge(CostCategory::kServerTime, 10);
  b.charge(CostCategory::kServerTime, 5);
  b.charge(CostCategory::kIdle, 7);
  a += b;
  EXPECT_EQ(a.get(CostCategory::kServerTime), 15u);
  EXPECT_EQ(a.total(), 22u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(CostCategory, AllNamed) {
  for (std::size_t c = 0; c < kNumCostCategories; ++c) {
    EXPECT_STRNE(to_string(static_cast<CostCategory>(c)), "?");
  }
}

}  // namespace
}  // namespace hppc::sim
