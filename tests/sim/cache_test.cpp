#include "sim/cache.h"

#include <gtest/gtest.h>

namespace hppc::sim {
namespace {

CacheConfig tiny_cache(std::size_t assoc = 2) {
  CacheConfig c;
  c.size_bytes = 256;  // 16 lines
  c.line_bytes = 16;
  c.associativity = assoc;
  return c;
}

TEST(CacheSim, MissThenHit) {
  CacheSim c(tiny_cache());
  auto r1 = c.access(0x100, false);
  EXPECT_TRUE(r1.miss);
  EXPECT_EQ(r1.cycles, 20u);
  auto r2 = c.access(0x100, false);
  EXPECT_FALSE(r2.miss);
  EXPECT_EQ(r2.cycles, 1u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheSim, SameLineDifferentOffsetHits) {
  CacheSim c(tiny_cache());
  c.access(0x100, false);
  EXPECT_FALSE(c.access(0x10F, false).miss);
  EXPECT_TRUE(c.access(0x110, false).miss);  // next line
}

TEST(CacheSim, FirstStoreToCleanLinePaysExtra) {
  CacheSim c(tiny_cache());
  c.access(0x200, false);                     // fill clean
  auto r = c.access(0x200, true);             // first store: +10
  EXPECT_EQ(r.cycles, 1u + 10u);
  auto r2 = c.access(0x200, true);            // already dirty: plain hit
  EXPECT_EQ(r2.cycles, 1u);
}

TEST(CacheSim, StoreMissFillsDirty) {
  CacheSim c(tiny_cache());
  auto r = c.access(0x300, true);
  EXPECT_TRUE(r.miss);
  EXPECT_EQ(r.cycles, 20u + 10u);  // fill + first store
}

TEST(CacheSim, DirtyEvictionPaysWriteback) {
  CacheConfig cfg = tiny_cache(/*assoc=*/1);  // direct-mapped: easy conflicts
  CacheSim c(cfg);
  const SimAddr a = 0x0;
  const SimAddr b = a + cfg.size_bytes;  // same set, different tag
  c.access(a, true);                     // dirty
  auto r = c.access(b, false);           // evicts dirty victim
  EXPECT_TRUE(r.miss);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_line, a);
  EXPECT_EQ(r.cycles, 20u + 20u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheSim, CleanEvictionHasNoWriteback) {
  CacheConfig cfg = tiny_cache(1);
  CacheSim c(cfg);
  c.access(0x0, false);
  auto r = c.access(cfg.size_bytes, false);
  EXPECT_TRUE(r.miss);
  EXPECT_FALSE(r.writeback);
}

TEST(CacheSim, LruVictimSelection) {
  CacheConfig cfg = tiny_cache(2);
  CacheSim c(cfg);
  const SimAddr set_stride = cfg.size_bytes / 2;  // sets*line = size/assoc
  const SimAddr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);        // a is MRU
  c.access(d, false);        // evicts b (LRU)
  EXPECT_TRUE(c.resident(a));
  EXPECT_FALSE(c.resident(b));
  EXPECT_TRUE(c.resident(d));
}

TEST(CacheSim, FlushAllInvalidatesEverything) {
  CacheSim c(tiny_cache());
  c.access(0x100, true);
  c.access(0x200, false);
  c.flush_all();
  EXPECT_FALSE(c.resident(0x100));
  EXPECT_FALSE(c.resident(0x200));
  // Flush discards dirty data: refill pays no writeback.
  auto r = c.access(0x100, false);
  EXPECT_TRUE(r.miss);
  EXPECT_FALSE(r.writeback);
}

TEST(CacheSim, InvalidateSingleLine) {
  CacheSim c(tiny_cache());
  c.access(0x100, true);
  EXPECT_TRUE(c.invalidate(0x100));   // was dirty
  EXPECT_FALSE(c.resident(0x100));
  EXPECT_FALSE(c.invalidate(0x100));  // second time: not present
}

TEST(CacheSim, DirtyAllMakesEvictionsPayWritebacks) {
  CacheConfig cfg = tiny_cache(1);
  CacheSim c(cfg);
  c.access(0x0, false);  // clean
  c.dirty_all();
  auto r = c.access(cfg.size_bytes, false);
  EXPECT_TRUE(r.writeback);
}

TEST(CacheSim, FillWithJunkEvictsPriorContents) {
  CacheConfig cfg = tiny_cache();
  CacheSim c(cfg);
  c.access(0x10, false);
  c.fill_with_junk(0x100000);
  EXPECT_FALSE(c.resident(0x10));
}

// Property: hits + misses == total accesses, for arbitrary access patterns.
class CacheAccountingProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheAccountingProperty, CountsAreConserved) {
  CacheConfig cfg = tiny_cache(GetParam());
  CacheSim c(cfg);
  std::uint64_t accesses = 0;
  std::uint64_t seed = 0x1234 + GetParam();
  for (int i = 0; i < 2000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const SimAddr a = (seed >> 20) % 4096;
    c.access(a, (seed & 1) != 0);
    ++accesses;
  }
  EXPECT_EQ(c.hits() + c.misses(), accesses);
  EXPECT_LE(c.writebacks(), c.misses());
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheAccountingProperty,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace hppc::sim
