#include "sim/tlb.h"

#include <gtest/gtest.h>

namespace hppc::sim {
namespace {

TlbConfig tiny_tlb(std::size_t entries = 4) {
  TlbConfig t;
  t.entries = entries;
  t.miss_cycles = 27;
  return t;
}

TEST(TlbSim, MissThenHit) {
  TlbSim t(tiny_tlb());
  auto r1 = t.access(0x1000, TlbContext::kUser);
  EXPECT_TRUE(r1.miss);
  EXPECT_EQ(r1.cycles, 27u);
  auto r2 = t.access(0x1FFF, TlbContext::kUser);  // same page
  EXPECT_FALSE(r2.miss);
  EXPECT_EQ(r2.cycles, 0u);
}

TEST(TlbSim, ContextsAreSeparate) {
  // The dual-context property: the same page number in user and supervisor
  // context occupies two distinct entries.
  TlbSim t(tiny_tlb());
  t.access(0x1000, TlbContext::kUser);
  auto r = t.access(0x1000, TlbContext::kSupervisor);
  EXPECT_TRUE(r.miss);
  EXPECT_TRUE(t.present(0x1000, TlbContext::kUser));
  EXPECT_TRUE(t.present(0x1000, TlbContext::kSupervisor));
}

TEST(TlbSim, FlushUserSparesSupervisor) {
  // This is what makes user->kernel PPC calls cheaper than user->user in
  // Figure 2.
  TlbSim t(tiny_tlb());
  t.access(0x1000, TlbContext::kUser);
  t.access(0x2000, TlbContext::kSupervisor);
  t.flush_user();
  EXPECT_FALSE(t.present(0x1000, TlbContext::kUser));
  EXPECT_TRUE(t.present(0x2000, TlbContext::kSupervisor));
}

TEST(TlbSim, InvalidateSingleTranslation) {
  TlbSim t(tiny_tlb());
  t.access(0x1000, TlbContext::kUser);
  t.access(0x2000, TlbContext::kUser);
  t.invalidate(0x1800, TlbContext::kUser);  // same page as 0x1000
  EXPECT_FALSE(t.present(0x1000, TlbContext::kUser));
  EXPECT_TRUE(t.present(0x2000, TlbContext::kUser));
}

TEST(TlbSim, LruReplacementWhenFull) {
  TlbSim t(tiny_tlb(2));
  t.access(0x1000, TlbContext::kUser);
  t.access(0x2000, TlbContext::kUser);
  t.access(0x1000, TlbContext::kUser);  // refresh
  t.access(0x3000, TlbContext::kUser);  // evicts 0x2000
  EXPECT_TRUE(t.present(0x1000, TlbContext::kUser));
  EXPECT_FALSE(t.present(0x2000, TlbContext::kUser));
  EXPECT_TRUE(t.present(0x3000, TlbContext::kUser));
}

TEST(TlbSim, FlushAll) {
  TlbSim t(tiny_tlb());
  t.access(0x1000, TlbContext::kUser);
  t.access(0x2000, TlbContext::kSupervisor);
  t.flush_all();
  EXPECT_FALSE(t.present(0x1000, TlbContext::kUser));
  EXPECT_FALSE(t.present(0x2000, TlbContext::kSupervisor));
}

TEST(TlbSim, HitMissCountsConserved) {
  TlbSim t(tiny_tlb(8));
  for (int i = 0; i < 500; ++i) {
    t.access(static_cast<SimAddr>(i % 13) << kPageShift,
             (i % 3 == 0) ? TlbContext::kSupervisor : TlbContext::kUser);
  }
  EXPECT_EQ(t.hits() + t.misses(), 500u);
}

}  // namespace
}  // namespace hppc::sim
