// The trace hook: every charged cycle is observable, in order, and the
// trace totals reconcile with the ledger (the guarantee bench/call_trace
// relies on).
#include <gtest/gtest.h>

#include <vector>

#include "sim/memctx.h"

namespace hppc::sim {
namespace {

TEST(Trace, ObservesChargesInOrder) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  std::vector<std::pair<CostCategory, Cycles>> events;
  m.set_trace([&](CostCategory c, Cycles cy, Cycles) {
    events.emplace_back(c, cy);
  });
  m.charge(CostCategory::kPpcKernel, 10);
  m.trap_roundtrip();
  m.charge(CostCategory::kServerTime, 5);
  m.clear_trace();
  m.charge(CostCategory::kServerTime, 99);  // not traced

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(CostCategory::kPpcKernel, Cycles{10}));
  EXPECT_EQ(events[1],
            std::make_pair(CostCategory::kTrapOverhead,
                           mc.trap_roundtrip_cycles));
  EXPECT_EQ(events[2], std::make_pair(CostCategory::kServerTime, Cycles{5}));
}

TEST(Trace, ClockAfterIsMonotoneAndMatchesSums) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  Cycles last_clock = 0;
  Cycles traced_total = 0;
  m.set_trace([&](CostCategory, Cycles cy, Cycles clock_after) {
    EXPECT_GE(clock_after, last_clock);
    last_clock = clock_after;
    traced_total += cy;
  });
  // A workload with every kind of charge.
  m.load(node_base(0) + 0x100, 64, TlbContext::kSupervisor,
         CostCategory::kCdManipulation);
  m.store(node_base(0) + kPageSize, 16, TlbContext::kUser,
          CostCategory::kServerTime);
  m.tlb_flush_user();
  m.access_uncached(node_base(0) + 8, CostCategory::kPpcKernel);
  m.exec({node_base(0) + 0x4000, 20, TlbContext::kSupervisor},
         CostCategory::kPpcKernel);
  m.idle_until(m.now() + 100);

  EXPECT_EQ(traced_total, m.now());
  EXPECT_EQ(traced_total, m.ledger().total());
}

TEST(Trace, IdleChargesAreTraced) {
  MachineConfig mc = hector_config(1);
  MemContext m(mc, 0);
  bool saw_idle = false;
  m.set_trace([&](CostCategory c, Cycles, Cycles) {
    if (c == CostCategory::kIdle) saw_idle = true;
  });
  m.idle_until(500);
  EXPECT_TRUE(saw_idle);
}

}  // namespace
}  // namespace hppc::sim
