// The pre-existing message-passing facility (§5): send/receive/reply
// semantics, rendezvous in both orders, cross-processor routing, and the
// single-threaded-server serialization it implies.
#include "msg/msg_facility.h"

#include <gtest/gtest.h>

namespace hppc::msg {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::RegSet;
using ppc::set_op;
using ppc::set_rc;

struct Fixture {
  Fixture() : machine(sim::hector_config(8)), msgs(machine) {}

  Process& make_process(ProgramId prog, CpuId cpu, const char* name) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, name,
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  MsgFacility msgs;
};

TEST(MsgFacility, SendThenReceiveRendezvous) {
  // Sender first: the message queues; the receiver picks it up.
  Fixture f;
  Process& server = f.make_process(700, 2, "server");
  Process& client = f.make_process(100, 0, "client");

  Status reply_status = Status::kServerError;
  Word reply_word = 0;
  bool sent = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (sent) return;
    sent = true;
    RegSet regs;
    regs[0] = 41;
    set_op(regs, 1);
    f.msgs.send(cpu, self, server.pid(), regs,
                [&](Status s, RegSet& r) {
                  reply_status = s;
                  reply_word = r[0];
                });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();

  // Now the server receives (message already queued: inline delivery).
  bool got = false;
  server.set_body([&](Cpu& cpu, Process& self) {
    const bool immediate =
        f.msgs.receive(cpu, self, [&](Pid from, RegSet& m) {
          got = true;
          RegSet reply = m;
          reply[0] = m[0] + 1;
          set_rc(reply, Status::kOk);
          f.msgs.reply(cpu, self, from, reply);
        });
    EXPECT_TRUE(immediate);
  });
  f.machine.ready(f.machine.cpu(2), server);
  f.machine.run_until_idle();

  EXPECT_TRUE(got);
  EXPECT_EQ(reply_status, Status::kOk);
  EXPECT_EQ(reply_word, 42u);
  EXPECT_EQ(f.msgs.messages(), 1u);
}

TEST(MsgFacility, ReceiveThenSendRendezvous) {
  // Receiver first: it blocks; the send wakes it on its own processor.
  Fixture f;
  Process& server = f.make_process(700, 3, "server");
  Process& client = f.make_process(100, 1, "client");

  CpuId served_on = 999;
  bool waiting_path = true;
  server.set_body([&](Cpu& cpu, Process& self) {
    waiting_path = !f.msgs.receive(cpu, self, [&](Pid from, RegSet& m) {
      served_on = f.machine.cpu(3).id();
      RegSet reply = m;
      set_rc(reply, Status::kOk);
      f.msgs.reply(f.machine.cpu(3), self, from, reply);
    });
  });
  f.machine.ready(f.machine.cpu(3), server);
  f.machine.run_until_idle();
  EXPECT_TRUE(waiting_path);  // queue was empty: it blocked

  Status done = Status::kServerError;
  bool sent = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (sent) return;
    sent = true;
    RegSet regs;
    set_op(regs, 1);
    f.msgs.send(cpu, self, server.pid(), regs,
                [&](Status s, RegSet&) { done = s; });
  });
  f.machine.ready(f.machine.cpu(1), client);
  f.machine.run_until_idle();

  EXPECT_EQ(done, Status::kOk);
  EXPECT_EQ(served_on, 3u);  // handled on the receiver's processor
}

TEST(MsgFacility, ReplyToUnknownSenderRejected) {
  Fixture f;
  Process& server = f.make_process(700, 0, "server");
  RegSet regs;
  EXPECT_EQ(f.msgs.reply(f.machine.cpu(0), server, 12345, regs),
            Status::kInvalidArgument);
}

TEST(MsgFacility, ServerLoopDrainsQueuedSenders) {
  // Three clients send before the server ever receives; a classic
  // receive-inside-handler loop serves them all in order.
  Fixture f;
  Process& server = f.make_process(700, 4, "server");
  std::vector<Word> replies;
  for (int i = 0; i < 3; ++i) {
    Process& client = f.make_process(100 + i, i, "client");
    bool sent = false;
    client.set_body([&, i, sent](Cpu& cpu, Process& self) mutable {
      if (sent) return;
      sent = true;
      RegSet regs;
      regs[0] = static_cast<Word>(i);
      set_op(regs, 1);
      f.msgs.send(cpu, self, server.pid(), regs,
                  [&](Status, RegSet& r) { replies.push_back(r[0]); });
    });
    f.machine.ready(f.machine.cpu(i), client);
  }
  f.machine.run_until_idle();

  // The server's handler re-arms receive from within itself.
  std::function<void(Pid, RegSet&)> loop;
  Process* sp = &server;
  loop = [&](Pid from, RegSet& m) {
    Cpu& scpu = f.machine.cpu(4);
    RegSet reply = m;
    reply[0] = m[0] * 10;
    set_rc(reply, Status::kOk);
    f.msgs.reply(scpu, *sp, from, reply);
    f.msgs.receive(scpu, *sp, loop);
  };
  server.set_body([&](Cpu& cpu, Process& self) {
    f.msgs.receive(cpu, self, loop);
  });
  f.machine.ready(f.machine.cpu(4), server);
  f.machine.run_until_idle();

  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0], 0u);
  EXPECT_EQ(replies[1], 10u);
  EXPECT_EQ(replies[2], 20u);
}

TEST(MsgFacility, QueueLockSeesContention) {
  Fixture f;
  Process& server = f.make_process(700, 0, "server");
  for (int i = 0; i < 4; ++i) {
    Process& client = f.make_process(100 + i, 1 + i, "client");
    bool sent = false;
    client.set_body([&, sent](Cpu& cpu, Process& self) mutable {
      if (sent) return;
      sent = true;
      RegSet regs;
      set_op(regs, 1);
      f.msgs.send(cpu, self, server.pid(), regs, nullptr);
    });
    f.machine.ready(f.machine.cpu(1 + i), client);
  }
  f.machine.run_until_idle();
  EXPECT_GT(f.msgs.queue_lock_migrations(), 0u);
  EXPECT_EQ(f.msgs.messages(), 4u);
}

}  // namespace
}  // namespace hppc::msg
