// The PPC <-> message gateway (§5's integration): PPC clients call a
// legacy single-threaded receive/reply server transparently.
#include "msg/gateway.h"

#include <gtest/gtest.h>

namespace hppc::msg {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;
using ppc::set_op;
using ppc::set_rc;

struct Fixture {
  Fixture()
      : machine(sim::hector_config(8)),
        ppc(machine),
        msgs(machine),
        legacy_as(machine.create_address_space(800, 1)),
        legacy(machine.create_process(800, &legacy_as, "legacy", 1)),
        gateway(ppc, msgs, legacy.pid(), "legacy-svc") {
    // The legacy server: a classic single-threaded receive/reply loop on
    // CPU 4, incrementing w[0].
    loop_ = [this](Pid from, RegSet& m) {
      Cpu& scpu = machine.cpu(4);
      RegSet reply = m;
      reply[0] = m[0] + 1;
      set_rc(reply, Status::kOk);
      msgs.reply(scpu, legacy, from, reply);
      msgs.receive(scpu, legacy, loop_);
    };
    legacy.set_body([this](Cpu& cpu, Process& self) {
      msgs.receive(cpu, self, loop_);
    });
    machine.ready(machine.cpu(4), legacy);
    machine.run_until_idle();  // server parks in receive
  }

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  MsgFacility msgs;
  kernel::AddressSpace& legacy_as;
  Process& legacy;
  PpcMsgGateway gateway;
  std::function<void(Pid, RegSet&)> loop_;
};

TEST(Gateway, PpcCallReachesLegacyServer) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  Status done = Status::kServerError;
  Word result = 0;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    regs[0] = 41;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, f.gateway.ep(), regs,
                        [&](Status s, RegSet& out) {
                          done = s;
                          result = out[0];
                        });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();

  EXPECT_EQ(done, Status::kOk);
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(f.gateway.forwarded(), 1u);
  EXPECT_EQ(f.msgs.messages(), 1u);
}

TEST(Gateway, ManyClientsSerializeOnTheLegacyServer) {
  Fixture f;
  constexpr int kClients = 4;
  int completions = 0;
  std::vector<Word> results(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    Process& client = f.make_client(100 + i, i);
    bool issued = false;
    client.set_body([&, i, issued](Cpu& cpu, Process& self) mutable {
      if (issued) return;
      issued = true;
      RegSet regs;
      regs[0] = static_cast<Word>(100 * i);
      set_op(regs, 1);
      f.ppc.call_blocking(cpu, self, f.gateway.ep(), regs,
                          [&, i](Status s, RegSet& out) {
                            if (s == Status::kOk) {
                              results[i] = out[0];
                              ++completions;
                            }
                          });
    });
    f.machine.ready(f.machine.cpu(i), client);
  }
  f.machine.run_until_idle();

  EXPECT_EQ(completions, kClients);
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(results[i], 100u * i + 1) << "client " << i;
  }
  // All requests flowed through the one legacy process.
  EXPECT_EQ(f.msgs.messages(), static_cast<std::uint64_t>(kClients));
}

TEST(Gateway, LegacyWorkHappensOnTheServersCpu) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  const Cycles server_before = f.machine.cpu(4).now();
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, f.gateway.ep(), regs,
                        [](Status, RegSet&) {});
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  // Unlike a PPC service, a gatewayed legacy call consumes cycles on the
  // server's dedicated processor.
  EXPECT_GT(f.machine.cpu(4).now(), server_before);
}

}  // namespace
}  // namespace hppc::msg
