// Death and destruction (§4.5.2): soft-kill drains, hard-kill aborts and
// reclaims per-processor resources by interrupting each processor, and
// Exchange supports on-line replacement of a server.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;

struct Fixture {
  Fixture(std::uint32_t cpus = 4)
      : machine(sim::hector_config(cpus)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  EntryPointId bind_null() {
    auto* as = &machine.create_address_space(700, 0);
    return ppc.bind({}, as, 700, [](ServerCtx&, RegSet& regs) {
      set_rc(regs, Status::kOk);
    });
  }

  Machine machine;
  PpcFacility ppc;
};

TEST(SoftKill, RejectsNewCalls) {
  Fixture f;
  const EntryPointId ep = f.bind_null();
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, ep, regs), Status::kOk);

  ASSERT_EQ(f.ppc.soft_kill(f.machine.cpu(0), ep), Status::kOk);
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, ep, regs),
            Status::kNoSuchEntryPoint);  // fully drained: slot already dead
}

TEST(SoftKill, InFlightCallCompletes) {
  // "a soft-kill ... allows calls in progress to complete"
  Fixture f;
  Worker* blocked = nullptr;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet&) {
        blocked = &ctx.worker();
        ctx.block_call(
            [](ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
      });
  Process& client = f.make_client(100, 0);
  Status final_status = Status::kServerError;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, ep, regs,
                        [&](Status s, RegSet&) { final_status = s; });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  ASSERT_NE(blocked, nullptr);

  // Soft-kill while the call is in flight: EP drains, not dead yet.
  EXPECT_EQ(f.ppc.soft_kill(f.machine.cpu(1), ep), Status::kOk);
  EXPECT_EQ(f.ppc.entry_point(ep)->state(), EpState::kDraining);

  // New calls are refused while draining.
  Process& other = f.make_client(101, 1);
  RegSet regs;
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(1), other, ep, regs),
            Status::kEntryPointDraining);

  // Completion finishes the drain.
  f.machine.post_event(0, f.machine.cpu(0).now() + 100,
                       [&](Cpu& cpu) { f.ppc.resume_worker(cpu, *blocked); });
  f.machine.run_until_idle();
  EXPECT_EQ(final_status, Status::kOk);
  EXPECT_EQ(f.ppc.entry_point(ep)->state(), EpState::kDead);
}

TEST(SoftKill, UnknownEntryPoint) {
  Fixture f;
  EXPECT_EQ(f.ppc.soft_kill(f.machine.cpu(0), 999),
            Status::kNoSuchEntryPoint);
}

TEST(HardKill, ClearsEveryProcessorsTableViaIpis) {
  Fixture f(4);
  const EntryPointId ep = f.bind_null();
  RegSet regs;
  // Warm pools on several CPUs so there is per-CPU state to reclaim.
  for (CpuId c = 0; c < 4; ++c) {
    Process& cl = f.make_client(200 + c, c);
    set_op(regs, 1);
    f.ppc.call(f.machine.cpu(c), cl, ep, regs);
  }
  EXPECT_EQ(f.ppc.entry_point(ep)->total_workers_created(), 4u);

  ASSERT_EQ(f.ppc.hard_kill(f.machine.cpu(0), ep), Status::kOk);
  // The killing CPU cleaned up locally at once; remote CPUs need their IPIs
  // delivered.
  f.machine.run_until_idle();

  for (CpuId c = 0; c < 4; ++c) {
    EXPECT_EQ(f.ppc.state(f.machine.cpu(c)).service_table[ep], nullptr);
    EXPECT_EQ(f.ppc.pooled_workers(c, ep), 0u);
  }
  Process& client = f.make_client(300, 1);
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(1), client, ep, regs),
            Status::kNoSuchEntryPoint);
}

TEST(HardKill, AbortsBlockedCallWithStatus) {
  // "The hard-kill frees all resources and aborts any calls in progress."
  Fixture f;
  Worker* blocked = nullptr;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet&) {
        blocked = &ctx.worker();
        ctx.block_call(
            [](ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
      });
  Process& client = f.make_client(100, 0);
  Status final_status = Status::kOk;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, ep, regs,
                        [&](Status s, RegSet&) { final_status = s; });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  ASSERT_NE(blocked, nullptr);

  ASSERT_EQ(f.ppc.hard_kill(f.machine.cpu(0), ep), Status::kOk);
  f.machine.run_until_idle();
  EXPECT_EQ(final_status, Status::kCallAborted);
  EXPECT_EQ(f.ppc.entry_point(ep)->total_in_progress(), 0u);
}

TEST(HardKill, Twice) {
  Fixture f;
  const EntryPointId ep = f.bind_null();
  EXPECT_EQ(f.ppc.hard_kill(f.machine.cpu(0), ep), Status::kOk);
  f.machine.run_until_idle();
  EXPECT_EQ(f.ppc.hard_kill(f.machine.cpu(0), ep),
            Status::kNoSuchEntryPoint);
}

TEST(Exchange, ReplacesHandlerForNewCalls) {
  // §4.5.2: soft-kill "in conjunction with an Exchange call, allowing
  // on-line replacement of executing servers".
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep = f.ppc.bind({}, as, 700,
                                     [](ServerCtx&, RegSet& regs) {
                                       regs[0] = 1;  // version 1
                                       set_rc(regs, Status::kOk);
                                     });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EXPECT_EQ(regs[0], 1u);

  ASSERT_EQ(f.ppc.exchange(f.machine.cpu(0), ep,
                           [](ServerCtx&, RegSet& r) {
                             r[0] = 2;  // version 2
                             set_rc(r, Status::kOk);
                           }),
            Status::kOk);
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EXPECT_EQ(regs[0], 2u);

  EXPECT_EQ(f.ppc.exchange(f.machine.cpu(0), 999, nullptr),
            Status::kNoSuchEntryPoint);
}

TEST(EntryPoints, IdReuseAfterDeath) {
  Fixture f;
  const EntryPointId ep = f.bind_null();
  f.ppc.hard_kill(f.machine.cpu(0), ep);
  f.machine.run_until_idle();
  // Binding again may reuse the dead slot; either way calls must route to
  // the new service.
  auto* as = &f.machine.create_address_space(701, 0);
  const EntryPointId ep2 = f.ppc.bind({}, as, 701,
                                      [](ServerCtx&, RegSet& regs) {
                                        regs[0] = 77;
                                        set_rc(regs, Status::kOk);
                                      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, ep2, regs), Status::kOk);
  EXPECT_EQ(regs[0], 77u);
}

}  // namespace
}  // namespace hppc::ppc
