// Frank (§4.5.6): the kernel-level resource manager with a well-known
// entry point. Entry points are allocated/deallocated with PPC calls to
// Frank; calls that fail for lack of resources are redirected to him.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;

struct Fixture {
  Fixture() : machine(sim::hector_config(4)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
};

TEST(Frank, IsBoundAtWellKnownEntryPoint) {
  Fixture f;
  EntryPoint* frank = f.ppc.entry_point(kFrankEp);
  ASSERT_NE(frank, nullptr);
  EXPECT_TRUE(frank->address_space()->supervisor());
  EXPECT_TRUE(frank->config().hold_cd);  // resources preallocated
}

TEST(Frank, AllocEpThroughPpcCall) {
  // The paper's service-creation flow: stage a bind, then PPC-call Frank
  // with kFrankAllocEp; the new EP id comes back in w[0].
  Fixture f;
  auto* as = &f.machine.create_address_space(123, 0);
  const std::uint32_t token = f.ppc.prepare_bind(
      {.name = "svc"}, as, /*program=*/123,
      [](ServerCtx&, RegSet& regs) {
        regs[0] = 0xAB;
        set_rc(regs, Status::kOk);
      });

  Process& client = f.make_client(123, 0);
  RegSet regs;
  regs[0] = token;
  set_op(regs, kFrankAllocEp);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs),
            Status::kOk);
  const EntryPointId new_ep = regs[0];
  EXPECT_GE(new_ep, kFirstDynamicEp);

  // The new service answers.
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, new_ep, regs), Status::kOk);
  EXPECT_EQ(regs[0], 0xABu);
}

TEST(Frank, AllocEpRejectsBadToken) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  regs[0] = 0xFFFF;  // never staged
  set_op(regs, kFrankAllocEp);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs),
            Status::kInvalidArgument);
}

TEST(Frank, AllocEpRejectsWrongProgram) {
  // §4.1: authentication by program id, performed by the server itself.
  Fixture f;
  auto* as = &f.machine.create_address_space(123, 0);
  const std::uint32_t token =
      f.ppc.prepare_bind({}, as, /*program=*/123,
                         [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& impostor = f.make_client(/*different program*/ 666, 0);
  RegSet regs;
  regs[0] = token;
  set_op(regs, kFrankAllocEp);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), impostor, kFrankEp, regs),
            Status::kPermissionDenied);
}

TEST(Frank, SoftAndHardKillViaPpc) {
  Fixture f;
  auto* as = &f.machine.create_address_space(123, 0);
  const std::uint32_t token =
      f.ppc.prepare_bind({}, as, 123,
                         [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& client = f.make_client(123, 0);
  RegSet regs;
  regs[0] = token;
  set_op(regs, kFrankAllocEp);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs), Status::kOk);
  const EntryPointId ep = regs[0];

  regs[0] = ep;
  set_op(regs, kFrankSoftKill);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs), Status::kOk);
  EXPECT_EQ(f.ppc.entry_point(ep)->state(), EpState::kDead);  // was idle

  regs[0] = ep;
  set_op(regs, kFrankHardKill);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs),
            Status::kNoSuchEntryPoint);  // already gone
}

TEST(Frank, StatsOp) {
  Fixture f;
  auto* as = &f.machine.create_address_space(123, 0);
  const EntryPointId ep = f.ppc.bind(
      {}, as, 123, [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& client = f.make_client(123, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);

  regs[0] = ep;
  set_op(regs, kFrankStats);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs), Status::kOk);
  EXPECT_EQ(regs[0], 1u);  // one worker created
  EXPECT_EQ(regs[1], 0u);  // none in flight
}

TEST(Frank, TrimPoolsOp) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, kFrankTrimPools);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs), Status::kOk);
}

TEST(Frank, UnknownOpcode) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 0xEE);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, kFrankEp, regs),
            Status::kInvalidArgument);
}

TEST(Frank, CdPoolRefillSlowPath) {
  // Exhaust the per-CPU CD pool by holding CDs captive in workers, then
  // verify the next call is redirected to Frank for a fresh CD.
  Fixture f;
  // Bind several hold-CD services: each worker permanently captures a CD.
  std::vector<EntryPointId> eps;
  for (int i = 0; i < 3; ++i) {
    auto* as = &f.machine.create_address_space(800 + i, 0);
    EntryPointConfig cfg;
    cfg.hold_cd = true;
    eps.push_back(f.ppc.bind(cfg, as, 800 + i, [](ServerCtx&, RegSet& r) {
      set_rc(r, Status::kOk);
    }));
  }
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  auto& counters = cpu.counters();
  const auto refills_before = counters.get(obs::Counter::kFrankCdRefills);
  for (EntryPointId ep : eps) {
    set_op(regs, 1);
    ASSERT_EQ(f.ppc.call(cpu, client, ep, regs), Status::kOk);
  }
  // Every held CD was freshly created (the pool starts empty).
  EXPECT_GE(counters.get(obs::Counter::kFrankCdRefills) +
                counters.get(obs::Counter::kCdsCreated),
            refills_before + eps.size());
  EXPECT_EQ(f.ppc.entry_point(eps[0])->total_in_progress(), 0u);
}

TEST(Frank, WorkerRefillCostIsOnSlowPathOnly) {
  Fixture f;
  auto* as = &f.machine.create_address_space(123, 0);
  const EntryPointId ep = f.ppc.bind(
      {}, as, 123, [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& client = f.make_client(123, 0);
  Cpu& cpu = f.machine.cpu(0);

  RegSet regs;
  set_op(regs, 1);
  const Cycles t0 = cpu.now();
  f.ppc.call(cpu, client, ep, regs);  // slow: creates worker (+ CD)
  const Cycles first = cpu.now() - t0;

  for (int i = 0; i < 4; ++i) {
    set_op(regs, 1);
    f.ppc.call(cpu, client, ep, regs);
  }
  const Cycles t1 = cpu.now();
  set_op(regs, 1);
  f.ppc.call(cpu, client, ep, regs);  // warm
  const Cycles warm = cpu.now() - t1;

  EXPECT_GT(first, warm + f.ppc.calibration().worker_create_cycles / 2);
}

}  // namespace
}  // namespace hppc::ppc
