// Stack-size strategies (§4.5.4): one page by default, fixed multiples per
// service, and lazily-faulted growth.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;

struct Fixture {
  Fixture() : machine(sim::hector_config(4)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
};

TEST(StackSinglePage, AccessWithinPageWorks) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  std::uint32_t pages_seen = 0;
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        ctx.touch_stack(64, 32, /*is_store=*/true);
        ctx.touch_stack(kPageSize - 64, 32, /*is_store=*/false);
        pages_seen = ctx.worker().mapped_stack_pages();
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, ep, regs), Status::kOk);
  EXPECT_EQ(pages_seen, 1u);
}

TEST(StackSinglePageDeathTest, OverflowAsserts) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        ctx.touch_stack(kPageSize + 8, 8, true);  // beyond the single page
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  EXPECT_DEATH(f.ppc.call(f.machine.cpu(0), client, ep, regs),
               "stack overflow");
}

TEST(StackFixedMultiple, AllPagesMappedUpFront) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointConfig cfg;
  cfg.stack_strategy = StackStrategy::kFixedMultiple;
  cfg.stack_pages = 3;
  std::uint32_t pages_seen = 0;
  const EntryPointId ep =
      f.ppc.bind(cfg, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        pages_seen = ctx.worker().mapped_stack_pages();
        ctx.touch_stack(2 * kPageSize + 100, 16, true);  // no fault needed
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, ep, regs), Status::kOk);
  EXPECT_EQ(pages_seen, 3u);
  // All pages unmapped again after the call (the server space holds no
  // stack mappings at all between calls).
  EntryPoint* e = f.ppc.entry_point(ep);
  EXPECT_EQ(e->address_space()->page_count(), 0u);
  // The extra pages went back to the per-CPU list for reuse.
  EXPECT_EQ(e->per_cpu(0).extra_stack_pages.size(), 2u);
}

TEST(StackFixedMultiple, ExtraPagesReusedAcrossCalls) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointConfig cfg;
  cfg.stack_strategy = StackStrategy::kFixedMultiple;
  cfg.stack_pages = 2;
  const EntryPointId ep = f.ppc.bind(
      cfg, as, 700, [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EntryPoint* e = f.ppc.entry_point(ep);
  const auto pages_after_first = e->per_cpu(0).extra_stack_pages;
  ASSERT_EQ(pages_after_first.size(), 1u);
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  // Same physical page came back: no new allocation.
  ASSERT_EQ(e->per_cpu(0).extra_stack_pages.size(), 1u);
  EXPECT_EQ(e->per_cpu(0).extra_stack_pages[0], pages_after_first[0]);
}

TEST(StackLazyFault, GrowsOnDemandAndShrinksAfter) {
  // "Accesses beyond the first page would result in a page fault ...
  //  keep[ing] the common case fast and only penaliz[ing] those servers
  //  that require the extra space."
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointConfig cfg;
  cfg.stack_strategy = StackStrategy::kLazyFault;
  cfg.stack_pages = 4;  // virtual reservation
  bool deep = false;
  std::uint32_t pages_small = 0, pages_deep = 0;
  const EntryPointId ep =
      f.ppc.bind(cfg, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        if (deep) {
          ctx.touch_stack(3 * kPageSize + 16, 16, true);  // fault 3 pages in
          pages_deep = ctx.worker().mapped_stack_pages();
        } else {
          ctx.touch_stack(16, 16, true);
          pages_small = ctx.worker().mapped_stack_pages();
        }
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;

  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(cpu, client, ep, regs), Status::kOk);
  EXPECT_EQ(pages_small, 1u);  // common case: no growth

  deep = true;
  const Cycles before = cpu.now();
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(cpu, client, ep, regs), Status::kOk);
  EXPECT_EQ(pages_deep, 4u);  // faulted up to the touched page
  const Cycles deep_cost = cpu.now() - before;

  // The extra pages were returned at call end...
  EntryPoint* e = f.ppc.entry_point(ep);
  EXPECT_EQ(e->per_cpu(0).extra_stack_pages.size(), 3u);
  // ...and the shallow path stays fast afterwards.
  deep = false;
  const Cycles b2 = cpu.now();
  set_op(regs, 1);
  f.ppc.call(cpu, client, ep, regs);
  EXPECT_LT(cpu.now() - b2, deep_cost);
}

TEST(StackLazyFaultDeathTest, BeyondReservationAsserts) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointConfig cfg;
  cfg.stack_strategy = StackStrategy::kLazyFault;
  cfg.stack_pages = 2;
  const EntryPointId ep =
      f.ppc.bind(cfg, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        ctx.touch_stack(2 * kPageSize + 8, 8, true);  // beyond reservation
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  EXPECT_DEATH(f.ppc.call(f.machine.cpu(0), client, ep, regs),
               "stack overflow");
}

TEST(StackSharing, SuccessiveServersShareThePhysicalStackPage) {
  // §2: "multiple servers called in succession may share a single CD and
  // stack" — the serial sharing that shrinks the combined cache footprint.
  Fixture f;
  SimAddr page_a = 0, page_b = 0;
  auto* as_a = &f.machine.create_address_space(700, 0);
  auto* as_b = &f.machine.create_address_space(701, 0);
  const EntryPointId ep_a =
      f.ppc.bind({}, as_a, 700, [&](ServerCtx& ctx, RegSet& regs) {
        page_a = ctx.worker().active_cd()->stack_page();
        set_rc(regs, Status::kOk);
      });
  const EntryPointId ep_b =
      f.ppc.bind({}, as_b, 701, [&](ServerCtx& ctx, RegSet& regs) {
        page_b = ctx.worker().active_cd()->stack_page();
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep_a, regs);
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep_b, regs);
  EXPECT_EQ(page_a, page_b);  // the CD (and its stack) was recycled
}

}  // namespace
}  // namespace hppc::ppc
