// Golden call-path test: the exact sequence of cost categories a warm
// user-to-user null PPC charges, in order. This pins the *structure* of the
// fast path — if a refactor reorders, adds, or drops a step, this fails
// even when the totals still round to the same microseconds.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Machine;
using kernel::Process;
using sim::CostCategory;

std::vector<CostCategory> coalesced_call_path(bool kernel_server,
                                              bool hold_cd) {
  Machine machine(sim::hector_config(1));
  PpcFacility ppc(machine);
  EntryPointConfig cfg;
  cfg.kernel_space = kernel_server;
  cfg.hold_cd = hold_cd;
  kernel::AddressSpace* as =
      kernel_server ? nullptr : &machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      cfg, as, 700,
      [](ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  auto& cas = machine.create_address_space(100, 0);
  Process& client = machine.create_process(100, &cas, "c", 0);
  auto& cpu = machine.cpu(0);

  RegSet regs;
  for (int i = 0; i < 8; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }
  std::vector<CostCategory> steps;
  cpu.mem().set_trace([&](CostCategory c, Cycles, Cycles) {
    if (steps.empty() || steps.back() != c) steps.push_back(c);
  });
  set_op(regs, 1);
  ppc.call(cpu, client, ep, regs);
  cpu.mem().clear_trace();
  return steps;
}

TEST(CallPathGolden, UserToUserWarm) {
  using C = CostCategory;
  const std::vector<C> expected = {
      C::kUserSaveRestore,    // stub + register spill
      C::kTlbMiss,            // stub save page reload (post previous flush)
      C::kUserSaveRestore,    // spill tail
      C::kTrapOverhead,       // trap into the kernel
      C::kPpcKernel,          // entry + table lookup + worker alloc
      C::kCdManipulation,     // CD pop + fill
      C::kKernelSaveRestore,  // caller context save
      C::kTlbSetup,           // map stack + flush user context
      C::kPpcKernel,          // upcall into the server
      C::kKernelSaveRestore,  // worker (re)initialization
      C::kTlbMiss,            // server stack page
      C::kServerTime,         // prologue + handler
      C::kTlbMiss,            // server code page
      C::kServerTime,         // handler tail + epilogue
      C::kTrapOverhead,       // return trap
      C::kPpcKernel,          // return path
      C::kTlbSetup,           // unmap + flush back
      C::kCdManipulation,     // CD free
      C::kPpcKernel,          // worker free
      C::kKernelSaveRestore,  // caller context restore
      C::kUnaccounted,        // residual stalls
      C::kUserSaveRestore,    // stub restore entry
      C::kTlbMiss,            // stub restore page reload
      C::kUserSaveRestore,    // register reload
      C::kTlbMiss,            // user stack page reload
      C::kUserSaveRestore,    // reload tail
  };
  EXPECT_EQ(coalesced_call_path(false, false), expected);
}

TEST(CallPathGolden, UserToKernelHasNoUserTlbTraffic) {
  const auto steps = coalesced_call_path(true, false);
  // Warm user->kernel: the dual-context TLB keeps everything resident
  // except the freshly remapped stack page.
  int tlb_misses = 0;
  for (auto c : steps) {
    if (c == CostCategory::kTlbMiss) ++tlb_misses;
  }
  EXPECT_LE(tlb_misses, 1);
  // And no user-context flush pair: exactly two TLB-setup steps (map,
  // unmap) appear, same as u2u, but they are cheaper — totals are covered
  // by fig2 tests; here we only pin the structure.
  int tlb_setup = 0;
  for (auto c : steps) {
    if (c == CostCategory::kTlbSetup) ++tlb_setup;
  }
  EXPECT_EQ(tlb_setup, 2);
}

TEST(CallPathGolden, HoldCdSkipsPoolAndMapSteps) {
  const auto steps = coalesced_call_path(true, true);
  for (auto c : steps) {
    EXPECT_NE(c, CostCategory::kTlbSetup);  // stack permanently mapped
  }
  // CD fill still happens (return info), so kCdManipulation appears, but
  // only once (no separate free step).
  int cd = 0;
  for (auto c : steps) {
    if (c == CostCategory::kCdManipulation) ++cd;
  }
  EXPECT_EQ(cd, 1);
}

}  // namespace
}  // namespace hppc::ppc
