// Core synchronous PPC call semantics: argument/result transport, caller
// identification, per-processor resource ownership, pool growth, hold-CD,
// the worker-initialization protocol, and the no-shared-data/no-lock
// property of the fast path.
#include "ppc/facility.h"

#include <gtest/gtest.h>

#include "kernel/machine.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;

struct Fixture {
  Fixture(std::uint32_t cpus = 4)
      : machine(sim::hector_config(cpus)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  EntryPointId bind_echo(EntryPointConfig cfg = {}) {
    cfg.name = "echo";
    auto* as = cfg.kernel_space
                   ? nullptr
                   : &machine.create_address_space(700, 0);
    return ppc.bind(cfg, as, 700, [](ServerCtx&, RegSet& regs) {
      // Echo: add one to each argument word so transport is observable.
      for (std::size_t i = 0; i + 1 < kPpcWords; ++i) regs[i] += 1;
      set_rc(regs, Status::kOk);
    });
  }

  Machine machine;
  PpcFacility ppc;
};

TEST(Facility, EightWordsTravelBothWays) {
  Fixture f;
  const EntryPointId ep = f.bind_echo();
  Process& client = f.make_client(100, 0);
  RegSet regs;
  for (std::size_t i = 0; i + 1 < kPpcWords; ++i) {
    regs[i] = static_cast<Word>(1000 + i);
  }
  set_op(regs, 5);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, ep, regs), Status::kOk);
  for (std::size_t i = 0; i + 1 < kPpcWords; ++i) {
    EXPECT_EQ(regs[i], 1001u + i);  // modified in place: "those same
                                    // variables ... return eight values"
  }
  EXPECT_EQ(rc_of(regs), Status::kOk);
  EXPECT_EQ(opcode_of(regs), 5u);  // opcode preserved alongside rc
}

TEST(Facility, CallToUnknownEntryPointFails) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, 999, regs),
            Status::kNoSuchEntryPoint);
  EXPECT_EQ(rc_of(regs), Status::kNoSuchEntryPoint);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, 100000, regs),
            Status::kNoSuchEntryPoint);
}

TEST(Facility, CallerIdentifiedByProgramId) {
  // §4.1: "Callers are identified to servers by their program ID."
  Fixture f;
  ProgramId seen = 0;
  Pid seen_pid = 0;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        seen = ctx.caller_program();
        seen_pid = ctx.caller_pid();
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(123, 0);
  RegSet regs;
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EXPECT_EQ(seen, 123u);
  EXPECT_EQ(seen_pid, client.pid());
}

TEST(Facility, WorkerCreatedOnFirstCallPerCpu) {
  // "Worker processes are created dynamically as needed" — one per CPU that
  // actually calls, never shared across CPUs.
  Fixture f(4);
  const EntryPointId ep = f.bind_echo();
  EntryPoint* e = f.ppc.entry_point(ep);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->total_workers_created(), 0u);

  Process& c0 = f.make_client(100, 0);
  Process& c2 = f.make_client(101, 2);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), c0, ep, regs);
  EXPECT_EQ(e->per_cpu(0).workers_created, 1u);
  EXPECT_EQ(e->per_cpu(2).workers_created, 0u);

  f.ppc.call(f.machine.cpu(2), c2, ep, regs);
  EXPECT_EQ(e->per_cpu(2).workers_created, 1u);

  // Subsequent calls reuse pooled workers: no further creation.
  for (int i = 0; i < 10; ++i) f.ppc.call(f.machine.cpu(0), c0, ep, regs);
  EXPECT_EQ(e->per_cpu(0).workers_created, 1u);
  EXPECT_EQ(f.ppc.pooled_workers(0, ep), 1u);
}

TEST(Facility, SlowPathOnlyOnFirstCall) {
  Fixture f;
  const EntryPointId ep = f.bind_echo();
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  auto& counters = f.machine.cpu(0).counters();
  const auto refills = counters.get(obs::Counter::kFrankWorkerRefills);
  EXPECT_GE(refills, 1u);
  for (int i = 0; i < 20; ++i) f.ppc.call(f.machine.cpu(0), client, ep, regs);
  // Fast path ever after: no refills, no slow-path entries beyond warmup.
  EXPECT_EQ(counters.get(obs::Counter::kFrankWorkerRefills), refills);
}

TEST(Facility, WarmCallTouchesNoRemoteMemory) {
  // The headline property: a warm call's memory traffic is entirely
  // node-local — no shared data, no remote accesses, hence no lock and no
  // coherence traffic.
  Fixture f(8);
  const EntryPointId ep = f.bind_echo();  // server text homed on node 0
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  set_op(regs, 1);
  for (int i = 0; i < 8; ++i) f.ppc.call(cpu, client, ep, regs);

  // After warmup, further calls add no cache misses at all (the whole
  // working set is resident) and therefore no memory traffic whatsoever.
  const auto misses_before = cpu.mem().dcache().misses();
  for (int i = 0; i < 8; ++i) f.ppc.call(cpu, client, ep, regs);
  EXPECT_EQ(cpu.mem().dcache().misses(), misses_before);
}

TEST(Facility, PerCpuResourcesAreIndependent) {
  Fixture f(4);
  const EntryPointId ep = f.bind_echo();
  RegSet regs;
  set_op(regs, 1);
  for (CpuId c = 0; c < 4; ++c) {
    Process& client = f.make_client(200 + c, c);
    f.ppc.call(f.machine.cpu(c), client, ep, regs);
  }
  EntryPoint* e = f.ppc.entry_point(ep);
  for (CpuId c = 0; c < 4; ++c) {
    EXPECT_EQ(e->per_cpu(c).workers_created, 1u);
    EXPECT_EQ(e->per_cpu(c).pool.size(), 1u);
    EXPECT_EQ(e->per_cpu(c).in_progress, 0u);
  }
}

TEST(Facility, HoldCdSkipsPoolTraffic) {
  Fixture f;
  EntryPointConfig hold;
  hold.hold_cd = true;
  const EntryPointId ep = f.bind_echo(hold);
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(cpu, client, ep, regs);  // creates worker + held CD

  auto& st = f.ppc.state(cpu);
  const std::size_t pool_before = st.cd_pools[0].pool.size();
  for (int i = 0; i < 5; ++i) f.ppc.call(cpu, client, ep, regs);
  // Held CD never re-pooled.
  EXPECT_EQ(st.cd_pools[0].pool.size(), pool_before);
}

TEST(Facility, HoldCdIsFasterWarm) {
  // §3: locking the CD and stack to the worker saves 2-3 us per call.
  auto measure = [](bool hold) {
    Fixture f;
    EntryPointConfig cfg;
    cfg.hold_cd = hold;
    const EntryPointId ep = f.bind_echo(cfg);
    Process& client = f.make_client(100, 0);
    Cpu& cpu = f.machine.cpu(0);
    RegSet regs;
    set_op(regs, 1);
    for (int i = 0; i < 8; ++i) f.ppc.call(cpu, client, ep, regs);
    const Cycles before = cpu.now();
    for (int i = 0; i < 16; ++i) f.ppc.call(cpu, client, ep, regs);
    return static_cast<double>(cpu.now() - before) / 16.0;
  };
  const double no_hold = measure(false);
  const double with_hold = measure(true);
  const double saving_us = (no_hold - with_hold) / 16.67;
  EXPECT_GT(saving_us, 1.0);
  EXPECT_LT(saving_us, 5.0);
}

TEST(Facility, WorkerInitProtocolRunsOncePerWorker) {
  // §4.5.3: the first call enters the init routine, which swaps the
  // worker's call-handling routine; later calls skip it.
  Fixture f;
  int init_runs = 0;
  int main_runs = 0;
  auto* as = &f.machine.create_address_space(700, 0);
  Worker::CallHandler main_handler = [&](ServerCtx&, RegSet& regs) {
    ++main_runs;
    set_rc(regs, Status::kOk);
  };
  const EntryPointId ep = f.ppc.bind(
      {}, as, 700, [&, main_handler](ServerCtx& ctx, RegSet& regs) {
        ++init_runs;  // one-time setup
        ctx.set_worker_handler(main_handler);
        main_handler(ctx, regs);  // handle this first call too
      });

  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  for (int i = 0; i < 6; ++i) f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EXPECT_EQ(init_runs, 1);
  EXPECT_EQ(main_runs, 6);
}

TEST(Facility, NestedCallsServerAsClient) {
  // A server can PPC-call another server from inside its handler (the way
  // CopyTo/CopyFrom are "normal PPC requests", §4.2).
  Fixture f;
  const EntryPointId inner = f.bind_echo();
  auto* as = &f.machine.create_address_space(701, 0);
  const EntryPointId outer =
      f.ppc.bind({}, as, 701, [&, inner](ServerCtx& ctx, RegSet& regs) {
        RegSet nested;
        nested[0] = regs[0];
        set_op(nested, 9);
        const Status s = ctx.call(inner, nested);
        regs[1] = nested[0];
        set_rc(regs, s);
      });

  Process& client = f.make_client(100, 0);
  RegSet regs;
  regs[0] = 41;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, outer, regs), Status::kOk);
  EXPECT_EQ(regs[1], 42u);  // inner echo incremented
}

TEST(Facility, KernelCallerSkipsUserSaveRestore) {
  Fixture f;
  const EntryPointId ep = f.bind_echo({.kernel_space = true});
  Process& kproc =
      f.machine.create_process(0, &f.machine.kernel_as(), "kclient", 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  set_op(regs, 1);
  for (int i = 0; i < 4; ++i) f.ppc.call(cpu, kproc, ep, regs);
  auto before = cpu.mem().ledger();
  f.ppc.call(cpu, kproc, ep, regs);
  auto delta = cpu.mem().ledger().since(before);
  EXPECT_EQ(delta.get(sim::CostCategory::kUserSaveRestore), 0u);
}

TEST(Facility, StackPageMappedOnlyDuringCall) {
  Fixture f;
  const EntryPointId ep = f.bind_echo();
  EntryPoint* e = f.ppc.entry_point(ep);
  auto* as = e->address_space();
  bool mapped_during = false;
  SimAddr stack_va = 0;
  const EntryPointId probe =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        stack_va = ctx.worker().stack_vaddr();
        mapped_during =
            ctx.entry_point().address_space()->mapped(stack_va);
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, probe, regs);
  EXPECT_TRUE(mapped_during);
  EXPECT_NE(stack_va, 0u);
  EXPECT_FALSE(as->mapped(stack_va));
}

TEST(Facility, LedgerConservedAcrossCalls) {
  // Property: every cycle of a call lands in exactly one category.
  Fixture f;
  const EntryPointId ep = f.bind_echo();
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  set_op(regs, 1);
  for (int i = 0; i < 10; ++i) f.ppc.call(cpu, client, ep, regs);
  Cycles sum = 0;
  for (std::size_t c = 0; c < sim::kNumCostCategories; ++c) {
    sum += cpu.mem().ledger().get(static_cast<sim::CostCategory>(c));
  }
  EXPECT_EQ(sum, cpu.now());
}

TEST(Facility, TrimPoolsReclaimsSurplus) {
  Fixture f;
  const EntryPointId ep = f.bind_echo();
  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(cpu, client, ep, regs);
  // Grow the CD pool artificially via Frank stats on pool behaviour is
  // indirect; instead verify worker pool trims to target.
  EXPECT_EQ(f.ppc.pooled_workers(0, ep), 1u);
  f.ppc.trim_pools(cpu);
  EXPECT_LE(f.ppc.pooled_workers(0, ep),
            f.ppc.entry_point(ep)->config().pool_target);
  // Calls still work after trimming (a new worker is created on demand).
  EXPECT_EQ(f.ppc.call(cpu, client, ep, regs), Status::kOk);
}

TEST(Facility, BindRejectsMismatchedSpace) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointConfig cfg;
  cfg.kernel_space = true;  // but a user AS is supplied
  EXPECT_DEATH(f.ppc.bind(cfg, as, 700, [](ServerCtx&, RegSet&) {}),
               "kernel_space");
}

}  // namespace
}  // namespace hppc::ppc
