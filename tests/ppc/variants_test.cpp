// The PPC variants of §4.4: asynchronous requests, interrupt dispatching,
// upcalls, and blocking calls resumed by events.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using kernel::ProcessState;

struct Fixture {
  Fixture(std::uint32_t cpus = 4)
      : machine(sim::hector_config(cpus)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
};

TEST(AsyncCall, WorkerRunsThenCallerContinues) {
  // §4.4: the caller goes to the ready queue; the worker runs; on
  // completion "the fact that there is no caller waiting is discovered, and
  // another process is selected" — the caller.
  Fixture f;
  std::vector<std::string> order;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx&, RegSet& regs) {
        order.push_back("server");
        set_rc(regs, Status::kOk);
      });

  Process& client = f.make_client(100, 0);
  client.set_body([&](Cpu& cpu, Process& self) {
    if (order.empty()) {
      RegSet regs;
      set_op(regs, 1);
      // Async is the last action of this body segment; the process is
      // already back on the ready queue and will be redispatched.
      ASSERT_EQ(f.ppc.call_async(cpu, self, ep, regs), Status::kOk);
    } else {
      order.push_back("caller-resumed");
    }
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_EQ(order,
            (std::vector<std::string>{"server", "caller-resumed"}));
}

TEST(AsyncCall, FireAndForgetResultsDiscarded) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  int served = 0;
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx&, RegSet& regs) {
        ++served;
        regs[0] = 0xDEAD;  // never seen by anyone
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  client.set_body([&](Cpu& cpu, Process& self) {
    static bool done = false;
    if (!done) {
      done = true;
      RegSet regs;
      set_op(regs, 1);
      f.ppc.call_async(cpu, self, ep, regs);
    }
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(f.machine.cpu(0).counters().get(obs::Counter::kCallsAsync),
            1u);
}

TEST(Upcall, RunsWithNoCaller) {
  Fixture f;
  ProgramId seen_prog = 999;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        seen_prog = ctx.caller_program();
        set_rc(regs, Status::kOk);
      });
  RegSet regs;
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.upcall(f.machine.cpu(1), ep, regs), Status::kOk);
  EXPECT_EQ(seen_prog, 0u);  // kernel-manufactured: no user program
  EXPECT_EQ(f.machine.cpu(1).counters().get(obs::Counter::kCallsUpcall),
            1u);
}

TEST(Upcall, UnknownEntryPoint) {
  Fixture f;
  RegSet regs;
  EXPECT_EQ(f.ppc.upcall(f.machine.cpu(0), 777, regs),
            Status::kNoSuchEntryPoint);
}

TEST(InterruptDispatch, DeliveredAtTimeOnTargetCpu) {
  // §4.4: "An asynchronous request from the kernel to the device server is
  // manufactured by the interrupt handler and dispatched as for a normal
  // call. From the device server's point of view, it appears as a normal
  // PPC request."
  Fixture f;
  CpuId served_on = 999;
  Cycles served_at = 0;
  Word seen_vector = 0;
  auto* as = &f.machine.create_address_space(700, 2 % 1);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        served_on = ctx.cpu().id();
        served_at = ctx.cpu().now();
        seen_vector = regs[0];
        set_rc(regs, Status::kOk);
      });

  RegSet regs;
  regs[0] = 0x11;  // device vector
  set_op(regs, 1);
  f.ppc.raise_interrupt(/*target=*/3, /*time=*/1000, ep, regs);
  f.machine.run_until_idle();
  EXPECT_EQ(served_on, 3u);
  EXPECT_GE(served_at, 1000u);
  EXPECT_EQ(seen_vector, 0x11u);
  EXPECT_EQ(f.machine.cpu(3).counters().get(obs::Counter::kCallsInterrupt),
            1u);
}

TEST(InterruptDispatch, UsesTargetCpusOwnResources) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep = f.ppc.bind(
      {}, as, 700, [](ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  set_op(regs, 1);
  f.ppc.raise_interrupt(2, 100, ep, regs);
  f.machine.run_until_idle();
  EntryPoint* e = f.ppc.entry_point(ep);
  EXPECT_EQ(e->per_cpu(2).workers_created, 1u);
  EXPECT_EQ(e->per_cpu(0).workers_created, 0u);
}

TEST(BlockingCall, ResumedByEvent) {
  // A device-style server: the handler blocks mid-call, a later event
  // resumes the worker, and the caller's completion runs with the results.
  Fixture f;
  Worker* blocked_worker = nullptr;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet&) {
        blocked_worker = &ctx.worker();
        ctx.block_call([](ServerCtx&, RegSet& regs) {
          regs[1] = 0xD00D;  // completed with data
          set_rc(regs, Status::kOk);
        });
      });

  Process& client = f.make_client(100, 0);
  Status completed_status = Status::kServerError;
  Word completed_data = 0;
  bool issued = false;

  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;  // the post-completion redispatch does nothing
    issued = true;
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, ep, regs,
                        [&](Status s, RegSet& out) {
                          completed_status = s;
                          completed_data = out[1];
                        });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();

  ASSERT_NE(blocked_worker, nullptr);
  EXPECT_TRUE(blocked_worker->blocked_in_call());
  EXPECT_EQ(completed_data, 0u);  // not yet

  // Device completion arrives later on the same CPU.
  f.machine.post_event(0, f.machine.cpu(0).now() + 5000, [&](Cpu& cpu) {
    f.ppc.resume_worker(cpu, *blocked_worker);
  });
  f.machine.run_until_idle();
  EXPECT_EQ(completed_status, Status::kOk);
  EXPECT_EQ(completed_data, 0xD00Du);
  EXPECT_FALSE(blocked_worker->blocked_in_call());
  // The worker returned to its pool and the EP is idle.
  EXPECT_EQ(f.ppc.entry_point(ep)->total_in_progress(), 0u);
}

TEST(BlockingCall, CompletesInlineWhenHandlerDoesNotBlock) {
  Fixture f;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep = f.ppc.bind(
      {}, as, 700, [](ServerCtx&, RegSet& regs) {
        regs[0] = 7;
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  bool completed = false;
  RegSet regs;
  set_op(regs, 1);
  const Status s = f.ppc.call_blocking(
      f.machine.cpu(0), client, ep, regs, [&](Status st, RegSet& out) {
        completed = true;
        EXPECT_EQ(st, Status::kOk);
        EXPECT_EQ(out[0], 7u);
      });
  EXPECT_EQ(s, Status::kOk);
  EXPECT_TRUE(completed);
}

TEST(BlockingCall, CallerBlockedWhileInFlight) {
  Fixture f;
  Worker* w = nullptr;
  auto* as = &f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet&) {
        w = &ctx.worker();
        ctx.block_call([](ServerCtx&, RegSet& regs) {
          set_rc(regs, Status::kOk);
        });
      });
  Process& client = f.make_client(100, 0);
  client.set_body([&](Cpu& cpu, Process& self) {
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_blocking(cpu, self, ep, regs, [&](Status, RegSet&) {});
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_EQ(client.state(), ProcessState::kBlocked);
  f.machine.post_event(0, f.machine.cpu(0).now() + 100,
                       [&](Cpu& cpu) { f.ppc.resume_worker(cpu, *w); });
  f.machine.run_until_idle();
  // resume readied the caller; it ran again (its body made another call...)
  // — to keep this bounded the body above only calls once per dispatch, so
  // after resume the client re-dispatches and issues a second call. Stop
  // the chain by checking in-progress instead.
  EXPECT_LE(f.ppc.entry_point(ep)->total_in_progress(), 1u);
}

TEST(Facility2, InProgressCountTracksActiveCalls) {
  Fixture f;
  std::uint32_t during = 0;
  auto* as = &f.machine.create_address_space(700, 0);
  EntryPointId ep = 0;
  ep = f.ppc.bind({}, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
    during = ctx.entry_point().per_cpu(ctx.cpu().id()).in_progress;
    set_rc(regs, Status::kOk);
  });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, ep, regs);
  EXPECT_EQ(during, 1u);
  EXPECT_EQ(f.ppc.entry_point(ep)->total_in_progress(), 0u);
}

}  // namespace
}  // namespace hppc::ppc
