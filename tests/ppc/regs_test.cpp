// The call interface of §4.5.1 / Figure 4: 8 words each way, opcode+flags
// packed in the last word, return code in the same word on the way back,
// and — crucially — no marshalling: argument words pass through untouched.
#include "ppc/regs.h"

#include <gtest/gtest.h>

#include <tuple>

namespace hppc::ppc {
namespace {

TEST(OpFlags, PackUnpackRoundTrip) {
  const Word w = op_flags(/*opcode=*/0x1234, /*flags=*/0x56);
  EXPECT_EQ(opcode_of(w), 0x1234u);
  EXPECT_EQ(flags_of(w), 0x56u);
  EXPECT_EQ(rc_of(w), Status::kOk);  // rc starts clear
}

TEST(OpFlags, RcDoesNotDisturbOpcodeOrFlags) {
  Word w = op_flags(0xBEEF, 0x7);
  w = with_rc(w, Status::kPermissionDenied);
  EXPECT_EQ(opcode_of(w), 0xBEEFu);
  EXPECT_EQ(flags_of(w), 0x7u);
  EXPECT_EQ(rc_of(w), Status::kPermissionDenied);
  w = with_rc(w, Status::kOk);
  EXPECT_EQ(rc_of(w), Status::kOk);
  EXPECT_EQ(opcode_of(w), 0xBEEFu);
}

TEST(OpFlags, FieldsAreMasked) {
  const Word w = op_flags(0xFFFFF, 0xFFF);  // over-wide inputs
  EXPECT_EQ(opcode_of(w), 0xFFFFu);
  EXPECT_EQ(flags_of(w), 0xFFu);
}

TEST(RegSet, DefaultsToZero) {
  RegSet r;
  for (std::size_t i = 0; i < kPpcWords; ++i) EXPECT_EQ(r[i], 0u);
}

TEST(RegSet, OpWordHelpers) {
  RegSet r;
  set_op(r, 42, 3);
  EXPECT_EQ(opcode_of(r), 42u);
  EXPECT_EQ(flags_of(r), 3u);
  set_rc(r, Status::kServerError);
  EXPECT_EQ(rc_of(r), Status::kServerError);
  EXPECT_EQ(opcode_of(r), 42u);  // rc write preserves opcode
}

TEST(RegSet, U64PackUnpack) {
  RegSet r;
  const std::uint64_t v = 0x0123456789ABCDEFull;
  set_u64(r, 2, v);
  EXPECT_EQ(get_u64(r, 2), v);
  EXPECT_EQ(r[2], 0x89ABCDEFu);
  EXPECT_EQ(r[3], 0x01234567u);
}

TEST(RegSet, Equality) {
  RegSet a, b;
  a[0] = b[0] = 5;
  EXPECT_EQ(a, b);
  b[6] = 1;
  EXPECT_NE(a, b);
}

// Property sweep: any (opcode, flags, rc) triple survives packing.
class OpFlagsProperty
    : public ::testing::TestWithParam<std::tuple<Word, Word, int>> {};

TEST_P(OpFlagsProperty, RoundTrip) {
  const auto [opcode, flags, rc_int] = GetParam();
  const Status rc = static_cast<Status>(rc_int);
  Word w = op_flags(opcode, flags);
  w = with_rc(w, rc);
  EXPECT_EQ(opcode_of(w), opcode & 0xFFFFu);
  EXPECT_EQ(flags_of(w), flags & 0xFFu);
  EXPECT_EQ(rc_of(w), rc);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpFlagsProperty,
    ::testing::Combine(::testing::Values<Word>(0, 1, 0x7F, 0x1234, 0xFFFF),
                       ::testing::Values<Word>(0, 1, 0x80, 0xFF),
                       ::testing::Values(0, 1, 4, 9)));

TEST(Status, AllCodesNamed) {
  for (int i = 0; i <= static_cast<int>(Status::kInvalidArgument); ++i) {
    EXPECT_STRNE(to_string(static_cast<Status>(i)), "?");
  }
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kCallAborted));
}

}  // namespace
}  // namespace hppc::ppc
