// The paper's extension features: trust groups for stack sharing (§2's
// compromise), the hashed overflow entry-point space (§4.5.5), the
// cross-processor PPC variant (§4.3), and the ClientStub (§4.5.1).
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ppc/facility.h"
#include "ppc/stub.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using kernel::ProcessState;

struct Fixture {
  Fixture(std::uint32_t cpus = 4)
      : machine(sim::hector_config(cpus)), ppc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  EntryPointId bind_probe(EntryPointConfig cfg, SimAddr* out_page) {
    auto& as = machine.create_address_space(700 + next_prog_, 0);
    return ppc.bind(cfg, &as, 700 + next_prog_++,
                    [out_page](ServerCtx& ctx, RegSet& regs) {
                      *out_page = ctx.worker().active_cd()->stack_page();
                      set_rc(regs, Status::kOk);
                    });
  }

  Machine machine;
  PpcFacility ppc;
  int next_prog_ = 0;
};

TEST(TrustGroups, SameGroupSharesStacks) {
  Fixture f;
  SimAddr page_a = 0, page_b = 0;
  EntryPointConfig cfg;
  cfg.trust_group = 5;
  const EntryPointId a = f.bind_probe(cfg, &page_a);
  const EntryPointId b = f.bind_probe(cfg, &page_b);
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, a, regs);
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, b, regs);
  EXPECT_EQ(page_a, page_b);  // same group: stack recycled
}

TEST(TrustGroups, DifferentGroupsNeverShareStacks) {
  // §2: "only share stacks between servers in the same group" — a server
  // must never see another group's (potentially sensitive) stack page.
  Fixture f;
  SimAddr page_a = 0, page_b = 0;
  EntryPointConfig ga;
  ga.trust_group = 1;
  EntryPointConfig gb;
  gb.trust_group = 2;
  const EntryPointId a = f.bind_probe(ga, &page_a);
  const EntryPointId b = f.bind_probe(gb, &page_b);
  Process& client = f.make_client(100, 0);
  RegSet regs;
  for (int i = 0; i < 3; ++i) {
    set_op(regs, 1);
    f.ppc.call(f.machine.cpu(0), client, a, regs);
    set_op(regs, 1);
    f.ppc.call(f.machine.cpu(0), client, b, regs);
  }
  EXPECT_NE(page_a, page_b);
}

TEST(TrustGroups, DefaultGroupStillShares) {
  Fixture f;
  SimAddr page_a = 0, page_b = 0;
  const EntryPointId a = f.bind_probe({}, &page_a);
  const EntryPointId b = f.bind_probe({}, &page_b);
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, a, regs);
  set_op(regs, 1);
  f.ppc.call(f.machine.cpu(0), client, b, regs);
  EXPECT_EQ(page_a, page_b);
}

TEST(HashedEntryPoints, OptOutGetsOverflowId) {
  Fixture f;
  EntryPointConfig cfg;
  cfg.fast_lookup = false;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId id = f.ppc.bind(cfg, &as, 700,
                                     [](ServerCtx&, RegSet& regs) {
                                       regs[0] = 99;
                                       set_rc(regs, Status::kOk);
                                     });
  EXPECT_GE(id, kMaxEntryPoints);

  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, id, regs), Status::kOk);
  EXPECT_EQ(regs[0], 99u);
  EXPECT_EQ(f.machine.cpu(0).counters().get(obs::Counter::kHashedLookups),
            1u);
}

TEST(HashedEntryPoints, SlowerLookupThanDirect) {
  Fixture f;
  auto& as = f.machine.create_address_space(700, 0);
  auto handler = [](ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); };
  const EntryPointId fast = f.ppc.bind({}, &as, 700, handler);
  EntryPointConfig slow_cfg;
  slow_cfg.fast_lookup = false;
  const EntryPointId slow = f.ppc.bind(slow_cfg, &as, 700, handler);

  Process& client = f.make_client(100, 0);
  Cpu& cpu = f.machine.cpu(0);
  RegSet regs;
  auto measure = [&](EntryPointId ep) {
    for (int i = 0; i < 6; ++i) {
      set_op(regs, 1);
      f.ppc.call(cpu, client, ep, regs);
    }
    const Cycles t0 = cpu.now();
    for (int i = 0; i < 16; ++i) {
      set_op(regs, 1);
      f.ppc.call(cpu, client, ep, regs);
    }
    return (cpu.now() - t0) / 16;
  };
  const Cycles fast_cost = measure(fast);
  const Cycles slow_cost = measure(slow);
  EXPECT_GT(slow_cost, fast_cost);
  EXPECT_LT(slow_cost, fast_cost + 60);  // a few extra loads, not a cliff
}

TEST(HashedEntryPoints, HardKillClearsOverflowEntries) {
  Fixture f;
  EntryPointConfig cfg;
  cfg.fast_lookup = false;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId id = f.ppc.bind(
      cfg, &as, 700, [](ServerCtx&, RegSet& r) { set_rc(r, Status::kOk); });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call(f.machine.cpu(0), client, id, regs), Status::kOk);
  ASSERT_EQ(f.ppc.hard_kill(f.machine.cpu(0), id), Status::kOk);
  f.machine.run_until_idle();
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(0), client, id, regs),
            Status::kNoSuchEntryPoint);
}

TEST(CrossProcessorCall, ExecutesOnTargetAndRepliesHome) {
  Fixture f(4);
  CpuId served_on = 999;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, &as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        served_on = ctx.cpu().id();
        regs[1] = regs[0] + 1;
        set_rc(regs, Status::kOk);
      });

  Process& client = f.make_client(100, 0);
  Status done_status = Status::kServerError;
  Word result = 0;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    regs[0] = 41;
    set_op(regs, 1);
    f.ppc.call_remote(cpu, self, /*target=*/3, ep, regs,
                      [&](Status s, RegSet& out) {
                        done_status = s;
                        result = out[1];
                      });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();

  EXPECT_EQ(served_on, 3u);
  EXPECT_EQ(done_status, Status::kOk);
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(f.machine.cpu(0).counters().get(obs::Counter::kCallsRemote),
            1u);
  // The target used its own per-CPU resources.
  EXPECT_EQ(f.ppc.entry_point(ep)->per_cpu(3).workers_created, 1u);
  EXPECT_EQ(f.ppc.entry_point(ep)->per_cpu(0).workers_created, 0u);
}

TEST(CrossProcessorCall, LocalTargetDegeneratesToBlockingCall) {
  Fixture f;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId ep = f.ppc.bind(
      {}, &as, 700, [](ServerCtx&, RegSet& regs) {
        regs[0] = 7;
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  bool completed = false;
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(f.ppc.call_remote(f.machine.cpu(0), client, 0, ep, regs,
                              [&](Status s, RegSet& out) {
                                completed = true;
                                EXPECT_EQ(s, Status::kOk);
                                EXPECT_EQ(out[0], 7u);
                              }),
            Status::kOk);
  EXPECT_TRUE(completed);
}

TEST(CrossProcessorCall, UnknownEntryPointReportsThroughCompletion) {
  Fixture f(4);
  Process& client = f.make_client(100, 0);
  Status done = Status::kOk;
  bool issued = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (issued) return;
    issued = true;
    RegSet regs;
    set_op(regs, 1);
    f.ppc.call_remote(cpu, self, 2, 999, regs,
                      [&](Status s, RegSet&) { done = s; });
  });
  f.machine.ready(f.machine.cpu(0), client);
  f.machine.run_until_idle();
  EXPECT_EQ(done, Status::kNoSuchEntryPoint);
}

TEST(ClientStub, ProcedureCallStyle) {
  Fixture f;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId ep =
      f.ppc.bind({}, &as, 700, [](ServerCtx&, RegSet& regs) {
        // "DoStuff": consume three args, produce two results.
        regs[3] = regs[0] + regs[1] + regs[2];
        regs[4] = opcode_of(regs);
        set_rc(regs, Status::kOk);
      });
  Process& client = f.make_client(100, 0);
  ClientStub stub(f.ppc, f.machine.cpu(0), client, ep);

  Word a = 10, b = 20, c = 12, sum = 0, op_seen = 0;
  ASSERT_EQ(stub(/*opcode=*/0x7, a, b, c, sum, op_seen), Status::kOk);
  EXPECT_EQ(sum, 42u);
  EXPECT_EQ(op_seen, 0x7u);
  EXPECT_EQ(a, 10u);  // untouched arguments come back unchanged
}

TEST(ClientStub, Retarget) {
  Fixture f;
  auto& as = f.machine.create_address_space(700, 0);
  const EntryPointId one = f.ppc.bind({}, &as, 700,
                                      [](ServerCtx&, RegSet& r) {
                                        r[0] = 1;
                                        set_rc(r, Status::kOk);
                                      });
  const EntryPointId two = f.ppc.bind({}, &as, 700,
                                      [](ServerCtx&, RegSet& r) {
                                        r[0] = 2;
                                        set_rc(r, Status::kOk);
                                      });
  Process& client = f.make_client(100, 0);
  ClientStub stub(f.ppc, f.machine.cpu(0), client, one);
  Word v = 0;
  stub(1, v);
  EXPECT_EQ(v, 1u);
  stub.retarget(two);
  stub(1, v);
  EXPECT_EQ(v, 2u);
}

}  // namespace
}  // namespace hppc::ppc
