// Property sweeps: the facility's invariants must hold across the whole
// configuration grid — machine sizes, service spaces, hold-CD, stack
// strategies, trust groups, lookup classes.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel/machine.h"
#include "ppc/facility.h"

namespace hppc::ppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;

struct GridParam {
  std::uint32_t cpus;
  bool kernel_space;
  bool hold_cd;
  StackStrategy strategy;
  std::uint32_t trust_group;
  bool fast_lookup;
};

class FacilityGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(FacilityGrid, CallSemanticsAndInvariantsHold) {
  const GridParam p = GetParam();
  Machine machine(sim::hector_config(p.cpus));
  PpcFacility ppc(machine);

  EntryPointConfig cfg;
  cfg.name = "grid";
  cfg.kernel_space = p.kernel_space;
  cfg.hold_cd = p.hold_cd;
  cfg.stack_strategy = p.strategy;
  cfg.stack_pages = p.strategy == StackStrategy::kSinglePage ? 1 : 3;
  cfg.trust_group = p.trust_group;
  cfg.fast_lookup = p.fast_lookup;

  kernel::AddressSpace* as =
      p.kernel_space ? nullptr : &machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      cfg, as, 700, [&](ServerCtx& ctx, RegSet& regs) {
        ctx.touch_stack(32, 64, /*is_store=*/true);
        if (p.strategy != StackStrategy::kSinglePage) {
          ctx.touch_stack(2 * kPageSize + 8, 32, /*is_store=*/true);
        }
        regs[1] = regs[0] ^ 0xFFFFu;
        set_rc(regs, Status::kOk);
      });
  EXPECT_EQ(ep >= kMaxEntryPoints, !p.fast_lookup);

  // Every CPU calls several times; results correct everywhere.
  for (CpuId c = 0; c < p.cpus; ++c) {
    auto& cas = machine.create_address_space(100 + c,
                                             machine.config().node_of_cpu(c));
    Process& client = machine.create_process(
        100 + c, &cas, "client", machine.config().node_of_cpu(c));
    Cpu& cpu = machine.cpu(c);
    for (int i = 0; i < 4; ++i) {
      RegSet regs;
      regs[0] = static_cast<Word>(c * 100 + i);
      set_op(regs, 1);
      ASSERT_EQ(ppc.call(cpu, client, ep, regs), Status::kOk);
      ASSERT_EQ(regs[1], (c * 100 + i) ^ 0xFFFFu);
    }
  }

  EntryPoint* e = ppc.entry_point(ep);
  ASSERT_NE(e, nullptr);
  // Invariant: exactly one worker per calling CPU; none in flight;
  // per-CPU pools hold exactly what was created.
  for (CpuId c = 0; c < p.cpus; ++c) {
    EXPECT_EQ(e->per_cpu(c).workers_created, 1u) << "cpu " << c;
    EXPECT_EQ(e->per_cpu(c).in_progress, 0u);
    EXPECT_EQ(e->per_cpu(c).pool.size(), 1u);
    EXPECT_TRUE(e->per_cpu(c).active_workers.empty());
  }
  // Invariant: the server space holds no leftover stack mappings, except
  // hold-CD workers' permanently mapped page (one per CPU).
  const std::size_t expected_pages = p.hold_cd ? p.cpus : 0;
  EXPECT_EQ(e->address_space()->page_count(), expected_pages);

  // Invariant: ledger conservation on every CPU.
  for (CpuId c = 0; c < p.cpus; ++c) {
    const auto& mem = machine.cpu(c).mem();
    Cycles sum = 0;
    for (std::size_t i = 0; i < sim::kNumCostCategories; ++i) {
      sum += mem.ledger().get(static_cast<sim::CostCategory>(i));
    }
    EXPECT_EQ(sum, mem.now());
  }

  // Hard kill cleans up fully on every configuration.
  ASSERT_EQ(ppc.hard_kill(machine.cpu(0), ep), Status::kOk);
  machine.run_until_idle();
  for (CpuId c = 0; c < p.cpus; ++c) {
    EXPECT_EQ(ppc.pooled_workers(c, ep), 0u);
  }
  EXPECT_EQ(e->address_space()->page_count(), 0u);
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  std::string s = std::to_string(p.cpus) + "cpu";
  s += p.kernel_space ? "_kernel" : "_user";
  s += p.hold_cd ? "_hold" : "_share";
  s += p.strategy == StackStrategy::kSinglePage     ? "_1page"
       : p.strategy == StackStrategy::kFixedMultiple ? "_fixed"
                                                     : "_lazy";
  s += "_g" + std::to_string(p.trust_group);
  s += p.fast_lookup ? "_fast" : "_hashed";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FacilityGrid,
    ::testing::Values(
        GridParam{1, false, false, StackStrategy::kSinglePage, 0, true},
        GridParam{1, true, false, StackStrategy::kSinglePage, 0, true},
        GridParam{4, false, true, StackStrategy::kSinglePage, 0, true},
        GridParam{4, true, true, StackStrategy::kSinglePage, 0, true},
        GridParam{4, false, false, StackStrategy::kFixedMultiple, 0, true},
        GridParam{4, false, false, StackStrategy::kLazyFault, 0, true},
        GridParam{8, false, false, StackStrategy::kSinglePage, 3, true},
        GridParam{8, false, true, StackStrategy::kSinglePage, 3, true},
        GridParam{4, false, false, StackStrategy::kSinglePage, 0, false},
        GridParam{16, false, false, StackStrategy::kSinglePage, 0, true},
        GridParam{16, true, false, StackStrategy::kLazyFault, 2, false},
        GridParam{3, false, false, StackStrategy::kFixedMultiple, 1, false}),
    grid_name);

// Determinism across the grid: identical runs produce identical clocks.
class FacilityDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(FacilityDeterminism, IdenticalRunsIdenticalClocks) {
  auto run = [&]() -> Cycles {
    Machine machine(sim::hector_config(4));
    PpcFacility ppc(machine);
    auto& as = machine.create_address_space(700, 0);
    const EntryPointId ep = ppc.bind(
        {}, &as, 700, [](ServerCtx& ctx, RegSet& regs) {
          ctx.work(17);
          set_rc(regs, Status::kOk);
        });
    auto& cas = machine.create_address_space(100, 0);
    Process& client = machine.create_process(100, &cas, "c", 0);
    for (int i = 0; i < GetParam(); ++i) {
      RegSet regs;
      set_op(regs, 1);
      ppc.call(machine.cpu(0), client, ep, regs);
    }
    return machine.cpu(0).now();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Counts, FacilityDeterminism,
                         ::testing::Values(1, 7, 33));

}  // namespace
}  // namespace hppc::ppc
