// The cross-process transport: warm calls over a lane (threaded and
// forked), cross-process cancellation through the segment pool, the
// granted-region bulk path, and the hard-kill extension — a SIGKILLed
// peer detected by heartbeat, its in-flight call completed kCallAborted,
// its lane's pool resources fully reclaimed.
#include "shm/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "rt/bulk_desc.h"
#include "rt/xcall.h"
#include "shm/layout.h"

#ifdef __linux__
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace hppc::shm {
namespace {

#ifdef __linux__

std::string uniq_name(const char* tag) {
  return std::string("/hppc_") + tag + "_" + std::to_string(::getpid());
}

Status echo_add_one(void* /*self*/, ShmCtx& /*ctx*/, ppc::RegSet& regs) {
  for (std::size_t i = 0; i < kPpcWords; ++i) regs[i] += 1;
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Threaded (same process, two threads — the protocol is identical, only
// the base addresses coincide)
// ---------------------------------------------------------------------------

TEST(ShmTransport, WarmCallsRoundTripOverALane) {
  const std::string name = uniq_name("warm");
  Server server(name);
  server.bind(&echo_add_one, nullptr);  // ep 1

  std::atomic<bool> done{false};
  std::thread srv([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (server.poll() == 0) std::this_thread::yield();
    }
    server.poll();
  });

  Peer peer(name, /*program=*/42);
  for (std::uint32_t round = 0; round < 256; ++round) {
    ppc::RegSet regs;
    for (std::size_t i = 0; i < kPpcWords; ++i) {
      regs[i] = round * 16 + static_cast<Word>(i);
    }
    ASSERT_EQ(peer.call(/*ep=*/1, regs), Status::kOk);
    for (std::size_t i = 0; i < kPpcWords; ++i) {
      ASSERT_EQ(regs[i], round * 16 + i + 1);
    }
  }
  done.store(true, std::memory_order_release);
  srv.join();

  // 256 calls = 256 drained cells; the lane's wait pool is conserved.
  EXPECT_GE(server.counters().get(obs::Counter::kXcallCellsDrained), 256u);
  EXPECT_EQ(peer.counters().get(obs::Counter::kCallsRemote), 256u);
}

TEST(ShmTransport, UnboundEpFailsAndUnknownTokenCancels) {
  const std::string name = uniq_name("epcheck");
  Server server(name);
  std::atomic<bool> done{false};
  std::thread srv([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (server.poll() == 0) std::this_thread::yield();
    }
  });

  Peer peer(name, 1);
  ppc::RegSet regs;
  EXPECT_EQ(peer.call(/*ep=*/33, regs), Status::kNoSuchEntryPoint);

  // A pre-cancelled token aborts at the drain seam without dispatching.
  const std::uint32_t tok = peer.cancel_token_create();
  peer.cancel(tok);
  EXPECT_EQ(peer.call(/*ep=*/33, regs, tok), Status::kCallAborted);

  done.store(true, std::memory_order_release);
  srv.join();
}

// ---------------------------------------------------------------------------
// Granted-region bulk path
// ---------------------------------------------------------------------------

struct BulkXorService {
  std::uint64_t bytes_seen = 0;

  // regs carry one BulkSeg (packed at w[0..3]): XOR every granted byte
  // with 0x5A in place — copy_from, transform, copy_to. The payload never
  // rides the ring; the cell traffic is O(1) in the payload size.
  static Status run(void* self, ShmCtx& ctx, ppc::RegSet& regs) {
    auto* svc = static_cast<BulkXorService*>(self);
    const rt::BulkSeg seg = rt::bulk_seg_unpack(regs, 0);
    std::vector<std::byte> stage(seg.len);
    Status rc = ctx.copy->copy_from(seg.region, seg.addr, stage.data(),
                                    stage.size());
    if (rc != Status::kOk) return rc;
    for (std::byte& b : stage) b ^= std::byte{0x5A};
    rc = ctx.copy->copy_to(seg.region, seg.addr, stage.data(), stage.size());
    if (rc != Status::kOk) return rc;
    svc->bytes_seen += seg.len;
    return Status::kOk;
  }
};

TEST(ShmTransport, BulkDescriptorsMoveBytesThroughGrantedRegions) {
  const std::string name = uniq_name("bulk");
  Server server(name);
  BulkXorService svc;
  const ShmEp ep = server.bind(&BulkXorService::run, &svc);

  std::atomic<bool> done{false};
  std::thread srv([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (server.poll() == 0) std::this_thread::yield();
    }
  });

  Peer peer(name, 7);
  constexpr std::size_t kBytes = 64 * 1024;
  const std::uint32_t region = peer.grant_region(kBytes);
  ASSERT_LT(region, kMaxShmRegions);
  std::byte* base = peer.region_base(region);
  ASSERT_NE(base, nullptr);
  for (std::size_t i = 0; i < kBytes; ++i) {
    base[i] = static_cast<std::byte>(i & 0xFF);
  }

  ppc::RegSet regs;
  rt::bulk_seg_pack(regs, 0, rt::bulk_region(region, 0, kBytes));
  ASSERT_EQ(peer.call(ep, regs), Status::kOk);
  for (std::size_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(base[i], static_cast<std::byte>((i & 0xFF) ^ 0x5A)) << i;
  }
  EXPECT_EQ(svc.bytes_seen, kBytes);
  // copy_from + copy_to both book: 2x the payload.
  EXPECT_EQ(server.counters().get(obs::Counter::kBulkCopyBytes), 2 * kBytes);
  // Main segment + the mapped grant.
  EXPECT_GE(server.counters().get(obs::Counter::kShmSegmentsMapped), 2u);

  // Descriptors out of the granted range (or after revoke) must refuse.
  rt::bulk_seg_pack(regs, 0, rt::bulk_region(region, kBytes - 8, 64));
  EXPECT_EQ(peer.call(ep, regs), Status::kBadRegion);
  peer.revoke_region(region);
  rt::bulk_seg_pack(regs, 0, rt::bulk_region(region, 0, 64));
  EXPECT_EQ(peer.call(ep, regs), Status::kBadRegion);

  done.store(true, std::memory_order_release);
  srv.join();
}

// ---------------------------------------------------------------------------
// Forked (genuinely cross-process)
// ---------------------------------------------------------------------------

TEST(ShmTransport, CrossProcessEchoOverFork) {
  const std::string name = uniq_name("fork");
  Server server(name);
  server.bind(&echo_add_one, nullptr);  // ep 1

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: attach from a fresh mapping and drive calls. Plain _exit
    // codes report failure — no gtest in the child.
    try {
      Peer peer(name, /*program=*/99);
      for (std::uint32_t round = 0; round < 512; ++round) {
        ppc::RegSet regs;
        regs[0] = round;
        if (peer.call(1, regs) != Status::kOk) ::_exit(2);
        if (regs[0] != round + 1) ::_exit(3);
      }
    } catch (...) {
      ::_exit(4);
    }
    ::_exit(0);
  }

  int st = 0;
  while (::waitpid(child, &st, WNOHANG) == 0) server.poll();
  server.poll();  // sweep anything posted just before exit
  ASSERT_TRUE(WIFEXITED(st));
  EXPECT_EQ(WEXITSTATUS(st), 0);
  EXPECT_GE(server.counters().get(obs::Counter::kXcallCellsDrained), 512u);
}

TEST(ShmTransport, CancelCrossesTheProcessBoundary) {
  const std::string name = uniq_name("xcancel");
  Server server(name);
  static std::atomic<std::uint32_t> executed{0};
  executed.store(0);
  server.bind(
      +[](void*, ShmCtx&, ppc::RegSet&) {
        executed.fetch_add(1);
        return Status::kOk;
      },
      nullptr);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    try {
      Peer peer(name, 5);
      // Mint in the child, cancel in the child, post with the token: the
      // PARENT's drain must see the flag (it lives in the segment) and
      // refuse the dispatch.
      const std::uint32_t tok = peer.cancel_token_create();
      peer.cancel(tok);
      ppc::RegSet regs;
      if (peer.call(1, regs, tok) != Status::kCallAborted) ::_exit(2);
      // And an uncancelled token still executes.
      const std::uint32_t tok2 = peer.cancel_token_create();
      if (peer.call(1, regs, tok2) != Status::kOk) ::_exit(3);
    } catch (...) {
      ::_exit(4);
    }
    ::_exit(0);
  }

  int st = 0;
  while (::waitpid(child, &st, WNOHANG) == 0) server.poll();
  server.poll();
  ASSERT_TRUE(WIFEXITED(st));
  EXPECT_EQ(WEXITSTATUS(st), 0);
  EXPECT_EQ(executed.load(), 1u);  // the cancelled call never dispatched
}

TEST(ShmTransport, Kill9PeerIsReapedWithPoolConservation) {
  const std::string name = uniq_name("kill9");
  Server server(name);
  server.bind(&echo_add_one, nullptr);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    try {
      Peer peer(name, 13);
      peer.grant_region(4096);  // a grant the reaper must also revoke
      ppc::RegSet regs;
      // The server never polls while this call is in flight, so the child
      // blocks inside call() — a genuinely in-flight cell — until SIGKILL.
      peer.call(1, regs);
    } catch (...) {
      ::_exit(4);
    }
    ::_exit(0);
  }

  // Observe the in-flight cell through the segment, then kill -9.
  Segment& seg = server.segment();
  const auto* hdr = reinterpret_cast<const ShmHeader*>(seg.base());
  auto* lane = seg.at<LaneHeader>(hdr->lanes_off);  // child took lane 0
  while (lane->enqueue_pos.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  auto* regions = seg.at<RegionSlot>(hdr->regions_off);
  while (regions[0].state.load(std::memory_order_acquire) != kRegionGranted) {
    std::this_thread::yield();
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  ASSERT_TRUE(WIFSIGNALED(st));

  // Locate the in-flight call's wait block BEFORE the reap resets the
  // ring, so the kCallAborted completion can be asserted on it after.
  auto* ring = seg.at<ShmCell>(lane->ring_off);
  ASSERT_EQ(ring[0].seq.load(std::memory_order_acquire), 1u);
  auto* wait = seg.at<ShmWait>(ring[0].wait_off);

  // The heartbeat (refreshed at call time) must go stale first; 20ms is
  // comfortably past a few scheduler quanta, and pid_gone() (ESRCH after
  // waitpid) confirms immediately.
  ::usleep(25'000);
  EXPECT_EQ(server.reap_dead_peers(/*dead_after_ns=*/20'000'000), 1u);

  // The in-flight call completed kCallAborted — exactly, including the
  // done bit — without executing.
  EXPECT_EQ(wait->done.load(),
            ShmWait::kDoneBit | static_cast<std::uint32_t>(
                                    Status::kCallAborted));

  // Pool conservation: the lane's free list is full-length again, the
  // ring is re-armed, the peer slot and the grant are free.
  std::uint32_t len = 0;
  for (std::uint64_t off = lane->wait_free_off; off != kNullOff;
       off = seg.at<ShmWait>(off)->next_off) {
    ++len;
    ASSERT_LE(len, kShmWaitsPerLane);
  }
  EXPECT_EQ(len, kShmWaitsPerLane);
  EXPECT_EQ(lane->enqueue_pos.load(), 0u);
  EXPECT_EQ(lane->dequeue_pos.load(), 0u);
  auto* peers = seg.at<PeerSlot>(hdr->peers_off);
  EXPECT_EQ(peers[0].state.load(), kPeerFree);
  EXPECT_EQ(regions[0].state.load(), kRegionFree);

  EXPECT_GE(server.counters().get(obs::Counter::kHeartbeatsMissed), 1u);
  EXPECT_EQ(server.counters().get(obs::Counter::kPeerDeaths), 1u);

  // The slot is reusable: a fresh peer attaches and calls through the
  // rebuilt lane.
  std::atomic<bool> done{false};
  std::thread srv([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (server.poll() == 0) std::this_thread::yield();
    }
  });
  Peer again(name, 14);
  EXPECT_EQ(again.peer_index(), 0u);
  ppc::RegSet regs;
  regs[0] = 7;
  EXPECT_EQ(again.call(1, regs), Status::kOk);
  EXPECT_EQ(regs[0], 8u);
  done.store(true, std::memory_order_release);
  srv.join();
}

#endif  // __linux__

}  // namespace
}  // namespace hppc::shm
