// The segment layout: header publication, offset links surviving a second
// mapping at a different base, ring/wait-pool initial state, and the
// segment-resident cancel pool being one pool across mappings.
#include "shm/layout.h"

#include <gtest/gtest.h>

#include <string>

#include "rt/runtime.h"
#include "rt/xcall.h"
#include "shm/segment.h"
#include "shm/transport.h"

#ifdef __linux__
#include <unistd.h>
#endif

namespace hppc::shm {
namespace {

std::string uniq_name(const char* tag) {
#ifdef __linux__
  return std::string("/hppc_") + tag + "_" + std::to_string(::getpid());
#else
  return std::string("/hppc_") + tag;
#endif
}

#ifdef __linux__

TEST(ShmLayout, HeaderPublishedAndOffsetsResolve) {
  const std::string name = uniq_name("layout");
  Server server(name);

  // Open the SAME segment a second time: a distinct mapping, almost
  // certainly at a different base — exactly what another process sees.
  // Every structure must be reachable through offsets alone.
  Segment view = Segment::open(name);
  ASSERT_TRUE(view.mapped());
  ASSERT_NE(view.base(), server.segment().base());

  const auto* hdr = reinterpret_cast<const ShmHeader*>(view.base());
  EXPECT_EQ(hdr->magic.load(), kShmMagic);
  EXPECT_EQ(hdr->version, kShmVersion);
  EXPECT_EQ(hdr->max_peers, kMaxShmPeers);
  EXPECT_EQ(hdr->ring_capacity, kShmRingCapacity);
  EXPECT_EQ(hdr->max_regions, kMaxShmRegions);
  EXPECT_EQ(hdr->total_bytes, view.size());
  EXPECT_NE(hdr->peers_off, kNullOff);
  EXPECT_NE(hdr->lanes_off, kNullOff);
  EXPECT_NE(hdr->regions_off, kNullOff);
  EXPECT_NE(hdr->cancel_flags_off, kNullOff);
  EXPECT_NE(hdr->cancel_cursor_off, kNullOff);

  // Offset round-trip through the second mapping.
  auto* peers = view.at<PeerSlot>(hdr->peers_off);
  EXPECT_EQ(view.offset_of(peers), hdr->peers_off);
  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    EXPECT_EQ(peers[p].state.load(), kPeerFree);
  }
}

TEST(ShmLayout, LanesStartEmptyWithFullWaitPools) {
  const std::string name = uniq_name("lanes");
  Server server(name);
  Segment view = Segment::open(name);
  const auto* hdr = reinterpret_cast<const ShmHeader*>(view.base());
  auto* lanes = view.at<LaneHeader>(hdr->lanes_off);

  for (std::uint32_t p = 0; p < hdr->max_peers; ++p) {
    const LaneHeader& lane = lanes[p];
    EXPECT_EQ(lane.enqueue_pos.load(), 0u);
    EXPECT_EQ(lane.dequeue_pos.load(), 0u);
    // Vyukov initial state: cell i's seq is i ("free, claimable at pos i").
    auto* ring = view.at<ShmCell>(lane.ring_off);
    for (std::uint64_t i = 0; i < hdr->ring_capacity; ++i) {
      EXPECT_EQ(ring[i].seq.load(), i);
    }
    // The wait free list links every block exactly once.
    std::uint32_t len = 0;
    for (std::uint64_t off = lane.wait_free_off; off != kNullOff;
         off = view.at<ShmWait>(off)->next_off) {
      ++len;
      ASSERT_LE(len, hdr->waits_per_lane) << "free-list cycle";
    }
    EXPECT_EQ(len, hdr->waits_per_lane);
  }
}

TEST(ShmLayout, CancelPoolIsOnePoolAcrossMappings) {
  const std::string name = uniq_name("cancel");
  Server server(name);
  Segment view = Segment::open(name);

  // Token minted through one mapping, flag raised through the other,
  // observed through both: one pool, two address spaces' worth of bases.
  const std::uint32_t tok = shm_cancel_token_create(view);
  EXPECT_NE(tok & rt::kCellTokenLaneMask, 0u);
  EXPECT_FALSE(shm_cancel_requested(server.segment(), tok));
  shm_cancel(server.segment(), tok);
  EXPECT_TRUE(shm_cancel_requested(view, tok));
  EXPECT_TRUE(shm_cancel_requested(server.segment(), tok));
}

TEST(ShmLayout, RuntimeAdoptsSegmentCancelPool) {
  const std::string name = uniq_name("adopt");
  Server server(name);
  rt::Runtime rt(1);
  server.adopt_cancel_pool_into(rt);

  // Tokens the runtime mints now live in the segment: a raise through the
  // runtime is visible to raw segment reads (what the shm server's drain
  // does), and vice versa.
  const rt::CancelToken tok = rt.cancel_token_create();
  EXPECT_FALSE(shm_cancel_requested(server.segment(), tok));
  rt.cancel(tok);
  EXPECT_TRUE(shm_cancel_requested(server.segment(), tok));

  const std::uint32_t tok2 = shm_cancel_token_create(server.segment());
  EXPECT_FALSE(rt.cancel_requested(tok2));
  shm_cancel(server.segment(), tok2);
  EXPECT_TRUE(rt.cancel_requested(tok2));
}

TEST(ShmLayout, CellMatchesInProcessPacking) {
  // The cell ep lane must keep the in-process packing bit for bit, so one
  // set of pack/unpack helpers serves both transports.
  const std::uint32_t wire = rt::cell_pack_ep(/*ep=*/7, /*token_idx=*/99,
                                              /*bulk=*/false);
  EXPECT_EQ(rt::cell_ep(wire), 7u);
  EXPECT_EQ(rt::cell_token_idx(wire), 99u);
  EXPECT_EQ(sizeof(ShmCell), 64u);
}

#endif  // __linux__

}  // namespace
}  // namespace hppc::shm
