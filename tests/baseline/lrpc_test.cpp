// LRPC-style baseline: functionally correct, but its global locked pools
// serialize under concurrency — the property the PPC design removes.
#include "baseline/lrpc.h"

#include <gtest/gtest.h>

namespace hppc::baseline {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::RegSet;

struct Fixture {
  Fixture() : machine(sim::hector_config(16)), lrpc(machine) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  LrpcFacility lrpc;
};

TEST(Lrpc, BasicCall) {
  Fixture f;
  const auto id = f.lrpc.bind([](LrpcCtx&, RegSet& regs) {
    regs[0] += 1;
    set_rc(regs, Status::kOk);
  });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  regs[0] = 41;
  set_op(regs, 1);
  ASSERT_EQ(f.lrpc.call(f.machine.cpu(0), client, id, regs), Status::kOk);
  EXPECT_EQ(regs[0], 42u);
}

TEST(Lrpc, UnknownService) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  RegSet regs;
  EXPECT_EQ(f.lrpc.call(f.machine.cpu(0), client, 99, regs),
            Status::kNoSuchEntryPoint);
}

TEST(Lrpc, PoolLockSerializesAcrossCpus) {
  Fixture f;
  const auto id = f.lrpc.bind(
      [](LrpcCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  for (CpuId c = 0; c < 8; ++c) {
    Process& client = f.make_client(100 + c, c);
    set_op(regs, 1);
    f.lrpc.call(f.machine.cpu(c), client, id, regs);
  }
  // Two lock acquisitions per call (allocate + free).
  EXPECT_EQ(f.lrpc.lock_acquisitions(), 16u);
  // The lock migrated between processors (coherence traffic the PPC
  // facility never generates).
  EXPECT_GT(f.lrpc.lock_migrations(), 0u);
}

TEST(Lrpc, SlowerThanPpcWouldBeUnderContention) {
  // Calls from many CPUs each pay remote pool traffic; a single CPU's
  // repeated calls stay cheaper. This is a sanity property of the model,
  // not a full Figure-3 rerun (the ablation bench does that).
  Fixture f;
  const auto id = f.lrpc.bind(
      [](LrpcCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  Process& local = f.make_client(100, 0);
  RegSet regs;
  set_op(regs, 1);
  for (int i = 0; i < 4; ++i) f.lrpc.call(f.machine.cpu(0), local, id, regs);
  const Cycles t0 = f.machine.cpu(0).now();
  set_op(regs, 1);
  f.lrpc.call(f.machine.cpu(0), local, id, regs);
  const Cycles local_cost = f.machine.cpu(0).now() - t0;

  Process& remote = f.make_client(101, 12);  // station 3: 1 hop from pool
  set_op(regs, 1);
  for (int i = 0; i < 4; ++i) f.lrpc.call(f.machine.cpu(12), remote, id, regs);
  const Cycles t1 = f.machine.cpu(12).now();
  set_op(regs, 1);
  f.lrpc.call(f.machine.cpu(12), remote, id, regs);
  const Cycles remote_cost = f.machine.cpu(12).now() - t1;
  EXPECT_GT(remote_cost, local_cost);
}

TEST(Lrpc, PoolGrowsOnDemand) {
  Fixture f;
  // One-CD pool forces growth on nested/parallel use; here just verify many
  // sequential calls recycle without error.
  const auto id = f.lrpc.bind(
      [](LrpcCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  Process& client = f.make_client(100, 0);
  RegSet regs;
  for (int i = 0; i < 50; ++i) {
    set_op(regs, 1);
    ASSERT_EQ(f.lrpc.call(f.machine.cpu(0), client, id, regs), Status::kOk);
  }
}

}  // namespace
}  // namespace hppc::baseline
