#include "baseline/msgq.h"

#include <gtest/gtest.h>

namespace hppc::baseline {
namespace {

using kernel::Machine;
using ppc::RegSet;

TEST(MsgQueue, BasicRoundTrip) {
  Machine m(sim::hector_config(8));
  MsgQueueIpc::Config cfg;
  cfg.server_cpus = {4};
  MsgQueueIpc ipc(m, cfg);
  RegSet regs;
  regs[0] = 5;
  set_op(regs, 1);
  ASSERT_EQ(ipc.call(m.cpu(0), regs,
                     [](RegSet& r) {
                       r[0] *= 2;
                       set_rc(r, Status::kOk);
                     }),
            Status::kOk);
  EXPECT_EQ(regs[0], 10u);
  EXPECT_EQ(ipc.requests(), 1u);
}

TEST(MsgQueue, ClientWaitsForServiceAndIpis) {
  Machine m(sim::hector_config(8));
  MsgQueueIpc::Config cfg;
  cfg.server_cpus = {4};
  cfg.handler_cycles = 500;
  MsgQueueIpc ipc(m, cfg);
  RegSet regs;
  set_op(regs, 1);
  const Cycles t0 = m.cpu(0).now();
  ipc.call(m.cpu(0), regs, [](RegSet& r) { set_rc(r, Status::kOk); });
  // Round trip >= handler + dispatch + two IPIs.
  EXPECT_GE(m.cpu(0).now() - t0,
            500u + 90u + 2 * m.config().ipi_latency_cycles);
  // The wait shows up as idle time on the client.
  EXPECT_GT(m.cpu(0).mem().ledger().get(sim::CostCategory::kIdle), 0u);
}

TEST(MsgQueue, LimitedServerParallelism) {
  // Two server CPUs: throughput of simultaneous requests is capped at two
  // concurrent services; a third request from a third client waits.
  Machine m(sim::hector_config(8));
  MsgQueueIpc::Config cfg;
  cfg.server_cpus = {4, 5};
  cfg.handler_cycles = 1000;
  MsgQueueIpc ipc(m, cfg);

  RegSet regs;
  for (CpuId c = 0; c < 3; ++c) {
    set_op(regs, 1);
    ipc.call(m.cpu(c), regs, [](RegSet& r) { set_rc(r, Status::kOk); });
  }
  // Clients 0 and 1 were serviced in parallel; client 2 queued behind one
  // of them and finished later.
  EXPECT_GT(m.cpu(2).now(), m.cpu(0).now());
  EXPECT_GT(m.cpu(2).now(), m.cpu(1).now());
}

TEST(MsgQueue, WorkChargedToServerCpu) {
  Machine m(sim::hector_config(8));
  MsgQueueIpc::Config cfg;
  cfg.server_cpus = {6};
  MsgQueueIpc ipc(m, cfg);
  RegSet regs;
  set_op(regs, 1);
  ipc.call(m.cpu(1), regs, [](RegSet& r) { set_rc(r, Status::kOk); });
  EXPECT_GT(m.cpu(6).mem().ledger().get(sim::CostCategory::kServerTime), 0u);
  EXPECT_EQ(m.cpu(1).mem().ledger().get(sim::CostCategory::kServerTime), 0u);
}

}  // namespace
}  // namespace hppc::baseline
