// Runtime::telemetry() against known offered load: the windowed drain-rate
// series must reproduce the load the test offered, the occupancy EWMA and
// queueing-delay estimate must light up when a ring is made to backlog,
// and the always-on RTT histograms must have counted every call.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "rt/runtime.h"

namespace hppc {
namespace {

using obs::Counter;
using obs::Hist;

TEST(RtTelemetry, DrainRateMatchesOfferedLoad) {
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });

  std::atomic<bool> stop{false};
  std::atomic<rt::SlotId> server_slot{0};
  std::atomic<bool> up{false};
  std::thread server([&] {
    const rt::SlotId s = rt.register_thread();
    server_slot.store(s, std::memory_order_release);
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
  const rt::SlotId other = server_slot.load(std::memory_order_acquire);

  (void)rt.telemetry();  // prime the window

  constexpr int kCalls = 2000;
  ppc::RegSet regs;
  for (int i = 0; i < kCalls; ++i) {
    regs[0] = static_cast<Word>(i);
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call_remote(me, other, 1, ep, regs), Status::kOk);
  }

  const obs::Telemetry t = rt.telemetry();
  stop.store(true, std::memory_order_release);
  server.join();

  ASSERT_EQ(t.slots.size(), rt.slots());
  EXPECT_GT(t.window_s, 0.0);
  // Every offered call crossed the server slot's ring exactly once (the
  // gate was held by the polling thread, so nothing went direct).
  const obs::SlotSeries& srv = t.slots[other];
  EXPECT_EQ(srv.drained_cells, static_cast<std::uint64_t>(kCalls));
  EXPECT_GE(srv.mean_drain_batch, 1.0);
  // drain_rate is drained/window by construction; cross-check it against
  // the offered rate computed from the same window.
  const double offered_per_sec = kCalls / t.window_s;
  EXPECT_GT(srv.drain_rate_per_sec, 0.5 * offered_per_sec);
  EXPECT_LT(srv.drain_rate_per_sec, 2.0 * offered_per_sec);
  EXPECT_DOUBLE_EQ(t.total_drain_rate_per_sec,
                   static_cast<double>(t.total_drained_cells) / t.window_s);

  // Always-on histograms saw every call: RTT on the caller, drain batches
  // on the server; the derived p50 came out calibrated and positive.
  EXPECT_EQ(rt.hist_snapshot(me).count(Hist::kRttRemote),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_GT(rt.hist_snapshot(other).count(Hist::kDrainBatch), 0u);
  const obs::SlotSeries& mine = t.slots[me];
  EXPECT_GT(mine.rtt_remote_p50_ns, 0.0);
  EXPECT_LE(mine.rtt_remote_p50_ns, mine.rtt_remote_p99_ns * 1.0001);
}

TEST(RtTelemetry, BackloggedRingRaisesOccupancyAndQueueDelay) {
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  std::atomic<int> executed{0};
  const EntryPointId ep = rt.bind(
      {.name = "slow"}, 700, [&](rt::RtCtx&, ppc::RegSet& regs) {
        executed.fetch_add(1, std::memory_order_relaxed);
        ppc::set_rc(regs, Status::kOk);
      });

  (void)rt.telemetry();  // prime

  // Nobody drains slot 1: async posts pile up in its ring, so the next
  // scrape samples a genuinely backlogged queue.
  constexpr int kBacklog = 12;
  for (int i = 0; i < kBacklog; ++i) {
    ppc::RegSet regs;
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, regs), Status::kOk);
  }
  EXPECT_EQ(rt.xcall_depth(1), static_cast<std::size_t>(kBacklog));

  const obs::Telemetry backlogged = rt.telemetry();
  EXPECT_DOUBLE_EQ(backlogged.slots[1].occupancy_ewma,
                   static_cast<double>(kBacklog) * 0.25);

  // Drain it; the following window pairs the drained cells with the still-
  // elevated occupancy EWMA, so Little's law yields a positive delay.
  EXPECT_EQ(rt.poll(1), static_cast<std::size_t>(kBacklog));
  EXPECT_EQ(executed.load(), kBacklog);
  const obs::Telemetry drained = rt.telemetry();
  const obs::SlotSeries& s = drained.slots[1];
  EXPECT_EQ(s.drained_cells, static_cast<std::uint64_t>(kBacklog));
  EXPECT_GT(s.drain_rate_per_sec, 0.0);
  EXPECT_GT(s.occupancy_ewma, 0.0);
  EXPECT_GT(s.est_queue_delay_ns, 0.0);
}

TEST(RtTelemetry, SnapshotsAreCountedAndSideEffectFree) {
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);

  const std::uint64_t before =
      rt.snapshot().get(Counter::kTelemetrySnaps);
  (void)rt.telemetry();
  (void)rt.telemetry();
  EXPECT_EQ(rt.snapshot().get(Counter::kTelemetrySnaps), before + 2);
  // Scraping is read-only with respect to the per-slot blocks: counters
  // and histograms are unchanged by observation.
  const obs::CounterSnapshot c0 = rt.slot_snapshot(slot);
  (void)rt.telemetry();
  EXPECT_EQ(rt.slot_snapshot(slot).get(Counter::kCallsSync),
            c0.get(Counter::kCallsSync));
}

TEST(RtTelemetry, JsonExportOfLiveRuntimeIsWellFormed) {
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  for (int i = 0; i < 10; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  }
  (void)rt.telemetry();
  const std::string json = obs::telemetry_to_json(rt.telemetry());
  EXPECT_NE(json.find("\"slots\":["), std::string::npos);
  EXPECT_NE(json.find("\"est_queue_delay_ns\":"), std::string::npos);
  int braces = 0;
  for (char c : json) braces += (c == '{') - (c == '}');
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace hppc
